//! # buffered-rtrees
//!
//! A faithful, production-quality reproduction of
//! **Leutenegger & López, "The Effect of Buffering on the Performance of
//! R-Trees" (ICDE 1998 / IEEE TKDE 12(1), 2000)**.
//!
//! Past R-tree studies measured query cost as the number of *nodes visited*.
//! Real database systems buffer part of the tree in memory, so the paper
//! argues — and this workspace demonstrates end-to-end — that the right
//! metric is the expected number of **disk accesses** per query, and derives
//! an analytic LRU buffer model that predicts it within ~2% of simulation.
//!
//! The workspace is organised as one crate per subsystem; this facade crate
//! re-exports them under stable module names:
//!
//! * [`geom`] — rectangles, points, Hilbert/Morton curves.
//! * [`index`] — the R-tree itself: Guttman insertion (quadratic/linear
//!   splits), deletion, and the packing loaders TAT/NX/HS/Morton/STR.
//! * [`buffer`] — buffer pool with LRU/FIFO/Clock/Random replacement and
//!   page pinning.
//! * [`pager`] — page file + buffer manager + disk-backed R-tree execution
//!   that counts physical reads.
//! * [`obs`] — observability: I/O trace events and sinks, power-of-two
//!   histograms, Prometheus-style export (hooks in `pager` are behind its
//!   `trace` cargo feature).
//! * [`wal`] — the write-ahead log backing the durable write path.
//! * [`model`] — the paper's analytic models: node-access cost
//!   (Kamel–Faloutsos with the Pagel boundary correction), data-driven
//!   access probabilities, and the LRU buffer model with pinning.
//! * [`sim`] — the trace-driven LRU simulation used to validate the model
//!   (batch means, confidence intervals).
//! * [`datagen`] — deterministic synthetic data sets, including TIGER-like
//!   and CFD-like substitutes for the paper's proprietary inputs.
//! * [`nd`] — the N-dimensional generalization: const-generic geometry,
//!   index and workloads feeding the same dimension-free buffer model.
//!
//! ## Quick start
//!
//! ```
//! use buffered_rtrees::datagen::SyntheticRegion;
//! use buffered_rtrees::index::{BulkLoader, RTree};
//! use buffered_rtrees::model::{BufferModel, TreeDescription, Workload};
//!
//! // 1. Generate a data set and bulk-load an R-tree with Hilbert packing.
//! let rects = SyntheticRegion::new(10_000).generate(42);
//! let tree = BulkLoader::hilbert(100).load(&rects);
//!
//! // 2. Describe the tree by its per-level MBRs (the model's only input).
//! let desc = TreeDescription::from_tree(&tree);
//!
//! // 3. Predict expected disk accesses per 1%-region query with a
//! //    100-page LRU buffer.
//! let workload = Workload::uniform_region(0.1, 0.1);
//! let prediction = BufferModel::new(&desc, &workload).expected_disk_accesses(100);
//! assert!(prediction > 0.0);
//! ```

pub use rtree_buffer as buffer;
pub use rtree_core as model;
pub use rtree_datagen as datagen;
pub use rtree_exec as exec;
pub use rtree_geom as geom;
pub use rtree_index as index;
pub use rtree_nd as nd;
pub use rtree_obs as obs;
pub use rtree_pager as pager;
pub use rtree_sim as sim;
pub use rtree_wal as wal;
