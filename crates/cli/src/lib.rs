//! Library backing the `rtrees` command-line tool.
//!
//! The paper's hybrid workflow as shell commands:
//!
//! ```text
//! rtrees generate region:20000 --seed 7 --out data.csv
//! rtrees build data.csv --loader HS --cap 100 --out tree.desc
//! rtrees model tree.desc --workload region:0.1:0.1 --buffers 10,50,200
//! rtrees simulate tree.desc --workload region:0.1:0.1 --buffer 50 --queries 200000
//! ```
//!
//! Every command is a pure function from arguments + input files to an
//! output string, so the whole tool is unit-testable without spawning
//! processes.

mod args;
mod commands;

pub use args::{Args, CliError};
pub use commands::run;

/// Usage text printed on `--help` or argument errors.
pub const USAGE: &str = "\
rtrees — buffered R-tree cost modelling (Leutenegger & López, ICDE 1998)

USAGE:
  rtrees generate <SPEC> [--seed N] [--out FILE]
      SPEC: tiger | cfd | region:<N> | point:<N> | clustered:<N>:<K>:<SIGMA>
      Writes an x0,y0,x1,y1 CSV data set (stdout without --out).

  rtrees build <DATA.csv> [--loader TAT|NX|HS|MORTON|STR|RSTAR] [--cap N] [--out FILE]
      Builds an R-tree (default HS, cap 100) and writes its per-level MBR
      description (`level x0 y0 x1 y1`, level 0 = root).

  rtrees model <TREE.desc> [--workload W] [--buffers B1,B2,...] [--pin P]
      Predicts expected disk accesses per query for each buffer size.
      W: point | region:<QX>:<QY> | data:<QX>:<QY>:<DATA.csv>  (default point)

  rtrees simulate <TREE.desc> [--workload W] [--buffer B] [--queries N]
                  [--policy LRU|LRU2|FIFO|CLOCK|RANDOM] [--seed N]
      Runs the paper's flat LRU simulation over the description.

  rtrees tune <TREE.desc> [--workload W] [--buffers B1,B2,...] [--queries N]
              [--budget B] [--seed N]
      Predicted-vs-measured curves: for each buffer size, the model's
      warm-up point N* (or a typed \"never fills\" note), predicted disk
      accesses/query (eq. 6), the measured steady-state rate from the
      flat LRU simulation, and their relative error — then the knee-point
      plan the online controller would pick within --budget (default: the
      largest buffer listed).

  rtrees update <DATA.csv> [--cap N] [--buffer B] [--policy LRU|LRU2|FIFO|CLOCK|RANDOM]
                [--deletes F] [--checkpoint N] [--seed N]
      Replays the data set as a write workload (inserts, then deletes a
      fraction F) through the WAL-attached disk tree and reports physical
      reads/writes per operation — the write-amplification counterpart of
      the read-cost experiments.

  rtrees batch <DATA.csv> [--loader L] [--cap N] [--buffer B] [--queries N]
               [--workload W] [--policy LRU|LRU2|FIFO|CLOCK|RANDOM] [--seed N]
               [--window W] [--sizes S1,S2,...] [--json]
      Answers the same query stream from a cold tree at each batch size
      (default 1,4,16,64,256,1024) through the batched executor — page
      dedup, PageId-sorted level-synchronous traversal, readahead window W
      (default 8, 0 disables) — and reports the physical reads/query curve,
      pool hit ratio, the fraction of page requests dedup removed, and the
      prefetched-page count. --json emits the table as JSON.

  rtrees concurrent <DATA.csv> [--loader L] [--cap N] [--buffer B] [--threads T]
                    [--shards S] [--pin P] [--queries N] [--workload W]
                    [--policy LRU|LRU2|FIFO|CLOCK|RANDOM] [--seed N]
      Builds the tree, then serves the query workload from T threads over
      the sharded concurrent buffer pool (S latch shards; 0 = one per
      hardware thread, 1 = the paper's sequential accounting) and reports
      throughput, physical reads per query, and the pool hit ratio.

  rtrees trace <DATA.csv> [--loader L] [--cap N] [--buffer B] [--threads T]
               [--shards S] [--pin P] [--queries N] [--workload W]
               [--policy LRU|LRU2|FIFO|CLOCK|RANDOM] [--seed N] [--json | --prom]
      Runs the query workload with the I/O trace layer attached and prints
      the measured per-level hit-ratio table (root = level 0), totals,
      p50/p99 query latency, and whether the event stream reconciles
      exactly with the I/O counters. --json emits the table as JSON;
      --prom emits Prometheus-style text metrics instead.

  rtrees chaos [--seed N | --seeds A..B] [--ops K] [--plant]
      Deterministic simulation test: the seed generates a tree/buffer
      configuration, a fault schedule (crashes, torn writes, read faults),
      a mixed workload, and a thread-interleaving schedule, then replays
      them against differential, durability and accounting oracles. On
      failure the run shrinks to a minimal `--seed N --ops K` replay line.
      --plant injects a known bug (harness self-test).

  rtrees macrobench <DATA.csv> [--loader L] [--cap N] [--frames F] [--ops K]
               [--qx X] [--qy Y] [--skew uniform|zipf[:THETA]|shifting]
               [--mix read-mostly|read-only] [--policy P] [--miss-ns NS]
               [--seed N] [--record FILE] [--replay FILE] [--json]
      Replays one deterministic trace (Zipf-skewed, read/write mixed)
      against the page-format-v3 and compressed-v4 images of the same tree
      at an equal frame budget, reporting hit rate, demand reads/op, the
      buffer model's predicted reads/query, latency quantiles, and
      effective OPS (misses charged --miss-ns, default ~1.9 us). --record
      saves the generated trace; --replay re-runs a recorded one
      byte-identically (overriding --ops/--seed).

  rtrees serve <DATA.csv> [--addr HOST:PORT] [--port-file FILE] [--duration S]
               [--engine seq|sharded] [--shards S] [--loader L] [--cap N]
               [--buffer B] [--policy LRU|LRU2|FIFO|CLOCK|RANDOM] [--seed N]
               [--batch N] [--wait-us U] [--queue N] [--workers N] [--window W]
               [--adaptive] [--tune-interval MS] [--budget B]
      Builds the tree and serves it over framed TCP (default 127.0.0.1:0 =
      ephemeral; --port-file publishes the bound address). Queries funnel
      into the micro-batching scheduler: a batch closes at N queries
      (default 64) or after U microseconds (default 500), whichever comes
      first, and runs through the batched executor with readahead window W.
      Runs until a Shutdown frame arrives (or --duration seconds), drains,
      and prints queries/batches, reads per query, queue-wait quantiles,
      and whether the batcher, I/O ledger and trace counters reconcile.
      --adaptive runs the self-tuning controller (engines seq|sharded): a
      background tick every MS milliseconds (default 250) re-estimates the
      workload from served queries, refits the buffer model, and resizes /
      re-pins the pool within --budget frames (default --buffer); the
      tuning decisions are listed in the exit summary.

  rtrees loadgen <HOST:PORT> [--connections C] [--queries N] [--qps Q]
                 [--workload W] [--zipf THETA] [--count-fraction F] [--seed N]
                 [--shutdown] [--quick] [--json]
      Open-loop load generator: C connections offer N queries total at a
      target aggregate rate Q (0 = closed loop), a fraction F as count
      queries. Latency is charged from each query's scheduled send time,
      so coordinated omission is not hidden. Reports sent/ok/overloaded/
      errors, p50/p99/p999/mean latency, and server demand reads per query
      (from the server's stats delta). --zipf skews a data-driven workload
      by rank (Zipf exponent THETA: hot centers draw most queries).
      --shutdown stops the server after the run; --quick is a 200-query
      smoke preset.

Common: --help prints this text.
";
