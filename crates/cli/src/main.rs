//! `rtrees` — see [`rtree_cli::USAGE`].

use rtree_cli::{run, Args, USAGE};

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = match Args::parse(raw) {
        Ok(a) => a,
        Err(e) if e.0 == "help" => {
            print!("{USAGE}");
            return;
        }
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    match run(&args) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
