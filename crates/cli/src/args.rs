//! Minimal argument parsing: one subcommand, one positional, `--key value`
//! flags. No external dependencies.

use std::collections::HashMap;
use std::fmt;

/// Parsed command line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Args {
    /// Subcommand (`generate`, `build`, `model`, `simulate`).
    pub command: String,
    /// The single positional argument (data spec or input file).
    pub positional: String,
    flags: HashMap<String, String>,
}

/// Argument or execution error; carries the message shown to the user.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

/// Shorthand constructor.
pub(crate) fn err(msg: impl Into<String>) -> CliError {
    CliError(msg.into())
}

/// Flags that are presence toggles and take no value. Everything else uses
/// the uniform `--key value` form.
const BOOL_FLAGS: &[&str] = &[
    "json", "prom", "plant", "shutdown", "quick", "writers", "adaptive",
];

/// Subcommands that are fully seed-driven and take no input argument.
const NO_POSITIONAL: &[&str] = &["chaos"];

impl Args {
    /// Parses raw arguments (without the program name).
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Result<Self, CliError> {
        let mut iter = raw.into_iter().peekable();
        let command = iter.next().ok_or_else(|| err("missing subcommand"))?;
        if command == "--help" || command == "-h" {
            return Err(err("help"));
        }
        let mut positional = None;
        let mut flags = HashMap::new();
        while let Some(tok) = iter.next() {
            if let Some(name) = tok.strip_prefix("--") {
                if name == "help" {
                    return Err(err("help"));
                }
                let value = if BOOL_FLAGS.contains(&name) {
                    "true".to_string()
                } else {
                    iter.next()
                        .ok_or_else(|| err(format!("--{name} needs a value")))?
                };
                if flags.insert(name.to_string(), value).is_some() {
                    return Err(err(format!("--{name} given twice")));
                }
            } else if positional.is_none() {
                positional = Some(tok);
            } else {
                return Err(err(format!("unexpected argument {tok:?}")));
            }
        }
        let positional = match positional {
            Some(p) => p,
            None if NO_POSITIONAL.contains(&command.as_str()) => String::new(),
            None => return Err(err("missing input argument")),
        };
        Ok(Args {
            command,
            positional,
            flags,
        })
    }

    /// A string flag.
    pub fn flag(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    /// True when a presence-toggle flag (e.g. `--json`) was given.
    pub fn flag_bool(&self, name: &str) -> bool {
        self.flags.contains_key(name)
    }

    /// A parsed flag with a default.
    pub fn flag_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, CliError>
    where
        T::Err: fmt::Display,
    {
        match self.flags.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|e| err(format!("--{name} {v:?}: {e}"))),
        }
    }

    /// A comma-separated list of integers.
    pub fn flag_list(&self, name: &str, default: &[usize]) -> Result<Vec<usize>, CliError> {
        match self.flags.get(name) {
            None => Ok(default.to_vec()),
            Some(v) => v
                .split(',')
                .map(|p| {
                    p.trim()
                        .parse::<usize>()
                        .map_err(|e| err(format!("--{name} {p:?}: {e}")))
                })
                .collect(),
        }
    }

    /// Rejects flags outside the allowed set (typo guard).
    pub fn allow_flags(&self, allowed: &[&str]) -> Result<(), CliError> {
        for k in self.flags.keys() {
            if !allowed.contains(&k.as_str()) {
                return Err(err(format!("unknown flag --{k} for {}", self.command)));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<Args, CliError> {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn parses_command_positional_and_flags() {
        let a = parse("build data.csv --loader HS --cap 50").unwrap();
        assert_eq!(a.command, "build");
        assert_eq!(a.positional, "data.csv");
        assert_eq!(a.flag("loader"), Some("HS"));
        assert_eq!(a.flag_or("cap", 100usize).unwrap(), 50);
        assert_eq!(a.flag_or("seed", 7u64).unwrap(), 7);
    }

    #[test]
    fn flag_lists() {
        let a = parse("model t.desc --buffers 10,50,200").unwrap();
        assert_eq!(a.flag_list("buffers", &[1]).unwrap(), vec![10, 50, 200]);
        assert_eq!(a.flag_list("other", &[9]).unwrap(), vec![9]);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse("").is_err());
        assert!(parse("build").is_err());
        assert!(parse("build a b").is_err());
        assert!(parse("build a --cap").is_err());
        assert!(parse("build a --cap 5 --cap 6").is_err());
        assert!(parse("model t.desc --buffers 1,x")
            .unwrap()
            .flag_list("buffers", &[])
            .is_err());
    }

    #[test]
    fn bool_flags_take_no_value() {
        let a = parse("trace d.csv --json --policy LRU --prom").unwrap();
        assert!(a.flag_bool("json"));
        assert!(a.flag_bool("prom"));
        assert!(!a.flag_bool("csv"));
        assert_eq!(a.flag("policy"), Some("LRU"));
        // A bool flag at the end must not swallow a missing value error
        // elsewhere.
        assert!(parse("trace d.csv --policy").is_err());
        assert!(parse("trace d.csv --json --json").is_err());
    }

    #[test]
    fn chaos_needs_no_positional() {
        let a = parse("chaos --seed 7 --ops 50 --plant").unwrap();
        assert_eq!(a.command, "chaos");
        assert_eq!(a.positional, "");
        assert_eq!(a.flag_or("seed", 0u64).unwrap(), 7);
        assert!(a.flag_bool("plant"));
        // Other commands still require their input argument.
        assert!(parse("build --cap 5").is_err());
    }

    #[test]
    fn unknown_flag_guard() {
        let a = parse("build a --weird 1").unwrap();
        assert!(a.allow_flags(&["cap"]).is_err());
        assert!(a.allow_flags(&["weird"]).is_ok());
    }

    #[test]
    fn help_is_signalled() {
        assert_eq!(parse("--help").unwrap_err().0, "help");
        assert_eq!(parse("build x --help").unwrap_err().0, "help");
    }
}
