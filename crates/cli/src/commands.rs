//! The subcommands.

use crate::args::{err, Args, CliError};
use rtree_buffer::{
    BufferPool, ClockPolicy, FifoPolicy, LruKPolicy, LruPolicy, RandomPolicy, ReplacementPolicy,
};
use rtree_core::{BufferModel, TreeDescription, Workload};
use rtree_datagen::{
    centers, from_csv, to_csv, CfdLike, ClusteredPoints, SyntheticPoint, SyntheticRegion, TigerLike,
};
use rtree_geom::Rect;
use rtree_index::{BulkLoader, RTree, TupleAtATime};
use rtree_sim::{flat_trace, QuerySampler};
use std::fmt::Write as _;

/// Executes a parsed command; returns the text to print. File writes happen
/// inside (`--out`); everything else is returned.
pub fn run(args: &Args) -> Result<String, CliError> {
    match args.command.as_str() {
        "generate" => generate(args),
        "build" => build(args),
        "model" => model(args),
        "tune" => tune(args),
        "simulate" => simulate(args),
        "update" => update(args),
        "batch" => batch(args),
        "concurrent" => concurrent(args),
        "trace" => trace(args),
        "chaos" => chaos(args),
        "macrobench" => macrobench(args),
        "serve" => serve(args),
        "loadgen" => loadgen(args),
        other => Err(err(format!("unknown subcommand {other:?}"))),
    }
}

fn read_file(path: &str) -> Result<String, CliError> {
    std::fs::read_to_string(path).map_err(|e| err(format!("reading {path}: {e}")))
}

fn write_or_return(args: &Args, content: String, what: &str) -> Result<String, CliError> {
    match args.flag("out") {
        Some(path) => {
            std::fs::write(path, &content).map_err(|e| err(format!("writing {path}: {e}")))?;
            Ok(format!("wrote {what} to {path}\n"))
        }
        None => Ok(content),
    }
}

fn generate(args: &Args) -> Result<String, CliError> {
    args.allow_flags(&["seed", "out"])?;
    let seed: u64 = args.flag_or("seed", 42u64)?;
    let spec = args.positional.as_str();
    let rects = parse_dataset_spec(spec, seed)?;
    write_or_return(args, to_csv(&rects), &format!("{} rectangles", rects.len()))
}

/// Parses `tiger | cfd | region:N | point:N | clustered:N:K:SIGMA`.
fn parse_dataset_spec(spec: &str, seed: u64) -> Result<Vec<Rect>, CliError> {
    let parts: Vec<&str> = spec.split(':').collect();
    let n_of = |s: &str| -> Result<usize, CliError> {
        s.parse().map_err(|e| err(format!("bad count {s:?}: {e}")))
    };
    match parts.as_slice() {
        ["tiger"] => Ok(TigerLike::paper().generate(seed)),
        ["cfd"] => Ok(CfdLike::paper().generate(seed)),
        ["region", n] => Ok(SyntheticRegion::new(n_of(n)?).generate(seed)),
        ["point", n] => Ok(SyntheticPoint::new(n_of(n)?).generate(seed)),
        ["clustered", n, k, sigma] => {
            let sigma: f64 = sigma
                .parse()
                .map_err(|e| err(format!("bad sigma {sigma:?}: {e}")))?;
            Ok(ClusteredPoints::new(n_of(n)?, n_of(k)?, sigma).generate(seed))
        }
        _ => Err(err(format!("unknown data spec {spec:?}"))),
    }
}

fn build_tree(rects: &[Rect], loader: &str, cap: usize) -> Result<RTree, CliError> {
    Ok(match loader.to_uppercase().as_str() {
        "TAT" => TupleAtATime::quadratic(cap).load(rects),
        "RSTAR" | "R*" => TupleAtATime::rstar(cap).load(rects),
        "NX" => BulkLoader::nearest_x(cap).load(rects),
        "HS" => BulkLoader::hilbert(cap).load(rects),
        "MORTON" => BulkLoader::morton(cap).load(rects),
        "STR" => BulkLoader::str_pack(cap).load(rects),
        other => return Err(err(format!("unknown loader {other:?}"))),
    })
}

fn build(args: &Args) -> Result<String, CliError> {
    args.allow_flags(&["loader", "cap", "out"])?;
    let rects = from_csv(&read_file(&args.positional)?).map_err(CliError)?;
    if rects.is_empty() {
        return Err(err("data set is empty"));
    }
    let cap: usize = args.flag_or("cap", 100usize)?;
    let loader = args.flag("loader").unwrap_or("HS");
    let tree = build_tree(&rects, loader, cap)?;
    let desc = TreeDescription::from_tree(&tree);
    let mut summary = format!(
        "# {} items, loader {}, cap {cap}: {} nodes over {} levels {:?}\n",
        tree.len(),
        loader.to_uppercase(),
        desc.total_nodes(),
        desc.height(),
        desc.nodes_per_level()
    );
    summary.push_str(&desc.to_text());
    write_or_return(args, summary, "tree description")
}

fn parse_workload(spec: &str) -> Result<Workload, CliError> {
    let parts: Vec<&str> = spec.split(':').collect();
    let q_of = |s: &str| -> Result<f64, CliError> {
        let v: f64 = s
            .parse()
            .map_err(|e| err(format!("bad query size {s:?}: {e}")))?;
        if !(0.0..1.0).contains(&v) {
            return Err(err(format!("query size {v} must be in [0, 1)")));
        }
        Ok(v)
    };
    match parts.as_slice() {
        ["point"] => Ok(Workload::uniform_point()),
        ["region", qx, qy] => Ok(Workload::uniform_region(q_of(qx)?, q_of(qy)?)),
        ["data", qx, qy, path] => {
            let (qx, qy) = (q_of(qx)?, q_of(qy)?);
            let rects = from_csv(&read_file(path)?).map_err(CliError)?;
            if rects.is_empty() {
                return Err(err("data-driven workload needs a non-empty data set"));
            }
            Ok(Workload::data_driven(qx, qy, centers(&rects)))
        }
        _ => Err(err(format!("unknown workload {spec:?}"))),
    }
}

fn model(args: &Args) -> Result<String, CliError> {
    args.allow_flags(&["workload", "buffers", "pin"])?;
    let desc = TreeDescription::from_text(&read_file(&args.positional)?)
        .map_err(|e| err(format!("parsing description: {e}")))?;
    let workload = parse_workload(args.flag("workload").unwrap_or("point"))?;
    let buffers = args.flag_list("buffers", &[10, 50, 100, 200, 400])?;
    let pin: usize = args.flag_or("pin", 0usize)?;
    let model = BufferModel::new(&desc, &workload);

    let mut out = String::new();
    // `fmt::Write` into a `String` cannot fail; discard the Ok(()) rather
    // than `.expect()` so an (impossible) error can't panic a report path.
    let _ = writeln!(
        out,
        "tree: {} nodes {:?}; expected nodes visited/query (no buffer): {:.4}",
        desc.total_nodes(),
        desc.nodes_per_level(),
        model.expected_node_accesses()
    );
    let _ = writeln!(
        out,
        "{:>10}  {:>34}  {:>22}",
        "buffer", "warm-up N*", "disk accesses/query"
    );
    for b in buffers {
        // The warm-up column is typed: a buffer too large for the reachable
        // working set reports *why* there is no N* instead of a blank.
        let warm = if pin == 0 {
            model.warmup(b).to_string()
        } else {
            "-".to_string()
        };
        let ed = if pin == 0 {
            Ok(model.expected_disk_accesses(b))
        } else {
            model
                .expected_disk_accesses_pinned(b, pin)
                .map_err(|e| e.to_string())
        };
        match ed {
            Ok(v) => {
                let _ = writeln!(out, "{b:>10}  {warm:>34}  {v:>22.4}");
            }
            Err(e) => {
                let _ = writeln!(out, "{b:>10}  {warm:>34}  {e:>22}");
            }
        }
    }
    if pin > 0 {
        let _ = writeln!(
            out,
            "(top {pin} levels pinned: {} pages)",
            model.pinned_pages(pin)
        );
    }
    Ok(out)
}

fn tune(args: &Args) -> Result<String, CliError> {
    use rtree_tune::{Controller, ControllerConfig, Setting};

    args.allow_flags(&["workload", "buffers", "queries", "budget", "seed"])?;
    let desc = TreeDescription::from_text(&read_file(&args.positional)?)
        .map_err(|e| err(format!("parsing description: {e}")))?;
    let workload = parse_workload(args.flag("workload").unwrap_or("point"))?;
    let buffers = args.flag_list("buffers", &[10, 50, 100, 200, 400])?;
    let queries: usize = args.flag_or("queries", 50_000usize)?;
    let seed: u64 = args.flag_or("seed", 0xC11u64)?;
    if queries == 0 {
        return Err(err("--queries must be at least 1"));
    }
    if buffers.iter().any(|&b| b == 0) {
        return Err(err("buffer sizes must be positive"));
    }
    let budget: usize = args.flag_or("budget", buffers.iter().copied().max().unwrap_or(100))?;
    if budget == 0 {
        return Err(err("--budget must be positive"));
    }

    let model = BufferModel::new(&desc, &workload);
    let mbrs: Vec<Rect> = desc.iter().map(|(_, r)| *r).collect();

    let mut out = format!(
        "tree: {} nodes {:?}; workload {}\n",
        desc.total_nodes(),
        desc.nodes_per_level(),
        args.flag("workload").unwrap_or("point"),
    );
    let _ = writeln!(
        out,
        "{:>10}  {:>34}  {:>10}  {:>10}  {:>8}",
        "buffer", "warm-up N*", "predicted", "measured", "error"
    );
    for &b in &buffers {
        // Measure: the paper's flat LRU simulation over the description,
        // warmed past the model's own N* (bounded for huge predictions).
        let warm_for = match model.warmup(b).queries() {
            Some(n) => ((n as usize).saturating_mul(4)).clamp(queries / 4, 4 * queries),
            None => queries / 4,
        };
        let mut pool = BufferPool::new(b, Box::new(LruPolicy::new()) as Box<dyn ReplacementPolicy>);
        let mut sampler = QuerySampler::new(&workload, seed);
        for _ in 0..warm_for.max(1) {
            let q = sampler.sample();
            for page in flat_trace(&mbrs, &q) {
                pool.access(page);
            }
        }
        pool.reset_stats();
        let mut misses = 0u64;
        for _ in 0..queries {
            let q = sampler.sample();
            for page in flat_trace(&mbrs, &q) {
                if pool.access(page).is_miss() {
                    misses += 1;
                }
            }
        }
        let measured = misses as f64 / queries as f64;
        let predicted = model.expected_disk_accesses(b);
        let error = if measured > 0.0 {
            format!("{:>+7.1}%", (predicted - measured) / measured * 100.0)
        } else {
            "-".to_string()
        };
        let _ = writeln!(
            out,
            "{b:>10}  {:>34}  {predicted:>10.4}  {measured:>10.4}  {error:>8}",
            model.warmup(b).to_string(),
        );
    }

    // What the online controller would do with this workload: its knee
    // plan within the frame budget.
    let controller = Controller::new(
        desc,
        Setting {
            buffer: budget,
            pin_levels: 0,
        },
        ControllerConfig::new(budget),
    );
    let (plan, ed) = controller.plan(&model);
    let _ = writeln!(
        out,
        "controller plan within budget {budget}: {plan} (predicted {ed:.4} disk accesses/query)"
    );
    Ok(out)
}

/// A policy name resolved ahead of construction, so the per-shard factory
/// closures the sharded constructors require can build instances without a
/// fallible (re-)parse inside the closure.
#[derive(Clone, Copy)]
enum PolicyKind {
    Lru,
    Lru2,
    Fifo,
    Clock,
    Random(u64),
}

impl PolicyKind {
    fn build(self) -> Box<dyn ReplacementPolicy> {
        match self {
            PolicyKind::Lru => Box::new(LruPolicy::new()),
            PolicyKind::Lru2 => Box::new(LruKPolicy::lru2()),
            PolicyKind::Fifo => Box::new(FifoPolicy::new()),
            PolicyKind::Clock => Box::new(ClockPolicy::new()),
            PolicyKind::Random(seed) => Box::new(RandomPolicy::new(seed)),
        }
    }
}

fn parse_policy(name: &str, seed: u64) -> Result<PolicyKind, CliError> {
    Ok(match name.to_uppercase().as_str() {
        "LRU" => PolicyKind::Lru,
        "LRU2" | "LRU-2" => PolicyKind::Lru2,
        "FIFO" => PolicyKind::Fifo,
        "CLOCK" => PolicyKind::Clock,
        "RANDOM" => PolicyKind::Random(seed),
        other => return Err(err(format!("unknown policy {other:?}"))),
    })
}

fn make_policy(name: &str, seed: u64) -> Result<Box<dyn ReplacementPolicy>, CliError> {
    Ok(parse_policy(name, seed)?.build())
}

fn simulate(args: &Args) -> Result<String, CliError> {
    args.allow_flags(&["workload", "buffer", "queries", "policy", "seed"])?;
    let desc = TreeDescription::from_text(&read_file(&args.positional)?)
        .map_err(|e| err(format!("parsing description: {e}")))?;
    let workload = parse_workload(args.flag("workload").unwrap_or("point"))?;
    let buffer: usize = args.flag_or("buffer", 100usize)?;
    let queries: usize = args.flag_or("queries", 100_000usize)?;
    let seed: u64 = args.flag_or("seed", 0xC11u64)?;
    let policy = make_policy(args.flag("policy").unwrap_or("LRU"), seed)?;
    if buffer == 0 {
        return Err(err("--buffer must be positive"));
    }

    // The paper's literal simulator: check every node MBR per query.
    let mbrs: Vec<Rect> = desc.iter().map(|(_, r)| *r).collect();
    let mut pool = BufferPool::new(buffer, policy);
    let mut sampler = QuerySampler::new(&workload, seed);

    let warmup = (queries / 4).max(1);
    for _ in 0..warmup {
        let q = sampler.sample();
        for page in flat_trace(&mbrs, &q) {
            pool.access(page);
        }
    }
    pool.reset_stats();

    let mut misses = 0u64;
    let mut nodes = 0u64;
    for _ in 0..queries {
        let q = sampler.sample();
        for page in flat_trace(&mbrs, &q) {
            nodes += 1;
            if pool.access(page).is_miss() {
                misses += 1;
            }
        }
    }

    let model = BufferModel::new(&desc, &workload).expected_disk_accesses(buffer);
    Ok(format!(
        "simulated {queries} queries ({} policy, buffer {buffer}):\n\
         nodes accessed/query: {:.4}\n\
         disk accesses/query:  {:.4}   (LRU model predicts {model:.4})\n\
         hit ratio:            {:.4}\n",
        pool.policy_name(),
        nodes as f64 / queries as f64,
        misses as f64 / queries as f64,
        pool.stats().hit_ratio(),
    ))
}

fn batch(args: &Args) -> Result<String, CliError> {
    use rtree_bench::Table;
    use rtree_exec::{BatchConfig, BatchExecutor};
    use rtree_pager::{DiskRTree, MemStore};

    args.allow_flags(&[
        "loader", "cap", "buffer", "queries", "workload", "policy", "seed", "window", "sizes",
        "json",
    ])?;
    let rects = from_csv(&read_file(&args.positional)?).map_err(CliError)?;
    if rects.is_empty() {
        return Err(err("data set is empty"));
    }
    let cap: usize = args.flag_or("cap", 50usize)?;
    if !(4..=rtree_pager::MAX_ENTRIES_PER_PAGE).contains(&cap) {
        return Err(err(format!(
            "--cap must be in 4..={}",
            rtree_pager::MAX_ENTRIES_PER_PAGE
        )));
    }
    let buffer: usize = args.flag_or("buffer", 100usize)?;
    if buffer == 0 {
        return Err(err("--buffer must be positive"));
    }
    let queries: usize = args.flag_or("queries", 1_024usize)?;
    if queries == 0 {
        return Err(err("--queries must be positive"));
    }
    let seed: u64 = args.flag_or("seed", 0xBA7Cu64)?;
    let window: usize = args.flag_or("window", 8usize)?;
    let sizes = args.flag_list("sizes", &[1, 4, 16, 64, 256, 1024])?;
    if sizes.iter().any(|&s| s == 0) {
        return Err(err("--sizes entries must be positive"));
    }
    let workload = parse_workload(args.flag("workload").unwrap_or("region:0.05:0.05"))?;
    let policy_name = args.flag("policy").unwrap_or("LRU");
    let policy = parse_policy(policy_name, seed)?; // fail before the build
    let tree = build_tree(&rects, args.flag("loader").unwrap_or("HS"), cap)?;

    // One fixed query stream: every batch size answers the identical
    // queries against an equally cold tree, so the curve isolates batching.
    let mut sampler = QuerySampler::new(&workload, seed);
    let stream: Vec<Rect> = (0..queries).map(|_| sampler.sample()).collect();

    let mut table = Table::new(
        format!(
            "batched execution: {queries} queries, {} policy, buffer {buffer}, window {window}",
            policy_name.to_uppercase(),
        ),
        &[
            "batch",
            "reads/query",
            "hit ratio",
            "dedup saved",
            "prefetched",
        ],
    );
    for &size in &sizes {
        let mut disk = DiskRTree::create(MemStore::new(), &tree, buffer, policy.build())
            .map_err(|e| err(format!("creating tree: {e}")))?;
        let exec = BatchExecutor::with_config(BatchConfig {
            prefetch_window: window,
        });
        let (mut work, mut requests, mut prefetched) = (0u64, 0u64, 0u64);
        for chunk in stream.chunks(size) {
            let out = exec
                .execute(&mut disk, chunk)
                .map_err(|e| err(format!("batch: {e}")))?;
            work += out.stats.work_items;
            requests += out.stats.page_requests;
            prefetched += out.stats.prefetched;
        }
        table.row(vec![
            size.to_string(),
            format!("{:.4}", disk.physical_reads() as f64 / queries as f64),
            format!("{:.4}", disk.buffer_stats().hit_ratio()),
            format!("{:.4}", 1.0 - work as f64 / requests.max(1) as f64),
            prefetched.to_string(),
        ]);
    }
    if args.flag_bool("json") {
        return Ok(table.to_json());
    }
    Ok(table.render())
}

fn concurrent(args: &Args) -> Result<String, CliError> {
    use rtree_pager::{ConcurrentDiskRTree, MemStore};
    use std::sync::Arc;

    args.allow_flags(&[
        "loader", "cap", "buffer", "threads", "shards", "pin", "queries", "workload", "policy",
        "seed",
    ])?;
    let rects = from_csv(&read_file(&args.positional)?).map_err(CliError)?;
    if rects.is_empty() {
        return Err(err("data set is empty"));
    }
    let cap: usize = args.flag_or("cap", 50usize)?;
    if !(4..=rtree_pager::MAX_ENTRIES_PER_PAGE).contains(&cap) {
        return Err(err(format!(
            "--cap must be in 4..={}",
            rtree_pager::MAX_ENTRIES_PER_PAGE
        )));
    }
    let buffer: usize = args.flag_or("buffer", 100usize)?;
    if buffer == 0 {
        return Err(err("--buffer must be positive"));
    }
    let threads: usize = args.flag_or("threads", 4usize)?;
    if threads == 0 {
        return Err(err("--threads must be positive"));
    }
    let shards: usize = args.flag_or("shards", 0usize)?; // 0 = one per hardware thread
    let pin: usize = args.flag_or("pin", 0usize)?;
    let queries: usize = args.flag_or("queries", 100_000usize)?;
    let seed: u64 = args.flag_or("seed", 0xC0Cu64)?;
    let workload = parse_workload(args.flag("workload").unwrap_or("region:0.05:0.05"))?;
    let policy_name = args.flag("policy").unwrap_or("LRU");
    let policy = parse_policy(policy_name, seed)?; // fail before the build
    let tree = build_tree(&rects, args.flag("loader").unwrap_or("HS"), cap)?;

    let disk = Arc::new(
        ConcurrentDiskRTree::create_sharded(MemStore::new(), &tree, buffer, shards, move || {
            policy.build()
        })
        .map_err(|e| err(format!("creating tree: {e}")))?,
    );
    if pin > 0 {
        disk.pin_top_levels(pin)
            .map_err(|e| err(format!("pinning: {e}")))?;
    }

    // Warm up single-threaded, then measure the threaded steady state.
    let mut warm = QuerySampler::new(&workload, seed ^ 0xAAAA);
    for _ in 0..(queries / 4).max(1) {
        disk.query(&warm.sample())
            .map_err(|e| err(format!("query: {e}")))?;
    }
    disk.reset_counters();

    let per_thread = queries.div_ceil(threads);
    let started = std::time::Instant::now();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let disk = Arc::clone(&disk);
                let workload = workload.clone();
                scope.spawn(move || -> Result<u64, String> {
                    let mut sampler = QuerySampler::new(&workload, seed + 1 + t as u64);
                    let mut found = 0u64;
                    for _ in 0..per_thread {
                        found += disk
                            .query(&sampler.sample())
                            .map_err(|e| format!("query: {e}"))?
                            .len() as u64;
                    }
                    Ok(found)
                })
            })
            .collect();
        let mut found = 0u64;
        for h in handles {
            found += h
                .join()
                .map_err(|_| err("worker thread panicked"))?
                .map_err(CliError)?;
        }
        Ok::<u64, CliError>(found)
    })?;
    let elapsed = started.elapsed().as_secs_f64();

    let total = (threads * per_thread) as f64;
    let stats = disk.buffer_stats();
    Ok(format!(
        "concurrent run: {} queries on {threads} threads ({} policy, buffer {buffer}, {} shards):\n\
         throughput:           {:.0} queries/s\n\
         disk reads/query:     {:.4}\n\
         hit ratio:            {:.4}\n\
         root peek reads:      {}\n",
        threads * per_thread,
        policy_name.to_uppercase(),
        disk.shard_count(),
        total / elapsed,
        disk.physical_reads() as f64 / total,
        stats.hit_ratio(),
        disk.peek_reads(),
    ))
}

fn trace(args: &Args) -> Result<String, CliError> {
    use rtree_bench::Table;
    use rtree_obs::{PerLevelSink, PromText, TraceSink};
    use rtree_pager::{ConcurrentDiskRTree, MemStore};
    use std::sync::Arc;

    args.allow_flags(&[
        "loader", "cap", "buffer", "threads", "shards", "pin", "queries", "workload", "policy",
        "seed", "json", "prom",
    ])?;
    if args.flag_bool("json") && args.flag_bool("prom") {
        return Err(err("--json and --prom are mutually exclusive"));
    }
    let rects = from_csv(&read_file(&args.positional)?).map_err(CliError)?;
    if rects.is_empty() {
        return Err(err("data set is empty"));
    }
    let cap: usize = args.flag_or("cap", 50usize)?;
    if !(4..=rtree_pager::MAX_ENTRIES_PER_PAGE).contains(&cap) {
        return Err(err(format!(
            "--cap must be in 4..={}",
            rtree_pager::MAX_ENTRIES_PER_PAGE
        )));
    }
    let buffer: usize = args.flag_or("buffer", 100usize)?;
    if buffer == 0 {
        return Err(err("--buffer must be positive"));
    }
    let threads: usize = args.flag_or("threads", 1usize)?;
    if threads == 0 {
        return Err(err("--threads must be positive"));
    }
    // One shard by default: the paper's sequential accounting, so the trace
    // reconciles against a single pool's counters.
    let shards: usize = args.flag_or("shards", 1usize)?;
    let pin: usize = args.flag_or("pin", 0usize)?;
    let queries: usize = args.flag_or("queries", 10_000usize)?;
    let seed: u64 = args.flag_or("seed", 0x7ACEu64)?;
    let workload = parse_workload(args.flag("workload").unwrap_or("region:0.05:0.05"))?;
    let policy_name = args.flag("policy").unwrap_or("LRU");
    let policy = parse_policy(policy_name, seed)?; // fail before the build
    let tree = build_tree(&rects, args.flag("loader").unwrap_or("HS"), cap)?;

    let mut disk =
        ConcurrentDiskRTree::create_sharded(MemStore::new(), &tree, buffer, shards, move || {
            policy.build()
        })
        .map_err(|e| err(format!("creating tree: {e}")))?;
    // The sink must be installed before the tree is shared across threads.
    let sink = Arc::new(PerLevelSink::new());
    disk.set_trace_sink(Some(Arc::clone(&sink) as Arc<dyn TraceSink>));
    let disk = Arc::new(disk);
    if pin > 0 {
        disk.pin_top_levels(pin)
            .map_err(|e| err(format!("pinning: {e}")))?;
    }

    let per_thread = queries.div_ceil(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let disk = Arc::clone(&disk);
                let workload = workload.clone();
                scope.spawn(move || -> Result<(), String> {
                    let mut sampler = QuerySampler::new(&workload, seed + 1 + t as u64);
                    for _ in 0..per_thread {
                        disk.query(&sampler.sample())
                            .map_err(|e| format!("query: {e}"))?;
                    }
                    Ok(())
                })
            })
            .collect();
        for h in handles {
            h.join()
                .map_err(|_| err("worker thread panicked"))?
                .map_err(CliError)?;
        }
        Ok::<(), CliError>(())
    })?;

    let height = disk.meta().height as i16;
    let stats = disk.io_stats();
    let pool = disk.buffer_stats();
    let counts = sink.counts();
    let metrics = disk.query_metrics();
    // All worker threads have been joined, so the relaxed counters are
    // final: the event stream must reconcile exactly with the I/O and pool
    // statistics.
    let reconciled = counts.misses == stats.reads
        && counts.peek_reads == stats.peek_reads
        && counts.write_backs == stats.writes
        && counts.accesses() == pool.accesses;

    // Report levels in the paper's orientation: root = level 0.
    let mut levels = sink.level_counts();
    levels.reverse();
    let paper_level = |onpage: i16| {
        if onpage < 0 {
            "-".to_string()
        } else {
            (height - 1 - onpage).to_string()
        }
    };

    if args.flag_bool("prom") {
        let mut prom = PromText::new();
        prom.counter(
            "rtree_trace_events_total",
            "Trace events by kind",
            &[("kind", "hit")],
            counts.hits,
        );
        prom.counter(
            "rtree_trace_events_total",
            "Trace events by kind",
            &[("kind", "miss")],
            counts.misses,
        );
        prom.counter(
            "rtree_trace_events_total",
            "Trace events by kind",
            &[("kind", "peek_read")],
            counts.peek_reads,
        );
        for lc in &levels {
            let l = paper_level(lc.level);
            prom.counter(
                "rtree_trace_level_hits_total",
                "Pool hits per tree level (root = 0)",
                &[("level", &l)],
                lc.hits,
            );
            prom.counter(
                "rtree_trace_level_misses_total",
                "Physical reads per tree level (root = 0)",
                &[("level", &l)],
                lc.misses,
            );
        }
        prom.histogram(
            "rtree_query_latency_ns",
            "Wall-clock query latency (ns)",
            &[],
            &metrics.latency_ns,
        );
        prom.histogram(
            "rtree_query_reads",
            "Physical reads per query",
            &[],
            &metrics.reads_per_query,
        );
        prom.histogram(
            "rtree_query_pins",
            "Pages accessed per query",
            &[],
            &metrics.pins_per_query,
        );
        return Ok(prom.into_string());
    }

    let mut table = Table::new(
        format!(
            "per-level buffer trace: {queries} queries, {} policy, buffer {buffer}, {} shards",
            policy_name.to_uppercase(),
            disk.shard_count(),
        ),
        &["level", "accesses", "hits", "misses", "hit ratio"],
    );
    for lc in &levels {
        table.row(vec![
            paper_level(lc.level),
            (lc.hits + lc.misses).to_string(),
            lc.hits.to_string(),
            lc.misses.to_string(),
            format!("{:.4}", lc.hit_ratio()),
        ]);
    }
    if args.flag_bool("json") {
        return Ok(table.to_json());
    }

    let lat = &metrics.latency_ns;
    let mut out = table.render();
    let _ = writeln!(
        out,
        "totals: {} accesses, {} hits, {} misses, {} root peek reads",
        counts.accesses(),
        counts.hits,
        counts.misses,
        counts.peek_reads,
    );
    let _ = writeln!(
        out,
        "latency/query: p50 {:.1} us, p99 {:.1} us (upper bucket bounds, {} samples)",
        lat.quantile(0.50) as f64 / 1_000.0,
        lat.quantile(0.99) as f64 / 1_000.0,
        lat.count(),
    );
    let _ = writeln!(
        out,
        "reconciled with IoStats/BufferStats: {}",
        if reconciled { "yes" } else { "NO" },
    );
    Ok(out)
}

fn update(args: &Args) -> Result<String, CliError> {
    use rtree_pager::{DiskRTree, MemStore};
    use rtree_wal::{LogBackend, MemLog, Wal};

    args.allow_flags(&["cap", "buffer", "policy", "deletes", "checkpoint", "seed"])?;
    let rects = from_csv(&read_file(&args.positional)?).map_err(CliError)?;
    if rects.is_empty() {
        return Err(err("data set is empty"));
    }
    let cap: usize = args.flag_or("cap", 50usize)?;
    if !(4..=rtree_pager::MAX_ENTRIES_PER_PAGE).contains(&cap) {
        return Err(err(format!(
            "--cap must be in 4..={}",
            rtree_pager::MAX_ENTRIES_PER_PAGE
        )));
    }
    let buffer: usize = args.flag_or("buffer", 100usize)?;
    if buffer == 0 {
        return Err(err("--buffer must be positive"));
    }
    let deletes: f64 = args.flag_or("deletes", 0.25f64)?;
    if !(0.0..=1.0).contains(&deletes) {
        return Err(err("--deletes must be a fraction in [0, 1]"));
    }
    let checkpoint: usize = args.flag_or("checkpoint", 1000usize)?;
    let seed: u64 = args.flag_or("seed", 0xD15Cu64)?;
    let policy = make_policy(args.flag("policy").unwrap_or("LRU"), seed)?;
    let min = (cap * 2 / 5).max(2);

    let log = MemLog::new();
    let mut disk = DiskRTree::create_empty(MemStore::new(), cap, min, buffer, policy)
        .map_err(|e| err(format!("creating tree: {e}")))?;
    disk.attach_wal(Wal::open(log.clone()).map_err(|e| err(format!("opening wal: {e}")))?);
    let io = |e: std::io::Error| err(format!("write path: {e}"));

    // Inserts, with periodic checkpoints (flush + log truncation). The log
    // bytes appended between checkpoints are accumulated before each
    // truncation to report total log traffic.
    let mut wal_bytes = 0u64;
    let mut ops = 0usize;
    let mut tick = |disk: &mut DiskRTree<MemStore>, wal_bytes: &mut u64| -> Result<(), CliError> {
        ops += 1;
        if checkpoint > 0 && ops.is_multiple_of(checkpoint) {
            *wal_bytes += log.len();
            disk.checkpoint().map_err(io)?;
        }
        Ok(())
    };
    for (id, r) in rects.iter().enumerate() {
        disk.insert(*r, id as u64).map_err(io)?;
        tick(&mut disk, &mut wal_bytes)?;
    }
    let insert_stats = disk.io_stats();
    disk.reset_counters();

    // Deletes: a deterministic pseudo-random fraction of the inserted ids.
    let n = rects.len();
    let n_delete = (n as f64 * deletes) as usize;
    let mut deleted = 0usize;
    let mut x = seed | 1;
    for _ in 0..n_delete {
        // xorshift64* is plenty for picking victims.
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        let id = (x.wrapping_mul(0x2545_F491_4F6C_DD1D) % n as u64) as usize;
        if disk.delete(&rects[id], id as u64).map_err(io)? {
            deleted += 1;
        }
        tick(&mut disk, &mut wal_bytes)?;
    }
    let delete_stats = disk.io_stats();
    disk.flush().map_err(io)?;
    wal_bytes += log.len();

    let per = |count: u64, ops: usize| {
        if ops == 0 {
            "-".to_string()
        } else {
            format!("{:.3}", count as f64 / ops as f64)
        }
    };
    Ok(format!(
        "write workload over {n} items (cap {cap}, buffer {buffer}, checkpoint every {checkpoint} ops):\n\
         inserts: {n}   physical writes/op: {}   reads/op: {}\n\
         deletes: {deleted} (of {n_delete} tried)   physical writes/op: {}   reads/op: {}\n\
         final tree: {} items, {} nodes, height {}\n\
         WAL traffic: {:.1} KiB total ({:.2} KiB/op)\n",
        per(insert_stats.writes, n),
        per(insert_stats.reads, n),
        per(delete_stats.writes, n_delete),
        per(delete_stats.reads, n_delete),
        disk.meta().items,
        disk.meta().nodes,
        disk.meta().height,
        wal_bytes as f64 / 1024.0,
        wal_bytes as f64 / 1024.0 / (n + n_delete) as f64,
    ))
}

/// Parses `A..B` (half-open) into the seed list `A..B`.
fn parse_seed_range(spec: &str) -> Result<Vec<u64>, CliError> {
    let (lo, hi) = spec
        .split_once("..")
        .ok_or_else(|| err(format!("--seeds {spec:?}: expected A..B")))?;
    let lo: u64 = lo
        .parse()
        .map_err(|e| err(format!("--seeds start {lo:?}: {e}")))?;
    let hi: u64 = hi
        .parse()
        .map_err(|e| err(format!("--seeds end {hi:?}: {e}")))?;
    if lo >= hi {
        return Err(err(format!("--seeds {spec:?}: empty range")));
    }
    Ok((lo..hi).collect())
}

fn chaos(args: &Args) -> Result<String, CliError> {
    args.allow_flags(&["seed", "seeds", "ops", "plant"])?;
    let ops: usize = args.flag_or("ops", 400usize)?;
    if ops == 0 {
        return Err(err("--ops must be at least 1"));
    }
    let plant = args.flag_bool("plant");
    let seeds: Vec<u64> = match (args.flag("seeds"), args.flag("seed")) {
        (Some(_), Some(_)) => return Err(err("--seed and --seeds are mutually exclusive")),
        (Some(range), None) => parse_seed_range(range)?,
        (None, _) => vec![args.flag_or("seed", 0u64)?],
    };

    let mut out = String::new();
    let mut failed = 0usize;
    for &seed in &seeds {
        let report = if plant {
            rtree_chaos::run_planted(seed, ops)
        } else {
            rtree_chaos::run(seed, ops)
        };
        let _ = writeln!(
            out,
            "seed {seed}: fault {}, {}/{} ops committed, {} items, {} queries checked — {}",
            report.fault,
            report.ops_executed,
            report.ops_requested,
            report.committed_items,
            report.queries_checked,
            if report.passed() { "ok" } else { "FAIL" },
        );
        if !report.passed() {
            failed += 1;
            for f in &report.failures {
                let _ = writeln!(out, "  [{}] {}", f.oracle, f.detail);
            }
            // Shrink to the minimal reproducing prefix and print the exact
            // replay command.
            if let Some(k) = rtree_chaos::shrink(seed, ops, plant) {
                let _ = writeln!(
                    out,
                    "  shrunk to {k} ops — replay: rtrees chaos --seed {seed} --ops {k}{}",
                    if plant { " --plant" } else { "" },
                );
            }
        }
    }
    if failed > 0 {
        Err(CliError(format!(
            "{failed} of {} chaos run(s) failed an oracle\n{out}",
            seeds.len()
        )))
    } else {
        Ok(out)
    }
}

/// Parses `uniform | zipf | zipf:THETA | shifting` into a trace skew.
fn parse_skew(spec: &str) -> Result<rtree_datagen::Skew, CliError> {
    use rtree_datagen::Skew;
    let parts: Vec<&str> = spec.split(':').collect();
    match parts.as_slice() {
        ["uniform"] => Ok(Skew::Uniform),
        ["zipf"] => Ok(Skew::Zipf { theta: 1.0 }),
        ["zipf", theta] => {
            let theta: f64 = theta
                .parse()
                .map_err(|e| err(format!("bad zipf theta {theta:?}: {e}")))?;
            if !(theta > 0.0) {
                return Err(err("zipf theta must be positive"));
            }
            Ok(Skew::Zipf { theta })
        }
        ["shifting"] => Ok(Skew::Shifting),
        _ => Err(err(format!("unknown skew {spec:?}"))),
    }
}

/// `macrobench`: replays one recorded trace against both page formats at an
/// equal frame budget and reports effective OPS per cell. The same tool as
/// the `rtree-bench` binary's full grid, but for a single dataset × policy ×
/// skew cell the user picks — and with `--record`/`--replay` exposing the
/// trace file so a measured workload can be re-run byte-identically later.
fn macrobench(args: &Args) -> Result<String, CliError> {
    use rtree_bench::macrobench::{
        describe_store, model_reads_per_query, replay, Boxed, DEFAULT_MISS_NS,
    };
    use rtree_bench::Table;
    use rtree_datagen::trace::{center_pool, generate as generate_trace, Trace, TraceSpec};
    use rtree_datagen::MixWeights;
    use rtree_pager::DiskRTree;

    args.allow_flags(&[
        "loader", "cap", "frames", "ops", "qx", "qy", "skew", "mix", "policy", "miss-ns", "seed",
        "record", "replay", "json",
    ])?;
    let rects = from_csv(&read_file(&args.positional)?).map_err(CliError)?;
    if rects.is_empty() {
        return Err(err("data set is empty"));
    }
    let cap: usize = args.flag_or("cap", 50usize)?;
    if !(4..=rtree_pager::MAX_ENTRIES_PER_PAGE).contains(&cap) {
        return Err(err(format!(
            "--cap must be in 4..={}",
            rtree_pager::MAX_ENTRIES_PER_PAGE
        )));
    }
    let frames: usize = args.flag_or("frames", 32usize)?;
    if frames == 0 {
        return Err(err("--frames must be positive"));
    }
    let ops: usize = args.flag_or("ops", 10_000usize)?;
    if ops == 0 {
        return Err(err("--ops must be positive"));
    }
    let qx: f64 = args.flag_or("qx", 0.05f64)?;
    let qy: f64 = args.flag_or("qy", 0.05f64)?;
    let seed: u64 = args.flag_or("seed", 0x7AC3u64)?;
    let miss_ns: f64 = args.flag_or("miss-ns", DEFAULT_MISS_NS)?;
    let skew = parse_skew(args.flag("skew").unwrap_or("zipf"))?;
    let mix = match args.flag("mix").unwrap_or("read-mostly") {
        "read-mostly" => MixWeights::read_mostly(),
        "read-only" => MixWeights::read_only(),
        other => {
            return Err(err(format!(
                "unknown mix {other:?} (read-mostly|read-only)"
            )))
        }
    };
    let policy_name = args.flag("policy").unwrap_or("LRU");
    parse_policy(policy_name, seed)?; // fail before the build
    let tree = build_tree(&rects, args.flag("loader").unwrap_or("HS"), cap)?;

    // Load a recorded trace, or generate (and optionally record) one. A
    // replayed trace overrides --ops/--seed: the file is the workload.
    let trace = match args.flag("replay") {
        Some(path) => Trace::load(std::path::Path::new(path))
            .map_err(|e| err(format!("loading trace {path}: {e}")))?,
        None => {
            let spec = TraceSpec {
                ops,
                qx,
                qy,
                skew,
                mix,
                seed,
            };
            let t = generate_trace(&rects, &spec);
            if let Some(path) = args.flag("record") {
                t.save(std::path::Path::new(path))
                    .map_err(|e| err(format!("recording trace {path}: {e}")))?;
            }
            t
        }
    };
    // The analytic model draws query centers from the same pool the trace
    // generator used, so its prediction and the replay describe one workload.
    let workload = Workload::data_driven(qx, qy, center_pool(&rects, skew, seed));

    let mut table = Table::new(
        format!(
            "macrobench: {} ops, {} policy, {frames} frames, miss {miss_ns:.0} ns",
            trace.ops.len(),
            policy_name.to_uppercase(),
        ),
        &[
            "format",
            "hit_rate",
            "reads_per_op",
            "model_rpq",
            "p50_us",
            "p99_us",
            "eff_ops",
        ],
    );
    for format in rtree_bench::macrobench::PageFormat::ALL {
        // Cold replay by design: both formats start from an empty buffer,
        // so the comparison includes each format's own warm-up footprint.
        let disk = format.materialize(&tree, frames, Boxed(make_policy(policy_name, seed)?));
        let meta = disk.meta().clone();
        let mut store = disk.into_store();
        let desc =
            describe_store(&mut store, &meta).map_err(|e| err(format!("walking image: {e}")))?;
        let mut disk = DiskRTree::open(store, frames, Boxed(make_policy(policy_name, seed)?))
            .map_err(|e| err(format!("reopening image: {e}")))?;
        let out = replay(&mut disk, &trace).map_err(|e| err(format!("replay: {e}")))?;
        table.row(vec![
            format.name().into(),
            format!("{:.4}", out.hit_rate),
            format!("{:.4}", out.demand_reads_per_op()),
            format!("{:.4}", model_reads_per_query(&desc, &workload, frames)),
            format!("{:.1}", out.p50_ns as f64 / 1e3),
            format!("{:.1}", out.p99_ns as f64 / 1e3),
            format!("{:.0}", out.effective_ops(miss_ns)),
        ]);
    }
    if args.flag_bool("json") {
        return Ok(table.to_json());
    }
    Ok(table.render())
}

/// Shared flag parsing for `serve`: the batch policy and server knobs.
fn parse_server_config(args: &Args) -> Result<rtree_server::ServerConfig, CliError> {
    use std::time::Duration;
    let batch: usize = args.flag_or("batch", 64usize)?;
    if batch == 0 {
        return Err(err("--batch must be at least 1"));
    }
    let wait_us: u64 = args.flag_or("wait-us", 500u64)?;
    let queue: usize = args.flag_or("queue", 4096usize)?;
    if queue == 0 {
        return Err(err("--queue must be at least 1"));
    }
    let workers: usize = args.flag_or("workers", 2usize)?;
    if workers == 0 {
        return Err(err("--workers must be at least 1"));
    }
    Ok(rtree_server::ServerConfig {
        batch: rtree_server::BatchPolicy {
            max_batch: batch,
            max_wait: Duration::from_micros(wait_us),
            queue_depth: queue,
            workers,
        },
        read_timeout: Duration::from_millis(50),
    })
}

/// Runs a bound server to completion: publishes the address, waits for a
/// `Shutdown` frame (or the `--duration` timer), drains, and reconciles the
/// batcher/ledger/trace counters into the final summary.
fn run_server<E: rtree_server::QueryEngine>(
    handle: rtree_server::ServerHandle<E>,
    duration_s: f64,
    port_file: Option<&str>,
    sink: std::sync::Arc<rtree_obs::CountingSink>,
) -> Result<String, CliError> {
    use std::time::{Duration, Instant};

    // The listener is live as soon as `serve` returns, so writing the port
    // file here lets scripts start a load generator against an ephemeral
    // port without racing the bind.
    if let Some(path) = port_file {
        std::fs::write(path, format!("{}\n", handle.addr()))
            .map_err(|e| err(format!("writing {path}: {e}")))?;
    }
    let start = Instant::now();
    while !handle.stopped() {
        if duration_s > 0.0 && start.elapsed().as_secs_f64() >= duration_s {
            break;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    let stats = handle.shutdown();
    let elapsed = start.elapsed();
    let bstats = handle.batcher().stats();
    let counts = sink.counts();

    // Three independent ledgers must agree once every worker is joined:
    // the batcher drained everything it accepted, the I/O split sums to the
    // physical total, and the trace event stream saw exactly those reads.
    let drained = bstats.completed == bstats.submitted;
    let ledger = stats.physical_reads == stats.demand_reads + stats.prefetch_reads;
    let traced = counts.misses == stats.demand_reads
        && counts.misses + counts.prefetches == stats.physical_reads;

    let per_query = |n: u64| {
        if stats.queries == 0 {
            0.0
        } else {
            n as f64 / stats.queries as f64
        }
    };
    let mut out = format!(
        "served {} for {:.2}s: {} queries in {} batches (max {}, mean {:.2}), rejected {}\n",
        handle.addr(),
        elapsed.as_secs_f64(),
        stats.queries,
        stats.batches,
        stats.max_batch,
        bstats.batch_sizes.mean(),
        stats.rejected,
    );
    let _ = writeln!(
        out,
        "reads/query: demand {:.4} prefetch {:.4} physical {:.4}",
        per_query(stats.demand_reads),
        per_query(stats.prefetch_reads),
        per_query(stats.physical_reads),
    );
    let _ = writeln!(
        out,
        "queue wait us: p50 <= {} p99 <= {}",
        bstats.queue_wait_us.quantile_bounds(0.50).1,
        bstats.queue_wait_us.quantile_bounds(0.99).1,
    );
    // Which rect kernel answered the queries (RTREE_FORCE_SCALAR /
    // RTREE_KERNEL override the CPU-detected default).
    let _ = writeln!(out, "kernel: {}", rtree_geom::simd::active_kernel().name());
    if stats.writes > 0 {
        let _ = writeln!(
            out,
            "writes: {} committed in {} wal batches ({:.4} fsyncs/write)",
            stats.writes,
            stats.commit_batches,
            stats.wal_fsyncs as f64 / stats.writes as f64,
        );
    }
    if drained && ledger && traced {
        let _ = writeln!(out, "reconciled: yes");
        Ok(out)
    } else {
        let _ = writeln!(
            out,
            "reconciled: NO (drained {drained}, ledger {ledger}, traced {traced})"
        );
        Err(CliError(out))
    }
}

/// A serving engine the self-tuning controller can actuate on: applies a
/// [`rtree_tune::Setting`] (unpin → resize → re-pin) to the live tree.
trait Tunable: rtree_server::QueryEngine {
    fn actuate(&self, setting: rtree_tune::Setting) -> std::io::Result<()>;
}

impl Tunable for rtree_server::SequentialEngine<rtree_pager::MemStore> {
    fn actuate(&self, setting: rtree_tune::Setting) -> std::io::Result<()> {
        use rtree_tune::Actuator;
        self.with_tree(|tree| rtree_tune::DiskActuator::new(tree).apply(setting))
    }
}

impl Tunable for rtree_server::ShardedEngine<rtree_pager::MemStore> {
    fn actuate(&self, setting: rtree_tune::Setting) -> std::io::Result<()> {
        use rtree_tune::Actuator;
        rtree_tune::ConcurrentActuator::new(self.tree()).apply(setting)
    }
}

/// Wraps a [`Tunable`] engine with the online controller: every served
/// query feeds the workload window, and when the background timer marks a
/// tick due the controller runs its estimate → refit → actuate loop on
/// the serving path (so actuation is always between batches, never racing
/// one). Actuation errors are swallowed — a failed resize must not fail
/// the client batch; the controller retries at the next tick.
struct AdaptiveEngine<E: Tunable> {
    inner: E,
    controller: std::sync::Arc<rtree_tune::Controller>,
    tick_due: std::sync::Arc<std::sync::atomic::AtomicBool>,
}

impl<E: Tunable> rtree_server::QueryEngine for AdaptiveEngine<E> {
    fn execute(&self, queries: &[Rect]) -> std::io::Result<Vec<Vec<u64>>> {
        use rtree_obs::TuneObserver;
        for q in queries {
            self.controller
                .observe_query(q.lo.x, q.lo.y, q.hi.x, q.hi.y);
        }
        if self
            .tick_due
            .swap(false, std::sync::atomic::Ordering::Relaxed)
        {
            let _ = self.controller.tick_with(|s| self.inner.actuate(s));
        }
        self.inner.execute(queries)
    }

    fn io_stats(&self) -> rtree_pager::IoStats {
        self.inner.io_stats()
    }

    fn execute_writes(&self, ops: &[rtree_server::WriteOp]) -> Vec<std::io::Result<bool>> {
        use rtree_obs::TuneObserver;
        for _ in ops {
            self.controller.observe_write();
        }
        self.inner.execute_writes(ops)
    }

    fn write_stats(&self) -> rtree_server::WriteStats {
        self.inner.write_stats()
    }
}

/// `serve --adaptive`: wraps `inner` in the controller, runs the server
/// with a background thread marking a tuning tick due every
/// `tune_interval_ms`, and appends the controller's decision log to the
/// exit summary (on both the success and the reconciliation-failure path).
#[allow(clippy::too_many_arguments)]
fn serve_adaptive<E: Tunable>(
    inner: E,
    desc: TreeDescription,
    buffer: usize,
    budget: usize,
    tune_interval_ms: u64,
    addr: &str,
    config: rtree_server::ServerConfig,
    duration: f64,
    port_file: Option<&str>,
    sink: std::sync::Arc<rtree_obs::CountingSink>,
) -> Result<String, CliError> {
    use rtree_tune::{Controller, ControllerConfig, Setting};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    let controller = Arc::new(Controller::new(
        desc,
        Setting {
            buffer,
            pin_levels: 0,
        },
        ControllerConfig::new(budget),
    ));
    let tick_due = Arc::new(AtomicBool::new(false));
    let stop = Arc::new(AtomicBool::new(false));
    let ticker = {
        let tick_due = Arc::clone(&tick_due);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let interval = Duration::from_millis(tune_interval_ms);
            let mut next = Instant::now() + interval;
            while !stop.load(Ordering::Relaxed) {
                // Sleep in short slices so shutdown never waits out a
                // long interval.
                std::thread::sleep(Duration::from_millis(25).min(interval));
                if Instant::now() >= next {
                    tick_due.store(true, Ordering::Relaxed);
                    next += interval;
                }
            }
        })
    };
    let engine = AdaptiveEngine {
        inner,
        controller: Arc::clone(&controller),
        tick_due,
    };
    let handle = rtree_server::serve(engine, addr, config)
        .map_err(|e| err(format!("binding {addr}: {e}")))?;
    let result = run_server(handle, duration, port_file, sink);
    stop.store(true, Ordering::Relaxed);
    let _ = ticker.join();

    let mut tail = format!(
        "tuning: {} ticks, {} decisions, final {}\n",
        controller.ticks(),
        controller.decisions().len(),
        controller.current(),
    );
    for d in controller.decisions() {
        let _ = writeln!(tail, "  {d}");
    }
    match result {
        Ok(mut out) => {
            out.push_str(&tail);
            Ok(out)
        }
        Err(CliError(mut out)) => {
            out.push_str(&tail);
            Err(CliError(out))
        }
    }
}

fn serve(args: &Args) -> Result<String, CliError> {
    use rtree_obs::{CountingSink, TraceSink};
    use rtree_pager::{ConcurrentDiskRTree, DiskRTree, MemStore, SharedMemStore};
    use rtree_server::{SequentialEngine, ShardedEngine, WriterEngine};
    use std::sync::Arc;

    args.allow_flags(&[
        "loader",
        "cap",
        "buffer",
        "policy",
        "seed",
        "addr",
        "port-file",
        "duration",
        "engine",
        "shards",
        "batch",
        "wait-us",
        "queue",
        "workers",
        "window",
        "writers",
        "write-threads",
        "adaptive",
        "tune-interval",
        "budget",
    ])?;
    let rects = from_csv(&read_file(&args.positional)?).map_err(CliError)?;
    if rects.is_empty() {
        return Err(err("data set is empty"));
    }
    let cap: usize = args.flag_or("cap", 50usize)?;
    if !(4..=rtree_pager::MAX_ENTRIES_PER_PAGE).contains(&cap) {
        return Err(err(format!(
            "--cap must be in 4..={}",
            rtree_pager::MAX_ENTRIES_PER_PAGE
        )));
    }
    let buffer: usize = args.flag_or("buffer", 100usize)?;
    if buffer == 0 {
        return Err(err("--buffer must be positive"));
    }
    let seed: u64 = args.flag_or("seed", 0x7ACEu64)?;
    let policy = parse_policy(args.flag("policy").unwrap_or("LRU"), seed)?;
    let window: usize = args.flag_or("window", 8usize)?;
    let duration: f64 = args.flag_or("duration", 0.0f64)?;
    let config = parse_server_config(args)?;
    let addr = args.flag("addr").unwrap_or("127.0.0.1:0");
    let port_file = args.flag("port-file");
    let sink = Arc::new(CountingSink::new());
    let adaptive = args.flag_bool("adaptive");
    let tune_interval: u64 = args.flag_or("tune-interval", 250u64)?;
    if tune_interval == 0 {
        return Err(err("--tune-interval must be at least 1 ms"));
    }
    let budget: usize = args.flag_or("budget", buffer)?;
    if budget == 0 {
        return Err(err("--budget must be positive"));
    }

    if args.flag_bool("writers") {
        if adaptive {
            // The writer engine's tree mutates away from the bulk-load
            // layout the analytic model describes, so there is nothing
            // sound to refit against.
            return Err(err("--adaptive is not supported with --writers"));
        }
        // Writer mode: an empty writable tree seeded through the insert
        // path itself (every seed is WAL-logged and group-committed),
        // then served read-write through the latch-crabbing engine.
        let write_threads: usize = args.flag_or("write-threads", 8usize)?;
        if write_threads == 0 {
            return Err(err("--write-threads must be at least 1"));
        }
        let min_fill = (cap / 4).max(1);
        let wal = rtree_wal::GroupWal::open(rtree_wal::MemLog::new())
            .map_err(|e| err(format!("opening wal: {e}")))?;
        // Serving is batch-oriented anyway (the micro-batcher already
        // trades a sub-millisecond wait for locality), so hold commit
        // batches open briefly too: a burst of writers, one fsync.
        wal.set_commit_delay(std::time::Duration::from_micros(150));
        let mut disk = ConcurrentDiskRTree::create_writable(
            SharedMemStore::new(),
            cap,
            min_fill,
            buffer,
            policy.build(),
            wal,
        )
        .map_err(|e| err(format!("creating tree: {e}")))?;
        disk.set_trace_sink(Some(Arc::clone(&sink) as Arc<dyn TraceSink>));
        for (i, r) in rects.iter().enumerate() {
            disk.insert(r, i as u64)
                .map_err(|e| err(format!("seeding item {i}: {e}")))?;
        }
        let workers = config.batch.workers;
        let handle = rtree_server::serve(
            WriterEngine::new(disk, workers, write_threads, true),
            addr,
            config,
        )
        .map_err(|e| err(format!("binding {addr}: {e}")))?;
        return run_server(handle, duration, port_file, sink);
    }

    let tree = build_tree(&rects, args.flag("loader").unwrap_or("HS"), cap)?;

    match args.flag("engine").unwrap_or("seq") {
        "seq" => {
            let mut disk = DiskRTree::create(MemStore::new(), &tree, buffer, policy.build())
                .map_err(|e| err(format!("creating tree: {e}")))?;
            disk.set_trace_sink(Some(Arc::clone(&sink) as Arc<dyn TraceSink>));
            let engine = SequentialEngine::new(disk, window);
            if adaptive {
                let desc = TreeDescription::from_tree(&tree);
                serve_adaptive(
                    engine,
                    desc,
                    buffer,
                    budget,
                    tune_interval,
                    addr,
                    config,
                    duration,
                    port_file,
                    sink,
                )
            } else {
                let handle = rtree_server::serve(engine, addr, config)
                    .map_err(|e| err(format!("binding {addr}: {e}")))?;
                run_server(handle, duration, port_file, sink)
            }
        }
        "sharded" => {
            let shards: usize = args.flag_or("shards", 1usize)?;
            let workers = config.batch.workers;
            let mut disk =
                ConcurrentDiskRTree::create_sharded(MemStore::new(), &tree, buffer, shards, {
                    let policy = policy;
                    move || policy.build()
                })
                .map_err(|e| err(format!("creating tree: {e}")))?;
            disk.set_trace_sink(Some(Arc::clone(&sink) as Arc<dyn TraceSink>));
            let engine = ShardedEngine::new(disk, workers);
            if adaptive {
                let desc = TreeDescription::from_tree(&tree);
                serve_adaptive(
                    engine,
                    desc,
                    buffer,
                    budget,
                    tune_interval,
                    addr,
                    config,
                    duration,
                    port_file,
                    sink,
                )
            } else {
                let handle = rtree_server::serve(engine, addr, config)
                    .map_err(|e| err(format!("binding {addr}: {e}")))?;
                run_server(handle, duration, port_file, sink)
            }
        }
        other => Err(err(format!("unknown engine {other:?} (seq | sharded)"))),
    }
}

fn loadgen(args: &Args) -> Result<String, CliError> {
    use rtree_bench::Table;
    use rtree_server::LoadConfig;

    args.allow_flags(&[
        "connections",
        "qps",
        "queries",
        "workload",
        "zipf",
        "count-fraction",
        "write-fraction",
        "seed",
        "shutdown",
        "quick",
        "json",
    ])?;
    let quick = args.flag_bool("quick");
    let connections: usize = args.flag_or("connections", 8usize)?;
    if connections == 0 {
        return Err(err("--connections must be at least 1"));
    }
    let queries: usize = args.flag_or("queries", if quick { 200 } else { 5_000 })?;
    if queries == 0 {
        return Err(err("--queries must be at least 1"));
    }
    let count_fraction: f64 = args.flag_or("count-fraction", 0.0f64)?;
    if !(0.0..=1.0).contains(&count_fraction) {
        return Err(err("--count-fraction must be in [0, 1]"));
    }
    let write_fraction: f64 = args.flag_or("write-fraction", 0.0f64)?;
    if !(0.0..=1.0).contains(&write_fraction) {
        return Err(err("--write-fraction must be in [0, 1]"));
    }
    let seed: u64 = args.flag_or("seed", 42u64)?;
    let mut workload = parse_workload(args.flag("workload").unwrap_or("region:0.03:0.03"))?;
    let zipf: f64 = args.flag_or("zipf", 0.0f64)?;
    if zipf < 0.0 {
        return Err(err("--zipf must be non-negative"));
    }
    if zipf > 0.0 {
        // Zipf-by-rank as a center multiset: rank k gets copies in
        // proportion to 1/k^theta, so a uniform draw over the reweighted
        // centers reproduces the skew — same trick the analytic model's
        // data-driven workload uses, so the server-side controller can
        // still refit against what this generator sends.
        let Some(centers) = workload.centers().map(<[_]>::to_vec) else {
            return Err(err(
                "--zipf needs a data-driven workload (data:<QX>:<QY>:<DATA.csv>)",
            ));
        };
        let total = (centers.len() * 4).max(1024);
        workload = Workload::data_driven(
            workload.qx(),
            workload.qy(),
            rtree_datagen::zipf_center_multiset(&centers, zipf, total, seed),
        );
    }
    let config = LoadConfig {
        connections,
        queries,
        target_qps: args.flag_or("qps", 0.0f64)?,
        workload,
        count_fraction,
        write_fraction,
        seed,
        shutdown_after: args.flag_bool("shutdown"),
    };
    let addr = args.positional.as_str();
    let report = rtree_server::loadgen::run(addr, &config)
        .map_err(|e| err(format!("load run against {addr}: {e}")))?;

    let mut table = Table::new(
        format!(
            "loadgen {addr}: {} conns, {} loop",
            connections,
            if config.target_qps > 0.0 {
                "open"
            } else {
                "closed"
            }
        ),
        &[
            "sent",
            "ok",
            "writes_ok",
            "overloaded",
            "errors",
            "qps",
            "p50_ms",
            "p99_ms",
            "p999_ms",
            "mean_ms",
            "write_p99_ms",
            "fsyncs_per_write",
            "demand_reads_per_query",
        ],
    );
    table.row(vec![
        report.sent.to_string(),
        report.ok.to_string(),
        report.writes_ok.to_string(),
        report.overloaded.to_string(),
        report.errors.to_string(),
        format!("{:.0}", report.achieved_qps()),
        format!("{:.3}", report.latency_ms(0.50)),
        format!("{:.3}", report.latency_ms(0.99)),
        format!("{:.3}", report.latency_ms(0.999)),
        format!("{:.3}", report.mean_latency_ms()),
        format!("{:.3}", report.write_latency_ms(0.99)),
        format!("{:.4}", report.fsyncs_per_write()),
        format!("{:.4}", report.demand_reads_per_query()),
    ]);
    if args.flag_bool("json") {
        Ok(table.to_json())
    } else {
        Ok(table.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from)).unwrap()
    }

    #[test]
    fn chaos_single_seed_passes_and_is_replayable() {
        let a = run(&args("chaos --seed 3 --ops 80")).unwrap();
        let b = run(&args("chaos --seed 3 --ops 80")).unwrap();
        assert_eq!(a, b, "same seed must print the same report");
        assert!(a.contains("seed 3:"), "got: {a}");
        assert!(a.contains("ok"), "got: {a}");
    }

    #[test]
    fn chaos_seed_range_runs_every_seed() {
        let out = run(&args("chaos --seeds 0..4 --ops 40")).unwrap();
        for seed in 0..4 {
            assert!(out.contains(&format!("seed {seed}:")), "got: {out}");
        }
        assert!(run(&args("chaos --seeds 4..4")).is_err());
        assert!(run(&args("chaos --seeds nope")).is_err());
        assert!(run(&args("chaos --seed 1 --seeds 0..2")).is_err());
        assert!(run(&args("chaos --ops 0")).is_err());
    }

    #[test]
    fn chaos_planted_failure_shrinks_and_prints_replay_line() {
        // Some seed in a small range reaches the planted bug; its failure
        // must carry a shrunk `rtrees chaos` replay line.
        let e = (0..16u64)
            .find_map(|s| run(&args(&format!("chaos --seed {s} --ops 120 --plant"))).err())
            .expect("a planted seed in 0..16 must fail");
        assert!(e.0.contains("differential"), "got: {e}");
        assert!(e.0.contains("replay: rtrees chaos --seed"), "got: {e}");
        assert!(e.0.contains("--plant"), "got: {e}");
    }

    #[test]
    fn update_reports_write_stats() {
        let dir = std::env::temp_dir().join(format!("rtrees-cli-upd-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("data.csv");
        run(&args(&format!(
            "generate region:1500 --seed 9 --out {}",
            data.display()
        )))
        .unwrap();
        let out = run(&args(&format!(
            "update {} --cap 10 --buffer 20 --deletes 0.3 --checkpoint 400",
            data.display()
        )))
        .unwrap();
        assert!(out.contains("inserts: 1500"), "got: {out}");
        assert!(out.contains("physical writes/op"), "got: {out}");
        assert!(out.contains("WAL traffic"), "got: {out}");
        assert!(run(&args(&format!("update {} --buffer 0", data.display()))).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_reports_throughput() {
        let dir = std::env::temp_dir().join(format!("rtrees-cli-conc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("data.csv");
        run(&args(&format!(
            "generate region:2000 --seed 7 --out {}",
            data.display()
        )))
        .unwrap();
        let out = run(&args(&format!(
            "concurrent {} --cap 10 --buffer 40 --threads 4 --shards 4 --pin 1 --queries 2000",
            data.display()
        )))
        .unwrap();
        assert!(out.contains("4 shards"), "got: {out}");
        assert!(out.contains("queries/s"), "got: {out}");
        assert!(out.contains("hit ratio"), "got: {out}");
        // Bad configurations surface as errors, not panics.
        assert!(run(&args(&format!("concurrent {} --threads 0", data.display()))).is_err());
        assert!(run(&args(&format!("concurrent {} --pin 99", data.display()))).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn batch_hit_curve_improves_with_batch_size() {
        let dir = std::env::temp_dir().join(format!("rtrees-cli-batch-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("data.csv");
        run(&args(&format!(
            "generate clustered:4000:16:0.02 --seed 9 --out {}",
            data.display()
        )))
        .unwrap();
        let out = run(&args(&format!(
            "batch {} --cap 10 --buffer 16 --queries 512 --sizes 1,256 \
             --workload region:0.04:0.04 --seed 5",
            data.display()
        )))
        .unwrap();
        assert!(out.contains("batched execution"), "got: {out}");

        // The acceptance criterion: at batch 256 the clustered workload
        // must cost strictly fewer physical reads per query than at
        // batch 1 (dedup + the shared frontier do real work).
        let reads_at = |size: &str| -> f64 {
            out.lines()
                .find_map(|l| {
                    let mut cols = l.split_whitespace();
                    (cols.next() == Some(size)).then(|| cols.next().unwrap().parse().unwrap())
                })
                .unwrap_or_else(|| panic!("no row for batch {size} in: {out}"))
        };
        assert!(
            reads_at("256") < reads_at("1"),
            "batch 256 not cheaper: {out}"
        );

        let json = run(&args(&format!(
            "batch {} --cap 10 --buffer 16 --queries 128 --sizes 1,64 --json",
            data.display()
        )))
        .unwrap();
        assert!(json.contains("\"rows\""), "got: {json}");
        assert!(json.contains("\"reads/query\""), "got: {json}");

        // Bad configurations surface as errors, not panics.
        assert!(run(&args(&format!("batch {} --sizes 0,4", data.display()))).is_err());
        assert!(run(&args(&format!("batch {} --buffer 0", data.display()))).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn trace_reports_per_level_hit_ratios() {
        let dir = std::env::temp_dir().join(format!("rtrees-cli-trace-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("data.csv");
        run(&args(&format!(
            "generate region:2000 --seed 11 --out {}",
            data.display()
        )))
        .unwrap();
        let out = run(&args(&format!(
            "trace {} --cap 10 --buffer 30 --queries 1500",
            data.display()
        )))
        .unwrap();
        assert!(out.contains("per-level buffer trace"), "got: {out}");
        assert!(out.contains("hit ratio"), "got: {out}");
        assert!(
            out.contains("reconciled with IoStats/BufferStats: yes"),
            "got: {out}"
        );
        assert!(out.contains("p50"), "got: {out}");
        // The paper orientation puts the root at level 0.
        assert!(
            out.lines().any(|l| l.trim_start().starts_with("0 ")),
            "got: {out}"
        );

        let json = run(&args(&format!(
            "trace {} --cap 10 --buffer 30 --queries 500 --json",
            data.display()
        )))
        .unwrap();
        assert!(json.contains("\"rows\""), "got: {json}");
        assert!(json.contains("\"hit ratio\""), "got: {json}");

        let prom = run(&args(&format!(
            "trace {} --cap 10 --buffer 30 --queries 500 --prom --threads 2 --shards 2",
            data.display()
        )))
        .unwrap();
        assert!(
            prom.contains("# TYPE rtree_trace_events_total counter"),
            "got: {prom}"
        );
        assert!(prom.contains("rtree_query_latency_ns_count"), "got: {prom}");

        assert!(run(&args(&format!("trace {} --json --prom", data.display()))).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn generate_to_stdout() {
        let out = run(&args("generate region:500 --seed 3")).unwrap();
        assert!(out.starts_with("x0,y0,x1,y1\n"));
        assert_eq!(out.lines().count(), 501);
    }

    #[test]
    fn dataset_specs() {
        assert_eq!(parse_dataset_spec("point:100", 1).unwrap().len(), 100);
        assert_eq!(
            parse_dataset_spec("clustered:200:4:0.05", 1).unwrap().len(),
            200
        );
        assert!(parse_dataset_spec("bogus", 1).is_err());
        assert!(parse_dataset_spec("region:x", 1).is_err());
    }

    #[test]
    fn workload_specs() {
        assert!(parse_workload("point").unwrap().is_point());
        let w = parse_workload("region:0.1:0.2").unwrap();
        assert_eq!((w.qx(), w.qy()), (0.1, 0.2));
        assert!(parse_workload("region:2:0.1").is_err());
        assert!(parse_workload("wat").is_err());
    }

    #[test]
    fn full_pipeline_through_temp_files() {
        let dir = std::env::temp_dir().join(format!("rtrees-cli-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("data.csv");
        let desc = dir.join("tree.desc");

        let msg = run(&args(&format!(
            "generate region:2000 --seed 5 --out {}",
            data.display()
        )))
        .unwrap();
        assert!(msg.contains("2000 rectangles"));

        let msg = run(&args(&format!(
            "build {} --loader STR --cap 25 --out {}",
            data.display(),
            desc.display()
        )))
        .unwrap();
        assert!(msg.contains("tree description"));

        let out = run(&args(&format!(
            "model {} --workload region:0.05:0.05 --buffers 5,20,80",
            desc.display()
        )))
        .unwrap();
        assert!(out.contains("disk accesses/query"));
        assert_eq!(
            out.lines()
                .filter(|l| l.trim_start().starts_with(['5', '2', '8']))
                .count(),
            3
        );

        let out = run(&args(&format!(
            "simulate {} --buffer 20 --queries 4000",
            desc.display()
        )))
        .unwrap();
        assert!(out.contains("hit ratio"));

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn model_with_pinning() {
        let dir = std::env::temp_dir().join(format!("rtrees-cli-pin-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("d.csv");
        let desc = dir.join("t.desc");
        run(&args(&format!(
            "generate point:3000 --out {}",
            data.display()
        )))
        .unwrap();
        run(&args(&format!(
            "build {} --cap 25 --out {}",
            data.display(),
            desc.display()
        )))
        .unwrap();
        let out = run(&args(&format!(
            "model {} --buffers 50 --pin 2",
            desc.display()
        )))
        .unwrap();
        assert!(out.contains("levels pinned"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unknown_subcommand() {
        assert!(run(&args("frobnicate x")).is_err());
    }

    #[test]
    fn sim_policies_parse() {
        for p in ["LRU", "LRU2", "FIFO", "CLOCK", "RANDOM"] {
            assert!(make_policy(p, 1).is_ok());
        }
        assert!(make_policy("MRU", 1).is_err());
    }

    /// Waits for `serve` to publish its ephemeral port, then returns it.
    fn wait_for_port(path: &std::path::Path) -> String {
        for _ in 0..400 {
            if let Ok(s) = std::fs::read_to_string(path) {
                let s = s.trim().to_string();
                if !s.is_empty() {
                    return s;
                }
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        panic!("server never wrote its port file");
    }

    #[test]
    fn serve_and_loadgen_round_trip_over_loopback() {
        let dir = std::env::temp_dir().join(format!("rtrees-cli-serve-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("data.csv");
        let port = dir.join("port");
        run(&args(&format!(
            "generate clustered:3000:12:0.03 --seed 5 --out {}",
            data.display()
        )))
        .unwrap();

        let serve_args = args(&format!(
            "serve {} --cap 10 --buffer 64 --batch 32 --wait-us 400 --duration 30 \
             --port-file {}",
            data.display(),
            port.display()
        ));
        let server = std::thread::spawn(move || run(&serve_args));
        let addr = wait_for_port(&port);

        let out = run(&args(&format!(
            "loadgen {addr} --quick --connections 4 --count-fraction 0.25 --seed 3 \
             --workload region:0.04:0.04 --shutdown --json"
        )))
        .unwrap();
        assert!(out.contains("\"ok\": 200"), "got: {out}");
        assert!(out.contains("\"errors\": 0"), "got: {out}");

        // --shutdown stops the server; its summary must reconcile.
        let summary = server.join().unwrap().unwrap();
        assert!(summary.contains("200 queries"), "got: {summary}");
        assert!(summary.contains("reconciled: yes"), "got: {summary}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_writers_round_trip_with_mixed_load() {
        let dir = std::env::temp_dir().join(format!("rtrees-cli-wrsrv-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("data.csv");
        let port = dir.join("port");
        run(&args(&format!(
            "generate region:800 --seed 4 --out {}",
            data.display()
        )))
        .unwrap();

        let serve_args = args(&format!(
            "serve {} --cap 16 --buffer 64 --writers --write-threads 4 --duration 30 \
             --port-file {}",
            data.display(),
            port.display()
        ));
        let server = std::thread::spawn(move || run(&serve_args));
        let addr = wait_for_port(&port);

        let out = run(&args(&format!(
            "loadgen {addr} --quick --connections 4 --write-fraction 0.25 --seed 6 \
             --workload region:0.04:0.04 --shutdown --json"
        )))
        .unwrap();
        // 4 connections x 50 ops at write fraction 0.25: 12 writes each.
        assert!(out.contains("\"writes_ok\": 48"), "got: {out}");
        assert!(out.contains("\"ok\": 152"), "got: {out}");
        assert!(out.contains("\"errors\": 0"), "got: {out}");

        let summary = server.join().unwrap().unwrap();
        assert!(summary.contains("writes:"), "got: {summary}");
        assert!(summary.contains("reconciled: yes"), "got: {summary}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_sharded_engine_round_trip() {
        let dir = std::env::temp_dir().join(format!("rtrees-cli-shsrv-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("data.csv");
        let port = dir.join("port");
        run(&args(&format!(
            "generate region:1500 --seed 8 --out {}",
            data.display()
        )))
        .unwrap();

        let serve_args = args(&format!(
            "serve {} --cap 10 --buffer 64 --engine sharded --shards 4 --workers 2 \
             --duration 30 --port-file {}",
            data.display(),
            port.display()
        ));
        let server = std::thread::spawn(move || run(&serve_args));
        let addr = wait_for_port(&port);

        let out = run(&args(&format!(
            "loadgen {addr} --queries 80 --connections 2 --seed 4 --shutdown"
        )))
        .unwrap();
        assert!(out.contains("loadgen"), "got: {out}");
        let summary = server.join().unwrap().unwrap();
        assert!(summary.contains("reconciled: yes"), "got: {summary}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tune_prints_predicted_vs_measured_and_plan() {
        let dir = std::env::temp_dir().join(format!("rtrees-cli-tune-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("d.csv");
        let desc = dir.join("t.desc");
        run(&args(&format!(
            "generate region:2000 --seed 5 --out {}",
            data.display()
        )))
        .unwrap();
        run(&args(&format!(
            "build {} --cap 25 --out {}",
            data.display(),
            desc.display()
        )))
        .unwrap();
        let out = run(&args(&format!(
            "tune {} --workload region:0.05:0.05 --buffers 10,80 --queries 3000 --seed 2",
            desc.display()
        )))
        .unwrap();
        assert!(out.contains("warm-up N*"), "got: {out}");
        assert!(out.contains("measured"), "got: {out}");
        // The warm-up column is typed: a huge buffer prints the explicit
        // "never fills" note instead of dropping the row.
        let rows: Vec<&str> = out
            .lines()
            .filter(|l| {
                let first = l.split_whitespace().next().unwrap_or("");
                first == "10" || first == "80"
            })
            .collect();
        assert_eq!(rows.len(), 2, "got: {out}");
        assert!(
            out.contains("controller plan within budget 80"),
            "got: {out}"
        );
        let big = run(&args(&format!(
            "tune {} --buffers 100000 --queries 500",
            desc.display()
        )))
        .unwrap();
        assert!(big.contains("never fills"), "got: {big}");
        assert!(run(&args(&format!("tune {} --queries 0", desc.display()))).is_err());
        assert!(run(&args(&format!("tune {} --buffers 0,5", desc.display()))).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_adaptive_round_trip_with_zipf_load() {
        let dir = std::env::temp_dir().join(format!("rtrees-cli-adsrv-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("data.csv");
        let port = dir.join("port");
        run(&args(&format!(
            "generate clustered:2500:10:0.03 --seed 5 --out {}",
            data.display()
        )))
        .unwrap();

        let serve_args = args(&format!(
            "serve {} --cap 10 --buffer 64 --adaptive --tune-interval 20 --budget 64 \
             --duration 30 --port-file {}",
            data.display(),
            port.display()
        ));
        let server = std::thread::spawn(move || run(&serve_args));
        let addr = wait_for_port(&port);

        // Rate-limit the load so the run spans several controller ticks,
        // and skew it so the estimator sees a non-uniform stream.
        let out = run(&args(&format!(
            "loadgen {addr} --queries 240 --qps 800 --connections 4 --seed 3 \
             --workload data:0.04:0.04:{} --zipf 0.9 --shutdown --json",
            data.display()
        )))
        .unwrap();
        assert!(out.contains("\"ok\": 240"), "got: {out}");
        assert!(out.contains("\"errors\": 0"), "got: {out}");

        // The summary must reconcile even across live resizes/re-pins,
        // and it must carry the tuning report.
        let summary = server.join().unwrap().unwrap();
        assert!(summary.contains("reconciled: yes"), "got: {summary}");
        assert!(summary.contains("tuning:"), "got: {summary}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn loadgen_zipf_needs_data_driven_workload() {
        // Rejected while building the config, before any connection.
        let e = run(&args(
            "loadgen 127.0.0.1:1 --zipf 0.8 --workload region:0.04:0.04",
        ))
        .unwrap_err();
        assert!(e.0.contains("data-driven"), "got: {e}");
        assert!(run(&args("loadgen 127.0.0.1:1 --zipf -0.5")).is_err());
    }

    #[test]
    fn serve_rejects_bad_flags() {
        let dir = std::env::temp_dir().join(format!("rtrees-cli-srvbad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("data.csv");
        run(&args(&format!(
            "generate point:200 --out {}",
            data.display()
        )))
        .unwrap();
        for bad in [
            format!("serve {} --batch 0", data.display()),
            format!("serve {} --queue 0", data.display()),
            format!("serve {} --workers 0", data.display()),
            format!("serve {} --engine warp", data.display()),
            format!("serve {} --buffer 0", data.display()),
            format!("serve {} --adaptive --writers", data.display()),
            format!("serve {} --adaptive --tune-interval 0", data.display()),
            format!("serve {} --adaptive --budget 0", data.display()),
        ] {
            assert!(run(&args(&bad)).is_err(), "accepted: {bad}");
        }
        assert!(run(&args("loadgen 127.0.0.1:1 --connections 0")).is_err());
        assert!(run(&args("loadgen 127.0.0.1:1 --count-fraction 1.5")).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
