//! End-to-end test of the `rtrees` binary: spawn the real executable and
//! drive the full generate → build → model → simulate pipeline through a
//! temp directory.

use std::path::PathBuf;
use std::process::Command;

fn rtrees() -> Command {
    // Integration tests live next to the binary under target/<profile>/.
    let mut path = PathBuf::from(env!("CARGO_BIN_EXE_rtrees"));
    if !path.exists() {
        path = PathBuf::from("target/debug/rtrees");
    }
    Command::new(path)
}

#[test]
fn pipeline_through_the_real_binary() {
    let dir = std::env::temp_dir().join(format!("rtrees-bin-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let data = dir.join("data.csv");
    let desc = dir.join("tree.desc");

    let out = rtrees()
        .args(["generate", "region:1500", "--seed", "4", "--out"])
        .arg(&data)
        .output()
        .expect("spawn rtrees generate");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = rtrees()
        .args(["build"])
        .arg(&data)
        .args(["--loader", "STR", "--cap", "20", "--out"])
        .arg(&desc)
        .output()
        .expect("spawn rtrees build");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = rtrees()
        .args(["model"])
        .arg(&desc)
        .args(["--workload", "region:0.05:0.05", "--buffers", "10,40"])
        .output()
        .expect("spawn rtrees model");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("disk accesses/query"),
        "unexpected output: {text}"
    );

    let out = rtrees()
        .args(["simulate"])
        .arg(&desc)
        .args(["--buffer", "20", "--queries", "3000", "--policy", "CLOCK"])
        .output()
        .expect("spawn rtrees simulate");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("CLOCK policy"), "unexpected output: {text}");

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn trace_through_the_real_binary() {
    let dir = std::env::temp_dir().join(format!("rtrees-bin-trace-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let data = dir.join("data.csv");

    let out = rtrees()
        .args(["generate", "region:1200", "--seed", "13", "--out"])
        .arg(&data)
        .output()
        .expect("spawn rtrees generate");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = rtrees()
        .args(["trace"])
        .arg(&data)
        .args(["--cap", "10", "--buffer", "25", "--queries", "1000"])
        .output()
        .expect("spawn rtrees trace");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("per-level buffer trace"), "got: {text}");
    assert!(
        text.contains("reconciled with IoStats/BufferStats: yes"),
        "got: {text}"
    );

    let out = rtrees()
        .args(["trace"])
        .arg(&data)
        .args([
            "--cap",
            "10",
            "--buffer",
            "25",
            "--queries",
            "400",
            "--json",
        ])
        .output()
        .expect("spawn rtrees trace --json");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("\"rows\""), "got: {text}");

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn macrobench_through_the_real_binary() {
    let dir = std::env::temp_dir().join(format!("rtrees-bin-macro-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let data = dir.join("data.csv");
    let trace = dir.join("workload.rtrc");

    let out = rtrees()
        .args(["generate", "region:2000", "--seed", "31", "--out"])
        .arg(&data)
        .output()
        .expect("spawn rtrees generate");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Record a small Zipf trace and report both formats as JSON.
    let out = rtrees()
        .args(["macrobench"])
        .arg(&data)
        .args([
            "--cap", "16", "--frames", "12", "--ops", "800", "--json", "--record",
        ])
        .arg(&trace)
        .output()
        .expect("spawn rtrees macrobench");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("\"rows\""), "got: {text}");
    assert!(
        text.contains("\"v3\"") && text.contains("\"v4\""),
        "got: {text}"
    );

    // Replaying the recorded file re-runs the identical workload.
    let out = rtrees()
        .args(["macrobench"])
        .arg(&data)
        .args(["--cap", "16", "--frames", "12", "--replay"])
        .arg(&trace)
        .output()
        .expect("spawn rtrees macrobench --replay");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("800 ops"), "got: {text}");

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn help_and_errors() {
    let out = rtrees().arg("--help").output().expect("spawn");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));

    let out = rtrees().args(["frobnicate", "x"]).output().expect("spawn");
    assert!(!out.status.success());

    let out = rtrees()
        .args(["model", "/definitely/not/a/file"])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("error"));
}
