//! Property-based tests for the analytic models: structural invariants
//! that must hold for *any* tree description and workload.

use proptest::prelude::*;
use rtree_core::{BufferModel, MixedWorkload, NodeAccessModel, TreeDescription, Workload};
use rtree_geom::{Point, Rect};

/// A random but well-formed tree description: a root covering everything,
/// plus 1–3 lower levels of rectangles inside the unit square.
fn arb_desc() -> impl Strategy<Value = TreeDescription> {
    let rect = ((0.0f64..=0.9, 0.0f64..=0.9), (0.01f64..=0.4, 0.01f64..=0.4))
        .prop_map(|((x, y), (w, h))| Rect::new(x, y, (x + w).min(1.0), (y + h).min(1.0)));
    prop::collection::vec(prop::collection::vec(rect, 1..24), 1..4).prop_map(|mut levels| {
        // Make it a plausible hierarchy: root = MBR of everything.
        let all: Vec<Rect> = levels.iter().flatten().copied().collect();
        let root = Rect::mbr_of(&all);
        let mut v = vec![vec![root]];
        v.append(&mut levels);
        TreeDescription::from_levels(v)
    })
}

fn arb_workload() -> impl Strategy<Value = Workload> {
    prop_oneof![
        Just(Workload::uniform_point()),
        (0.0f64..0.9, 0.0f64..0.9).prop_map(|(qx, qy)| Workload::uniform_region(qx, qy)),
        (
            prop::collection::vec((0.0f64..=1.0, 0.0f64..=1.0), 1..40),
            0.0f64..0.5
        )
            .prop_map(|(pts, q)| {
                let centers: Vec<Point> = pts.into_iter().map(|(x, y)| Point::new(x, y)).collect();
                Workload::data_driven(q, q, centers)
            }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn probabilities_are_valid(desc in arb_desc(), w in arb_workload()) {
        for level in w.access_probabilities(&desc) {
            for p in level {
                prop_assert!((0.0..=1.0 + 1e-9).contains(&p), "p = {p}");
            }
        }
    }

    #[test]
    fn distinct_nodes_monotone_and_bounded(desc in arb_desc(), w in arb_workload()) {
        let m = BufferModel::new(&desc, &w);
        let mut last = 0.0;
        for n in [1u64, 2, 5, 20, 100, 10_000] {
            let d = m.distinct_nodes(n);
            prop_assert!(d + 1e-9 >= last, "D not monotone at N={n}");
            prop_assert!(d <= desc.total_nodes() as f64 + 1e-9);
            last = d;
        }
        // D(1) is the expected nodes per query.
        prop_assert!((m.distinct_nodes(1) - m.expected_node_accesses()).abs() < 1e-9);
    }

    #[test]
    fn disk_accesses_monotone_in_buffer(desc in arb_desc(), w in arb_workload()) {
        let m = BufferModel::new(&desc, &w);
        let total = desc.total_nodes();
        let mut last = f64::INFINITY;
        for b in [1usize, 2, 4, 8, 16, 32, total.max(1)] {
            let ed = m.expected_disk_accesses(b);
            prop_assert!(ed <= last + 1e-9, "ED not monotone at B={b}");
            prop_assert!(ed >= -1e-12);
            last = ed;
        }
        prop_assert_eq!(m.expected_disk_accesses(total + 1), 0.0);
    }

    #[test]
    fn disk_accesses_never_exceed_node_accesses(desc in arb_desc(), w in arb_workload(), b in 1usize..64) {
        let m = BufferModel::new(&desc, &w);
        prop_assert!(m.expected_disk_accesses(b) <= m.expected_node_accesses() + 1e-9);
    }

    #[test]
    fn pinned_results_are_bounded_and_whole_tree_is_free(
        desc in arb_desc(), w in arb_workload(), b in 2usize..128,
    ) {
        // NOTE: "pinning never hurts" is NOT asserted for arbitrary
        // descriptions — the model correctly predicts a penalty when the
        // pinned levels are colder than what they displace. The paper's
        // claim is about real R-trees (hot roots); `tests/paper_claims.rs`
        // checks it on loader-built trees.
        let m = BufferModel::new(&desc, &w);
        for p in 1..=m.max_pinnable_levels(b) {
            if let Ok(pinned) = m.expected_disk_accesses_pinned(b, p) {
                prop_assert!(pinned >= -1e-12);
                prop_assert!(pinned <= m.expected_node_accesses() + 1e-9);
            }
        }
        let all = desc.height();
        if m.pinned_pages(all) < b {
            prop_assert_eq!(m.expected_disk_accesses_pinned(b, all).unwrap(), 0.0);
        }
    }

    #[test]
    fn kf_closed_form_matches_sum_for_interior_trees(desc in arb_desc()) {
        // For point queries with all-interior MBRs the clamped sum equals
        // the closed-form A.
        let model = NodeAccessModel::new(&desc);
        let diff = (model.kamel_faloutsos(0.0, 0.0)
            - model.expected_node_accesses(&Workload::uniform_point()))
        .abs();
        prop_assert!(diff < 1e-9);
    }

    #[test]
    fn region_probability_matches_rect_algebra(desc in arb_desc(), q in (0.0f64..0.9, 0.0f64..0.9)) {
        // The closed-form C*D probability must equal the geometric
        // definition: area(extend_tr(R) ∩ U') / area(U').
        let (qx, qy) = q;
        let w = Workload::uniform_region(qx, qy);
        let u_prime = Rect::new(qx, qy, 1.0, 1.0);
        for (_, r) in desc.iter() {
            let expect = r
                .extend_tr(qx, qy)
                .intersection(&u_prime)
                .map_or(0.0, |i| i.area())
                / u_prime.area();
            prop_assert!((w.access_probability(r) - expect).abs() < 1e-9);
        }
    }

    #[test]
    fn mixture_probability_is_convex_combination(
        desc in arb_desc(),
        wa in arb_workload(),
        wb in arb_workload(),
        weight in 0.01f64..0.99,
    ) {
        let mix = MixedWorkload::new(vec![(weight, wa.clone()), (1.0 - weight, wb.clone())]);
        let ma = BufferModel::new(&desc, &wa).expected_node_accesses();
        let mb = BufferModel::new(&desc, &wb).expected_node_accesses();
        let mm = BufferModel::new_mixed(&desc, &mix).expected_node_accesses();
        prop_assert!((mm - (weight * ma + (1.0 - weight) * mb)).abs() < 1e-9);
    }

    #[test]
    fn warmup_is_monotone_in_buffer(desc in arb_desc(), w in arb_workload()) {
        let m = BufferModel::new(&desc, &w);
        let mut last = 0u64;
        for b in [1usize, 2, 4, 8, 16] {
            match m.warmup_queries(b) {
                Some(n) => {
                    prop_assert!(n >= last, "N* not monotone at B={b}");
                    last = n;
                }
                None => {
                    // Once the buffer holds everything, it holds everything
                    // for all larger buffers too.
                    prop_assert_eq!(m.warmup_queries(b * 2), None);
                }
            }
        }
    }
}
