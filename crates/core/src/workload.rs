//! Query workloads and per-node access probabilities `A^Q_ij`.

use crate::TreeDescription;
use rtree_geom::{Point, Rect};

#[derive(Clone, Debug)]
enum Kind {
    /// Queries with the top-right corner uniform in `U' = [qx,1] × [qy,1]`
    /// (§3.1; the whole query region always fits in the unit square).
    Uniform,
    /// Queries centered on a uniformly chosen data point (§3.2). Centers are
    /// kept sorted by x so probability evaluation can range-scan.
    DataDriven { centers_by_x: Vec<Point> },
}

/// A query workload: a query size `qx × qy` plus a placement distribution.
/// Point queries are the `qx = qy = 0` case.
///
/// # Examples
///
/// ```
/// use rtree_core::Workload;
/// use rtree_geom::Rect;
///
/// // Under uniform point queries, the access probability of a node is the
/// // area of its MBR (§3.1).
/// let w = Workload::uniform_point();
/// let r = Rect::new(0.25, 0.25, 0.75, 0.75);
/// assert!((w.access_probability(&r) - 0.25).abs() < 1e-12);
///
/// // Region queries extend the rectangle and normalize by the query
/// // domain U' (eq. 2 with the boundary correction).
/// let w = Workload::uniform_region(0.1, 0.1);
/// assert!(w.access_probability(&r) > 0.25);
/// ```
#[derive(Clone, Debug)]
pub struct Workload {
    qx: f64,
    qy: f64,
    kind: Kind,
}

impl Workload {
    /// Uniformly distributed point queries.
    pub fn uniform_point() -> Self {
        Self::uniform_region(0.0, 0.0)
    }

    /// Uniformly distributed region queries of size `qx × qy`, constrained
    /// to fall entirely inside the unit square.
    ///
    /// # Panics
    /// Panics unless `0 ≤ qx < 1` and `0 ≤ qy < 1`.
    pub fn uniform_region(qx: f64, qy: f64) -> Self {
        assert!((0.0..1.0).contains(&qx) && (0.0..1.0).contains(&qy));
        Workload {
            qx,
            qy,
            kind: Kind::Uniform,
        }
    }

    /// Data-driven point queries: the query point is a uniformly chosen
    /// data center.
    pub fn data_driven_point(centers: Vec<Point>) -> Self {
        Self::data_driven(0.0, 0.0, centers)
    }

    /// Data-driven region queries of size `qx × qy` centered on a uniformly
    /// chosen data center (§3.2).
    ///
    /// # Panics
    /// Panics if `centers` is empty or the sizes are out of `[0, 1)`.
    pub fn data_driven(qx: f64, qy: f64, centers: Vec<Point>) -> Self {
        assert!((0.0..1.0).contains(&qx) && (0.0..1.0).contains(&qy));
        assert!(!centers.is_empty(), "data-driven workload needs centers");
        let mut centers_by_x = centers;
        centers_by_x.sort_by(|a, b| a.x.partial_cmp(&b.x).expect("finite coordinates"));
        Workload {
            qx,
            qy,
            kind: Kind::DataDriven { centers_by_x },
        }
    }

    /// Query width.
    pub fn qx(&self) -> f64 {
        self.qx
    }

    /// Query height.
    pub fn qy(&self) -> f64 {
        self.qy
    }

    /// True for point queries.
    pub fn is_point(&self) -> bool {
        self.qx == 0.0 && self.qy == 0.0
    }

    /// True for data-driven workloads.
    pub fn is_data_driven(&self) -> bool {
        matches!(self.kind, Kind::DataDriven { .. })
    }

    /// The data centers of a data-driven workload (sorted by x), if any.
    pub fn centers(&self) -> Option<&[Point]> {
        match &self.kind {
            Kind::Uniform => None,
            Kind::DataDriven { centers_by_x } => Some(centers_by_x),
        }
    }

    /// The probability `A^Q` that one node with MBR `r` is accessed by a
    /// random query of this workload.
    ///
    /// * Uniform (§3.1): the fraction of `U' = [qx,1] × [qy,1]` covered by
    ///   the extended rectangle `R' = ⟨(a,b),(c+qx,d+qy)⟩`, i.e.
    ///   `C·D / ((1−qx)(1−qy))` with
    ///   `C = max(0, min(1, c+qx) − max(a, qx))` and
    ///   `D = max(0, min(1, d+qy) − max(b, qy))`.
    /// * Data-driven (eq. 4): the fraction of data centers inside the
    ///   center-fixed expansion of `r` by `qx × qy`.
    pub fn access_probability(&self, r: &Rect) -> f64 {
        match &self.kind {
            Kind::Uniform => {
                let c = (r.hi.x + self.qx).min(1.0) - r.lo.x.max(self.qx);
                let d = (r.hi.y + self.qy).min(1.0) - r.lo.y.max(self.qy);
                if c <= 0.0 || d <= 0.0 {
                    return 0.0;
                }
                (c * d) / ((1.0 - self.qx) * (1.0 - self.qy))
            }
            Kind::DataDriven { centers_by_x } => {
                let expanded = r.expand_centered(self.qx, self.qy);
                let lo = centers_by_x.partition_point(|p| p.x < expanded.lo.x);
                let hi = centers_by_x.partition_point(|p| p.x <= expanded.hi.x);
                let inside = centers_by_x[lo..hi]
                    .iter()
                    .filter(|p| p.y >= expanded.lo.y && p.y <= expanded.hi.y)
                    .count();
                inside as f64 / centers_by_x.len() as f64
            }
        }
    }

    /// Access probabilities for every node of a tree, grouped by level
    /// (root level first) — the `A^Q_ij` matrix of the paper.
    pub fn access_probabilities(&self, desc: &TreeDescription) -> Vec<Vec<f64>> {
        desc.levels()
            .iter()
            .map(|level| level.iter().map(|r| self.access_probability(r)).collect())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn uniform_point_probability_is_clamped_area() {
        let w = Workload::uniform_point();
        let r = Rect::new(0.2, 0.3, 0.5, 0.7);
        assert!((w.access_probability(&r) - r.area()).abs() < EPS);
        // A rectangle poking outside the unit square counts only the inside.
        let edge = Rect::new(0.9, 0.9, 1.5, 1.5);
        assert!((w.access_probability(&edge) - 0.01).abs() < EPS);
    }

    #[test]
    fn region_probability_reproduces_papers_fig3_example() {
        // Fig. 3b: a query of size 0.9 x 0.9 against a rectangle like R1
        // must NOT get probability 1.21 (the unclamped extended area); it is
        // capped at 1 by the U' normalization.
        let w = Workload::uniform_region(0.9, 0.9);
        let r1 = Rect::new(0.0, 0.0, 0.2, 0.2);
        let p = w.access_probability(&r1);
        assert!(p <= 1.0 + EPS, "p = {p}");
        // C = min(1, 0.2+0.9) - max(0, 0.9) = 0.1; D likewise.
        // AQ = 0.01 / (0.1 * 0.1) = 1.0.
        assert!((p - 1.0).abs() < EPS);
    }

    #[test]
    fn region_probability_interior_matches_extended_area_formula() {
        // Away from the boundary the corrected model reduces to the original
        // Kamel-Faloutsos form: area of R' relative to U'.
        let w = Workload::uniform_region(0.1, 0.05);
        let r = Rect::new(0.3, 0.4, 0.45, 0.5);
        let expect = ((0.45 - 0.3) + 0.1) * ((0.5 - 0.4) + 0.05) / (0.9 * 0.95);
        assert!((w.access_probability(&r) - expect).abs() < EPS);
    }

    #[test]
    fn probability_always_in_unit_interval() {
        let workloads = [
            Workload::uniform_point(),
            Workload::uniform_region(0.25, 0.25),
            Workload::uniform_region(0.9, 0.9),
        ];
        let rects = [
            Rect::new(0.0, 0.0, 1.0, 1.0),
            Rect::new(0.95, 0.95, 1.0, 1.0),
            Rect::new(0.0, 0.0, 0.01, 0.01),
            Rect::new(0.4, 0.0, 0.6, 1.0),
        ];
        for w in &workloads {
            for r in &rects {
                let p = w.access_probability(r);
                assert!((0.0..=1.0 + EPS).contains(&p), "p = {p} for {r}");
            }
        }
    }

    #[test]
    fn disjoint_rect_has_zero_probability() {
        // With q = 0.25, queries cannot reach a sliver beyond x = 1; and a
        // rect left of U' minus qx is unreachable only if its extension
        // misses U'. Easier: a rect fully outside the unit square.
        let w = Workload::uniform_region(0.25, 0.25);
        let r = Rect::new(1.1, 1.1, 1.2, 1.2);
        assert_eq!(w.access_probability(&r), 0.0);
    }

    #[test]
    fn data_driven_point_counts_centers() {
        let centers = vec![
            Point::new(0.1, 0.1),
            Point::new(0.2, 0.2),
            Point::new(0.9, 0.9),
            Point::new(0.5, 0.5),
        ];
        let w = Workload::data_driven_point(centers);
        let r = Rect::new(0.0, 0.0, 0.25, 0.25);
        // 2 of 4 centers inside.
        assert!((w.access_probability(&r) - 0.5).abs() < EPS);
        assert!(w.is_data_driven());
        assert!(w.is_point());
    }

    #[test]
    fn data_driven_region_uses_centered_expansion() {
        let centers = vec![Point::new(0.35, 0.5), Point::new(0.1, 0.1)];
        let w = Workload::data_driven(0.2, 0.2, centers);
        // R = [0.4,0.6]^2 expanded by 0.1 each side -> [0.3,0.7]^2;
        // (0.35,0.5) is inside, (0.1,0.1) is not.
        let r = Rect::new(0.4, 0.4, 0.6, 0.6);
        assert!((w.access_probability(&r) - 0.5).abs() < EPS);
    }

    #[test]
    fn data_driven_probability_matches_brute_force() {
        let centers: Vec<Point> = (0..500)
            .map(|i| Point::new((i as f64 * 0.754877) % 1.0, (i as f64 * 0.569840) % 1.0))
            .collect();
        let w = Workload::data_driven(0.08, 0.12, centers.clone());
        for r in [
            Rect::new(0.2, 0.2, 0.4, 0.3),
            Rect::new(0.0, 0.0, 1.0, 1.0),
            Rect::new(0.77, 0.13, 0.78, 0.99),
        ] {
            let expanded = r.expand_centered(0.08, 0.12);
            let brute = centers
                .iter()
                .filter(|c| expanded.contains_point(c))
                .count() as f64
                / centers.len() as f64;
            assert!((w.access_probability(&r) - brute).abs() < EPS);
        }
    }

    #[test]
    fn access_probabilities_shape_matches_tree() {
        let desc = TreeDescription::from_levels(vec![
            vec![Rect::new(0.0, 0.0, 1.0, 1.0)],
            vec![Rect::new(0.0, 0.0, 0.5, 1.0), Rect::new(0.5, 0.0, 1.0, 1.0)],
        ]);
        let probs = Workload::uniform_point().access_probabilities(&desc);
        assert_eq!(probs.len(), 2);
        assert_eq!(probs[0], vec![1.0]);
        assert_eq!(probs[1], vec![0.5, 0.5]);
    }

    #[test]
    #[should_panic]
    fn rejects_query_size_one() {
        let _ = Workload::uniform_region(1.0, 0.5);
    }

    #[test]
    #[should_panic]
    fn rejects_empty_centers() {
        let _ = Workload::data_driven_point(vec![]);
    }
}
