//! The LRU buffer model (§3.3) — the paper's primary contribution.
//!
//! Following Bhide, Dan & Dias, the steady-state buffer hit probability is
//! approximated by the hit probability at the moment the buffer first fills.
//! With per-node access probabilities `A^Q_ij`:
//!
//! * distinct nodes touched by `N` queries:
//!   `D(N) = M − Σ_ij (1 − A^Q_ij)^N`  (eq. 5),
//! * warm-up length: `N* = min{ N : D(N) ≥ B }` (binary search),
//! * steady-state expected disk accesses per query:
//!   `ED = Σ_ij A^Q_ij · (1 − A^Q_ij)^{N*}`  (eq. 6).
//!
//! Pinning the top `p` levels removes those pages from the model and charges
//! them against the buffer: the model runs on levels `p..` with capacity
//! `B − Σ_{i<p} M_i`.

use crate::{TreeDescription, Workload};
use std::fmt;

/// Upper bound for the warm-up search. If the buffer has not filled after
/// this many queries the workload can effectively never fill it and the
/// residual disk-access probability of the untouched nodes is negligible.
const MAX_WARMUP: u64 = 1 << 50;

/// The buffer model for one tree and one workload.
///
/// # Examples
///
/// ```
/// use rtree_core::{BufferModel, TreeDescription, Workload};
/// use rtree_geom::Rect;
///
/// // A 2-level toy tree: the root covers the square, two half-space children.
/// let desc = TreeDescription::from_levels(vec![
///     vec![Rect::new(0.0, 0.0, 1.0, 1.0)],
///     vec![Rect::new(0.0, 0.0, 0.5, 1.0), Rect::new(0.5, 0.0, 1.0, 1.0)],
/// ]);
/// let model = BufferModel::new(&desc, &Workload::uniform_point());
///
/// // A point query touches the root plus one child on average.
/// assert!((model.expected_node_accesses() - 2.0).abs() < 1e-12);
/// // A 3-page buffer holds the whole tree: steady state needs no disk.
/// assert_eq!(model.expected_disk_accesses(3), 0.0);
/// // A 1-page buffer keeps only the root hot: half a disk access per query.
/// assert!((model.expected_disk_accesses(1) - 0.5).abs() < 1e-12);
/// ```
#[derive(Clone, Debug)]
pub struct BufferModel {
    /// Access probabilities grouped by level (root level first).
    level_probs: Vec<Vec<f64>>,
    /// Nodes per level (cached).
    nodes_per_level: Vec<usize>,
}

impl BufferModel {
    /// Evaluates the workload's access probabilities over the tree.
    pub fn new(desc: &TreeDescription, workload: &Workload) -> Self {
        BufferModel {
            level_probs: workload.access_probabilities(desc),
            nodes_per_level: desc.nodes_per_level(),
        }
    }

    /// Builds a model from explicit per-level probabilities (root first).
    /// Useful for testing and for external MBR sources.
    ///
    /// # Panics
    /// Panics if any probability is outside `[0, 1]`.
    pub fn from_probabilities(level_probs: Vec<Vec<f64>>) -> Self {
        for p in level_probs.iter().flatten() {
            assert!((0.0..=1.0).contains(p), "probability {p} out of range");
        }
        let nodes_per_level = level_probs.iter().map(Vec::len).collect();
        BufferModel {
            level_probs,
            nodes_per_level,
        }
    }

    /// The per-level access probabilities the model was built from
    /// (root level first).
    pub fn level_probabilities(&self) -> &[Vec<f64>] {
        &self.level_probs
    }

    /// Total number of nodes `M` (unpinned model).
    pub fn total_nodes(&self) -> usize {
        self.nodes_per_level.iter().sum()
    }

    /// Expected nodes visited per query with no buffer: `Σ A^Q_ij`.
    pub fn expected_node_accesses(&self) -> f64 {
        self.probs(0).sum()
    }

    /// Probabilities of all nodes at levels `skip..` (flattened).
    fn probs(&self, skip_levels: usize) -> impl Iterator<Item = f64> + '_ {
        self.level_probs.iter().skip(skip_levels).flatten().copied()
    }

    /// Expected number of distinct nodes (levels `skip..`) accessed in `n`
    /// queries — eq. 5. `n` is real-valued so the warm-up search can
    /// interpolate; `D` is monotone increasing in `n`.
    fn distinct_nodes_skipped(&self, n: f64, skip_levels: usize) -> f64 {
        let mut d = 0.0;
        for p in self.probs(skip_levels) {
            // (1 - p)^n, with care at the endpoints: p = 0 never enters the
            // buffer, p = 1 enters on the first query.
            if p > 0.0 {
                d += 1.0 - (1.0 - p).powf(n);
            }
        }
        d
    }

    /// Expected number of distinct nodes accessed in `n` queries (eq. 5).
    pub fn distinct_nodes(&self, n: u64) -> f64 {
        self.distinct_nodes_skipped(n as f64, 0)
    }

    /// The warm-up length `N*`: the smallest number of queries after which
    /// the expected number of distinct nodes touched reaches the buffer
    /// size `B`. `None` if the buffer can hold every node the workload ever
    /// touches (the steady state then needs no disk reads at all).
    ///
    /// Prefer [`BufferModel::warmup`] in reporting paths: it distinguishes
    /// *why* there is no finite `N*`, so a `None` cannot silently disappear
    /// from a table.
    pub fn warmup_queries(&self, buffer: usize) -> Option<u64> {
        self.warmup_queries_skipped(buffer, 0)
    }

    /// The warm-up search as a typed outcome. Unlike
    /// [`BufferModel::warmup_queries`], a buffer that never fills is an
    /// explicit, printable case rather than a bare `None` — callers
    /// building reports must show *something* for every buffer size
    /// instead of skipping the row.
    pub fn warmup(&self, buffer: usize) -> WarmupOutcome {
        match self.warmup_queries_skipped(buffer, 0) {
            Some(n) => WarmupOutcome::FillsAfter(n),
            None => WarmupOutcome::NeverFills {
                reachable: self.probs(0).filter(|&p| p > 0.0).count(),
                buffer,
            },
        }
    }

    fn warmup_queries_skipped(&self, buffer: usize, skip_levels: usize) -> Option<u64> {
        let reachable = self.probs(skip_levels).filter(|&p| p > 0.0).count();
        if reachable <= buffer {
            return None;
        }
        // Binary search the smallest integer N with D(N) >= B.
        let b = buffer as f64;
        let mut lo: u64 = 1;
        if self.distinct_nodes_skipped(1.0, skip_levels) >= b {
            return Some(1);
        }
        let mut hi: u64 = 2;
        while self.distinct_nodes_skipped(hi as f64, skip_levels) < b {
            if hi >= MAX_WARMUP {
                // D(N) converges to `reachable` > B only asymptotically in
                // f64 terms; treat the buffer as effectively never filling.
                return None;
            }
            lo = hi;
            hi *= 2;
        }
        while lo + 1 < hi {
            let mid = lo + (hi - lo) / 2;
            if self.distinct_nodes_skipped(mid as f64, skip_levels) < b {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Some(hi)
    }

    /// Steady-state expected disk accesses per query with an LRU buffer of
    /// `B` pages — eq. 6. Returns 0 when the buffer holds everything the
    /// workload touches.
    ///
    /// # Panics
    /// Panics if `buffer` is 0.
    pub fn expected_disk_accesses(&self, buffer: usize) -> f64 {
        assert!(buffer > 0, "buffer must hold at least one page");
        self.expected_disk_accesses_skipped(buffer, 0)
    }

    fn expected_disk_accesses_skipped(&self, buffer: usize, skip_levels: usize) -> f64 {
        match self.warmup_queries_skipped(buffer, skip_levels) {
            None => 0.0,
            Some(n_star) => {
                let n = n_star as f64;
                self.probs(skip_levels).map(|p| p * (1.0 - p).powf(n)).sum()
            }
        }
    }

    /// Number of pages occupied by pinning the top `p` levels.
    pub fn pinned_pages(&self, pin_levels: usize) -> usize {
        self.nodes_per_level.iter().take(pin_levels).sum()
    }

    /// Steady-state expected disk accesses per query when the top
    /// `pin_levels` levels are pinned in a buffer of `B` pages: the pinned
    /// pages are subtracted from the buffer and their levels leave the
    /// model (§3.3, last paragraph).
    ///
    /// The paper's "pinning never hurts" observation holds for real R-trees,
    /// whose top levels are at least as hot as anything below them. For a
    /// hand-crafted description with *cold* top levels the model correctly
    /// reports that dedicating frames to them can cost more than it saves.
    pub fn expected_disk_accesses_pinned(
        &self,
        buffer: usize,
        pin_levels: usize,
    ) -> Result<f64, PinningError> {
        if pin_levels > self.nodes_per_level.len() {
            return Err(PinningError::TooManyLevels {
                levels: self.nodes_per_level.len(),
            });
        }
        let pinned = self.pinned_pages(pin_levels);
        if pinned >= buffer {
            return Err(PinningError::BufferExhausted { pinned, buffer });
        }
        if pin_levels == self.nodes_per_level.len() {
            // The whole tree is pinned.
            return Ok(0.0);
        }
        Ok(self.expected_disk_accesses_skipped(buffer - pinned, pin_levels))
    }

    /// Chooses the pinning depth with the lowest predicted disk accesses
    /// for a buffer of `B` pages. Returns `(levels, expected_disk_accesses)`;
    /// `(0, ed)` means "don't pin". Deeper is only preferred when it is a
    /// strict improvement, so the advisor never recommends pointless pins.
    pub fn best_pinning(&self, buffer: usize) -> (usize, f64) {
        let mut best = (0usize, self.expected_disk_accesses(buffer));
        for p in 1..=self.max_pinnable_levels(buffer) {
            if let Ok(ed) = self.expected_disk_accesses_pinned(buffer, p) {
                if ed < best.1 {
                    best = (p, ed);
                }
            }
        }
        best
    }

    /// The largest number of levels that can be pinned in a buffer of `B`
    /// pages (at least one frame must remain unless the whole tree fits).
    pub fn max_pinnable_levels(&self, buffer: usize) -> usize {
        let mut pinned = 0usize;
        for (i, &m) in self.nodes_per_level.iter().enumerate() {
            pinned += m;
            let whole_tree = i + 1 == self.nodes_per_level.len();
            if pinned > buffer || (!whole_tree && pinned >= buffer) {
                return i;
            }
        }
        self.nodes_per_level.len()
    }
}

/// Typed outcome of the warm-up search (see [`BufferModel::warmup`]).
///
/// `warmup_queries` collapses the "buffer never fills" case into `None`,
/// which report-building call sites historically dropped on the floor —
/// the row for a buffer big enough to hold the working set simply went
/// missing. This enum keeps the case explicit and printable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WarmupOutcome {
    /// The buffer fills after this many queries (`N*` of eq. 5/6).
    FillsAfter(u64),
    /// The buffer never fills: it can hold every node the workload ever
    /// touches (`reachable <= buffer`, or the residual fill probability is
    /// below f64 resolution). Steady state then needs no disk reads.
    NeverFills {
        /// Nodes with a nonzero access probability.
        reachable: usize,
        /// The buffer size the search ran with.
        buffer: usize,
    },
}

impl WarmupOutcome {
    /// The finite warm-up length, if there is one (mirrors the legacy
    /// `Option` shape).
    pub fn queries(&self) -> Option<u64> {
        match self {
            WarmupOutcome::FillsAfter(n) => Some(*n),
            WarmupOutcome::NeverFills { .. } => None,
        }
    }

    /// True when the buffer holds the entire reachable working set.
    pub fn never_fills(&self) -> bool {
        matches!(self, WarmupOutcome::NeverFills { .. })
    }
}

impl fmt::Display for WarmupOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WarmupOutcome::FillsAfter(n) => write!(f, "{n}"),
            WarmupOutcome::NeverFills { reachable, buffer } => {
                write!(f, "never fills ({reachable} reachable, {buffer} frames)")
            }
        }
    }
}

/// Error from [`BufferModel::expected_disk_accesses_pinned`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PinningError {
    /// Asked to pin more levels than the tree has.
    TooManyLevels { levels: usize },
    /// The pinned pages do not leave any buffer space.
    BufferExhausted { pinned: usize, buffer: usize },
}

impl fmt::Display for PinningError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PinningError::TooManyLevels { levels } => {
                write!(f, "tree only has {levels} levels")
            }
            PinningError::BufferExhausted { pinned, buffer } => {
                write!(f, "pinning {pinned} pages exhausts a {buffer}-page buffer")
            }
        }
    }
}

impl std::error::Error for PinningError {}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two-level toy tree: root always accessed, two half-space children.
    fn toy() -> BufferModel {
        BufferModel::from_probabilities(vec![vec![1.0], vec![0.5, 0.5]])
    }

    #[test]
    fn distinct_nodes_monotone_and_bounded() {
        let m = toy();
        assert_eq!(m.total_nodes(), 3);
        let d1 = m.distinct_nodes(1);
        let d10 = m.distinct_nodes(10);
        let d1000 = m.distinct_nodes(1000);
        assert!(d1 < d10 && d10 < d1000);
        assert!(d1000 <= 3.0);
        // D(1) = expected nodes per query = 2.
        assert!((d1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn whole_tree_fits_means_zero_disk_accesses() {
        let m = toy();
        assert_eq!(m.warmup_queries(3), None);
        assert_eq!(m.expected_disk_accesses(3), 0.0);
        assert_eq!(m.expected_disk_accesses(100), 0.0);
    }

    #[test]
    fn tiny_buffer_costs_almost_full_query() {
        // B = 1: only the root stays hot. After warm-up (N*=1: D(1)=2 >= 1),
        // ED = 1*(1-1)^1 + 2 * 0.5*(0.5)^1 = 0.5.
        let m = toy();
        assert_eq!(m.warmup_queries(1), Some(1));
        assert!((m.expected_disk_accesses(1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn buffer_two_intermediate() {
        // D(N) = 3 - 2*0.5^N ; D(N) >= 2 <=> 0.5^N <= 0.5 <=> N >= 1.
        let m = toy();
        assert_eq!(m.warmup_queries(2), Some(1));
    }

    #[test]
    fn disk_accesses_decrease_with_buffer() {
        let probs: Vec<f64> = (0..200).map(|i| 0.002 + (i as f64 % 37.0) / 60.0).collect();
        let m = BufferModel::from_probabilities(vec![vec![1.0], probs]);
        let mut last = f64::INFINITY;
        for b in [1usize, 5, 20, 60, 120, 190] {
            let ed = m.expected_disk_accesses(b);
            assert!(ed <= last + 1e-12, "ED not monotone at B={b}");
            last = ed;
        }
        assert_eq!(m.expected_disk_accesses(201), 0.0);
    }

    #[test]
    fn never_accessed_nodes_never_fill_buffer() {
        // 10 nodes with p=0: reachable set is 1 node; a 2-page buffer holds
        // it, so steady state needs no disk.
        let m = BufferModel::from_probabilities(vec![vec![1.0], vec![0.0; 10]]);
        assert_eq!(m.warmup_queries(2), None);
        assert_eq!(m.expected_disk_accesses(2), 0.0);
    }

    #[test]
    fn hot_node_in_buffer_costs_nothing_at_steady_state() {
        // p = 1 nodes are resident from query 1 on; with B >= 1 they add
        // nothing to ED once warm.
        let m = BufferModel::from_probabilities(vec![vec![1.0], vec![1.0, 0.3, 0.3]]);
        let ed = m.expected_disk_accesses(2);
        // Both p=1 nodes want residency; B=2 holds them, N* from D(N)>=2:
        // D(1) = 2 + 2*0.3 = 2.6 >= 2 -> N*=1; ED = 2*0.3*0.7 = 0.42.
        assert!((ed - 0.42).abs() < 1e-12);
    }

    #[test]
    fn pinning_reduces_or_preserves_cost() {
        let leaf_probs: Vec<f64> = (0..50).map(|i| 0.01 + (i as f64 % 10.0) / 25.0).collect();
        let m = BufferModel::from_probabilities(vec![vec![1.0], vec![0.4, 0.5, 0.6], leaf_probs]);
        for b in [5usize, 10, 30] {
            let unpinned = m.expected_disk_accesses(b);
            for p in 1..=2 {
                let pinned = m.expected_disk_accesses_pinned(b, p).unwrap();
                assert!(
                    pinned <= unpinned + 1e-9,
                    "pinning {p} levels with B={b} hurt: {pinned} > {unpinned}"
                );
            }
        }
    }

    #[test]
    fn pinning_whole_tree_is_free() {
        let m = toy();
        assert_eq!(m.expected_disk_accesses_pinned(4, 2).unwrap(), 0.0);
    }

    #[test]
    fn pinning_errors() {
        let m = toy();
        assert_eq!(
            m.expected_disk_accesses_pinned(1, 1),
            Err(PinningError::BufferExhausted {
                pinned: 1,
                buffer: 1
            })
        );
        assert_eq!(
            m.expected_disk_accesses_pinned(10, 3),
            Err(PinningError::TooManyLevels { levels: 2 })
        );
    }

    #[test]
    fn max_pinnable_levels() {
        // Levels of 1, 3, 20 pages.
        let m = BufferModel::from_probabilities(vec![vec![1.0], vec![0.5; 3], vec![0.1; 20]]);
        assert_eq!(m.max_pinnable_levels(1), 0); // pinning the root leaves no frame
        assert_eq!(m.max_pinnable_levels(2), 1);
        assert_eq!(m.max_pinnable_levels(4), 1); // 1+3 = 4 >= B
        assert_eq!(m.max_pinnable_levels(5), 2);
        assert_eq!(m.max_pinnable_levels(24), 3); // whole tree fits exactly
        assert_eq!(m.max_pinnable_levels(23), 2);
    }

    #[test]
    fn best_pinning_picks_strict_improvements_only() {
        // Hot top levels, cold leaves: pinning both internal levels wins.
        let m = BufferModel::from_probabilities(vec![vec![1.0], vec![0.9; 3], vec![0.05; 40]]);
        let (levels, ed) = m.best_pinning(10);
        assert!(levels >= 1, "hot levels should be pinned");
        assert!(ed <= m.expected_disk_accesses(10) + 1e-12);

        // Whole tree fits: nothing to gain, recommend no pinning.
        let (levels, ed) = m.best_pinning(100);
        assert_eq!((levels, ed), (0, 0.0));
    }

    #[test]
    fn pinned_pages_counts() {
        let m = BufferModel::from_probabilities(vec![vec![1.0], vec![0.5; 3], vec![0.1; 20]]);
        assert_eq!(m.pinned_pages(0), 0);
        assert_eq!(m.pinned_pages(1), 1);
        assert_eq!(m.pinned_pages(2), 4);
        assert_eq!(m.pinned_pages(3), 24);
    }

    #[test]
    fn warmup_outcome_matches_option_shape() {
        let m = toy();
        assert_eq!(m.warmup(1), WarmupOutcome::FillsAfter(1));
        assert_eq!(m.warmup(1).queries(), m.warmup_queries(1));
        let w = m.warmup(3);
        assert!(w.never_fills());
        assert_eq!(w.queries(), None);
        assert_eq!(
            w,
            WarmupOutcome::NeverFills {
                reachable: 3,
                buffer: 3
            }
        );
        // The typed outcome always renders to something printable.
        assert_eq!(m.warmup(1).to_string(), "1");
        assert!(w.to_string().contains("never fills"));
    }

    #[test]
    fn warmup_outcome_excludes_unreachable_nodes() {
        let m = BufferModel::from_probabilities(vec![vec![1.0], vec![0.0; 10]]);
        assert_eq!(
            m.warmup(2),
            WarmupOutcome::NeverFills {
                reachable: 1,
                buffer: 2
            }
        );
    }

    #[test]
    #[should_panic]
    fn zero_buffer_rejected() {
        let _ = toy().expected_disk_accesses(0);
    }

    #[test]
    #[should_panic]
    fn bad_probability_rejected() {
        let _ = BufferModel::from_probabilities(vec![vec![1.5]]);
    }
}
