//! The analytic models of Leutenegger & López (ICDE 1998): node-access cost
//! and the LRU **buffer model** — the paper's primary contribution.
//!
//! The input of every model is a [`TreeDescription`]: the minimum bounding
//! rectangles of all R-tree nodes, grouped by level (level 0 = root, as in
//! the paper). The models are *hybrid*: trees are built by real loading
//! algorithms (see `rtree-index`), then described by their MBRs.
//!
//! Three layers:
//!
//! 1. [`Workload`] — turns a query distribution into per-node **access
//!    probabilities** `A^Q_ij`: uniform point queries (§3.1, probability =
//!    clamped area), uniform region queries (eq. 2 with the Pagel-style
//!    boundary correction), and data-driven queries (§3.2, eq. 4).
//! 2. [`NodeAccessModel`] — the bufferless expected *nodes visited* per
//!    query (the metric the paper argues is insufficient), both in the
//!    original Kamel–Faloutsos closed form `A + qx·Ly + qy·Lx + M·qx·qy`
//!    and in the corrected per-node form `Σ A^Q_ij`.
//! 3. [`BufferModel`] — the buffer model (§3.3): distinct nodes touched in
//!    `N` queries `D(N) = M − Σ (1−A^Q_ij)^N`, the warm-up length `N*`
//!    (smallest `N` with `D(N) ≥ B`), the steady-state expected **disk
//!    accesses** per query `ED = Σ A^Q_ij (1−A^Q_ij)^{N*}` (eq. 6), and the
//!    pinned-levels variant.

mod buffer_model;
mod desc_io;
mod estimate;
mod mixed;
mod node_model;
mod tree_desc;
mod workload;

pub use buffer_model::{BufferModel, PinningError, WarmupOutcome};
pub use estimate::{QueryCost, QueryCostEstimator};
pub use mixed::MixedWorkload;
pub use node_model::NodeAccessModel;
pub use tree_desc::TreeDescription;
pub use workload::Workload;
