//! Per-query cost estimation (extension).
//!
//! Fig. 9's warning is aimed at query optimizers: the bufferless metric
//! makes a 300k-rectangle index look as cheap as a 25k one. This module is
//! the API an optimizer would actually call: given the tree, the workload
//! the buffer has equilibrated under, and the buffer size, estimate the
//! disk cost of one *specific* query rectangle as
//!
//! `cost(Q) = Σ_{nodes ij : R_ij ∩ Q ≠ ∅} P(R_ij not resident)`
//!
//! with the steady-state residency probabilities of §3.3
//! (`P(resident) = 1 − (1 − A^Q_ij)^{N*}`). Averaged over the workload this
//! recovers `ED_T` exactly, but individual queries get individual prices —
//! a query into a hot region is predicted nearly free, one into a cold
//! region pays for every node it touches.

use crate::{BufferModel, TreeDescription, Workload};
use rtree_geom::Rect;

/// Estimated cost of one query.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QueryCost {
    /// Number of tree nodes the query touches (the bufferless metric).
    pub nodes: usize,
    /// Expected disk accesses given steady-state buffer contents.
    pub expected_disk_accesses: f64,
}

/// Steady-state per-query cost estimator for a fixed tree, workload and
/// buffer size.
///
/// # Examples
///
/// ```
/// use rtree_core::{QueryCostEstimator, TreeDescription, Workload};
/// use rtree_geom::Rect;
///
/// let desc = TreeDescription::from_levels(vec![
///     vec![Rect::new(0.0, 0.0, 1.0, 1.0)],
///     vec![Rect::new(0.0, 0.0, 0.9, 1.0), Rect::new(0.9, 0.0, 1.0, 1.0)],
/// ]);
/// let est = QueryCostEstimator::new(&desc, &Workload::uniform_point(), 2);
/// // A query into the hot 90% region is predicted cheaper than one into
/// // the cold 10% sliver, even though both touch two nodes.
/// let hot = est.estimate(&Rect::new(0.1, 0.1, 0.2, 0.2));
/// let cold = est.estimate(&Rect::new(0.95, 0.1, 0.96, 0.2));
/// assert_eq!(hot.nodes, 2);
/// assert!(cold.expected_disk_accesses > hot.expected_disk_accesses);
/// ```
#[derive(Clone, Debug)]
pub struct QueryCostEstimator {
    /// Node MBRs by level.
    levels: Vec<Vec<Rect>>,
    /// Per-node steady-state miss probability, aligned with `levels`.
    miss: Vec<Vec<f64>>,
}

impl QueryCostEstimator {
    /// Builds an estimator assuming the buffer has warmed up under
    /// `workload` with `buffer` pages.
    ///
    /// # Panics
    /// Panics if `buffer` is 0.
    pub fn new(desc: &TreeDescription, workload: &Workload, buffer: usize) -> Self {
        let model = BufferModel::new(desc, workload);
        QueryCostEstimator {
            levels: desc.levels().to_vec(),
            miss: model.miss_probabilities(buffer),
        }
    }

    /// Estimates the cost of one query rectangle.
    pub fn estimate(&self, query: &Rect) -> QueryCost {
        let mut nodes = 0usize;
        let mut expected = 0.0;
        for (level, misses) in self.levels.iter().zip(&self.miss) {
            for (r, m) in level.iter().zip(misses) {
                if r.intersects(query) {
                    nodes += 1;
                    expected += m;
                }
            }
        }
        QueryCost {
            nodes,
            expected_disk_accesses: expected,
        }
    }
}

impl BufferModel {
    /// Steady-state residency probability of every node under a buffer of
    /// `B` pages: `1 − (1 − A^Q_ij)^{N*}`, or 1 for every reachable node if
    /// the buffer never fills. Grouped by level, root first.
    ///
    /// # Panics
    /// Panics if `buffer` is 0.
    pub fn residency_probabilities(&self, buffer: usize) -> Vec<Vec<f64>> {
        assert!(buffer > 0, "buffer must hold at least one page");
        match self.warmup_queries(buffer) {
            None => self
                .level_probabilities()
                .iter()
                .map(|level| {
                    level
                        .iter()
                        .map(|&p| f64::from(u8::from(p > 0.0)))
                        .collect()
                })
                .collect(),
            Some(n_star) => {
                let n = n_star as f64;
                self.level_probabilities()
                    .iter()
                    .map(|level| {
                        level
                            .iter()
                            .map(|&p| {
                                if p > 0.0 {
                                    1.0 - (1.0 - p).powf(n)
                                } else {
                                    0.0
                                }
                            })
                            .collect()
                    })
                    .collect()
            }
        }
    }

    /// Steady-state miss probability of every node (`1 − residency`).
    pub fn miss_probabilities(&self, buffer: usize) -> Vec<Vec<f64>> {
        self.residency_probabilities(buffer)
            .into_iter()
            .map(|level| level.into_iter().map(|r| 1.0 - r).collect())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_desc() -> TreeDescription {
        TreeDescription::from_levels(vec![
            vec![Rect::new(0.0, 0.0, 1.0, 1.0)],
            vec![Rect::new(0.0, 0.0, 0.5, 1.0), Rect::new(0.5, 0.0, 1.0, 1.0)],
        ])
    }

    #[test]
    fn residency_is_one_when_buffer_holds_everything() {
        let d = toy_desc();
        let m = BufferModel::new(&d, &Workload::uniform_point());
        let res = m.residency_probabilities(3);
        assert_eq!(res, vec![vec![1.0], vec![1.0, 1.0]]);
        assert_eq!(m.miss_probabilities(3), vec![vec![0.0], vec![0.0, 0.0]]);
    }

    #[test]
    fn hot_nodes_more_resident_than_cold() {
        let d = TreeDescription::from_levels(vec![
            vec![Rect::new(0.0, 0.0, 1.0, 1.0)],
            vec![
                Rect::new(0.0, 0.0, 0.9, 1.0), // hot: area 0.9
                Rect::new(0.9, 0.0, 1.0, 1.0), // cold: area 0.1
            ],
        ]);
        let m = BufferModel::new(&d, &Workload::uniform_point());
        let res = m.residency_probabilities(2);
        assert!(res[1][0] > res[1][1], "hot node must be more resident");
        assert_eq!(res[0][0], 1.0, "root (p=1) always resident after warmup");
    }

    #[test]
    fn estimate_prices_hot_and_cold_queries_differently() {
        let d = TreeDescription::from_levels(vec![
            vec![Rect::new(0.0, 0.0, 1.0, 1.0)],
            vec![Rect::new(0.0, 0.0, 0.9, 1.0), Rect::new(0.9, 0.0, 1.0, 1.0)],
        ]);
        let est = QueryCostEstimator::new(&d, &Workload::uniform_point(), 2);
        let hot = est.estimate(&Rect::new(0.2, 0.2, 0.3, 0.3));
        let cold = est.estimate(&Rect::new(0.95, 0.2, 0.96, 0.3));
        assert_eq!(hot.nodes, 2);
        assert_eq!(cold.nodes, 2);
        assert!(
            cold.expected_disk_accesses > hot.expected_disk_accesses,
            "cold {cold:?} vs hot {hot:?}"
        );
    }

    #[test]
    fn estimator_averages_back_to_ed() {
        // E_q[estimate(q)] over the workload == expected_disk_accesses.
        // Check by the algebraic identity: Σ_ij A_ij * miss_ij.
        let d = toy_desc();
        let w = Workload::uniform_point();
        let m = BufferModel::new(&d, &w);
        for b in [1usize, 2] {
            let miss = m.miss_probabilities(b);
            let probs = w.access_probabilities(&d);
            let avg: f64 = probs
                .iter()
                .flatten()
                .zip(miss.iter().flatten())
                .map(|(a, mm)| a * mm)
                .sum();
            let ed = m.expected_disk_accesses(b);
            assert!((avg - ed).abs() < 1e-12, "B={b}: {avg} vs {ed}");
        }
    }

    #[test]
    fn query_outside_everything_is_free() {
        let d = toy_desc();
        let est = QueryCostEstimator::new(&d, &Workload::uniform_point(), 1);
        let c = est.estimate(&Rect::new(1.5, 1.5, 1.6, 1.6));
        assert_eq!(c.nodes, 0);
        assert_eq!(c.expected_disk_accesses, 0.0);
    }
}
