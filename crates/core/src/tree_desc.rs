//! The model's input: per-level node MBRs.

use rtree_geom::Rect;
use rtree_index::RTree;

/// An R-tree described by the MBRs of its nodes, grouped by level in the
/// **paper's numbering**: index 0 is the root level, index `H` the leaves.
///
/// This is the only thing the analytic models ever see — "we compute the
/// minimum bounding rectangles of tree nodes and use these as input to our
/// buffer model" (§1).
#[derive(Clone, Debug, PartialEq)]
pub struct TreeDescription {
    levels: Vec<Vec<Rect>>,
}

impl TreeDescription {
    /// Builds a description from explicit per-level MBR lists
    /// (root level first).
    ///
    /// # Panics
    /// Panics if any level is empty, if the root level does not hold exactly
    /// one node, or if any rectangle is invalid.
    pub fn from_levels(levels: Vec<Vec<Rect>>) -> Self {
        assert!(!levels.is_empty(), "a tree has at least one level");
        assert_eq!(levels[0].len(), 1, "the root level holds exactly one node");
        for (i, level) in levels.iter().enumerate() {
            assert!(!level.is_empty(), "level {i} is empty");
            for r in level {
                assert!(r.is_valid(), "invalid MBR {r} at level {i}");
            }
        }
        TreeDescription { levels }
    }

    /// Extracts the description of a real tree.
    ///
    /// # Panics
    /// Panics if the tree is empty (an empty tree has no MBRs to model).
    pub fn from_tree(tree: &RTree) -> Self {
        assert!(!tree.is_empty(), "cannot describe an empty tree");
        Self::from_levels(tree.level_mbrs())
    }

    /// Number of levels `H + 1`.
    pub fn height(&self) -> usize {
        self.levels.len()
    }

    /// The MBRs of one level (0 = root).
    pub fn level(&self, i: usize) -> &[Rect] {
        &self.levels[i]
    }

    /// All levels, root first.
    pub fn levels(&self) -> &[Vec<Rect>] {
        &self.levels
    }

    /// Nodes per level (the paper's `M_i`), root first.
    pub fn nodes_per_level(&self) -> Vec<usize> {
        self.levels.iter().map(Vec::len).collect()
    }

    /// Total number of nodes `M` — also the number of pages the tree
    /// occupies on disk.
    pub fn total_nodes(&self) -> usize {
        self.levels.iter().map(Vec::len).sum()
    }

    /// Number of pages in the top `p` levels — what pinning `p` levels
    /// costs in buffer frames.
    pub fn pages_in_top_levels(&self, p: usize) -> usize {
        self.levels.iter().take(p).map(Vec::len).sum()
    }

    /// Sum of all MBR areas (`A`), x-extents (`Lx`) and y-extents (`Ly`).
    pub fn aggregates(&self) -> (f64, f64, f64) {
        let mut a = 0.0;
        let mut lx = 0.0;
        let mut ly = 0.0;
        for level in &self.levels {
            for r in level {
                a += r.area();
                lx += r.x_extent();
                ly += r.y_extent();
            }
        }
        (a, lx, ly)
    }

    /// Iterates over all MBRs with their level, root level first.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &Rect)> {
        self.levels
            .iter()
            .enumerate()
            .flat_map(|(i, level)| level.iter().map(move |r| (i, r)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtree_geom::Point;
    use rtree_index::BulkLoader;

    fn tiny_desc() -> TreeDescription {
        TreeDescription::from_levels(vec![
            vec![Rect::new(0.0, 0.0, 1.0, 1.0)],
            vec![Rect::new(0.0, 0.0, 0.5, 1.0), Rect::new(0.5, 0.0, 1.0, 1.0)],
        ])
    }

    #[test]
    fn accessors() {
        let d = tiny_desc();
        assert_eq!(d.height(), 2);
        assert_eq!(d.nodes_per_level(), vec![1, 2]);
        assert_eq!(d.total_nodes(), 3);
        assert_eq!(d.pages_in_top_levels(0), 0);
        assert_eq!(d.pages_in_top_levels(1), 1);
        assert_eq!(d.pages_in_top_levels(2), 3);
        assert_eq!(d.iter().count(), 3);
    }

    #[test]
    fn aggregates_sum_all_levels() {
        let d = tiny_desc();
        let (a, lx, ly) = d.aggregates();
        assert!((a - 2.0).abs() < 1e-12);
        assert!((lx - 2.0).abs() < 1e-12);
        assert!((ly - 3.0).abs() < 1e-12);
    }

    #[test]
    fn from_tree_round_trip() {
        let rects: Vec<Rect> = (0..200)
            .map(|i| {
                let x = (i as f64 * 0.618) % 0.95;
                let y = (i as f64 * 0.414) % 0.95;
                Rect::centered(Point::new(x + 0.025, y + 0.025), 0.01, 0.01)
            })
            .collect();
        let tree = BulkLoader::hilbert(10).load(&rects);
        let d = TreeDescription::from_tree(&tree);
        assert_eq!(d.total_nodes(), tree.node_count());
        assert_eq!(d.nodes_per_level(), vec![1, 2, 20]);
        // Root MBR covers every other MBR.
        let root = d.level(0)[0];
        for (_, r) in d.iter() {
            assert!(root.contains_rect(r));
        }
    }

    #[test]
    #[should_panic]
    fn rejects_multi_node_root() {
        let _ = TreeDescription::from_levels(vec![vec![
            Rect::new(0.0, 0.0, 0.5, 0.5),
            Rect::new(0.5, 0.5, 1.0, 1.0),
        ]]);
    }

    #[test]
    #[should_panic]
    fn rejects_empty_level() {
        let _ = TreeDescription::from_levels(vec![vec![Rect::new(0.0, 0.0, 1.0, 1.0)], vec![]]);
    }
}
