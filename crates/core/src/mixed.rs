//! Workload mixtures (extension).
//!
//! Real query streams are rarely a single template: a map service mixes
//! point look-ups with pans of several sizes. If each query is drawn from
//! component `i` with probability `w_i`, the per-node access probability
//! of a random query is simply `Σ w_i · A^{Q_i}` — so the buffer model of
//! §3.3 applies unchanged to the mixture. This module provides that
//! composition; `rtree-sim` has the matching mixture sampler.

use crate::{TreeDescription, Workload};

/// A weighted mixture of workloads. Weights are normalized on
/// construction.
///
/// # Examples
///
/// ```
/// use rtree_core::{BufferModel, MixedWorkload, TreeDescription, Workload};
/// use rtree_geom::Rect;
///
/// let desc = TreeDescription::from_levels(vec![
///     vec![Rect::new(0.0, 0.0, 1.0, 1.0)],
///     vec![Rect::new(0.0, 0.0, 0.5, 1.0), Rect::new(0.5, 0.0, 1.0, 1.0)],
/// ]);
/// // 80% point look-ups, 20% 10%-side pans.
/// let mix = MixedWorkload::new(vec![
///     (0.8, Workload::uniform_point()),
///     (0.2, Workload::uniform_region(0.1, 0.1)),
/// ]);
/// let model = BufferModel::new_mixed(&desc, &mix);
/// assert!(model.expected_node_accesses() > 0.0);
/// ```
#[derive(Clone, Debug)]
pub struct MixedWorkload {
    components: Vec<(f64, Workload)>,
}

impl MixedWorkload {
    /// Creates a mixture from `(weight, workload)` components.
    ///
    /// # Panics
    /// Panics if `components` is empty, any weight is non-positive or
    /// non-finite, or the weights sum to zero.
    pub fn new(components: Vec<(f64, Workload)>) -> Self {
        assert!(
            !components.is_empty(),
            "mixture needs at least one component"
        );
        let total: f64 = components.iter().map(|(w, _)| *w).sum();
        assert!(
            components.iter().all(|(w, _)| w.is_finite() && *w > 0.0) && total > 0.0,
            "weights must be positive and finite"
        );
        let components = components
            .into_iter()
            .map(|(w, wl)| (w / total, wl))
            .collect();
        MixedWorkload { components }
    }

    /// The normalized components.
    pub fn components(&self) -> &[(f64, Workload)] {
        &self.components
    }

    /// Probability that a node with MBR `r` is accessed by one random
    /// query of the mixture.
    pub fn access_probability(&self, r: &rtree_geom::Rect) -> f64 {
        self.components
            .iter()
            .map(|(w, wl)| w * wl.access_probability(r))
            .sum()
    }

    /// Access probabilities for every node, grouped by level (root first).
    pub fn access_probabilities(&self, desc: &TreeDescription) -> Vec<Vec<f64>> {
        desc.levels()
            .iter()
            .map(|level| level.iter().map(|r| self.access_probability(r)).collect())
            .collect()
    }
}

impl crate::BufferModel {
    /// Builds the buffer model for a workload mixture.
    pub fn new_mixed(desc: &TreeDescription, mix: &MixedWorkload) -> Self {
        Self::from_probabilities(mix.access_probabilities(desc))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BufferModel;
    use rtree_geom::Rect;

    fn desc() -> TreeDescription {
        TreeDescription::from_levels(vec![
            vec![Rect::new(0.0, 0.0, 1.0, 1.0)],
            vec![Rect::new(0.0, 0.0, 0.5, 0.5), Rect::new(0.5, 0.5, 1.0, 1.0)],
        ])
    }

    #[test]
    fn weights_are_normalized() {
        let m = MixedWorkload::new(vec![
            (3.0, Workload::uniform_point()),
            (1.0, Workload::uniform_region(0.1, 0.1)),
        ]);
        let w: Vec<f64> = m.components().iter().map(|(w, _)| *w).collect();
        assert!((w[0] - 0.75).abs() < 1e-12);
        assert!((w[1] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn probability_is_weighted_sum() {
        let a = Workload::uniform_point();
        let b = Workload::uniform_region(0.2, 0.2);
        let m = MixedWorkload::new(vec![(0.5, a.clone()), (0.5, b.clone())]);
        let r = Rect::new(0.1, 0.1, 0.3, 0.3);
        let expect = 0.5 * a.access_probability(&r) + 0.5 * b.access_probability(&r);
        assert!((m.access_probability(&r) - expect).abs() < 1e-12);
    }

    #[test]
    fn degenerate_mixture_equals_component() {
        let d = desc();
        let w = Workload::uniform_region(0.1, 0.3);
        let m = MixedWorkload::new(vec![(7.0, w.clone())]);
        assert_eq!(m.access_probabilities(&d), w.access_probabilities(&d));
    }

    #[test]
    fn buffer_model_from_mixture() {
        let d = desc();
        let m = MixedWorkload::new(vec![
            (0.8, Workload::uniform_point()),
            (0.2, Workload::uniform_region(0.5, 0.5)),
        ]);
        let model = BufferModel::new_mixed(&d, &m);
        // Root: p = 1 in both components. Children: point gives 0.25 each;
        // region(0.5) gives 1 each. Mixture: 0.8*0.25 + 0.2*1 = 0.4.
        assert!((model.expected_node_accesses() - (1.0 + 2.0 * 0.4)).abs() < 1e-12);
    }

    #[test]
    fn mixture_cost_is_between_components() {
        let d = desc();
        let point = BufferModel::new(&d, &Workload::uniform_point());
        let region = BufferModel::new(&d, &Workload::uniform_region(0.3, 0.3));
        let mix = BufferModel::new_mixed(
            &d,
            &MixedWorkload::new(vec![
                (0.5, Workload::uniform_point()),
                (0.5, Workload::uniform_region(0.3, 0.3)),
            ]),
        );
        let (a, b, m) = (
            point.expected_node_accesses(),
            region.expected_node_accesses(),
            mix.expected_node_accesses(),
        );
        assert!(a.min(b) <= m && m <= a.max(b));
    }

    #[test]
    #[should_panic]
    fn rejects_empty() {
        let _ = MixedWorkload::new(vec![]);
    }

    #[test]
    #[should_panic]
    fn rejects_nonpositive_weight() {
        let _ = MixedWorkload::new(vec![(0.0, Workload::uniform_point())]);
    }
}
