//! Bufferless node-access models: the metric the paper argues is
//! insufficient, needed both as the baseline ("no buffer" curves of Fig. 9)
//! and to reproduce the original Kamel–Faloutsos closed form.

use crate::{TreeDescription, Workload};

/// Expected *nodes visited* per query, with no buffer.
#[derive(Clone, Debug)]
pub struct NodeAccessModel<'a> {
    desc: &'a TreeDescription,
}

impl<'a> NodeAccessModel<'a> {
    /// Creates the model over a tree description.
    pub fn new(desc: &'a TreeDescription) -> Self {
        NodeAccessModel { desc }
    }

    /// The original Kamel–Faloutsos estimate (eq. 2), **without** boundary
    /// clamping:
    ///
    /// `E^P_T(qx,qy) = A + qx·Ly + qy·Lx + M·qx·qy`
    ///
    /// For point queries this is the sum of all MBR areas `A`. It can exceed
    /// the truth near the data-space boundary, which is why the corrected
    /// form below is used everywhere else in the study.
    pub fn kamel_faloutsos(&self, qx: f64, qy: f64) -> f64 {
        let (a, lx, ly) = self.desc.aggregates();
        let m = self.desc.total_nodes() as f64;
        a + qx * ly + qy * lx + m * qx * qy
    }

    /// The corrected expected nodes visited per query: `Σ_ij A^Q_ij` with
    /// the workload's (clamped or data-driven) access probabilities.
    pub fn expected_node_accesses(&self, workload: &Workload) -> f64 {
        workload
            .access_probabilities(self.desc)
            .iter()
            .flatten()
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtree_geom::Rect;

    fn desc() -> TreeDescription {
        TreeDescription::from_levels(vec![
            vec![Rect::new(0.0, 0.0, 1.0, 1.0)],
            vec![Rect::new(0.0, 0.0, 0.5, 0.5), Rect::new(0.5, 0.5, 1.0, 1.0)],
        ])
    }

    #[test]
    fn kf_point_query_is_total_area() {
        let d = desc();
        let m = NodeAccessModel::new(&d);
        // A = 1 + 0.25 + 0.25 = 1.5.
        assert!((m.kamel_faloutsos(0.0, 0.0) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn kf_region_query_adds_perimeter_and_count_terms() {
        let d = desc();
        let m = NodeAccessModel::new(&d);
        // A=1.5, Lx=Ly=2.0, M=3.
        let (qx, qy) = (0.1, 0.2);
        let expect = 1.5 + 0.1 * 2.0 + 0.2 * 2.0 + 3.0 * 0.1 * 0.2;
        assert!((m.kamel_faloutsos(qx, qy) - expect).abs() < 1e-12);
    }

    #[test]
    fn corrected_point_model_equals_kf_for_interior_rects() {
        // All MBRs inside the unit square: clamping changes nothing for
        // point queries.
        let d = desc();
        let m = NodeAccessModel::new(&d);
        let corrected = m.expected_node_accesses(&Workload::uniform_point());
        assert!((corrected - m.kamel_faloutsos(0.0, 0.0)).abs() < 1e-12);
    }

    #[test]
    fn corrected_region_model_is_below_kf() {
        // With big queries the unclamped KF formula overcounts (Fig. 3).
        let d = desc();
        let m = NodeAccessModel::new(&d);
        let w = Workload::uniform_region(0.5, 0.5);
        let corrected = m.expected_node_accesses(&w);
        assert!(corrected <= m.kamel_faloutsos(0.5, 0.5));
        // All three nodes are hit with probability 1 by a 0.5-square query?
        // Root certainly; children: C = min(1,1)-max(0,0.5)=0.5,
        // normalized by 0.5 -> 1. So corrected = 3.
        assert!((corrected - 3.0).abs() < 1e-12);
    }

    #[test]
    fn data_driven_expected_accesses() {
        let d = desc();
        let m = NodeAccessModel::new(&d);
        let centers = vec![
            rtree_geom::Point::new(0.25, 0.25),
            rtree_geom::Point::new(0.75, 0.75),
        ];
        let w = Workload::data_driven_point(centers);
        // Root always hit; each child hit by exactly one of two centers.
        let e = m.expected_node_accesses(&w);
        assert!((e - 2.0).abs() < 1e-12);
    }
}
