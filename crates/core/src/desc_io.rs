//! Reading and writing tree descriptions as plain text.
//!
//! The paper's workflow is hybrid: loading code builds a tree, the MBRs of
//! all nodes are dumped, and the model (or the simulator) consumes that
//! dump. This module fixes the interchange format so descriptions can cross
//! process boundaries — e.g. feed MBR lists extracted from another R-tree
//! implementation to this crate's model.
//!
//! Format: one node per line, `level x0 y0 x1 y1`, whitespace-separated,
//! levels in the paper's numbering (0 = root). Blank lines and lines
//! starting with `#` are ignored. Levels must be contiguous from 0 and
//! level 0 must hold exactly one node.

use crate::TreeDescription;
use rtree_geom::Rect;
use std::io::{self, BufRead, Write};

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

impl TreeDescription {
    /// Writes the description in the text format above.
    pub fn to_writer(&self, w: &mut impl Write) -> io::Result<()> {
        writeln!(
            w,
            "# R-tree description: level x0 y0 x1 y1 (level 0 = root)"
        )?;
        for (level, r) in self.iter() {
            writeln!(w, "{level} {} {} {} {}", r.lo.x, r.lo.y, r.hi.x, r.hi.y)?;
        }
        Ok(())
    }

    /// Serializes to a string.
    pub fn to_text(&self) -> String {
        let mut out = Vec::new();
        self.to_writer(&mut out).expect("write to Vec cannot fail");
        String::from_utf8(out).expect("format is ASCII")
    }

    /// Parses a description from the text format.
    pub fn from_reader(r: impl BufRead) -> io::Result<Self> {
        let mut levels: Vec<Vec<Rect>> = Vec::new();
        for (lineno, line) in r.lines().enumerate() {
            let line = line?;
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let mut field = |name: &str| {
                parts
                    .next()
                    .ok_or_else(|| bad(format!("line {}: missing {name}", lineno + 1)))
            };
            let level: usize = field("level")?
                .parse()
                .map_err(|e| bad(format!("line {}: bad level: {e}", lineno + 1)))?;
            let mut coord = |name: &str| -> io::Result<f64> {
                field(name)?
                    .parse()
                    .map_err(|e| bad(format!("line {}: bad {name}: {e}", lineno + 1)))
            };
            let (x0, y0, x1, y1) = (coord("x0")?, coord("y0")?, coord("x1")?, coord("y1")?);
            if parts.next().is_some() {
                return Err(bad(format!("line {}: trailing fields", lineno + 1)));
            }
            if !(x0 <= x1
                && y0 <= y1
                && x0.is_finite()
                && y0.is_finite()
                && x1.is_finite()
                && y1.is_finite())
            {
                return Err(bad(format!("line {}: invalid rectangle", lineno + 1)));
            }
            if level >= levels.len() {
                if level != levels.len() {
                    return Err(bad(format!(
                        "line {}: level {level} skips level {}",
                        lineno + 1,
                        levels.len()
                    )));
                }
                levels.push(Vec::new());
            }
            levels[level].push(Rect::new(x0, y0, x1, y1));
        }
        if levels.is_empty() {
            return Err(bad("no nodes in description"));
        }
        if levels[0].len() != 1 {
            return Err(bad(format!(
                "root level must hold exactly one node, found {}",
                levels[0].len()
            )));
        }
        Ok(TreeDescription::from_levels(levels))
    }

    /// Parses a description from a string.
    pub fn from_text(text: &str) -> io::Result<Self> {
        Self::from_reader(text.as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TreeDescription {
        TreeDescription::from_levels(vec![
            vec![Rect::new(0.0, 0.0, 1.0, 1.0)],
            vec![
                Rect::new(0.0, 0.0, 0.5, 1.0),
                Rect::new(0.5, 0.25, 1.0, 1.0),
            ],
        ])
    }

    #[test]
    fn round_trip() {
        let d = sample();
        let text = d.to_text();
        let back = TreeDescription::from_text(&text).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# header\n\n0 0 0 1 1\n  # indented comment\n1 0 0 0.5 0.5\n";
        let d = TreeDescription::from_text(text).unwrap();
        assert_eq!(d.height(), 2);
        assert_eq!(d.nodes_per_level(), vec![1, 1]);
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad_text in [
            "0 0 0 1",              // missing field
            "0 0 0 1 1 9",          // trailing field
            "x 0 0 1 1",            // bad level
            "0 a 0 1 1",            // bad coordinate
            "0 0.5 0 0.2 1",        // inverted rect
            "0 0 0 1 1\n2 0 0 1 1", // skipped level
            "",                     // empty
            "0 0 0 1 1\n0 0 0 1 1", // two roots
        ] {
            assert!(
                TreeDescription::from_text(bad_text).is_err(),
                "accepted: {bad_text:?}"
            );
        }
    }

    #[test]
    fn interop_with_model() {
        // A description parsed from text drives the model like a native one.
        let d = TreeDescription::from_text(&sample().to_text()).unwrap();
        let m = crate::BufferModel::new(&d, &crate::Workload::uniform_point());
        assert!(m.expected_node_accesses() > 1.0);
    }

    #[test]
    fn scientific_notation_coordinates_accepted() {
        let text = "0 0 0 1 1\n1 1e-3 2.5e-2 0.5 5e-1\n";
        let d = TreeDescription::from_text(text).unwrap();
        assert!((d.level(1)[0].lo.x - 0.001).abs() < 1e-15);
    }
}
