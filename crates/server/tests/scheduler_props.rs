//! Scheduler correctness properties, across all five replacement
//! policies (ISSUE 6 satellite):
//!
//! (a) every submitted query gets exactly one response whose results
//!     equal a direct `DiskRTree::query` on an identical tree;
//! (b) no executed batch exceeds the count bound;
//! (c) a burst of k concurrent clients costs at most the demand reads of
//!     the same queries run sequentially — cross-connection dedup
//!     actually engages.

use proptest::prelude::*;
use rtree_buffer::ReplacementPolicy;
use rtree_buffer::{ClockPolicy, FifoPolicy, LruKPolicy, LruPolicy, RandomPolicy};
use rtree_core::Workload;
use rtree_datagen::ClusteredPoints;
use rtree_geom::Rect;
use rtree_index::{BulkLoader, RTree};
use rtree_pager::{DiskRTree, MemStore};
use rtree_server::{BatchPolicy, JobOutput, MicroBatcher, QueryEngine, SequentialEngine};
use rtree_sim::QuerySampler;
use std::thread;
use std::time::Duration;

const POLICIES: [&str; 5] = ["lru", "lru2", "fifo", "clock", "random"];

fn policy(name: &str) -> Box<dyn ReplacementPolicy> {
    match name {
        "lru" => Box::new(LruPolicy::new()),
        "lru2" => Box::new(LruKPolicy::lru2()),
        "fifo" => Box::new(FifoPolicy::new()),
        "clock" => Box::new(ClockPolicy::new()),
        "random" => Box::new(RandomPolicy::new(0xC0FFEE)),
        other => panic!("unknown policy {other}"),
    }
}

fn build_tree(n: usize, seed: u64) -> RTree {
    let rects = ClusteredPoints::new(n, 16, 0.03).generate(seed);
    BulkLoader::hilbert(16).load(&rects)
}

fn query_stream(n: usize, seed: u64) -> Vec<Rect> {
    let mut sampler = QuerySampler::new(&Workload::uniform_region(0.05, 0.05), seed);
    (0..n).map(|_| sampler.sample()).collect()
}

/// Runs `queries` through a batcher from `threads` client threads,
/// returning per-query results in input order.
fn run_burst(
    batcher: &MicroBatcher<SequentialEngine<MemStore>>,
    queries: &[Rect],
    threads: usize,
) -> Vec<Vec<u64>> {
    let mut results: Vec<Option<Vec<u64>>> = vec![None; queries.len()];
    thread::scope(|scope| {
        let mut handles = Vec::new();
        for c in 0..threads {
            handles.push(scope.spawn(move || {
                let mut out = Vec::new();
                for (i, q) in queries.iter().enumerate().skip(c).step_by(threads) {
                    let rx = batcher.submit(*q, false).expect("accepting");
                    match rx.recv().expect("answered").expect("no io error") {
                        JobOutput::Matches(ids) => out.push((i, ids)),
                        other => panic!("expected matches, got {other:?}"),
                    }
                    // Exactly one response: the channel must now be empty
                    // and disconnected.
                    assert!(
                        rx.recv_timeout(Duration::from_millis(50)).is_err(),
                        "second response for one submission"
                    );
                }
                out
            }));
        }
        for h in handles {
            for (i, ids) in h.join().expect("client thread") {
                assert!(results[i].is_none(), "slot {i} answered twice");
                results[i] = Some(ids);
            }
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every query answered"))
        .collect()
}

#[test]
fn burst_matches_direct_queries_and_saves_reads_under_every_policy() {
    let tree = build_tree(4_000, 0xDA7A);
    let queries = query_stream(256, 0x5EED);
    let buffer = 64; // starved enough that reads actually happen
    let threads = 8;

    for name in POLICIES {
        // Reference: the same queries, one at a time, on an identical
        // cold tree with the same policy.
        let mut reference = DiskRTree::create(MemStore::new(), &tree, buffer, policy(name))
            .expect("reference tree");
        let mut expected = Vec::with_capacity(queries.len());
        for q in &queries {
            let mut ids = reference.query(q).expect("direct query");
            ids.sort_unstable();
            expected.push(ids);
        }
        let sequential_demand = reference.io_stats().demand_reads();

        let served =
            DiskRTree::create(MemStore::new(), &tree, buffer, policy(name)).expect("served tree");
        let batcher = MicroBatcher::new(
            SequentialEngine::new(served, 8),
            BatchPolicy {
                max_batch: 64,
                max_wait: Duration::from_millis(2),
                ..BatchPolicy::default()
            },
        );
        let got = run_burst(&batcher, &queries, threads);
        batcher.shutdown();

        // (a) exactly one response per query, equal to the direct result.
        for (i, (mut ids, want)) in got.into_iter().zip(&expected).enumerate() {
            ids.sort_unstable();
            assert_eq!(&ids, want, "policy {name}, query {i}");
        }

        // (b) the count bound held.
        let stats = batcher.stats();
        assert_eq!(stats.completed, queries.len() as u64, "policy {name}");
        assert!(
            stats.max_batch <= 64,
            "policy {name}: batch of {} exceeded the bound",
            stats.max_batch
        );

        // (c) harvesting k concurrent clients never costs more demand
        // reads than serving them one at a time.
        let burst_demand = batcher.engine().io_stats().demand_reads();
        assert!(
            burst_demand <= sequential_demand,
            "policy {name}: burst demand {burst_demand} > sequential {sequential_demand}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// (a)+(b) under randomized tree shape, batch window, and burst
    /// width — LRU as the representative policy (the all-policy sweep
    /// above covers the policy dimension deterministically).
    #[test]
    fn every_query_answered_once_and_correctly(
        data_seed in any::<u64>(),
        query_seed in any::<u64>(),
        max_batch in 1usize..48,
        threads in 1usize..9,
        n_queries in 1usize..96,
    ) {
        let tree = build_tree(800, data_seed);
        let queries = query_stream(n_queries, query_seed);

        let mut reference =
            DiskRTree::create(MemStore::new(), &tree, 32, LruPolicy::new()).expect("tree");
        let expected: Vec<Vec<u64>> = queries
            .iter()
            .map(|q| {
                let mut ids = reference.query(q).expect("direct");
                ids.sort_unstable();
                ids
            })
            .collect();

        let served =
            DiskRTree::create(MemStore::new(), &tree, 32, LruPolicy::new()).expect("tree");
        let batcher = MicroBatcher::new(
            SequentialEngine::new(served, 4),
            BatchPolicy {
                max_batch,
                max_wait: Duration::from_micros(200),
                ..BatchPolicy::default()
            },
        );
        let got = run_burst(&batcher, &queries, threads.min(queries.len()));
        batcher.shutdown();

        for (mut ids, want) in got.into_iter().zip(&expected) {
            ids.sort_unstable();
            prop_assert_eq!(&ids, want);
        }
        let stats = batcher.stats();
        prop_assert_eq!(stats.completed, queries.len() as u64);
        prop_assert!(stats.max_batch <= max_batch as u64);
        prop_assert_eq!(stats.batch_sizes.count(), stats.batches);
    }
}
