//! Deterministic fuzz smoke for the wire codec: the no-network stand-in
//! for `fuzz/fuzz_targets/frame_decode.rs` that runs in plain `cargo test`.
//!
//! Three generators feed `decode_frame` / `Request::decode` /
//! `Response::decode`: pure random bytes (mostly dies at the magic
//! check), *mutated valid frames* (encode a real message, flip a few
//! seeded bytes — reaches past the CRC only when the flips land in it),
//! and random-prefix truncations of valid frames. The invariant is the
//! fuzz target's: decoding returns `Ok` or a typed [`FrameError`], and
//! never panics — in particular hostile rectangle bytes must never reach
//! `Rect::new`'s debug assertions.
//!
//! The regression corpus at the bottom pins the hand-minimized inputs the
//! ISSUE calls out: truncated frames, bad CRC, oversized length, unknown
//! version.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use rtree_geom::Rect;
use rtree_server::wire::{
    decode_frame, encode_frame, FrameError, Request, Response, StatsReply, HEADER_LEN, MAX_PAYLOAD,
};

/// The fuzz invariant: every decoder is total on arbitrary bytes.
fn decode_all(bytes: &[u8]) {
    if let Ok(Some((payload, used))) = decode_frame(bytes) {
        assert!(used <= bytes.len(), "consumed more than offered");
        let _ = Request::decode(&payload);
        let _ = Response::decode(&payload);
    }
    // Payload decoders must also be total on unframed bytes.
    let _ = Request::decode(bytes);
    let _ = Response::decode(bytes);
}

fn sample_frames() -> Vec<Vec<u8>> {
    let rect = Rect::new(0.1, 0.2, 0.3, 0.4);
    let mut frames: Vec<Vec<u8>> = [
        Request::Query(rect).encode(),
        Request::Point(0.5, 0.5).encode(),
        Request::Count(rect).encode(),
        Request::Stats.encode(),
        Request::Shutdown.encode(),
        Response::Matches(vec![1, 2, 3]).encode(),
        Response::Count(7).encode(),
        Response::Stats(StatsReply::default()).encode(),
        Response::Overloaded.encode(),
        Response::Error("boom".into()).encode(),
        Response::ShuttingDown.encode(),
    ]
    .iter()
    .map(|p| encode_frame(p))
    .collect();
    frames.push(encode_frame(&[]));
    frames
}

#[test]
fn random_bytes_never_panic() {
    let mut rng = StdRng::seed_from_u64(0xF7A3_0001);
    for len in [0usize, 1, 2, 3, 11, 12, 13, 33, 45, 64, 257] {
        for _ in 0..500 {
            let mut buf = vec![0u8; len];
            rng.fill_bytes(&mut buf);
            decode_all(&buf);
        }
    }
}

#[test]
fn random_bytes_behind_a_valid_header_never_panic() {
    // Force decoding past the magic/version gate: valid header, random
    // payload with a *correct* CRC, so the payload decoders are reached.
    let mut rng = StdRng::seed_from_u64(0xF7A3_0002);
    for _ in 0..2_000 {
        let len = rng.gen_range(0..128usize);
        let mut payload = vec![0u8; len];
        rng.fill_bytes(&mut payload);
        decode_all(&encode_frame(&payload));
    }
}

#[test]
fn mutated_valid_frames_never_panic() {
    let mut rng = StdRng::seed_from_u64(0xF7A3_0003);
    let frames = sample_frames();
    for _ in 0..5_000 {
        let mut frame = frames[rng.gen_range(0..frames.len())].clone();
        for _ in 0..rng.gen_range(1..=4usize) {
            let i = rng.gen_range(0..frame.len());
            frame[i] ^= 1 << rng.gen_range(0..8u32);
        }
        decode_all(&frame);
    }
}

#[test]
fn truncations_are_incomplete_or_typed_errors() {
    for frame in sample_frames() {
        for cut in 0..frame.len() {
            match decode_frame(&frame[..cut]) {
                // A prefix of a valid frame is never a *complete* decode.
                Ok(Some(_)) => panic!("truncated frame decoded at cut {cut}"),
                Ok(None) | Err(_) => {}
            }
        }
    }
}

// ---- regression corpus ---------------------------------------------------

#[test]
fn regression_truncated_header() {
    // 5 bytes of valid header: incomplete, not an error.
    let frame = encode_frame(&Request::Stats.encode());
    assert_eq!(decode_frame(&frame[..5]), Ok(None));
}

#[test]
fn regression_truncated_payload() {
    // Full header, payload one byte short: incomplete.
    let frame = encode_frame(&Request::Query(Rect::new(0.0, 0.0, 1.0, 1.0)).encode());
    assert_eq!(decode_frame(&frame[..frame.len() - 1]), Ok(None));
}

#[test]
fn regression_bad_crc() {
    let mut frame = encode_frame(&Request::Stats.encode());
    let last = frame.len() - 1;
    frame[last] ^= 0x01;
    assert!(matches!(
        decode_frame(&frame),
        Err(FrameError::BadCrc { .. })
    ));
}

#[test]
fn regression_oversized_length() {
    // Length field claims 16 MiB: rejected before any allocation.
    let mut frame = encode_frame(&[]);
    frame[4..8].copy_from_slice(&(16u32 << 20).to_le_bytes());
    assert_eq!(decode_frame(&frame), Err(FrameError::Oversized(16 << 20)));
}

#[test]
fn regression_length_at_cap_is_accepted() {
    // Boundary: exactly MAX_PAYLOAD is legal.
    let payload = vec![0u8; MAX_PAYLOAD];
    let frame = encode_frame(&payload);
    let (decoded, used) = decode_frame(&frame).unwrap().unwrap();
    assert_eq!(decoded.len(), MAX_PAYLOAD);
    assert_eq!(used, HEADER_LEN + MAX_PAYLOAD);
}

#[test]
fn regression_unknown_version() {
    let mut frame = encode_frame(&Request::Stats.encode());
    frame[2..4].copy_from_slice(&7u16.to_le_bytes());
    assert_eq!(decode_frame(&frame), Err(FrameError::BadVersion(7)));
}

#[test]
fn regression_bad_magic_fails_fast() {
    // Garbage magic must error even before a full header arrives, so a
    // desynced stream tears down instead of waiting forever.
    assert!(matches!(decode_frame(b"XY"), Err(FrameError::BadMagic(_))));
    assert!(matches!(decode_frame(b"Q"), Err(FrameError::BadMagic(_))));
}

#[test]
fn regression_inverted_rect_is_bad_payload() {
    // tag 1 (Query) + hi < lo rectangle: must be BadPayload, not a panic
    // inside Rect::new.
    let mut p = vec![1u8];
    for v in [0.9f64, 0.9, 0.1, 0.1] {
        p.extend_from_slice(&v.to_le_bytes());
    }
    assert!(matches!(
        Request::decode(&p),
        Err(FrameError::BadPayload(_))
    ));
}

#[test]
fn regression_nan_point_is_bad_payload() {
    let mut p = vec![2u8];
    for v in [f64::NAN, 0.5] {
        p.extend_from_slice(&v.to_le_bytes());
    }
    assert!(matches!(
        Request::decode(&p),
        Err(FrameError::BadPayload(_))
    ));
}

#[test]
fn regression_matches_count_overflow() {
    // Matches reply announcing u32::MAX ids with a 5-byte body: typed
    // error, no multiplication overflow, no giant allocation.
    let mut p = vec![1u8];
    p.extend_from_slice(&u32::MAX.to_le_bytes());
    assert!(matches!(
        Response::decode(&p),
        Err(FrameError::BadPayload(_))
    ));
}

#[test]
fn regression_empty_payload_in_valid_frame() {
    let frame = encode_frame(&[]);
    let (payload, _) = decode_frame(&frame).unwrap().unwrap();
    assert!(matches!(
        Request::decode(&payload),
        Err(FrameError::BadPayload(_))
    ));
}
