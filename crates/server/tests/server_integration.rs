//! End-to-end server tests over real loopback TCP: serve on an ephemeral
//! port, drive with clients and the load generator, and check the typed
//! backpressure, shutdown, and error paths the ISSUE calls out.

use rtree_buffer::LruPolicy;
use rtree_core::Workload;
use rtree_datagen::ClusteredPoints;
use rtree_geom::Rect;
use rtree_index::{BulkLoader, RTree};
use rtree_pager::{ConcurrentDiskRTree, DiskRTree, MemStore};
use rtree_server::{
    loadgen, serve, BatchPolicy, Client, LoadConfig, QueryEngine, Request, Response,
    SequentialEngine, ServerConfig, ServerHandle, ShardedEngine,
};
use rtree_sim::QuerySampler;
use std::sync::Arc;
use std::sync::Mutex;
use std::time::Duration;

fn build_tree(n: usize) -> RTree {
    let rects = ClusteredPoints::new(n, 16, 0.03).generate(0xFEED);
    BulkLoader::hilbert(16).load(&rects)
}

fn start_server(tree: &RTree, batch: BatchPolicy) -> ServerHandle<SequentialEngine<MemStore>> {
    let disk = DiskRTree::create(MemStore::new(), tree, 128, LruPolicy::new()).expect("tree");
    serve(
        SequentialEngine::new(disk, 8),
        "127.0.0.1:0",
        ServerConfig {
            batch,
            read_timeout: Duration::from_millis(10),
        },
    )
    .expect("bind ephemeral port")
}

#[test]
fn queries_over_tcp_match_direct_queries() {
    let tree = build_tree(2_000);
    let handle = start_server(&tree, BatchPolicy::default());
    let mut reference =
        DiskRTree::create(MemStore::new(), &tree, 128, LruPolicy::new()).expect("tree");

    let mut sampler = QuerySampler::new(&Workload::uniform_region(0.04, 0.04), 7);
    let mut client = Client::connect(handle.addr()).expect("connect");
    for _ in 0..64 {
        let q = sampler.sample();
        let mut want = reference.query(&q).expect("direct");
        want.sort_unstable();
        match client.call(&Request::Query(q)).expect("call") {
            Some(Response::Matches(mut ids)) => {
                ids.sort_unstable();
                assert_eq!(ids, want);
            }
            other => panic!("expected matches, got {other:?}"),
        }
        // Count queries agree with the match count.
        match client.call(&Request::Count(q)).expect("call") {
            Some(Response::Count(n)) => assert_eq!(n, want.len() as u64),
            other => panic!("expected count, got {other:?}"),
        }
    }
    handle.shutdown();
}

#[test]
fn point_queries_work_and_malformed_payloads_keep_the_stream_aligned() {
    let tree = build_tree(500);
    let handle = start_server(&tree, BatchPolicy::default());
    let mut client = Client::connect(handle.addr()).expect("connect");

    // A malformed payload inside a well-formed frame gets a typed Error…
    match client.call_raw(&[99u8]).expect("call") {
        Some(Response::Error(msg)) => assert!(msg.contains("unknown"), "got: {msg}"),
        other => panic!("expected error, got {other:?}"),
    }
    // …and the connection still works afterwards.
    match client.call(&Request::Point(0.5, 0.5)).expect("call") {
        Some(Response::Matches(_)) => {}
        other => panic!("expected matches after error, got {other:?}"),
    }
    handle.shutdown();
}

#[test]
fn overload_returns_typed_response_not_oom() {
    let tree = build_tree(500);
    // A paused batcher (workers never started) with a tiny queue: the
    // fourth submission must be refused with Overloaded.
    let disk = DiskRTree::create(MemStore::new(), &tree, 64, LruPolicy::new()).expect("tree");
    let engine = SequentialEngine::new(disk, 4);
    let batcher = rtree_server::MicroBatcher::new_paused(
        engine,
        BatchPolicy {
            queue_depth: 3,
            ..BatchPolicy::default()
        },
    );
    for i in 0..3 {
        batcher
            .submit(Rect::new(0.1, 0.1, 0.2, 0.2), false)
            .unwrap_or_else(|e| panic!("submission {i} refused: {e:?}"));
    }
    assert_eq!(
        batcher.submit(Rect::new(0.1, 0.1, 0.2, 0.2), false).err(),
        Some(rtree_server::SubmitError::Overloaded)
    );
    assert_eq!(batcher.stats().rejected, 1);
    // Draining still answers the accepted three.
    batcher.start();
    batcher.shutdown();
    assert_eq!(batcher.stats().completed, 3);
}

#[test]
fn shutdown_frame_drains_and_stops_the_server() {
    let tree = build_tree(1_000);
    let handle = start_server(&tree, BatchPolicy::default());
    let addr = handle.addr();

    let mut client = Client::connect(addr).expect("connect");
    for _ in 0..8 {
        client
            .call(&Request::Query(Rect::new(0.2, 0.2, 0.4, 0.4)))
            .expect("query before shutdown");
    }
    match client.call(&Request::Shutdown).expect("shutdown call") {
        Some(Response::ShuttingDown) => {}
        other => panic!("expected shutting-down ack, got {other:?}"),
    }
    let stats = handle.shutdown();
    assert!(handle.stopped());
    assert_eq!(stats.queries, 8, "every accepted query drained");

    // The listener is gone: new connections fail (immediately or on
    // first use).
    std::thread::sleep(Duration::from_millis(20));
    let refused = match Client::connect(addr) {
        Err(_) => true,
        Ok(mut c) => c.call(&Request::Stats).is_err(),
    };
    assert!(refused, "server still answering after shutdown");
}

#[test]
fn handle_shutdown_is_idempotent_and_finishes_inflight_work() {
    let tree = build_tree(1_000);
    let handle = Arc::new(start_server(
        &tree,
        BatchPolicy {
            max_batch: 16,
            max_wait: Duration::from_millis(1),
            ..BatchPolicy::default()
        },
    ));
    let addr = handle.addr();

    // Clients hammer while another thread shuts the server down; every
    // response that arrives must still be well-formed.
    let answered = Arc::new(Mutex::new(0u64));
    std::thread::scope(|scope| {
        for c in 0..4 {
            let answered = Arc::clone(&answered);
            scope.spawn(move || {
                let mut client = match Client::connect(addr) {
                    Ok(c) => c,
                    Err(_) => return,
                };
                let mut sampler =
                    QuerySampler::new(&Workload::uniform_region(0.03, 0.03), c as u64);
                for _ in 0..200 {
                    match client.call(&Request::Query(sampler.sample())) {
                        Ok(Some(Response::Matches(_))) => {
                            *answered.lock().unwrap() += 1;
                        }
                        Ok(Some(Response::ShuttingDown)) | Ok(None) | Err(_) => return,
                        Ok(Some(other)) => panic!("unexpected reply {other:?}"),
                    }
                }
            });
        }
        let handle2 = Arc::clone(&handle);
        scope.spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            handle2.shutdown();
            handle2.shutdown(); // idempotent
        });
    });
    let stats = handle.stats();
    assert!(
        stats.queries >= *answered.lock().unwrap(),
        "server answered more than it completed"
    );
}

#[test]
fn loadgen_reports_reconciled_stats() {
    let tree = build_tree(3_000);
    let handle = start_server(&tree, BatchPolicy::default());

    let report = loadgen::run(
        handle.addr(),
        &LoadConfig {
            connections: 4,
            queries: 400,
            target_qps: 0.0,
            workload: Workload::uniform_region(0.03, 0.03),
            count_fraction: 0.25,
            write_fraction: 0.0,
            seed: 11,
            shutdown_after: false,
        },
    )
    .expect("load run");

    assert_eq!(report.ok, 400, "closed loop completes everything");
    assert_eq!(report.errors, 0);
    assert_eq!(report.overloaded, 0);
    assert_eq!(report.latency_ns.count(), report.ok);
    assert!(report.achieved_qps() > 0.0);

    // The server's own counters reconcile with the client's view.
    let delta = report.stats_after.queries - report.stats_before.queries;
    assert_eq!(delta, 400, "server completed exactly the offered queries");
    assert!(report.stats_after.batches > 0);
    assert_eq!(
        report.stats_after.physical_reads,
        report.stats_after.demand_reads + report.stats_after.prefetch_reads,
        "physical = demand + prefetch"
    );

    let final_stats = handle.shutdown();
    assert_eq!(final_stats.queries, handle.batcher().stats().completed);
}

#[test]
fn loadgen_open_loop_paces_and_shutdown_after_stops_server() {
    let tree = build_tree(1_000);
    let handle = start_server(&tree, BatchPolicy::default());

    let report = loadgen::run(
        handle.addr(),
        &LoadConfig {
            connections: 2,
            queries: 50,
            target_qps: 2_000.0,
            workload: Workload::uniform_point(),
            count_fraction: 0.0,
            write_fraction: 0.0,
            seed: 3,
            shutdown_after: true,
        },
    )
    .expect("load run");
    assert_eq!(report.ok, 50);
    // Open loop at 2k qps: 50 queries take at least ~25ms of schedule.
    assert!(report.elapsed >= Duration::from_millis(20));
    assert!(handle.stopped(), "shutdown_after set the stop flag");
    handle.shutdown();
}

#[test]
fn sharded_engine_serves_identical_results() {
    let tree = build_tree(2_000);
    let concurrent =
        ConcurrentDiskRTree::create_sharded(MemStore::new(), &tree, 128, 4, LruPolicy::new)
            .expect("sharded tree");
    let handle = serve(
        ShardedEngine::new(concurrent, 2),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .expect("serve sharded");

    let mut reference =
        DiskRTree::create(MemStore::new(), &tree, 128, LruPolicy::new()).expect("tree");
    let mut sampler = QuerySampler::new(&Workload::uniform_region(0.04, 0.04), 23);
    let mut client = Client::connect(handle.addr()).expect("connect");
    for _ in 0..32 {
        let q = sampler.sample();
        let mut want = reference.query(&q).expect("direct");
        want.sort_unstable();
        match client.call(&Request::Query(q)).expect("call") {
            Some(Response::Matches(mut ids)) => {
                ids.sort_unstable();
                assert_eq!(ids, want);
            }
            other => panic!("expected matches, got {other:?}"),
        }
    }
    let stats = handle.shutdown();
    assert_eq!(stats.queries, 32);
    let _ = handle.batcher().engine().io_stats();
}

#[test]
fn replay_partitions_across_connections_in_order() {
    let tree = build_tree(1_500);
    let handle = start_server(&tree, BatchPolicy::default());
    let mut reference =
        DiskRTree::create(MemStore::new(), &tree, 128, LruPolicy::new()).expect("tree");

    let mut sampler = QuerySampler::new(&Workload::uniform_region(0.05, 0.05), 99);
    let rects: Vec<Rect> = (0..40).map(|_| sampler.sample()).collect();
    let got = loadgen::replay(handle.addr(), &rects, 5).expect("replay");
    assert_eq!(got.len(), rects.len());
    for (q, mut ids) in rects.iter().zip(got) {
        let mut want = reference.query(q).expect("direct");
        want.sort_unstable();
        ids.sort_unstable();
        assert_eq!(ids, want);
    }
    handle.shutdown();
}

#[test]
fn writer_server_serves_reads_its_own_writes_durably() {
    use rtree_pager::SharedMemStore;
    use rtree_server::WriterEngine;
    use rtree_wal::{GroupWal, MemLog};

    let wal = GroupWal::open(MemLog::new()).expect("wal");
    let tree = ConcurrentDiskRTree::create_writable(
        SharedMemStore::new(),
        16,
        4,
        128,
        LruPolicy::new(),
        wal,
    )
    .expect("writable tree");
    let handle = serve(
        WriterEngine::new(tree, 2, 4, true),
        "127.0.0.1:0",
        ServerConfig {
            batch: BatchPolicy::default(),
            read_timeout: Duration::from_millis(10),
        },
    )
    .expect("bind ephemeral port");

    // Read-your-writes over the wire: insert, query, delete, re-delete.
    let mut client = Client::connect(handle.addr()).expect("connect");
    let r = Rect::new(0.40, 0.40, 0.41, 0.41);
    match client.call(&Request::Insert(r, 777)).expect("call") {
        Some(Response::Written(true)) => {}
        other => panic!("expected Written(true), got {other:?}"),
    }
    match client.call(&Request::Query(r)).expect("call") {
        Some(Response::Matches(ids)) => assert!(ids.contains(&777), "insert is visible"),
        other => panic!("expected matches, got {other:?}"),
    }
    match client.call(&Request::Delete(r, 777)).expect("call") {
        Some(Response::Written(true)) => {}
        other => panic!("expected Written(true), got {other:?}"),
    }
    match client.call(&Request::Delete(r, 777)).expect("call") {
        Some(Response::Written(false)) => {}
        other => panic!("expected Written(false) for a gone entry, got {other:?}"),
    }

    // Mixed closed-loop load: every op answered, write counters reconcile.
    let report = loadgen::run(
        handle.addr(),
        &LoadConfig {
            connections: 4,
            queries: 200,
            target_qps: 0.0,
            workload: Workload::uniform_region(0.02, 0.02),
            count_fraction: 0.0,
            write_fraction: 0.3,
            seed: 9,
            shutdown_after: false,
        },
    )
    .expect("load run");
    assert_eq!(report.errors, 0);
    assert_eq!(report.overloaded, 0);
    assert_eq!(report.ok + report.writes_ok, 200, "every op answered");
    assert!(
        (55..=65).contains(&(report.writes_ok as i64)),
        "~30% of 200 ops are writes, got {}",
        report.writes_ok
    );
    let wrote = report.stats_after.writes - report.stats_before.writes;
    assert_eq!(wrote, report.writes_ok, "server write counter reconciles");
    assert!(report.stats_after.wal_fsyncs > 0, "writes hit the WAL");
    assert!(report.stats_after.commit_batches > 0);
    assert!(report.write_latency_ns.count() == report.writes_ok);

    let stats = handle.shutdown();
    assert_eq!(
        stats.writes, report.stats_after.writes,
        "no writes after the run"
    );
}

#[test]
fn read_only_server_answers_writes_with_a_typed_error() {
    let tree = build_tree(200);
    let handle = start_server(&tree, BatchPolicy::default());
    let mut client = Client::connect(handle.addr()).expect("connect");
    let r = Rect::new(0.1, 0.1, 0.2, 0.2);
    match client.call(&Request::Insert(r, 1)).expect("call") {
        Some(Response::Error(msg)) => assert!(msg.contains("read-only"), "got: {msg}"),
        other => panic!("expected a typed error, got {other:?}"),
    }
    // The stream stays aligned: a query still works.
    match client.call(&Request::Query(r)).expect("call") {
        Some(Response::Matches(_)) => {}
        other => panic!("expected matches, got {other:?}"),
    }
    handle.shutdown();
}
