//! Open-loop load generation against a running server.
//!
//! With a target QPS the generator schedules send times up front
//! (`t_i = start + i·interval`) and charges each query's latency from its
//! *scheduled* time, not the actual send — the standard correction for
//! coordinated omission, so a stalled server inflates the tail instead of
//! silently slowing the offered load. With `target_qps == 0` it runs
//! closed-loop: each connection fires its next query the moment the
//! previous answer lands, which is the regime that exercises micro-batch
//! harvesting hardest.
//!
//! Reads-per-query accounting queries the server's [`Request::Stats`]
//! counters before and after the run, so the reported demand reads are
//! the server's own, not a client-side guess.

use crate::server::Client;
use crate::wire::{Request, Response, StatsReply};
use rtree_core::Workload;
use rtree_geom::Rect;
use rtree_obs::Histogram;
use rtree_sim::QuerySampler;
use std::io;
use std::net::ToSocketAddrs;
use std::sync::{Mutex, PoisonError};
use std::thread;
use std::time::{Duration, Instant};

/// What load to offer and how.
#[derive(Clone, Debug)]
pub struct LoadConfig {
    /// Concurrent client connections.
    pub connections: usize,
    /// Total queries across all connections.
    pub queries: usize,
    /// Offered load in queries/second across all connections; 0 runs
    /// closed-loop (fire on completion).
    pub target_qps: f64,
    /// Query distribution (uniform or data-driven, point or region).
    pub workload: Workload,
    /// Fraction of queries sent as count-only requests.
    pub count_fraction: f64,
    /// Fraction of operations sent as inserts (spread evenly through
    /// each connection's schedule). Item ids are `(conn << 40) | i`, so
    /// connections never collide. Requires a write-capable server.
    pub write_fraction: f64,
    /// Base RNG seed; connection c uses `seed + c`.
    pub seed: u64,
    /// Send a shutdown request after the run completes.
    pub shutdown_after: bool,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            connections: 8,
            queries: 1000,
            target_qps: 0.0,
            workload: Workload::uniform_region(0.01, 0.01),
            count_fraction: 0.0,
            write_fraction: 0.0,
            seed: 42,
            shutdown_after: false,
        }
    }
}

/// What one run measured.
#[derive(Clone, Debug)]
pub struct LoadReport {
    /// Queries sent.
    pub sent: u64,
    /// Queries answered with matches or a count.
    pub ok: u64,
    /// Writes acknowledged as durably committed.
    pub writes_ok: u64,
    /// Queries refused with `Overloaded`.
    pub overloaded: u64,
    /// Queries answered with an error or lost to a closed connection.
    pub errors: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Per-query latency in nanoseconds (scheduled-send to receive).
    pub latency_ns: Histogram,
    /// Per-write latency in nanoseconds (scheduled-send to durable ack).
    pub write_latency_ns: Histogram,
    /// Server counters when the run started.
    pub stats_before: StatsReply,
    /// Server counters when the run ended.
    pub stats_after: StatsReply,
}

impl LoadReport {
    /// Queries per second actually completed.
    pub fn achieved_qps(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        self.ok as f64 / self.elapsed.as_secs_f64()
    }

    /// Server-side demand reads per completed query over the run window.
    pub fn demand_reads_per_query(&self) -> f64 {
        let queries = self
            .stats_after
            .queries
            .saturating_sub(self.stats_before.queries);
        if queries == 0 {
            return 0.0;
        }
        let reads = self
            .stats_after
            .demand_reads
            .saturating_sub(self.stats_before.demand_reads);
        reads as f64 / queries as f64
    }

    /// Latency quantile in milliseconds (conservative bucket upper bound).
    pub fn latency_ms(&self, q: f64) -> f64 {
        self.latency_ns.quantile(q) as f64 / 1e6
    }

    /// Mean latency in milliseconds.
    pub fn mean_latency_ms(&self) -> f64 {
        self.latency_ns.mean() / 1e6
    }

    /// Write-latency quantile in milliseconds.
    pub fn write_latency_ms(&self, q: f64) -> f64 {
        self.write_latency_ns.quantile(q) as f64 / 1e6
    }

    /// Server-side WAL fsyncs per acknowledged write over the run window
    /// — the number group commit exists to shrink below 1.
    pub fn fsyncs_per_write(&self) -> f64 {
        let writes = self
            .stats_after
            .writes
            .saturating_sub(self.stats_before.writes);
        if writes == 0 {
            return 0.0;
        }
        let fsyncs = self
            .stats_after
            .wal_fsyncs
            .saturating_sub(self.stats_before.wal_fsyncs);
        fsyncs as f64 / writes as f64
    }
}

struct Tally {
    ok: u64,
    writes_ok: u64,
    overloaded: u64,
    errors: u64,
    latency: Histogram,
    write_latency: Histogram,
}

impl Tally {
    fn new() -> Self {
        Tally {
            ok: 0,
            writes_ok: 0,
            overloaded: 0,
            errors: 0,
            latency: Histogram::new(),
            write_latency: Histogram::new(),
        }
    }
}

/// True when operation `i` of `n` should be a write so that writes land
/// evenly through the schedule (every `1/fraction`-th op), not bunched
/// at the front.
fn is_write_slot(i: usize, fraction: f64) -> bool {
    if fraction <= 0.0 {
        return false;
    }
    ((i + 1) as f64 * fraction).floor() > (i as f64 * fraction).floor()
}

fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Runs the configured load against `addr` and reports.
pub fn run(
    addr: impl ToSocketAddrs + Clone + Send + Sync,
    config: &LoadConfig,
) -> io::Result<LoadReport> {
    let connections = config.connections.max(1);
    let per_conn = config.queries / connections;
    let remainder = config.queries % connections;
    // Offered inter-send interval per connection (open-loop only).
    let interval = if config.target_qps > 0.0 {
        Some(Duration::from_secs_f64(
            connections as f64 / config.target_qps,
        ))
    } else {
        None
    };

    let stats_before = fetch_stats(addr.clone())?;
    let tally = Mutex::new(Tally::new());
    let start = Instant::now();

    thread::scope(|scope| -> io::Result<()> {
        let mut handles = Vec::new();
        for c in 0..connections {
            let n = per_conn + usize::from(c < remainder);
            if n == 0 {
                continue;
            }
            let addr = addr.clone();
            let tally = &tally;
            let workload = &config.workload;
            let (seed, count_fraction) = (config.seed, config.count_fraction);
            let write_fraction = config.write_fraction;
            handles.push(scope.spawn(move || -> io::Result<()> {
                let mut client = Client::connect(addr)?;
                let mut sampler = QuerySampler::new(workload, seed.wrapping_add(c as u64));
                let mut local = Tally::new();
                for i in 0..n {
                    // Open loop: wait for the scheduled send time, then
                    // charge latency from it. Closed loop: now is the
                    // scheduled time.
                    let scheduled = match interval {
                        Some(iv) => {
                            let t = start + iv * i as u32 + iv / connections as u32 * c as u32;
                            if let Some(wait) = t.checked_duration_since(Instant::now()) {
                                thread::sleep(wait);
                            }
                            t
                        }
                        None => Instant::now(),
                    };
                    let rect = sampler.sample();
                    let req = if is_write_slot(i, write_fraction) {
                        // Disjoint id spaces per connection: 24 bits of
                        // connection, 40 bits of sequence.
                        Request::Insert(rect, ((c as u64) << 40) | i as u64)
                    } else if count_fraction > 0.0 && (i as f64 / n as f64) < count_fraction {
                        Request::Count(rect)
                    } else {
                        Request::Query(rect)
                    };
                    match client.call(&req)? {
                        Some(Response::Matches(_)) | Some(Response::Count(_)) => {
                            local.ok += 1;
                            local.latency.record(scheduled.elapsed().as_nanos() as u64);
                        }
                        Some(Response::Written(_)) => {
                            local.writes_ok += 1;
                            local
                                .write_latency
                                .record(scheduled.elapsed().as_nanos() as u64);
                        }
                        Some(Response::Overloaded) => local.overloaded += 1,
                        Some(Response::ShuttingDown) | None => {
                            local.errors += u64::try_from(n - i).unwrap_or(u64::MAX);
                            break;
                        }
                        Some(_) => local.errors += 1,
                    }
                }
                let mut t = lock(tally);
                t.ok += local.ok;
                t.writes_ok += local.writes_ok;
                t.overloaded += local.overloaded;
                t.errors += local.errors;
                t.latency.merge(&local.latency);
                t.write_latency.merge(&local.write_latency);
                Ok(())
            }));
        }
        for h in handles {
            match h.join() {
                Ok(r) => r?,
                Err(_) => {
                    return Err(io::Error::other("load generator thread panicked"));
                }
            }
        }
        Ok(())
    })?;

    let elapsed = start.elapsed();
    let stats_after = fetch_stats(addr.clone())?;
    if config.shutdown_after {
        let mut client = Client::connect(addr)?;
        let _ = client.call(&Request::Shutdown)?;
    }

    let t = tally.into_inner().unwrap_or_else(PoisonError::into_inner);
    Ok(LoadReport {
        sent: config.queries as u64,
        ok: t.ok,
        writes_ok: t.writes_ok,
        overloaded: t.overloaded,
        errors: t.errors,
        elapsed,
        latency_ns: t.latency,
        write_latency_ns: t.write_latency,
        stats_before,
        stats_after,
    })
}

fn fetch_stats(addr: impl ToSocketAddrs) -> io::Result<StatsReply> {
    let mut client = Client::connect(addr)?;
    match client.call(&Request::Stats)? {
        Some(Response::Stats(s)) => Ok(s),
        other => Err(io::Error::other(format!(
            "expected a stats reply, got {other:?}"
        ))),
    }
}

/// Replays an explicit list of rectangles over `connections` parallel
/// clients (rectangle `i` goes to connection `i % connections`), returning
/// the per-rectangle results in input order. Used by the chaos harness to
/// check the network path against its shadow oracle with a deterministic
/// query set.
pub fn replay(
    addr: impl ToSocketAddrs + Clone + Send + Sync,
    rects: &[Rect],
    connections: usize,
) -> io::Result<Vec<Vec<u64>>> {
    let connections = connections.clamp(1, rects.len().max(1));
    let mut results: Vec<Option<Vec<u64>>> = vec![None; rects.len()];
    let slots = Mutex::new(&mut results);
    thread::scope(|scope| -> io::Result<()> {
        let mut handles = Vec::new();
        for c in 0..connections {
            let addr = addr.clone();
            let slots = &slots;
            handles.push(scope.spawn(move || -> io::Result<()> {
                let mut client = Client::connect(addr)?;
                for (i, rect) in rects.iter().enumerate().skip(c).step_by(connections) {
                    match client.call(&Request::Query(*rect))? {
                        Some(Response::Matches(ids)) => {
                            lock(slots)[i] = Some(ids);
                        }
                        other => {
                            return Err(io::Error::other(format!(
                                "query {i}: expected matches, got {other:?}"
                            )));
                        }
                    }
                }
                Ok(())
            }));
        }
        for h in handles {
            match h.join() {
                Ok(r) => r?,
                Err(_) => return Err(io::Error::other("replay thread panicked")),
            }
        }
        Ok(())
    })?;
    Ok(results
        .into_iter()
        .map(|r| r.expect("every slot filled or an error returned"))
        .collect())
}
