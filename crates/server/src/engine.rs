//! The execution back-ends a [`crate::MicroBatcher`] drives.
//!
//! A [`QueryEngine`] takes a closed micro-batch of query rectangles and
//! returns one result vector per query; the scheduler never sees pages,
//! buffers, or locks. Two implementations cover the two serving modes the
//! workspace already measures offline:
//!
//! * [`SequentialEngine`] — one `DiskRTree` behind a mutex, executed with
//!   [`BatchExecutor`] so the batch's page-level dedup and readahead
//!   engage (the lever ISSUE 6 is built to demonstrate).
//! * [`ShardedEngine`] — a `ConcurrentDiskRTree`, executed with
//!   `query_batch` across its shards.

use rtree_exec::{BatchConfig, BatchExecutor};
use rtree_geom::Rect;
use rtree_pager::{ConcurrentDiskRTree, DiskRTree, IoStats, PageStore, SharedPageStore};
use std::io;
use std::sync::Mutex;

/// A batch execution back-end for the scheduler.
///
/// `execute` must return exactly one `Vec<u64>` per input rectangle, in
/// input order — the batcher demultiplexes results back to waiting
/// connections by position.
pub trait QueryEngine: Send + Sync + 'static {
    /// Executes a closed batch, returning matching ids per query.
    fn execute(&self, queries: &[Rect]) -> io::Result<Vec<Vec<u64>>>;

    /// Cumulative physical I/O counters of the underlying tree.
    fn io_stats(&self) -> IoStats;
}

impl QueryEngine for Box<dyn QueryEngine> {
    fn execute(&self, queries: &[Rect]) -> io::Result<Vec<Vec<u64>>> {
        (**self).execute(queries)
    }

    fn io_stats(&self) -> IoStats {
        (**self).io_stats()
    }
}

/// One `DiskRTree` behind a mutex, batches executed via [`BatchExecutor`].
///
/// Queries inside a batch share the executor's page-request dedup and
/// level-ordered readahead, so k concurrent clients cost fewer demand
/// reads than k sequential queries — the serving-side analogue of the
/// paper's buffering result.
pub struct SequentialEngine<S: PageStore + Send + 'static> {
    tree: Mutex<DiskRTree<S>>,
    executor: BatchExecutor,
}

impl<S: PageStore + Send + 'static> SequentialEngine<S> {
    /// Wraps `tree`, executing batches with `prefetch_window` pages of
    /// readahead (0 disables readahead but keeps dedup).
    pub fn new(tree: DiskRTree<S>, prefetch_window: usize) -> Self {
        SequentialEngine {
            tree: Mutex::new(tree),
            executor: BatchExecutor::with_config(BatchConfig { prefetch_window }),
        }
    }

    /// Runs `f` with the locked tree — for setup (pinning, trace sinks)
    /// and test assertions, not the serving path.
    pub fn with_tree<R>(&self, f: impl FnOnce(&mut DiskRTree<S>) -> R) -> R {
        let mut tree = self
            .tree
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        f(&mut tree)
    }
}

impl<S: PageStore + Send + 'static> QueryEngine for SequentialEngine<S> {
    fn execute(&self, queries: &[Rect]) -> io::Result<Vec<Vec<u64>>> {
        let mut tree = self
            .tree
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        Ok(self.executor.execute(&mut tree, queries)?.results)
    }

    fn io_stats(&self) -> IoStats {
        self.tree
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .io_stats()
    }
}

/// A `ConcurrentDiskRTree` executing batches across its shards with
/// `query_batch`.
pub struct ShardedEngine<S: SharedPageStore + Send + Sync + 'static> {
    tree: ConcurrentDiskRTree<S>,
    threads: usize,
}

impl<S: SharedPageStore + Send + Sync + 'static> ShardedEngine<S> {
    /// Wraps `tree`; each batch fans out over `threads` worker threads.
    pub fn new(tree: ConcurrentDiskRTree<S>, threads: usize) -> Self {
        ShardedEngine {
            tree,
            threads: threads.max(1),
        }
    }

    /// The wrapped tree, for setup and assertions.
    pub fn tree(&self) -> &ConcurrentDiskRTree<S> {
        &self.tree
    }
}

impl<S: SharedPageStore + Send + Sync + 'static> QueryEngine for ShardedEngine<S> {
    fn execute(&self, queries: &[Rect]) -> io::Result<Vec<Vec<u64>>> {
        self.tree.query_batch(queries, self.threads)
    }

    fn io_stats(&self) -> IoStats {
        self.tree.io_stats()
    }
}
