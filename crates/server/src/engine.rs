//! The execution back-ends a [`crate::MicroBatcher`] drives.
//!
//! A [`QueryEngine`] takes a closed micro-batch of query rectangles and
//! returns one result vector per query; the scheduler never sees pages,
//! buffers, or locks. Two implementations cover the two serving modes the
//! workspace already measures offline:
//!
//! * [`SequentialEngine`] — one `DiskRTree` behind a mutex, executed with
//!   [`BatchExecutor`] so the batch's page-level dedup and readahead
//!   engage (the lever ISSUE 6 is built to demonstrate).
//! * [`ShardedEngine`] — a `ConcurrentDiskRTree`, executed with
//!   `query_batch` across its shards.
//! * [`WriterEngine`] — a *writable* `ConcurrentDiskRTree`: queries run
//!   as in the sharded engine, and [`WriteOp`] batches fan out over
//!   threads so their latch-crabbing inserts overlap and their WAL
//!   commits coalesce into group-commit batches.

use rtree_exec::{BatchConfig, BatchExecutor};
use rtree_geom::Rect;
use rtree_pager::{
    ConcurrentDiskRTree, ConcurrentPageStore, DiskRTree, IoStats, PageStore, SharedPageStore,
};
use std::io;
use std::sync::Mutex;

/// One mutation, as it travels from the wire through the scheduler to a
/// write-capable engine.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum WriteOp {
    /// Insert `(rect, id)`.
    Insert(Rect, u64),
    /// Delete the entry matching `(rect, id)` exactly.
    Delete(Rect, u64),
}

/// Cumulative write-side counters of an engine. All zero for read-only
/// engines.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WriteStats {
    /// Applied logical writes (inserts plus deletes that found their
    /// entry).
    pub writes: u64,
    /// WAL fsyncs issued.
    pub wal_fsyncs: u64,
    /// Group-commit batches flushed.
    pub commit_batches: u64,
}

/// A batch execution back-end for the scheduler.
///
/// `execute` must return exactly one `Vec<u64>` per input rectangle, in
/// input order — the batcher demultiplexes results back to waiting
/// connections by position. `execute_writes` follows the same positional
/// contract for mutations; engines that cannot write keep the default
/// (one `Unsupported` error per op), so read-only servers answer write
/// requests with a typed error instead of wedging the connection.
pub trait QueryEngine: Send + Sync + 'static {
    /// Executes a closed batch, returning matching ids per query.
    fn execute(&self, queries: &[Rect]) -> io::Result<Vec<Vec<u64>>>;

    /// Cumulative physical I/O counters of the underlying tree.
    fn io_stats(&self) -> IoStats;

    /// Applies a closed batch of mutations, one durably committed result
    /// per op in input order (`true` = applied, `false` = delete found no
    /// entry).
    fn execute_writes(&self, ops: &[WriteOp]) -> Vec<io::Result<bool>> {
        ops.iter()
            .map(|_| {
                Err(io::Error::new(
                    io::ErrorKind::Unsupported,
                    "this engine is read-only",
                ))
            })
            .collect()
    }

    /// Cumulative write counters (defaults to all-zero for read-only
    /// engines).
    fn write_stats(&self) -> WriteStats {
        WriteStats::default()
    }
}

impl QueryEngine for Box<dyn QueryEngine> {
    fn execute(&self, queries: &[Rect]) -> io::Result<Vec<Vec<u64>>> {
        (**self).execute(queries)
    }

    fn io_stats(&self) -> IoStats {
        (**self).io_stats()
    }

    fn execute_writes(&self, ops: &[WriteOp]) -> Vec<io::Result<bool>> {
        (**self).execute_writes(ops)
    }

    fn write_stats(&self) -> WriteStats {
        (**self).write_stats()
    }
}

/// One `DiskRTree` behind a mutex, batches executed via [`BatchExecutor`].
///
/// Queries inside a batch share the executor's page-request dedup and
/// level-ordered readahead, so k concurrent clients cost fewer demand
/// reads than k sequential queries — the serving-side analogue of the
/// paper's buffering result.
pub struct SequentialEngine<S: PageStore + Send + 'static> {
    tree: Mutex<DiskRTree<S>>,
    executor: BatchExecutor,
}

impl<S: PageStore + Send + 'static> SequentialEngine<S> {
    /// Wraps `tree`, executing batches with `prefetch_window` pages of
    /// readahead (0 disables readahead but keeps dedup).
    pub fn new(tree: DiskRTree<S>, prefetch_window: usize) -> Self {
        SequentialEngine {
            tree: Mutex::new(tree),
            executor: BatchExecutor::with_config(BatchConfig { prefetch_window }),
        }
    }

    /// Runs `f` with the locked tree — for setup (pinning, trace sinks)
    /// and test assertions, not the serving path.
    pub fn with_tree<R>(&self, f: impl FnOnce(&mut DiskRTree<S>) -> R) -> R {
        let mut tree = self
            .tree
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        f(&mut tree)
    }
}

impl<S: PageStore + Send + 'static> QueryEngine for SequentialEngine<S> {
    fn execute(&self, queries: &[Rect]) -> io::Result<Vec<Vec<u64>>> {
        let mut tree = self
            .tree
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        Ok(self.executor.execute(&mut tree, queries)?.results)
    }

    fn io_stats(&self) -> IoStats {
        self.tree
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .io_stats()
    }
}

/// A `ConcurrentDiskRTree` executing batches across its shards with
/// `query_batch`.
pub struct ShardedEngine<S: SharedPageStore + Send + Sync + 'static> {
    tree: ConcurrentDiskRTree<S>,
    threads: usize,
}

impl<S: SharedPageStore + Send + Sync + 'static> ShardedEngine<S> {
    /// Wraps `tree`; each batch fans out over `threads` worker threads.
    pub fn new(tree: ConcurrentDiskRTree<S>, threads: usize) -> Self {
        ShardedEngine {
            tree,
            threads: threads.max(1),
        }
    }

    /// The wrapped tree, for setup and assertions.
    pub fn tree(&self) -> &ConcurrentDiskRTree<S> {
        &self.tree
    }
}

impl<S: SharedPageStore + Send + Sync + 'static> QueryEngine for ShardedEngine<S> {
    fn execute(&self, queries: &[Rect]) -> io::Result<Vec<Vec<u64>>> {
        self.tree.query_batch(queries, self.threads)
    }

    fn io_stats(&self) -> IoStats {
        self.tree.io_stats()
    }
}

/// A writable `ConcurrentDiskRTree` serving reads *and* writes.
///
/// Queries run exactly as in [`ShardedEngine`]. Write batches fan out
/// over up to `write_threads` scoped threads, one op per thread at a
/// time: each insert/delete crabs its own latch path and then joins the
/// WAL's group commit, so a batch of k writes typically costs one fsync
/// instead of k. With `group_commit` disabled the ops run one at a time
/// — every commit is a batch of one, the per-op-fsync baseline the
/// `server_throughput` experiment compares against.
pub struct WriterEngine<S: ConcurrentPageStore + Send + 'static> {
    tree: ConcurrentDiskRTree<S>,
    threads: usize,
    write_threads: usize,
    group_commit: bool,
}

impl<S: ConcurrentPageStore + Send + 'static> WriterEngine<S> {
    /// Wraps a writable `tree` (see
    /// `ConcurrentDiskRTree::create_writable`). Queries fan out over
    /// `threads`; write batches over `write_threads` when `group_commit`
    /// is on, serially when it is off.
    ///
    /// # Panics
    /// Panics if the tree was opened read-only — a server configured for
    /// writers must fail loudly at startup, not per-request.
    pub fn new(
        tree: ConcurrentDiskRTree<S>,
        threads: usize,
        write_threads: usize,
        group_commit: bool,
    ) -> Self {
        assert!(
            tree.is_writable(),
            "WriterEngine needs a tree opened through a writable constructor"
        );
        WriterEngine {
            tree,
            threads: threads.max(1),
            write_threads: write_threads.max(1),
            group_commit,
        }
    }

    /// The wrapped tree, for setup and assertions.
    pub fn tree(&self) -> &ConcurrentDiskRTree<S> {
        &self.tree
    }

    fn apply(&self, op: &WriteOp) -> io::Result<bool> {
        match op {
            WriteOp::Insert(r, item) => self.tree.insert(r, *item).map(|()| true),
            WriteOp::Delete(r, item) => self.tree.delete(r, *item),
        }
    }
}

impl<S: ConcurrentPageStore + Send + 'static> QueryEngine for WriterEngine<S> {
    fn execute(&self, queries: &[Rect]) -> io::Result<Vec<Vec<u64>>> {
        self.tree.query_batch(queries, self.threads)
    }

    fn io_stats(&self) -> IoStats {
        self.tree.io_stats()
    }

    fn execute_writes(&self, ops: &[WriteOp]) -> Vec<io::Result<bool>> {
        if !self.group_commit || ops.len() == 1 {
            // Serial application: no two commits overlap, so every op
            // leads its own batch and pays its own fsync.
            return ops.iter().map(|op| self.apply(op)).collect();
        }
        // Overlap the ops so their commits coalesce: the first to reach
        // the WAL becomes the batch leader and fsyncs for the rest.
        let chunk = ops.len().div_ceil(self.write_threads);
        std::thread::scope(|scope| {
            let workers: Vec<_> = ops
                .chunks(chunk)
                .map(|slice| {
                    scope.spawn(move || slice.iter().map(|op| self.apply(op)).collect::<Vec<_>>())
                })
                .collect();
            workers
                .into_iter()
                .flat_map(|w| w.join().expect("write worker panicked"))
                .collect()
        })
    }

    fn write_stats(&self) -> WriteStats {
        let g = self.tree.group_commit_stats().unwrap_or_default();
        WriteStats {
            writes: self.tree.logical_writes(),
            wal_fsyncs: g.fsyncs,
            commit_batches: g.commit_batches,
        }
    }
}
