//! The micro-batching scheduler.
//!
//! Connections submit single queries; worker threads close them into
//! batches on whichever comes first of a **count threshold** or a **time
//! deadline**, execute the batch on a [`QueryEngine`], and route each
//! query's results back through its completion channel.
//!
//! State machine of a worker:
//!
//! ```text
//!          queue empty                  queue non-empty
//!   Idle ───────────────▶ wait ─────────────────────────▶ Collecting
//!     ▲                                                       │
//!     │           batch full  OR  deadline hit  OR  shutdown  │
//!     │                                                       ▼
//!     └────────────── send results ◀── execute ◀──── drain ≤ max_batch
//! ```
//!
//! The queue is bounded: when `queue_depth` jobs are waiting, `submit`
//! fails fast with [`SubmitError::Overloaded`] and the connection returns
//! a typed response instead of queueing unboundedly. After
//! [`MicroBatcher::shutdown`] begins, new submissions fail with
//! [`SubmitError::ShuttingDown`] while already-queued jobs are drained to
//! completion — no accepted query is ever dropped.

use crate::engine::{QueryEngine, WriteOp};
use rtree_geom::Rect;
use rtree_obs::{AtomicHistogram, Histogram};
use std::collections::VecDeque;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread;
use std::time::{Duration, Instant};

/// When and how batches close.
#[derive(Clone, Copy, Debug)]
pub struct BatchPolicy {
    /// A batch closes as soon as this many queries are collected.
    pub max_batch: usize,
    /// A non-empty batch closes when its oldest query has waited this
    /// long, even if under-full.
    pub max_wait: Duration,
    /// Most jobs that may wait in the queue before `submit` rejects with
    /// `Overloaded`.
    pub queue_depth: usize,
    /// Worker threads draining the queue.
    pub workers: usize,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy {
            max_batch: 64,
            max_wait: Duration::from_micros(500),
            queue_depth: 4096,
            workers: 2,
        }
    }
}

/// Why a submission was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is full; retry later.
    Overloaded,
    /// The batcher is draining; no new work is accepted.
    ShuttingDown,
}

/// What a completed job hands back.
#[derive(Clone, Debug, PartialEq)]
pub enum JobOutput {
    /// Matching ids, for result queries.
    Matches(Vec<u64>),
    /// Match count only, for count queries.
    Count(u64),
    /// A durably committed write (`false`: a delete found no entry).
    Written(bool),
}

enum JobKind {
    Query { rect: Rect, count_only: bool },
    Write(WriteOp),
}

struct Job {
    kind: JobKind,
    enqueued: Instant,
    done: mpsc::Sender<io::Result<JobOutput>>,
}

struct Queue {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

struct Shared<E> {
    engine: E,
    policy: BatchPolicy,
    queue: Mutex<Queue>,
    /// Signalled on submit and on shutdown.
    nonempty: Condvar,
    submitted: AtomicU64,
    completed: AtomicU64,
    rejected: AtomicU64,
    batches: AtomicU64,
    max_batch_seen: AtomicU64,
    batch_sizes: AtomicHistogram,
    queue_wait_us: AtomicHistogram,
}

/// Scheduler counters, all cumulative.
#[derive(Clone, Debug)]
pub struct BatcherStats {
    /// Jobs accepted into the queue.
    pub submitted: u64,
    /// Jobs executed and answered.
    pub completed: u64,
    /// Submissions refused with `Overloaded`.
    pub rejected: u64,
    /// Batches executed.
    pub batches: u64,
    /// Largest batch executed.
    pub max_batch: u64,
    /// Distribution of executed batch sizes.
    pub batch_sizes: Histogram,
    /// Distribution of queue wait (enqueue → batch close), microseconds.
    pub queue_wait_us: Histogram,
}

/// The micro-batching scheduler; see the module docs for the lifecycle.
pub struct MicroBatcher<E: QueryEngine> {
    shared: Arc<Shared<E>>,
    workers: Mutex<Vec<thread::JoinHandle<()>>>,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl<E: QueryEngine> MicroBatcher<E> {
    /// Starts the scheduler: spawns `policy.workers` worker threads.
    pub fn new(engine: E, policy: BatchPolicy) -> Arc<Self> {
        let b = Self::new_paused(engine, policy);
        b.start();
        b
    }

    /// Builds the scheduler without spawning workers. Submissions queue
    /// up (and can overflow to `Overloaded`) until [`start`] runs —
    /// deterministic setup for tests that want to control batch
    /// composition exactly.
    ///
    /// [`start`]: MicroBatcher::start
    pub fn new_paused(engine: E, policy: BatchPolicy) -> Arc<Self> {
        let policy = BatchPolicy {
            max_batch: policy.max_batch.max(1),
            workers: policy.workers.max(1),
            queue_depth: policy.queue_depth.max(1),
            ..policy
        };
        Arc::new(MicroBatcher {
            shared: Arc::new(Shared {
                engine,
                policy,
                queue: Mutex::new(Queue {
                    jobs: VecDeque::new(),
                    shutdown: false,
                }),
                nonempty: Condvar::new(),
                submitted: AtomicU64::new(0),
                completed: AtomicU64::new(0),
                rejected: AtomicU64::new(0),
                batches: AtomicU64::new(0),
                max_batch_seen: AtomicU64::new(0),
                batch_sizes: AtomicHistogram::new(),
                queue_wait_us: AtomicHistogram::new(),
            }),
            workers: Mutex::new(Vec::new()),
        })
    }

    /// Spawns the worker threads of a [`new_paused`] batcher. Idempotent.
    ///
    /// [`new_paused`]: MicroBatcher::new_paused
    pub fn start(&self) {
        let mut workers = lock(&self.workers);
        if !workers.is_empty() {
            return;
        }
        for i in 0..self.shared.policy.workers {
            let shared = Arc::clone(&self.shared);
            workers.push(
                thread::Builder::new()
                    .name(format!("rtree-batch-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn batch worker"),
            );
        }
    }

    /// Submits one query. On success the receiver yields exactly one
    /// result once the job's batch executes.
    pub fn submit(
        &self,
        rect: Rect,
        count_only: bool,
    ) -> Result<mpsc::Receiver<io::Result<JobOutput>>, SubmitError> {
        self.submit_job(JobKind::Query { rect, count_only })
    }

    /// Submits one mutation. Writes share the queue, the batch window,
    /// and the overload bound with queries; a batch's writes fan out on
    /// the engine so their WAL commits coalesce (see
    /// [`crate::engine::QueryEngine::execute_writes`]).
    pub fn submit_write(
        &self,
        op: WriteOp,
    ) -> Result<mpsc::Receiver<io::Result<JobOutput>>, SubmitError> {
        self.submit_job(JobKind::Write(op))
    }

    fn submit_job(
        &self,
        kind: JobKind,
    ) -> Result<mpsc::Receiver<io::Result<JobOutput>>, SubmitError> {
        let (tx, rx) = mpsc::channel();
        {
            let mut q = lock(&self.shared.queue);
            if q.shutdown {
                return Err(SubmitError::ShuttingDown);
            }
            if q.jobs.len() >= self.shared.policy.queue_depth {
                self.shared.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(SubmitError::Overloaded);
            }
            q.jobs.push_back(Job {
                kind,
                enqueued: Instant::now(),
                done: tx,
            });
        }
        self.shared.submitted.fetch_add(1, Ordering::Relaxed);
        self.shared.nonempty.notify_one();
        Ok(rx)
    }

    /// Convenience: submit and block for the single result.
    pub fn submit_and_wait(
        &self,
        rect: Rect,
        count_only: bool,
    ) -> Result<io::Result<JobOutput>, SubmitError> {
        let rx = self.submit(rect, count_only)?;
        Ok(rx
            .recv()
            .unwrap_or_else(|_| Err(io::ErrorKind::BrokenPipe.into())))
    }

    /// Stops accepting work, drains every queued job to completion, and
    /// joins the workers. Idempotent.
    pub fn shutdown(&self) {
        {
            let mut q = lock(&self.shared.queue);
            q.shutdown = true;
        }
        self.shared.nonempty.notify_all();
        let mut workers = lock(&self.workers);
        for w in workers.drain(..) {
            let _ = w.join();
        }
    }

    /// True once [`shutdown`] has begun.
    ///
    /// [`shutdown`]: MicroBatcher::shutdown
    pub fn is_shutting_down(&self) -> bool {
        lock(&self.shared.queue).shutdown
    }

    /// Counter snapshot.
    pub fn stats(&self) -> BatcherStats {
        BatcherStats {
            submitted: self.shared.submitted.load(Ordering::Relaxed),
            completed: self.shared.completed.load(Ordering::Relaxed),
            rejected: self.shared.rejected.load(Ordering::Relaxed),
            batches: self.shared.batches.load(Ordering::Relaxed),
            max_batch: self.shared.max_batch_seen.load(Ordering::Relaxed),
            batch_sizes: self.shared.batch_sizes.snapshot(),
            queue_wait_us: self.shared.queue_wait_us.snapshot(),
        }
    }

    /// The engine batches execute on.
    pub fn engine(&self) -> &E {
        &self.shared.engine
    }

    /// Jobs currently waiting (for tests and load shedding decisions).
    pub fn queue_len(&self) -> usize {
        lock(&self.shared.queue).jobs.len()
    }
}

fn worker_loop<E: QueryEngine>(shared: &Shared<E>) {
    loop {
        // Phase 1: wait for work (or shutdown with an empty queue).
        let mut q = lock(&shared.queue);
        while q.jobs.is_empty() {
            if q.shutdown {
                return;
            }
            q = shared
                .nonempty
                .wait(q)
                .unwrap_or_else(PoisonError::into_inner);
        }

        // Phase 2: collect until the batch fills, the oldest job's
        // deadline passes, or shutdown forces an immediate close.
        let deadline = q.jobs.front().expect("non-empty").enqueued + shared.policy.max_wait;
        loop {
            if q.jobs.len() >= shared.policy.max_batch || q.shutdown {
                break;
            }
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (guard, timeout) = shared
                .nonempty
                .wait_timeout(q, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            q = guard;
            if timeout.timed_out() {
                break;
            }
        }

        // Phase 3: close the batch.
        let take = q.jobs.len().min(shared.policy.max_batch);
        let batch: Vec<Job> = q.jobs.drain(..take).collect();
        let leftover = !q.jobs.is_empty();
        drop(q);
        if leftover {
            // More work remains; wake a sibling so it can start its own
            // window concurrently with our execution.
            shared.nonempty.notify_one();
        }
        if batch.is_empty() {
            continue;
        }

        // Phase 4: execute and demux. A window can mix queries and
        // writes; they split into one engine call each, and every job is
        // answered through its own channel by position.
        let closed = Instant::now();
        for job in &batch {
            shared
                .queue_wait_us
                .record((closed - job.enqueued).as_micros() as u64);
        }
        let n = batch.len() as u64;
        shared.batches.fetch_add(1, Ordering::Relaxed);
        shared.max_batch_seen.fetch_max(n, Ordering::Relaxed);
        shared.batch_sizes.record(n);

        let mut rects: Vec<Rect> = Vec::new();
        let mut query_jobs = Vec::new();
        let mut ops: Vec<WriteOp> = Vec::new();
        let mut write_jobs = Vec::new();
        for job in batch {
            match job.kind {
                JobKind::Query { rect, count_only } => {
                    rects.push(rect);
                    query_jobs.push((count_only, job.done));
                }
                JobKind::Write(op) => {
                    ops.push(op);
                    write_jobs.push(job.done);
                }
            }
        }

        if !rects.is_empty() {
            match shared.engine.execute(&rects) {
                Ok(results) => {
                    debug_assert_eq!(results.len(), query_jobs.len(), "engine demux contract");
                    for ((count_only, done), ids) in query_jobs.into_iter().zip(results) {
                        let out = if count_only {
                            JobOutput::Count(ids.len() as u64)
                        } else {
                            JobOutput::Matches(ids)
                        };
                        // A receiver that hung up (client vanished) is fine.
                        let _ = done.send(Ok(out));
                        shared.completed.fetch_add(1, Ordering::Relaxed);
                    }
                }
                Err(e) => {
                    // io::Error is not Clone: recreate it per job.
                    for (_, done) in query_jobs {
                        let _ = done.send(Err(io::Error::new(e.kind(), e.to_string())));
                        shared.completed.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }

        if !ops.is_empty() {
            let results = shared.engine.execute_writes(&ops);
            debug_assert_eq!(
                results.len(),
                write_jobs.len(),
                "engine write demux contract"
            );
            for (done, result) in write_jobs.into_iter().zip(results) {
                let _ = done.send(result.map(JobOutput::Written));
                shared.completed.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtree_pager::IoStats;
    use std::sync::atomic::AtomicUsize;

    /// Engine double: echoes one id per query and records batch sizes.
    struct Echo {
        calls: Mutex<Vec<usize>>,
        delay: Duration,
        executed: AtomicUsize,
    }

    impl Echo {
        fn new(delay: Duration) -> Self {
            Echo {
                calls: Mutex::new(Vec::new()),
                delay,
                executed: AtomicUsize::new(0),
            }
        }
    }

    impl QueryEngine for Echo {
        fn execute(&self, queries: &[Rect]) -> io::Result<Vec<Vec<u64>>> {
            lock(&self.calls).push(queries.len());
            self.executed.fetch_add(queries.len(), Ordering::SeqCst);
            if !self.delay.is_zero() {
                thread::sleep(self.delay);
            }
            Ok(queries
                .iter()
                .map(|r| vec![(r.lo.x * 1000.0) as u64])
                .collect())
        }

        fn io_stats(&self) -> IoStats {
            IoStats::default()
        }
    }

    fn rect(i: usize) -> Rect {
        let x = i as f64 / 1000.0;
        Rect::new(x, 0.0, x + 0.001, 0.001)
    }

    #[test]
    fn every_job_gets_its_own_answer() {
        let b = MicroBatcher::new(
            Echo::new(Duration::ZERO),
            BatchPolicy {
                max_batch: 8,
                max_wait: Duration::from_millis(1),
                ..BatchPolicy::default()
            },
        );
        let rxs: Vec<_> = (0..50).map(|i| b.submit(rect(i), false).unwrap()).collect();
        for (i, rx) in rxs.into_iter().enumerate() {
            assert_eq!(
                rx.recv().unwrap().unwrap(),
                JobOutput::Matches(vec![i as u64])
            );
        }
        let s = b.stats();
        assert_eq!(s.completed, 50);
        assert!(s.max_batch <= 8, "count bound held: {}", s.max_batch);
        b.shutdown();
    }

    #[test]
    fn deadline_closes_an_underfull_batch() {
        let b = MicroBatcher::new(
            Echo::new(Duration::ZERO),
            BatchPolicy {
                max_batch: 1000,
                max_wait: Duration::from_millis(5),
                ..BatchPolicy::default()
            },
        );
        let rx = b.submit(rect(1), false).unwrap();
        // Only the deadline can close this batch of one.
        assert_eq!(rx.recv().unwrap().unwrap(), JobOutput::Matches(vec![1]));
        b.shutdown();
    }

    #[test]
    fn overload_rejects_without_queueing() {
        let b = MicroBatcher::new_paused(
            Echo::new(Duration::ZERO),
            BatchPolicy {
                max_batch: 4,
                queue_depth: 3,
                ..BatchPolicy::default()
            },
        );
        let _held: Vec<_> = (0..3).map(|i| b.submit(rect(i), false).unwrap()).collect();
        assert_eq!(
            b.submit(rect(9), false).err(),
            Some(SubmitError::Overloaded)
        );
        assert_eq!(b.stats().rejected, 1);
        // Workers drain the held jobs once started; shutdown then drains.
        b.start();
        b.shutdown();
        assert_eq!(b.stats().completed, 3);
    }

    #[test]
    fn shutdown_drains_queued_jobs_then_refuses_new_ones() {
        let b = MicroBatcher::new_paused(
            Echo::new(Duration::from_millis(1)),
            BatchPolicy {
                max_batch: 2,
                ..BatchPolicy::default()
            },
        );
        let rxs: Vec<_> = (0..10).map(|i| b.submit(rect(i), false).unwrap()).collect();
        b.start();
        b.shutdown();
        for (i, rx) in rxs.into_iter().enumerate() {
            assert_eq!(
                rx.recv().unwrap().unwrap(),
                JobOutput::Matches(vec![i as u64]),
                "job {i} drained"
            );
        }
        assert_eq!(
            b.submit(rect(0), false).err(),
            Some(SubmitError::ShuttingDown)
        );
        assert_eq!(b.stats().completed, 10);
    }

    #[test]
    fn count_only_jobs_get_counts() {
        let b = MicroBatcher::new(Echo::new(Duration::ZERO), BatchPolicy::default());
        match b.submit_and_wait(rect(3), true).unwrap().unwrap() {
            JobOutput::Count(1) => {}
            other => panic!("expected Count(1), got {other:?}"),
        }
        b.shutdown();
    }

    /// Engine double that also accepts writes: inserts succeed, deletes
    /// report "found" only for even ids.
    struct WritableEcho {
        inner: Echo,
        ops: Mutex<Vec<WriteOp>>,
    }

    impl QueryEngine for WritableEcho {
        fn execute(&self, queries: &[Rect]) -> io::Result<Vec<Vec<u64>>> {
            self.inner.execute(queries)
        }

        fn io_stats(&self) -> IoStats {
            self.inner.io_stats()
        }

        fn execute_writes(&self, ops: &[WriteOp]) -> Vec<io::Result<bool>> {
            lock(&self.ops).extend_from_slice(ops);
            ops.iter()
                .map(|op| match op {
                    WriteOp::Insert(..) => Ok(true),
                    WriteOp::Delete(_, id) => Ok(id % 2 == 0),
                })
                .collect()
        }
    }

    #[test]
    fn mixed_batches_demux_writes_and_queries_by_position() {
        let b = MicroBatcher::new_paused(
            WritableEcho {
                inner: Echo::new(Duration::ZERO),
                ops: Mutex::new(Vec::new()),
            },
            BatchPolicy {
                max_batch: 6,
                workers: 1,
                ..BatchPolicy::default()
            },
        );
        let q1 = b.submit(rect(1), false).unwrap();
        let w1 = b.submit_write(WriteOp::Insert(rect(10), 100)).unwrap();
        let q2 = b.submit(rect(2), true).unwrap();
        let w2 = b.submit_write(WriteOp::Delete(rect(11), 101)).unwrap();
        let w3 = b.submit_write(WriteOp::Delete(rect(12), 102)).unwrap();
        b.start();
        assert_eq!(q1.recv().unwrap().unwrap(), JobOutput::Matches(vec![1]));
        assert_eq!(w1.recv().unwrap().unwrap(), JobOutput::Written(true));
        assert_eq!(q2.recv().unwrap().unwrap(), JobOutput::Count(1));
        assert_eq!(w2.recv().unwrap().unwrap(), JobOutput::Written(false));
        assert_eq!(w3.recv().unwrap().unwrap(), JobOutput::Written(true));
        assert_eq!(lock(&b.engine().ops).len(), 3, "all ops reached the engine");
        assert_eq!(b.stats().completed, 5);
        b.shutdown();
    }

    #[test]
    fn read_only_engines_answer_writes_with_typed_errors() {
        let b = MicroBatcher::new(Echo::new(Duration::ZERO), BatchPolicy::default());
        let rx = b.submit_write(WriteOp::Insert(rect(1), 1)).unwrap();
        let err = rx.recv().unwrap().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Unsupported);
        b.shutdown();
    }

    #[test]
    fn paused_batcher_executes_one_full_batch() {
        // Deterministic batch composition: queue 6 jobs with max_batch 6,
        // then start — the first worker must close exactly one batch of 6.
        let b = MicroBatcher::new_paused(
            Echo::new(Duration::ZERO),
            BatchPolicy {
                max_batch: 6,
                workers: 1,
                ..BatchPolicy::default()
            },
        );
        let rxs: Vec<_> = (0..6).map(|i| b.submit(rect(i), false).unwrap()).collect();
        b.start();
        for rx in rxs {
            rx.recv().unwrap().unwrap();
        }
        assert_eq!(lock(&b.engine().calls).as_slice(), &[6]);
        b.shutdown();
    }
}
