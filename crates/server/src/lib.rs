//! Spatial query serving for the buffered R-tree workspace.
//!
//! The paper's lever is that buffering converts repeated page touches
//! into one physical read; PR 5's batch executor showed the same lever
//! works *across* concurrent queries. This crate closes the loop into a
//! served system: a framed TCP protocol ([`wire`]), a thread-per-
//! connection front-end ([`server`]) that funnels requests into a
//! micro-batching scheduler ([`batcher`]) with a count-or-deadline window,
//! execution back-ends over the disk tree ([`engine`]), and an open-loop
//! load generator ([`loadgen`]) that measures the batch-window-vs-latency
//! tradeoff end to end.
//!
//! ```
//! use rtree_server::{serve, SequentialEngine, ServerConfig, Client, Request, Response};
//! use rtree_pager::{DiskRTree, MemStore};
//! use rtree_buffer::LruPolicy;
//! use rtree_geom::Rect;
//! use rtree_index::BulkLoader;
//!
//! # fn main() -> std::io::Result<()> {
//! let rects: Vec<Rect> = (0..300)
//!     .map(|i| {
//!         let x = (i as f64 * 0.618) % 0.99;
//!         Rect::new(x, x, x + 0.005, x + 0.005)
//!     })
//!     .collect();
//! let tree = BulkLoader::hilbert(20).load(&rects);
//! let disk = DiskRTree::create(MemStore::new(), &tree, 64, LruPolicy::new())?;
//!
//! let handle = serve(
//!     SequentialEngine::new(disk, 8),
//!     "127.0.0.1:0", // port 0: the OS picks a free port
//!     ServerConfig::default(),
//! )?;
//! let mut client = Client::connect(handle.addr())?;
//! match client.call(&Request::Query(Rect::new(0.1, 0.1, 0.2, 0.2)))? {
//!     Some(Response::Matches(ids)) => assert!(!ids.is_empty()),
//!     other => panic!("unexpected reply: {other:?}"),
//! }
//! handle.shutdown();
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod batcher;
pub mod engine;
pub mod loadgen;
pub mod server;
pub mod wire;

pub use batcher::{BatchPolicy, BatcherStats, JobOutput, MicroBatcher, SubmitError};
pub use engine::{QueryEngine, SequentialEngine, ShardedEngine, WriteOp, WriteStats, WriterEngine};
pub use loadgen::{LoadConfig, LoadReport};
pub use server::{serve, serve_with_spawner, Client, ServerConfig, ServerHandle, Spawner};
pub use wire::{FrameError, Request, Response, StatsReply};
