//! The framed wire protocol.
//!
//! Every message travels in one *frame*:
//!
//! ```text
//! offset  size  field
//!      0     2  magic  b"RQ"
//!      2     2  protocol version (little endian, currently 1)
//!      4     4  payload length N (little endian, <= MAX_PAYLOAD)
//!      8     4  CRC32 of the payload (same polynomial as the WAL)
//!     12     N  payload
//! ```
//!
//! The payload is a tag byte followed by little-endian fields; see
//! [`Request`] and [`Response`]. Decoding is total: any byte sequence
//! yields `Ok` or a typed [`FrameError`], never a panic — the fuzz target
//! `fuzz/fuzz_targets/frame_decode.rs` and the deterministic equivalent in
//! `tests/fuzz_frames.rs` hold the codec to that.

use rtree_geom::Rect;
use rtree_wal::crc32;
use std::fmt;
use std::io::{self, Read, Write};

/// Frame magic: the first two bytes of every frame.
pub const MAGIC: [u8; 2] = *b"RQ";
/// Protocol version carried in (and required of) every frame header.
pub const VERSION: u16 = 1;
/// Bytes of header before the payload.
pub const HEADER_LEN: usize = 12;
/// Upper bound on a frame payload. Bounds every allocation the decoder
/// makes, so a hostile length field can never balloon memory.
pub const MAX_PAYLOAD: usize = 1 << 20;

/// Why a frame or payload failed to decode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// The buffer ends before the announced header or payload does.
    Truncated,
    /// The first two bytes are not [`MAGIC`].
    BadMagic([u8; 2]),
    /// The header announces a version this build does not speak.
    BadVersion(u16),
    /// The header announces a payload larger than [`MAX_PAYLOAD`].
    Oversized(u32),
    /// The payload does not match the header's checksum.
    BadCrc {
        /// Checksum the header announced.
        expect: u32,
        /// Checksum of the bytes actually received.
        got: u32,
    },
    /// The payload's leading tag byte is not a known message.
    UnknownTag(u8),
    /// The payload body is malformed for its tag.
    BadPayload(&'static str),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Truncated => write!(f, "truncated frame"),
            FrameError::BadMagic(m) => write!(f, "bad magic {m:02x?}"),
            FrameError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            FrameError::Oversized(n) => {
                write!(f, "payload length {n} exceeds the {MAX_PAYLOAD}-byte cap")
            }
            FrameError::BadCrc { expect, got } => {
                write!(f, "payload crc {got:08x} != header crc {expect:08x}")
            }
            FrameError::UnknownTag(t) => write!(f, "unknown message tag {t}"),
            FrameError::BadPayload(what) => write!(f, "malformed payload: {what}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<FrameError> for io::Error {
    fn from(e: FrameError) -> io::Error {
        io::Error::new(io::ErrorKind::InvalidData, e)
    }
}

/// Parses and validates a frame header, returning the payload length and
/// its announced CRC.
pub fn parse_header(h: &[u8; HEADER_LEN]) -> Result<(usize, u32), FrameError> {
    if h[0..2] != MAGIC {
        return Err(FrameError::BadMagic([h[0], h[1]]));
    }
    let version = u16::from_le_bytes([h[2], h[3]]);
    if version != VERSION {
        return Err(FrameError::BadVersion(version));
    }
    let len = u32::from_le_bytes([h[4], h[5], h[6], h[7]]);
    if len as usize > MAX_PAYLOAD {
        return Err(FrameError::Oversized(len));
    }
    let crc = u32::from_le_bytes([h[8], h[9], h[10], h[11]]);
    Ok((len as usize, crc))
}

/// Wraps `payload` in a frame.
///
/// # Panics
/// Panics if `payload` exceeds [`MAX_PAYLOAD`] — messages this library
/// builds are bounded well below it.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    assert!(payload.len() <= MAX_PAYLOAD, "payload exceeds frame cap");
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32::checksum(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Decodes one frame from the front of `buf`. Returns the payload and the
/// bytes consumed, `Ok(None)` when `buf` is a valid but incomplete prefix
/// (read more and retry), or the header/CRC error.
pub fn decode_frame(buf: &[u8]) -> Result<Option<(Vec<u8>, usize)>, FrameError> {
    if buf.len() < HEADER_LEN {
        // An incomplete header is only "wait for more" while what we have
        // could still grow into a valid one.
        if buf.len() >= 2 && buf[0..2] != MAGIC {
            return Err(FrameError::BadMagic([buf[0], buf[1]]));
        }
        if !buf.is_empty() && buf[0] != MAGIC[0] {
            return Err(FrameError::BadMagic([buf[0], 0]));
        }
        return Ok(None);
    }
    let mut header = [0u8; HEADER_LEN];
    header.copy_from_slice(&buf[..HEADER_LEN]);
    let (len, crc) = parse_header(&header)?;
    if buf.len() < HEADER_LEN + len {
        return Ok(None);
    }
    let payload = &buf[HEADER_LEN..HEADER_LEN + len];
    let got = crc32::checksum(payload);
    if got != crc {
        return Err(FrameError::BadCrc { expect: crc, got });
    }
    Ok(Some((payload.to_vec(), HEADER_LEN + len)))
}

/// Writes one frame.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    w.write_all(&encode_frame(payload))?;
    w.flush()
}

/// Reads one frame, blocking. Returns `Ok(None)` on a clean EOF at a frame
/// boundary; a connection dropped mid-frame surfaces as
/// [`io::ErrorKind::UnexpectedEof`], and a malformed frame as
/// [`io::ErrorKind::InvalidData`] carrying the [`FrameError`].
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<Vec<u8>>> {
    let mut header = [0u8; HEADER_LEN];
    let mut filled = 0usize;
    while filled < HEADER_LEN {
        match r.read(&mut header[filled..])? {
            0 if filled == 0 => return Ok(None),
            0 => return Err(io::ErrorKind::UnexpectedEof.into()),
            n => filled += n,
        }
    }
    let (len, crc) = parse_header(&header)?;
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    let got = crc32::checksum(&payload);
    if got != crc {
        return Err(FrameError::BadCrc { expect: crc, got }.into());
    }
    Ok(Some(payload))
}

// ---- payload codecs -----------------------------------------------------

/// A query or control message from client to server.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Region query: ids of items intersecting the rectangle.
    Query(Rect),
    /// Point query: ids of items containing the point (a degenerate
    /// rectangle on the wire and in the engine).
    Point(f64, f64),
    /// Count-only region query: the match count, no id list.
    Count(Rect),
    /// Server counters snapshot.
    Stats,
    /// Graceful shutdown: stop accepting, drain in-flight batches, exit.
    Shutdown,
    /// Insert an item (rectangle plus id). Requires a write-capable
    /// engine; read-only servers answer with [`Response::Error`].
    Insert(Rect, u64),
    /// Delete an item previously inserted with exactly this rectangle and
    /// id. The reply says whether the entry existed.
    Delete(Rect, u64),
}

const TAG_QUERY: u8 = 1;
const TAG_POINT: u8 = 2;
const TAG_COUNT: u8 = 3;
const TAG_STATS: u8 = 4;
const TAG_SHUTDOWN: u8 = 5;
const TAG_INSERT: u8 = 6;
const TAG_DELETE: u8 = 7;

const TAG_MATCHES: u8 = 1;
const TAG_COUNT_REPLY: u8 = 2;
const TAG_STATS_REPLY: u8 = 3;
const TAG_OVERLOADED: u8 = 4;
const TAG_ERROR: u8 = 5;
const TAG_SHUTTING_DOWN: u8 = 6;
const TAG_WRITTEN: u8 = 7;

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Little-endian f64 at `offset`; the caller has checked the length.
fn get_f64(b: &[u8], offset: usize) -> f64 {
    f64::from_le_bytes(b[offset..offset + 8].try_into().expect("checked length"))
}

fn get_u64(b: &[u8], offset: usize) -> u64 {
    u64::from_le_bytes(b[offset..offset + 8].try_into().expect("checked length"))
}

fn put_rect(out: &mut Vec<u8>, r: &Rect) {
    put_f64(out, r.lo.x);
    put_f64(out, r.lo.y);
    put_f64(out, r.hi.x);
    put_f64(out, r.hi.y);
}

/// Validated rectangle decode: hostile bytes must never reach
/// `Rect::new`'s debug assertions.
fn get_rect(b: &[u8], offset: usize) -> Result<Rect, FrameError> {
    if b.len() < offset + 32 {
        return Err(FrameError::BadPayload("rectangle needs 32 bytes"));
    }
    let (a, bb, c, d) = (
        get_f64(b, offset),
        get_f64(b, offset + 8),
        get_f64(b, offset + 16),
        get_f64(b, offset + 24),
    );
    if !(a.is_finite() && bb.is_finite() && c.is_finite() && d.is_finite()) {
        return Err(FrameError::BadPayload("non-finite rectangle coordinate"));
    }
    if a > c || bb > d {
        return Err(FrameError::BadPayload("inverted rectangle corners"));
    }
    Ok(Rect::new(a, bb, c, d))
}

fn expect_len(b: &[u8], want: usize, what: &'static str) -> Result<(), FrameError> {
    if b.len() != want {
        return Err(FrameError::BadPayload(what));
    }
    Ok(())
}

impl Request {
    /// Encodes the request payload (frame it with [`encode_frame`] /
    /// [`write_frame`]).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(33);
        match self {
            Request::Query(r) => {
                out.push(TAG_QUERY);
                put_rect(&mut out, r);
            }
            Request::Point(x, y) => {
                out.push(TAG_POINT);
                put_f64(&mut out, *x);
                put_f64(&mut out, *y);
            }
            Request::Count(r) => {
                out.push(TAG_COUNT);
                put_rect(&mut out, r);
            }
            Request::Stats => out.push(TAG_STATS),
            Request::Shutdown => out.push(TAG_SHUTDOWN),
            Request::Insert(r, item) => {
                out.push(TAG_INSERT);
                put_rect(&mut out, r);
                put_u64(&mut out, *item);
            }
            Request::Delete(r, item) => {
                out.push(TAG_DELETE);
                put_rect(&mut out, r);
                put_u64(&mut out, *item);
            }
        }
        out
    }

    /// Decodes a request payload.
    pub fn decode(b: &[u8]) -> Result<Self, FrameError> {
        let tag = *b.first().ok_or(FrameError::BadPayload("empty payload"))?;
        match tag {
            TAG_QUERY => {
                expect_len(b, 33, "region query is tag + rectangle")?;
                Ok(Request::Query(get_rect(b, 1)?))
            }
            TAG_POINT => {
                expect_len(b, 17, "point query is tag + two f64")?;
                let (x, y) = (get_f64(b, 1), get_f64(b, 9));
                if !(x.is_finite() && y.is_finite()) {
                    return Err(FrameError::BadPayload("non-finite point coordinate"));
                }
                Ok(Request::Point(x, y))
            }
            TAG_COUNT => {
                expect_len(b, 33, "count query is tag + rectangle")?;
                Ok(Request::Count(get_rect(b, 1)?))
            }
            TAG_STATS => {
                expect_len(b, 1, "stats takes no body")?;
                Ok(Request::Stats)
            }
            TAG_SHUTDOWN => {
                expect_len(b, 1, "shutdown takes no body")?;
                Ok(Request::Shutdown)
            }
            TAG_INSERT => {
                expect_len(b, 41, "insert is tag + rectangle + id")?;
                Ok(Request::Insert(get_rect(b, 1)?, get_u64(b, 33)))
            }
            TAG_DELETE => {
                expect_len(b, 41, "delete is tag + rectangle + id")?;
                Ok(Request::Delete(get_rect(b, 1)?, get_u64(b, 33)))
            }
            t => Err(FrameError::UnknownTag(t)),
        }
    }
}

/// Server-side counters reported by [`Request::Stats`]. All counters are
/// cumulative since the server started.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsReply {
    /// Queries executed to completion (each produced exactly one response).
    pub queries: u64,
    /// Micro-batches executed.
    pub batches: u64,
    /// Largest batch executed so far.
    pub max_batch: u64,
    /// Submissions rejected with `Overloaded` (bounded queue was full).
    pub rejected: u64,
    /// Physical page reads charged to demand misses.
    pub demand_reads: u64,
    /// Physical page reads performed by the readahead window.
    pub prefetch_reads: u64,
    /// All physical page reads (`demand + prefetch`).
    pub physical_reads: u64,
    /// Write operations applied (inserts plus deletes that found their
    /// entry). Zero on a read-only engine.
    pub writes: u64,
    /// WAL fsyncs issued by group commit. The ratio `writes / wal_fsyncs`
    /// is the durability amortization the server achieves.
    pub wal_fsyncs: u64,
    /// Commit batches flushed (each covers one or more logged operations).
    pub commit_batches: u64,
}

/// A reply from server to client.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Matching item ids of a [`Request::Query`] / [`Request::Point`].
    Matches(Vec<u64>),
    /// Match count of a [`Request::Count`].
    Count(u64),
    /// Counters snapshot for [`Request::Stats`].
    Stats(StatsReply),
    /// The scheduler queue was full; the query was *not* executed.
    Overloaded,
    /// The request failed (decode error on a recoverable boundary, or an
    /// engine I/O error).
    Error(String),
    /// Acknowledges [`Request::Shutdown`]; also answers queries submitted
    /// after draining began.
    ShuttingDown,
    /// Acknowledges a durably committed [`Request::Insert`] /
    /// [`Request::Delete`]; `false` means a delete found no such entry.
    Written(bool),
}

/// Ids a `Matches` payload can carry without busting [`MAX_PAYLOAD`].
pub const MAX_IDS: usize = (MAX_PAYLOAD - 5) / 8;

impl Response {
    /// Encodes the response payload.
    ///
    /// # Panics
    /// Panics if a `Matches` id list exceeds [`MAX_IDS`] (about 131k ids —
    /// far beyond any page-bounded result set this engine produces).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(9);
        match self {
            Response::Matches(ids) => {
                assert!(ids.len() <= MAX_IDS, "result set exceeds frame cap");
                out.push(TAG_MATCHES);
                out.extend_from_slice(&(ids.len() as u32).to_le_bytes());
                for id in ids {
                    put_u64(&mut out, *id);
                }
            }
            Response::Count(n) => {
                out.push(TAG_COUNT_REPLY);
                put_u64(&mut out, *n);
            }
            Response::Stats(s) => {
                out.push(TAG_STATS_REPLY);
                for v in [
                    s.queries,
                    s.batches,
                    s.max_batch,
                    s.rejected,
                    s.demand_reads,
                    s.prefetch_reads,
                    s.physical_reads,
                    s.writes,
                    s.wal_fsyncs,
                    s.commit_batches,
                ] {
                    put_u64(&mut out, v);
                }
            }
            Response::Overloaded => out.push(TAG_OVERLOADED),
            Response::Error(msg) => {
                out.push(TAG_ERROR);
                let bytes = msg.as_bytes();
                let n = bytes.len().min(1024);
                out.extend_from_slice(&(n as u32).to_le_bytes());
                out.extend_from_slice(&bytes[..n]);
            }
            Response::ShuttingDown => out.push(TAG_SHUTTING_DOWN),
            Response::Written(found) => {
                out.push(TAG_WRITTEN);
                out.push(u8::from(*found));
            }
        }
        out
    }

    /// Decodes a response payload.
    pub fn decode(b: &[u8]) -> Result<Self, FrameError> {
        let tag = *b.first().ok_or(FrameError::BadPayload("empty payload"))?;
        match tag {
            TAG_MATCHES => {
                if b.len() < 5 {
                    return Err(FrameError::BadPayload("matches needs a count"));
                }
                let n = u32::from_le_bytes(b[1..5].try_into().expect("checked length")) as usize;
                if n > MAX_IDS {
                    return Err(FrameError::BadPayload("id count exceeds frame cap"));
                }
                expect_len(b, 5 + 8 * n, "matches length != announced count")?;
                Ok(Response::Matches(
                    (0..n).map(|i| get_u64(b, 5 + 8 * i)).collect(),
                ))
            }
            TAG_COUNT_REPLY => {
                expect_len(b, 9, "count reply is tag + u64")?;
                Ok(Response::Count(get_u64(b, 1)))
            }
            TAG_STATS_REPLY => {
                expect_len(b, 81, "stats reply is tag + ten u64")?;
                Ok(Response::Stats(StatsReply {
                    queries: get_u64(b, 1),
                    batches: get_u64(b, 9),
                    max_batch: get_u64(b, 17),
                    rejected: get_u64(b, 25),
                    demand_reads: get_u64(b, 33),
                    prefetch_reads: get_u64(b, 41),
                    physical_reads: get_u64(b, 49),
                    writes: get_u64(b, 57),
                    wal_fsyncs: get_u64(b, 65),
                    commit_batches: get_u64(b, 73),
                }))
            }
            TAG_OVERLOADED => {
                expect_len(b, 1, "overloaded takes no body")?;
                Ok(Response::Overloaded)
            }
            TAG_ERROR => {
                if b.len() < 5 {
                    return Err(FrameError::BadPayload("error needs a length"));
                }
                let n = u32::from_le_bytes(b[1..5].try_into().expect("checked length")) as usize;
                expect_len(b, 5 + n, "error length != announced")?;
                match std::str::from_utf8(&b[5..5 + n]) {
                    Ok(s) => Ok(Response::Error(s.to_string())),
                    Err(_) => Err(FrameError::BadPayload("error message is not utf-8")),
                }
            }
            TAG_SHUTTING_DOWN => {
                expect_len(b, 1, "shutting-down takes no body")?;
                Ok(Response::ShuttingDown)
            }
            TAG_WRITTEN => {
                expect_len(b, 2, "written is tag + bool")?;
                match b[1] {
                    0 => Ok(Response::Written(false)),
                    1 => Ok(Response::Written(true)),
                    _ => Err(FrameError::BadPayload("written flag is not 0/1")),
                }
            }
            t => Err(FrameError::UnknownTag(t)),
        }
    }
}

/// Sends a request as one frame.
pub fn send_request<W: Write>(w: &mut W, req: &Request) -> io::Result<()> {
    write_frame(w, &req.encode())
}

/// Sends a response as one frame.
pub fn send_response<W: Write>(w: &mut W, resp: &Response) -> io::Result<()> {
    write_frame(w, &resp.encode())
}

/// Receives and decodes one response frame (blocking). `Ok(None)` on clean
/// EOF.
pub fn recv_response<R: Read>(r: &mut R) -> io::Result<Option<Response>> {
    match read_frame(r)? {
        None => Ok(None),
        Some(payload) => Ok(Some(Response::decode(&payload)?)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rect() -> Rect {
        Rect::new(0.125, 0.25, 0.5, 0.75)
    }

    #[test]
    fn request_round_trips() {
        for req in [
            Request::Query(rect()),
            Request::Point(0.25, 0.75),
            Request::Count(rect()),
            Request::Stats,
            Request::Shutdown,
            Request::Insert(rect(), 7),
            Request::Delete(rect(), u64::MAX),
        ] {
            let frame = encode_frame(&req.encode());
            let (payload, used) = decode_frame(&frame).unwrap().unwrap();
            assert_eq!(used, frame.len());
            assert_eq!(Request::decode(&payload).unwrap(), req);
        }
    }

    #[test]
    fn response_round_trips() {
        for resp in [
            Response::Matches(vec![]),
            Response::Matches(vec![7, 0, u64::MAX]),
            Response::Count(42),
            Response::Stats(StatsReply {
                queries: 1,
                batches: 2,
                max_batch: 3,
                rejected: 4,
                demand_reads: 5,
                prefetch_reads: 6,
                physical_reads: 11,
                writes: 12,
                wal_fsyncs: 3,
                commit_batches: 3,
            }),
            Response::Overloaded,
            Response::Error("nope".into()),
            Response::ShuttingDown,
            Response::Written(true),
            Response::Written(false),
        ] {
            let payload = resp.encode();
            assert_eq!(Response::decode(&payload).unwrap(), resp);
        }
    }

    #[test]
    fn stream_round_trip_over_a_buffer() {
        let mut buf = Vec::new();
        send_request(&mut buf, &Request::Query(rect())).unwrap();
        send_request(&mut buf, &Request::Stats).unwrap();
        let mut r = io::Cursor::new(buf);
        assert_eq!(
            Request::decode(&read_frame(&mut r).unwrap().unwrap()).unwrap(),
            Request::Query(rect())
        );
        assert_eq!(
            Request::decode(&read_frame(&mut r).unwrap().unwrap()).unwrap(),
            Request::Stats
        );
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn header_rejections_are_typed() {
        let good = encode_frame(&Request::Stats.encode());

        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(matches!(decode_frame(&bad), Err(FrameError::BadMagic(_))));

        let mut bad = good.clone();
        bad[2] = 9;
        assert_eq!(decode_frame(&bad), Err(FrameError::BadVersion(9)));

        let mut bad = good.clone();
        bad[4..8].copy_from_slice(&(MAX_PAYLOAD as u32 + 1).to_le_bytes());
        assert!(matches!(decode_frame(&bad), Err(FrameError::Oversized(_))));

        let mut bad = good.clone();
        *bad.last_mut().unwrap() ^= 0xFF;
        assert!(matches!(decode_frame(&bad), Err(FrameError::BadCrc { .. })));

        // Incomplete frames ask for more bytes instead of erroring.
        assert_eq!(decode_frame(&good[..5]), Ok(None));
        assert_eq!(decode_frame(&good[..good.len() - 1]), Ok(None));
        assert_eq!(decode_frame(&[]), Ok(None));
    }

    #[test]
    fn hostile_rectangles_are_rejected_not_asserted() {
        // Inverted corners.
        let mut p = vec![1u8];
        for v in [0.9f64, 0.9, 0.1, 0.1] {
            p.extend_from_slice(&v.to_le_bytes());
        }
        assert!(matches!(
            Request::decode(&p),
            Err(FrameError::BadPayload(_))
        ));
        // NaN coordinate.
        let mut p = vec![1u8];
        for v in [f64::NAN, 0.0, 1.0, 1.0] {
            p.extend_from_slice(&v.to_le_bytes());
        }
        assert!(matches!(
            Request::decode(&p),
            Err(FrameError::BadPayload(_))
        ));
    }

    #[test]
    fn hostile_write_payloads_are_rejected() {
        // Inverted corners in an insert.
        let mut p = vec![6u8];
        for v in [0.9f64, 0.9, 0.1, 0.1] {
            p.extend_from_slice(&v.to_le_bytes());
        }
        p.extend_from_slice(&5u64.to_le_bytes());
        assert!(matches!(
            Request::decode(&p),
            Err(FrameError::BadPayload(_))
        ));
        // Truncated delete (missing the id).
        let short = &Request::Delete(rect(), 1).encode()[..33];
        assert!(matches!(
            Request::decode(short),
            Err(FrameError::BadPayload(_))
        ));
        // A written flag outside 0/1 is not silently truthy.
        assert!(matches!(
            Response::decode(&[7u8, 2]),
            Err(FrameError::BadPayload(_))
        ));
    }

    #[test]
    fn unknown_tags_are_typed() {
        assert_eq!(Request::decode(&[99]), Err(FrameError::UnknownTag(99)));
        assert_eq!(Response::decode(&[99]), Err(FrameError::UnknownTag(99)));
        assert!(Request::decode(&[]).is_err());
    }

    #[test]
    fn mid_frame_eof_is_distinguished_from_clean_close() {
        let frame = encode_frame(&Request::Stats.encode());
        let mut r = io::Cursor::new(frame[..frame.len() - 1].to_vec());
        let err = read_frame(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }
}
