//! The TCP front-end: accept loop, per-connection request pumps, and
//! graceful shutdown.
//!
//! Each connection gets a thread that reads frames, decodes requests, and
//! submits them to the shared [`MicroBatcher`]. Blocking on the batch
//! result is fine — that *is* the harvesting mechanism: while one
//! connection waits for its window to close, other connections' requests
//! pile into the same batch.
//!
//! Shutdown works without signal handling (std has none, and the
//! workspace takes no libc dependency): a [`wire::Request::Shutdown`]
//! frame, [`ServerHandle::shutdown`], or a `--duration` timer all set one
//! stop flag. The accept loop is non-blocking and polls it; connection
//! reads use a short read timeout and poll it *only between frames*, so a
//! partially received frame is always finished before the check — the
//! stream never desyncs.

use crate::batcher::{BatchPolicy, JobOutput, MicroBatcher, SubmitError};
use crate::engine::{QueryEngine, WriteOp};
use crate::wire::{self, Request, Response, StatsReply};
use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread;
use std::time::Duration;

/// Server tunables.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Scheduler policy (batch window, queue bound, workers).
    pub batch: BatchPolicy,
    /// Socket read timeout used to poll the stop flag between frames.
    pub read_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            batch: BatchPolicy::default(),
            read_timeout: Duration::from_millis(50),
        }
    }
}

/// A running server; dropping the handle does **not** stop it — call
/// [`ServerHandle::shutdown`].
pub struct ServerHandle<E: QueryEngine> {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    batcher: Arc<MicroBatcher<E>>,
    accept_thread: Mutex<Option<thread::JoinHandle<()>>>,
    connections: Arc<Mutex<Vec<thread::JoinHandle<()>>>>,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// How the server creates its threads. Injectable (see
/// [`serve_with_spawner`]) so tests can simulate thread-resource
/// exhaustion without actually exhausting anything.
pub type Spawner =
    Arc<dyn Fn(&str, Box<dyn FnOnce() + Send>) -> io::Result<thread::JoinHandle<()>> + Send + Sync>;

fn os_spawner() -> Spawner {
    Arc::new(|name, f| thread::Builder::new().name(name.to_string()).spawn(f))
}

/// Binds `addr` (port 0 picks an ephemeral port) and serves `engine`
/// until shutdown.
///
/// Failing to spawn the accept loop (thread exhaustion) is a startup
/// error returned from here — never a panic. A later failure to spawn a
/// *connection* handler sheds that one connection with
/// [`Response::Overloaded`] and keeps serving.
pub fn serve<E: QueryEngine>(
    engine: E,
    addr: impl ToSocketAddrs,
    config: ServerConfig,
) -> io::Result<ServerHandle<E>> {
    serve_with_spawner(engine, addr, config, os_spawner())
}

/// [`serve`] with an explicit thread [`Spawner`] — the seam the
/// spawn-failure regression tests inject through.
pub fn serve_with_spawner<E: QueryEngine>(
    engine: E,
    addr: impl ToSocketAddrs,
    config: ServerConfig,
    spawner: Spawner,
) -> io::Result<ServerHandle<E>> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let batcher = MicroBatcher::new(engine, config.batch);
    let connections = Arc::new(Mutex::new(Vec::new()));

    let accept_thread = {
        let stop = Arc::clone(&stop);
        let batcher = Arc::clone(&batcher);
        let connections = Arc::clone(&connections);
        let loop_spawner = Arc::clone(&spawner);
        spawner(
            "rtree-accept",
            Box::new(move || {
                accept_loop(
                    &listener,
                    &stop,
                    &batcher,
                    &connections,
                    config,
                    &loop_spawner,
                );
            }),
        )
        .map_err(|e| io::Error::new(e.kind(), format!("cannot spawn the accept loop: {e}")))?
    };

    Ok(ServerHandle {
        addr,
        stop,
        batcher,
        accept_thread: Mutex::new(Some(accept_thread)),
        connections,
    })
}

impl<E: QueryEngine> ServerHandle<E> {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// True once shutdown has been requested (by any path).
    pub fn stopped(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// The scheduler, for stats and test assertions.
    pub fn batcher(&self) -> &MicroBatcher<E> {
        &self.batcher
    }

    /// Assembles the wire-level stats snapshot served to clients.
    pub fn stats(&self) -> StatsReply {
        stats_reply(&self.batcher)
    }

    /// Stops accepting, waits for connections to finish their in-flight
    /// frames, drains the scheduler queue, and joins every thread.
    /// Idempotent; returns the final counters.
    pub fn shutdown(&self) -> StatsReply {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = lock(&self.accept_thread).take() {
            let _ = t.join();
        }
        loop {
            let conns: Vec<_> = lock(&self.connections).drain(..).collect();
            if conns.is_empty() {
                break;
            }
            for c in conns {
                let _ = c.join();
            }
        }
        self.batcher.shutdown();
        self.stats()
    }
}

fn stats_reply<E: QueryEngine>(batcher: &MicroBatcher<E>) -> StatsReply {
    let s = batcher.stats();
    let io = batcher.engine().io_stats();
    let w = batcher.engine().write_stats();
    StatsReply {
        queries: s.completed,
        batches: s.batches,
        max_batch: s.max_batch,
        rejected: s.rejected,
        demand_reads: io.demand_reads(),
        prefetch_reads: io.prefetch_reads,
        physical_reads: io.reads,
        writes: w.writes,
        wal_fsyncs: w.wal_fsyncs,
        commit_batches: w.commit_batches,
    }
}

fn accept_loop<E: QueryEngine>(
    listener: &TcpListener,
    stop: &Arc<AtomicBool>,
    batcher: &Arc<MicroBatcher<E>>,
    connections: &Arc<Mutex<Vec<thread::JoinHandle<()>>>>,
    config: ServerConfig,
    spawner: &Spawner,
) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let stop = Arc::clone(stop);
                let batcher = Arc::clone(batcher);
                // A handle to answer on if the handler thread cannot be
                // spawned; the moved-in stream is gone by then.
                let mut shed_handle = stream.try_clone().ok();
                let spawned = spawner(
                    "rtree-conn",
                    Box::new(move || {
                        let _ = handle_connection(stream, &stop, &batcher, config);
                    }),
                );
                match spawned {
                    Ok(handle) => lock(connections).push(handle),
                    Err(_) => {
                        // Thread exhaustion: shed exactly this connection
                        // — best-effort typed refusal, then close — and
                        // keep accepting. The accept loop must survive.
                        if let Some(s) = shed_handle.as_mut() {
                            let _ = wire::send_response(s, &Response::Overloaded);
                        }
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(1));
            }
            Err(_) => thread::sleep(Duration::from_millis(1)),
        }
    }
}

/// Reads one frame with the stop flag polled between frames: a read
/// timeout with **zero** bytes consumed re-checks the flag; once any byte
/// of a frame has arrived, the frame is finished regardless (a client
/// that stalls mid-frame keeps its slot until it completes or drops).
fn read_frame_polled(stream: &mut TcpStream, stop: &AtomicBool) -> io::Result<Option<Vec<u8>>> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        match wire::decode_frame(&buf) {
            Ok(Some((payload, _))) => return Ok(Some(payload)),
            Ok(None) => {}
            Err(e) => return Err(e.into()),
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                return if buf.is_empty() {
                    Ok(None)
                } else {
                    Err(io::ErrorKind::UnexpectedEof.into())
                };
            }
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if buf.is_empty() && stop.load(Ordering::SeqCst) {
                    return Ok(None);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

fn handle_connection<E: QueryEngine>(
    mut stream: TcpStream,
    stop: &AtomicBool,
    batcher: &MicroBatcher<E>,
    config: ServerConfig,
) -> io::Result<()> {
    stream.set_read_timeout(Some(config.read_timeout))?;
    stream.set_nodelay(true)?;
    loop {
        let payload = match read_frame_polled(&mut stream, stop) {
            Ok(Some(p)) => p,
            // Clean close, stop requested, or client gone mid-frame.
            Ok(None) | Err(_) => return Ok(()),
        };
        let response = match Request::decode(&payload) {
            // A malformed *payload* in a well-formed frame is answered on
            // a still-aligned stream; framing errors above tear down.
            Err(e) => Response::Error(e.to_string()),
            Ok(req) => dispatch(req, stop, batcher),
        };
        let shutting_down = response == Response::ShuttingDown;
        wire::send_response(&mut stream, &response)?;
        if shutting_down && stop.load(Ordering::SeqCst) {
            return Ok(());
        }
    }
}

fn dispatch<E: QueryEngine>(
    req: Request,
    stop: &AtomicBool,
    batcher: &MicroBatcher<E>,
) -> Response {
    let submitted = match req {
        Request::Stats => return Response::Stats(stats_reply(batcher)),
        Request::Shutdown => {
            stop.store(true, Ordering::SeqCst);
            return Response::ShuttingDown;
        }
        Request::Query(r) => batcher.submit(r, false),
        Request::Point(x, y) => batcher.submit(rtree_geom::Rect::new(x, y, x, y), false),
        Request::Count(r) => batcher.submit(r, true),
        Request::Insert(r, item) => batcher.submit_write(WriteOp::Insert(r, item)),
        Request::Delete(r, item) => batcher.submit_write(WriteOp::Delete(r, item)),
    };
    match submitted {
        Err(SubmitError::Overloaded) => Response::Overloaded,
        Err(SubmitError::ShuttingDown) => Response::ShuttingDown,
        Ok(rx) => match rx.recv() {
            Err(_) => Response::Error("scheduler dropped the job".into()),
            Ok(Err(e)) => Response::Error(e.to_string()),
            Ok(Ok(JobOutput::Matches(ids))) => Response::Matches(ids),
            Ok(Ok(JobOutput::Count(n))) => Response::Count(n),
            Ok(Ok(JobOutput::Written(found))) => Response::Written(found),
        },
    }
}

/// A minimal blocking client for tests, the load generator, and the CLI.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    /// Sends one request and blocks for its response. `Ok(None)` if the
    /// server closed the connection.
    pub fn call(&mut self, req: &Request) -> io::Result<Option<Response>> {
        wire::send_request(&mut self.stream, req)?;
        wire::recv_response(&mut self.stream)
    }

    /// Sends raw payload bytes in a frame (tests exercise malformed
    /// payloads on an aligned stream).
    pub fn call_raw(&mut self, payload: &[u8]) -> io::Result<Option<Response>> {
        wire::write_frame(&mut self.stream, payload)?;
        wire::recv_response(&mut self.stream)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtree_geom::Rect;
    use rtree_pager::IoStats;
    use std::sync::atomic::AtomicUsize;

    struct Echo;

    impl QueryEngine for Echo {
        fn execute(&self, queries: &[Rect]) -> io::Result<Vec<Vec<u64>>> {
            Ok(queries.iter().map(|_| vec![1]).collect())
        }

        fn io_stats(&self) -> IoStats {
            IoStats::default()
        }
    }

    /// A spawner that refuses the first `fail` spawns whose thread name
    /// matches `pattern`, then behaves normally.
    fn failing_spawner(pattern: &'static str, fail: usize) -> (Spawner, Arc<AtomicUsize>) {
        let failures = Arc::new(AtomicUsize::new(0));
        let counter = Arc::clone(&failures);
        let spawner: Spawner = Arc::new(move |name, f| {
            if name.contains(pattern) && counter.fetch_add(1, Ordering::SeqCst) < fail {
                return Err(io::Error::new(
                    io::ErrorKind::WouldBlock,
                    "simulated thread exhaustion",
                ));
            }
            thread::Builder::new().name(name.to_string()).spawn(f)
        });
        (spawner, failures)
    }

    #[test]
    fn accept_loop_spawn_failure_is_a_typed_serve_error() {
        let (spawner, _) = failing_spawner("rtree-accept", 1);
        let err = serve_with_spawner(Echo, "127.0.0.1:0", ServerConfig::default(), spawner)
            .err()
            .expect("serve must fail when the accept loop cannot start");
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
        assert!(
            err.to_string().contains("accept loop"),
            "error names the failed component: {err}"
        );
    }

    #[test]
    fn connection_spawn_failure_sheds_one_connection_and_keeps_serving() {
        let (spawner, _) = failing_spawner("rtree-conn", 1);
        let handle =
            serve_with_spawner(Echo, "127.0.0.1:0", ServerConfig::default(), spawner).unwrap();

        // First connection: its handler thread fails to spawn; the server
        // refuses it with Overloaded (sent unprompted) and closes.
        let mut shed = Client::connect(handle.addr()).unwrap();
        match wire::recv_response(&mut shed.stream).unwrap() {
            Some(Response::Overloaded) => {}
            other => panic!("shed connection expected Overloaded, got {other:?}"),
        }
        drop(shed);

        // The accept loop survived: the next connection is served.
        let mut ok = Client::connect(handle.addr()).unwrap();
        match ok
            .call(&Request::Query(Rect::new(0.0, 0.0, 1.0, 1.0)))
            .unwrap()
        {
            Some(Response::Matches(ids)) => assert_eq!(ids, vec![1]),
            other => panic!("expected matches, got {other:?}"),
        }
        handle.shutdown();
    }
}
