//! Clock (second-chance) replacement (ablation baseline).

use crate::{PageId, ReplacementPolicy};
use std::collections::HashMap;

#[derive(Clone, Copy)]
struct Frame {
    page: PageId,
    referenced: bool,
    occupied: bool,
}

/// Clock policy: frames on a circular list with a reference bit; the hand
/// sweeps, clearing bits, and evicts the first unreferenced frame.
pub struct ClockPolicy {
    frames: Vec<Frame>,
    free: Vec<usize>,
    map: HashMap<PageId, usize>,
    hand: usize,
}

impl ClockPolicy {
    /// Creates an empty clock tracker.
    pub fn new() -> Self {
        ClockPolicy {
            frames: Vec::new(),
            free: Vec::new(),
            map: HashMap::new(),
            hand: 0,
        }
    }
}

impl Default for ClockPolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl ReplacementPolicy for ClockPolicy {
    fn on_hit(&mut self, page: PageId) {
        let i = *self.map.get(&page).expect("on_hit for untracked page");
        self.frames[i].referenced = true;
    }

    fn on_insert(&mut self, page: PageId) {
        debug_assert!(!self.map.contains_key(&page), "double insert");
        let frame = Frame {
            page,
            referenced: false,
            occupied: true,
        };
        let i = if let Some(i) = self.free.pop() {
            self.frames[i] = frame;
            i
        } else {
            self.frames.push(frame);
            self.frames.len() - 1
        };
        self.map.insert(page, i);
    }

    fn evict(&mut self) -> PageId {
        assert!(!self.map.is_empty(), "evict from empty clock");
        loop {
            if self.frames.is_empty() {
                unreachable!("map non-empty implies frames exist");
            }
            let i = self.hand;
            self.hand = (self.hand + 1) % self.frames.len();
            let f = &mut self.frames[i];
            if !f.occupied {
                continue;
            }
            if f.referenced {
                f.referenced = false;
                continue;
            }
            f.occupied = false;
            let page = f.page;
            self.free.push(i);
            self.map.remove(&page);
            return page;
        }
    }

    fn remove(&mut self, page: PageId) {
        if let Some(i) = self.map.remove(&page) {
            self.frames[i].occupied = false;
            self.free.push(i);
        }
    }

    fn on_unpin(&mut self, page: PageId) {
        // A fresh insert carries a cleared reference bit and would be the
        // hand's first victim — the opposite of the "most recently used"
        // contract for freshly unpinned pages. Insert, then set the bit so
        // the page survives the hand's next sweep.
        self.on_insert(page);
        let i = *self.map.get(&page).expect("just inserted");
        self.frames[i].referenced = true;
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn name(&self) -> &'static str {
        "CLOCK"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unreferenced_page_evicted_first() {
        let mut p = ClockPolicy::new();
        for i in 0..3 {
            p.on_insert(PageId(i));
        }
        p.on_hit(PageId(0));
        // Hand at 0: page 0 referenced -> second chance; page 1 evicted.
        assert_eq!(p.evict(), PageId(1));
    }

    #[test]
    fn all_referenced_degenerates_to_sweep() {
        let mut p = ClockPolicy::new();
        for i in 0..3 {
            p.on_insert(PageId(i));
            p.on_hit(PageId(i));
        }
        // Every bit cleared during the first sweep, then frame 0 is evicted.
        assert_eq!(p.evict(), PageId(0));
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn remove_frees_frame() {
        let mut p = ClockPolicy::new();
        p.on_insert(PageId(1));
        p.on_insert(PageId(2));
        p.remove(PageId(1));
        assert_eq!(p.len(), 1);
        assert_eq!(p.evict(), PageId(2));
        assert!(p.is_empty());
    }

    #[test]
    fn frames_are_reused() {
        let mut p = ClockPolicy::new();
        for round in 0..10u64 {
            for i in 0..4u64 {
                p.on_insert(PageId(round * 10 + i));
            }
            for _ in 0..4 {
                p.evict();
            }
        }
        assert!(p.frames.len() <= 4, "frame slab grew: {}", p.frames.len());
    }

    #[test]
    #[should_panic]
    fn evict_empty_panics() {
        let mut p = ClockPolicy::new();
        let _ = p.evict();
    }
}
