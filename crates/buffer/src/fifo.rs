//! First-in/first-out replacement (ablation baseline).

use crate::{PageId, ReplacementPolicy};
use std::collections::{HashSet, VecDeque};

/// FIFO policy: victims leave in arrival order; references do not refresh a
/// page's position. Removals are lazy (tombstoned) so all operations stay
/// amortized O(1).
pub struct FifoPolicy {
    queue: VecDeque<PageId>,
    live: HashSet<PageId>,
}

impl FifoPolicy {
    /// Creates an empty FIFO tracker.
    pub fn new() -> Self {
        FifoPolicy {
            queue: VecDeque::new(),
            live: HashSet::new(),
        }
    }
}

impl Default for FifoPolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl ReplacementPolicy for FifoPolicy {
    fn on_hit(&mut self, _page: PageId) {
        // FIFO ignores references.
    }

    fn on_insert(&mut self, page: PageId) {
        debug_assert!(!self.live.contains(&page), "double insert");
        self.queue.push_back(page);
        self.live.insert(page);
    }

    fn evict(&mut self) -> PageId {
        while let Some(page) = self.queue.pop_front() {
            if self.live.remove(&page) {
                return page;
            }
            // Tombstone from an earlier `remove`; skip.
        }
        panic!("evict from empty FIFO");
    }

    fn remove(&mut self, page: PageId) {
        self.live.remove(&page);
    }

    fn len(&self) -> usize {
        self.live.len()
    }

    fn name(&self) -> &'static str {
        "FIFO"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_in_arrival_order_despite_hits() {
        let mut p = FifoPolicy::new();
        for i in 0..3 {
            p.on_insert(PageId(i));
        }
        p.on_hit(PageId(0));
        p.on_hit(PageId(0));
        assert_eq!(p.evict(), PageId(0));
        assert_eq!(p.evict(), PageId(1));
        assert_eq!(p.evict(), PageId(2));
    }

    #[test]
    fn remove_skips_tombstones() {
        let mut p = FifoPolicy::new();
        for i in 0..3 {
            p.on_insert(PageId(i));
        }
        p.remove(PageId(0));
        assert_eq!(p.len(), 2);
        assert_eq!(p.evict(), PageId(1));
    }

    #[test]
    fn reinsert_after_evict() {
        let mut p = FifoPolicy::new();
        p.on_insert(PageId(7));
        assert_eq!(p.evict(), PageId(7));
        p.on_insert(PageId(7));
        assert_eq!(p.len(), 1);
        assert_eq!(p.evict(), PageId(7));
    }

    #[test]
    #[should_panic]
    fn evict_empty_panics() {
        let mut p = FifoPolicy::new();
        let _ = p.evict();
    }
}
