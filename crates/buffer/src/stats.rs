//! Latch-free statistics mirrors for concurrent pools.

use crate::{AccessOutcome, BufferStats};
use std::sync::atomic::{AtomicU64, Ordering};

/// A relaxed-atomic mirror of [`BufferStats`], for pools that are read from
/// many threads at once: writers record outcomes with relaxed increments,
/// readers snapshot without taking any pool latch. Counts are exact (atomic
/// increments never lose updates); only the *ordering* between counters is
/// relaxed, which a monotonic statistics read does not care about.
#[derive(Debug, Default)]
pub struct AtomicBufferStats {
    accesses: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl AtomicBufferStats {
    /// Creates zeroed counters.
    pub const fn new() -> Self {
        AtomicBufferStats {
            accesses: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Records one access outcome.
    pub fn record(&self, outcome: &AccessOutcome) {
        self.accesses.fetch_add(1, Ordering::Relaxed);
        if outcome.is_miss() {
            self.misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records an access that missed (e.g. a pin load that went to disk).
    pub fn record_miss(&self) {
        self.accesses.fetch_add(1, Ordering::Relaxed);
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Reads the counters into a plain [`BufferStats`].
    pub fn snapshot(&self) -> BufferStats {
        BufferStats {
            accesses: self.accesses.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Zeroes the counters (e.g. after warm-up).
    pub fn reset(&self) {
        self.accesses.store(0, Ordering::Relaxed);
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_snapshot() {
        let s = AtomicBufferStats::new();
        s.record(&AccessOutcome::Hit);
        s.record(&AccessOutcome::Miss { evicted: None });
        s.record(&AccessOutcome::MissBypass);
        s.record_miss();
        let snap = s.snapshot();
        assert_eq!((snap.accesses, snap.hits, snap.misses), (4, 1, 3));
        s.reset();
        assert_eq!(s.snapshot(), BufferStats::default());
    }

    #[test]
    fn aggregates_with_add_assign() {
        let a = AtomicBufferStats::new();
        let b = AtomicBufferStats::new();
        a.record(&AccessOutcome::Hit);
        b.record_miss();
        let mut total = a.snapshot();
        total += b.snapshot();
        assert_eq!((total.accesses, total.hits, total.misses), (2, 1, 1));
    }
}
