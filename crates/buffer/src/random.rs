//! Random replacement (ablation baseline).

use crate::{PageId, ReplacementPolicy};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Random policy: evicts a uniformly random tracked page. Deterministic for
/// a given seed, like every randomized component in this workspace.
pub struct RandomPolicy {
    pages: Vec<PageId>,
    map: HashMap<PageId, usize>,
    rng: StdRng,
}

impl RandomPolicy {
    /// Creates an empty tracker with the given RNG seed.
    pub fn new(seed: u64) -> Self {
        RandomPolicy {
            pages: Vec::new(),
            map: HashMap::new(),
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl ReplacementPolicy for RandomPolicy {
    fn on_hit(&mut self, _page: PageId) {
        // Random replacement ignores references.
    }

    fn on_insert(&mut self, page: PageId) {
        debug_assert!(!self.map.contains_key(&page), "double insert");
        self.map.insert(page, self.pages.len());
        self.pages.push(page);
    }

    fn evict(&mut self) -> PageId {
        assert!(!self.pages.is_empty(), "evict from empty random policy");
        let i = self.rng.gen_range(0..self.pages.len());
        let page = self.pages.swap_remove(i);
        self.map.remove(&page);
        if let Some(&moved) = self.pages.get(i) {
            self.map.insert(moved, i);
        }
        page
    }

    fn remove(&mut self, page: PageId) {
        if let Some(i) = self.map.remove(&page) {
            self.pages.swap_remove(i);
            if let Some(&moved) = self.pages.get(i) {
                self.map.insert(moved, i);
            }
        }
    }

    fn len(&self) -> usize {
        self.pages.len()
    }

    fn name(&self) -> &'static str {
        "RANDOM"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_only_tracked_pages() {
        let mut p = RandomPolicy::new(7);
        for i in 0..16 {
            p.on_insert(PageId(i));
        }
        let mut seen = std::collections::HashSet::new();
        for _ in 0..16 {
            let v = p.evict();
            assert!(v.0 < 16);
            assert!(seen.insert(v), "page evicted twice");
        }
        assert!(p.is_empty());
    }

    #[test]
    fn deterministic_for_seed() {
        let run = |seed| {
            let mut p = RandomPolicy::new(seed);
            for i in 0..8 {
                p.on_insert(PageId(i));
            }
            (0..8).map(|_| p.evict().0).collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43)); // overwhelmingly likely
    }

    #[test]
    fn remove_keeps_map_consistent() {
        let mut p = RandomPolicy::new(1);
        for i in 0..4 {
            p.on_insert(PageId(i));
        }
        p.remove(PageId(0)); // swap_remove moves page 3 into slot 0
        p.remove(PageId(3)); // must still find it
        assert_eq!(p.len(), 2);
    }
}
