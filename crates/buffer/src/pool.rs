//! The buffer pool: residency tracking, eviction, pinning, statistics.

use crate::{PageId, ReplacementPolicy};
use std::collections::HashSet;
use std::fmt;

/// Result of one page access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The page was resident (no disk access).
    Hit,
    /// The page was not resident; it was read from disk and cached,
    /// evicting `evicted` if the pool was full.
    Miss { evicted: Option<PageId> },
    /// The page was not resident and could not be cached because every
    /// frame is pinned; it was read from disk and bypassed the pool.
    MissBypass,
}

impl AccessOutcome {
    /// True if the access required a disk read.
    pub fn is_miss(&self) -> bool {
        !matches!(self, AccessOutcome::Hit)
    }
}

/// Counters accumulated by a pool.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BufferStats {
    /// Total page accesses.
    pub accesses: u64,
    /// Accesses satisfied from the pool.
    pub hits: u64,
    /// Accesses that required a disk read.
    pub misses: u64,
}

impl BufferStats {
    /// Fraction of accesses satisfied from the pool.
    pub fn hit_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }
}

impl std::ops::AddAssign for BufferStats {
    fn add_assign(&mut self, rhs: Self) {
        self.accesses += rhs.accesses;
        self.hits += rhs.hits;
        self.misses += rhs.misses;
    }
}

/// Error returned by [`BufferPool::pin`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PinError {
    /// Pinning the page would exceed the pool capacity.
    CapacityExceeded,
}

impl fmt::Display for PinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PinError::CapacityExceeded => write!(f, "pinning would exceed buffer capacity"),
        }
    }
}

impl std::error::Error for PinError {}

/// A fixed-capacity buffer pool over page *identities*.
///
/// Pinned pages occupy capacity but are exempt from replacement — exactly
/// the paper's pinning semantics ("simply reduce the number of buffer pages
/// by the number of pages in these pinned levels").
///
/// # Examples
///
/// ```
/// use rtree_buffer::{AccessOutcome, BufferPool, LruPolicy, PageId};
///
/// let mut pool = BufferPool::new(2, LruPolicy::new());
/// assert!(pool.access(PageId(1)).is_miss());
/// assert_eq!(pool.access(PageId(1)), AccessOutcome::Hit);
/// pool.access(PageId(2));
/// // Capacity 2: page 1 is now least recently used and gets evicted.
/// pool.access(PageId(1));
/// match pool.access(PageId(3)) {
///     AccessOutcome::Miss { evicted } => assert_eq!(evicted, Some(PageId(2))),
///     other => panic!("unexpected {other:?}"),
/// }
/// ```
pub struct BufferPool {
    capacity: usize,
    policy: Box<dyn ReplacementPolicy>,
    resident: HashSet<PageId>,
    pinned: HashSet<PageId>,
    /// Pages whose cached contents differ from the backing store. The pool
    /// only tracks the set; writing the bytes back is the buffer manager's
    /// job (it must consult this on every eviction — see
    /// `AccessOutcome::Miss { evicted }`).
    dirty: HashSet<PageId>,
    stats: BufferStats,
}

impl BufferPool {
    /// Creates a pool with room for `capacity` pages.
    ///
    /// # Panics
    /// Panics if `capacity` is 0.
    pub fn new(capacity: usize, policy: impl ReplacementPolicy + 'static) -> Self {
        assert!(capacity > 0, "buffer capacity must be positive");
        BufferPool {
            capacity,
            policy: Box::new(policy),
            resident: HashSet::with_capacity(capacity + 1),
            pinned: HashSet::new(),
            dirty: HashSet::new(),
            stats: BufferStats::default(),
        }
    }

    /// Pool capacity in pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of currently resident pages (pinned included).
    pub fn len(&self) -> usize {
        self.resident.len()
    }

    /// True if no pages are resident.
    pub fn is_empty(&self) -> bool {
        self.resident.is_empty()
    }

    /// True once the pool holds `capacity` pages — the end of the paper's
    /// warm-up period (`N*` queries).
    pub fn is_full(&self) -> bool {
        self.resident.len() >= self.capacity
    }

    /// True if the page is resident.
    pub fn contains(&self, page: PageId) -> bool {
        self.resident.contains(&page)
    }

    /// True if the page is pinned.
    pub fn is_pinned(&self, page: PageId) -> bool {
        self.pinned.contains(&page)
    }

    /// Replacement policy name.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> BufferStats {
        self.stats
    }

    /// Resets the statistics (e.g. after warm-up).
    pub fn reset_stats(&mut self) {
        self.stats = BufferStats::default();
    }

    /// Accesses a page, updating residency, policy state and statistics.
    pub fn access(&mut self, page: PageId) -> AccessOutcome {
        self.stats.accesses += 1;
        if self.resident.contains(&page) {
            self.stats.hits += 1;
            if !self.pinned.contains(&page) {
                self.policy.on_hit(page);
            }
            return AccessOutcome::Hit;
        }
        self.stats.misses += 1;
        let evicted = if self.resident.len() >= self.capacity {
            if self.policy.is_empty() {
                // Every frame is pinned: the read bypasses the pool.
                return AccessOutcome::MissBypass;
            }
            let victim = self.policy.evict();
            let removed = self.resident.remove(&victim);
            debug_assert!(removed, "policy evicted a non-resident page");
            Some(victim)
        } else {
            None
        };
        self.resident.insert(page);
        self.policy.on_insert(page);
        AccessOutcome::Miss { evicted }
    }

    /// Pins a page: it becomes resident (loaded from disk if needed —
    /// counted as a miss) and exempt from replacement until unpinned.
    /// Returns the page evicted to make room, if any — the caller owns its
    /// frame and must write it back if dirty.
    pub fn pin(&mut self, page: PageId) -> Result<Option<PageId>, PinError> {
        let was_resident = self.resident.contains(&page);
        let evicted = self.admit_pinned(page)?;
        if !was_resident {
            self.stats.accesses += 1;
            self.stats.misses += 1;
        }
        Ok(evicted)
    }

    /// Like [`BufferPool::pin`] but *without* touching the access/hit/miss
    /// statistics: the prefetch path. A prefetch fill is a physical read
    /// but not a pool access — the access (a hit) is charged later, when a
    /// query consumes the prefetched frame — so counting it here would
    /// break the `hits + misses == accesses` reconciliation.
    pub fn admit_pinned(&mut self, page: PageId) -> Result<Option<PageId>, PinError> {
        if self.pinned.contains(&page) {
            return Ok(None);
        }
        if self.resident.contains(&page) {
            self.policy.remove(page);
            self.pinned.insert(page);
            return Ok(None);
        }
        if self.pinned.len() >= self.capacity {
            return Err(PinError::CapacityExceeded);
        }
        let evicted = if self.resident.len() >= self.capacity {
            if self.policy.is_empty() {
                return Err(PinError::CapacityExceeded);
            }
            let victim = self.policy.evict();
            self.resident.remove(&victim);
            Some(victim)
        } else {
            None
        };
        self.resident.insert(page);
        self.pinned.insert(page);
        Ok(evicted)
    }

    /// Unpins a page; it stays resident and re-enters the replacement order
    /// as most recently used (via [`ReplacementPolicy::on_unpin`], so even
    /// policies whose fresh inserts are immediately evictable honor this).
    pub fn unpin(&mut self, page: PageId) {
        if self.pinned.remove(&page) {
            self.policy.on_unpin(page);
        }
    }

    /// Removes an unpinned resident page from the pool without an eviction
    /// decision — invalidation, e.g. when a buffer manager refuses a page
    /// whose frame failed checksum verification at read-in and must back
    /// the admission out so the next access misses again. Returns whether
    /// the page was resident. No-op (returning `false`) on pinned pages:
    /// a pinned frame is someone's live reference.
    pub fn discard(&mut self, page: PageId) -> bool {
        if self.pinned.contains(&page) || !self.resident.remove(&page) {
            return false;
        }
        self.policy.remove(page);
        self.dirty.remove(&page);
        true
    }

    /// Number of pinned pages.
    pub fn pinned_count(&self) -> usize {
        self.pinned.len()
    }

    /// Marks a resident page as modified relative to the backing store.
    ///
    /// # Panics
    /// Panics if the page is not resident — a dirty page with no frame
    /// would be unrecoverable.
    pub fn mark_dirty(&mut self, page: PageId) {
        assert!(
            self.resident.contains(&page),
            "marking non-resident page dirty"
        );
        self.dirty.insert(page);
    }

    /// Clears the dirty mark (after the manager wrote the page back).
    pub fn clear_dirty(&mut self, page: PageId) {
        self.dirty.remove(&page);
    }

    /// True if the page is marked dirty. Valid to ask about just-evicted
    /// pages: eviction does not clear the mark, so the manager can decide
    /// whether the victim needs a write-back.
    pub fn is_dirty(&self, page: PageId) -> bool {
        self.dirty.contains(&page)
    }

    /// All dirty pages, sorted for deterministic flush order.
    pub fn dirty_pages(&self) -> Vec<PageId> {
        let mut pages: Vec<PageId> = self.dirty.iter().copied().collect();
        pages.sort_unstable_by_key(|p| p.0);
        pages
    }

    /// Number of dirty pages.
    pub fn dirty_count(&self) -> usize {
        self.dirty.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClockPolicy, FifoPolicy, LruKPolicy, LruPolicy, RandomPolicy, ReplacementPolicy};

    /// One freshly built instance of every policy, labelled.
    fn all_policies() -> Vec<(&'static str, Box<dyn ReplacementPolicy>)> {
        vec![
            ("LRU", Box::new(LruPolicy::new())),
            ("FIFO", Box::new(FifoPolicy::new())),
            ("CLOCK", Box::new(ClockPolicy::new())),
            ("RANDOM", Box::new(RandomPolicy::new(0xFEED))),
            ("LRU-K", Box::new(LruKPolicy::lru2())),
        ]
    }

    #[test]
    fn hits_and_misses_counted() {
        let mut pool = BufferPool::new(2, LruPolicy::new());
        assert!(pool.access(PageId(1)).is_miss());
        assert_eq!(pool.access(PageId(1)), AccessOutcome::Hit);
        assert!(pool.access(PageId(2)).is_miss());
        let s = pool.stats();
        assert_eq!((s.accesses, s.hits, s.misses), (3, 1, 2));
        assert!((s.hit_ratio() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn lru_eviction_chain() {
        let mut pool = BufferPool::new(2, LruPolicy::new());
        pool.access(PageId(1));
        pool.access(PageId(2));
        pool.access(PageId(1)); // 2 is now LRU
        match pool.access(PageId(3)) {
            AccessOutcome::Miss { evicted } => assert_eq!(evicted, Some(PageId(2))),
            other => panic!("expected miss, got {other:?}"),
        }
        assert!(pool.contains(PageId(1)));
        assert!(!pool.contains(PageId(2)));
    }

    #[test]
    fn pinned_pages_survive_any_pressure() {
        let mut pool = BufferPool::new(3, LruPolicy::new());
        pool.pin(PageId(0)).unwrap();
        for i in 1..100 {
            pool.access(PageId(i));
        }
        assert!(pool.contains(PageId(0)));
        assert!(pool.is_pinned(PageId(0)));
        assert_eq!(pool.len(), 3);
    }

    #[test]
    fn pin_capacity_enforced() {
        let mut pool = BufferPool::new(2, LruPolicy::new());
        pool.pin(PageId(0)).unwrap();
        pool.pin(PageId(1)).unwrap();
        assert_eq!(pool.pin(PageId(2)), Err(PinError::CapacityExceeded));
        // Fully pinned pool: misses bypass.
        assert_eq!(pool.access(PageId(9)), AccessOutcome::MissBypass);
        assert!(!pool.contains(PageId(9)));
    }

    #[test]
    fn pin_resident_page_removes_from_policy() {
        let mut pool = BufferPool::new(2, LruPolicy::new());
        pool.access(PageId(1));
        pool.access(PageId(2));
        pool.pin(PageId(1)).unwrap(); // 1 no longer evictable
        match pool.access(PageId(3)) {
            AccessOutcome::Miss { evicted } => assert_eq!(evicted, Some(PageId(2))),
            other => panic!("unexpected {other:?}"),
        }
        assert!(pool.contains(PageId(1)));
    }

    #[test]
    fn unpin_reenters_replacement() {
        let mut pool = BufferPool::new(1, LruPolicy::new());
        pool.pin(PageId(1)).unwrap();
        pool.unpin(PageId(1));
        match pool.access(PageId(2)) {
            AccessOutcome::Miss { evicted } => assert_eq!(evicted, Some(PageId(1))),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn pin_is_idempotent() {
        let mut pool = BufferPool::new(2, LruPolicy::new());
        pool.pin(PageId(1)).unwrap();
        pool.pin(PageId(1)).unwrap();
        assert_eq!(pool.pinned_count(), 1);
        let s = pool.stats();
        assert_eq!(s.misses, 1, "second pin must not re-read");
    }

    #[test]
    fn admit_pinned_skips_stats_until_the_consuming_access() {
        let mut pool = BufferPool::new(2, LruPolicy::new());
        assert_eq!(pool.admit_pinned(PageId(1)), Ok(None));
        assert_eq!(pool.stats(), BufferStats::default(), "prefetch is silent");
        assert!(pool.is_pinned(PageId(1)));
        // The consuming access is a hit — the only statistics the prefetch
        // ever produces.
        assert_eq!(pool.access(PageId(1)), AccessOutcome::Hit);
        let s = pool.stats();
        assert_eq!((s.accesses, s.hits, s.misses), (1, 1, 0));
        pool.unpin(PageId(1));
        // Pinned-full pool refuses further admissions cleanly.
        pool.pin(PageId(2)).unwrap();
        pool.pin(PageId(3)).unwrap();
        assert_eq!(
            pool.admit_pinned(PageId(4)),
            Err(PinError::CapacityExceeded)
        );
    }

    #[test]
    fn admit_pinned_evicts_like_pin() {
        let mut pool = BufferPool::new(1, LruPolicy::new());
        pool.access(PageId(1));
        assert_eq!(pool.admit_pinned(PageId(2)), Ok(Some(PageId(1))));
        assert!(pool.is_pinned(PageId(2)));
        assert!(!pool.contains(PageId(1)));
    }

    #[test]
    fn works_with_fifo() {
        let mut pool = BufferPool::new(2, FifoPolicy::new());
        pool.access(PageId(1));
        pool.access(PageId(2));
        pool.access(PageId(1)); // FIFO ignores the touch
        match pool.access(PageId(3)) {
            AccessOutcome::Miss { evicted } => assert_eq!(evicted, Some(PageId(1))),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn fill_tracking() {
        let mut pool = BufferPool::new(3, LruPolicy::new());
        assert!(!pool.is_full());
        for i in 0..3 {
            pool.access(PageId(i));
        }
        assert!(pool.is_full());
        assert_eq!(pool.len(), 3);
    }

    #[test]
    #[should_panic]
    fn zero_capacity_rejected() {
        let _ = BufferPool::new(0, LruPolicy::new());
    }

    #[test]
    fn dirty_marks_tracked_and_cleared() {
        let mut pool = BufferPool::new(4, LruPolicy::new());
        pool.access(PageId(1));
        pool.access(PageId(2));
        pool.mark_dirty(PageId(1));
        pool.mark_dirty(PageId(2));
        pool.mark_dirty(PageId(2));
        assert!(pool.is_dirty(PageId(1)));
        assert_eq!(pool.dirty_count(), 2);
        assert_eq!(pool.dirty_pages(), vec![PageId(1), PageId(2)]);
        pool.clear_dirty(PageId(1));
        assert!(!pool.is_dirty(PageId(1)));
        assert_eq!(pool.dirty_pages(), vec![PageId(2)]);
    }

    #[test]
    fn eviction_keeps_dirty_mark_for_manager() {
        let mut pool = BufferPool::new(1, LruPolicy::new());
        pool.access(PageId(1));
        pool.mark_dirty(PageId(1));
        match pool.access(PageId(2)) {
            AccessOutcome::Miss { evicted } => assert_eq!(evicted, Some(PageId(1))),
            other => panic!("unexpected {other:?}"),
        }
        // The mark survives eviction so the manager can flush the victim.
        assert!(pool.is_dirty(PageId(1)));
        pool.clear_dirty(PageId(1));
        assert_eq!(pool.dirty_count(), 0);
    }

    #[test]
    #[should_panic]
    fn dirty_requires_residency() {
        let mut pool = BufferPool::new(2, LruPolicy::new());
        pool.mark_dirty(PageId(7));
    }

    /// Regression (per policy): an unpinned page re-enters the replacement
    /// order as most recently used, so with an older eviction candidate
    /// available the freshly unpinned page must not be the immediate victim.
    #[test]
    fn unpinned_page_is_not_the_immediate_victim() {
        for (name, policy) in all_policies() {
            if name == "RANDOM" {
                // Random has no recency order; covered by the residency
                // check in `unpin_keeps_page_resident_and_tracked`.
                continue;
            }
            let mut pool = BufferPool::new(2, policy);
            pool.pin(PageId(1)).unwrap();
            assert!(pool.access(PageId(2)).is_miss());
            pool.unpin(PageId(1));
            match pool.access(PageId(3)) {
                AccessOutcome::Miss { evicted } => {
                    assert_eq!(
                        evicted,
                        Some(PageId(2)),
                        "{name}: unpinned page evicted first"
                    )
                }
                other => panic!("{name}: unexpected {other:?}"),
            }
            assert!(pool.contains(PageId(1)), "{name}: unpinned page gone");
        }
    }

    /// Clock-specific regression: `unpin` used to re-insert the page with a
    /// cleared reference bit, so a hand sweep that cleared every other bit
    /// evicted the freshly unpinned page. With `on_unpin` setting the bit,
    /// the unpinned page survives one full sweep like a hot page.
    #[test]
    fn clock_unpinned_page_survives_hand_sweep() {
        let mut pool = BufferPool::new(3, ClockPolicy::new());
        pool.pin(PageId(1)).unwrap();
        pool.access(PageId(2));
        pool.access(PageId(3));
        pool.unpin(PageId(1));
        // Reference 2 and 3 so the sweep must clear their bits and reach
        // page 1's frame before settling on a victim.
        assert_eq!(pool.access(PageId(2)), AccessOutcome::Hit);
        assert_eq!(pool.access(PageId(3)), AccessOutcome::Hit);
        match pool.access(PageId(5)) {
            AccessOutcome::Miss { evicted } => assert_eq!(evicted, Some(PageId(2))),
            other => panic!("unexpected {other:?}"),
        }
        assert!(pool.contains(PageId(1)), "unpinned page lost to the sweep");
    }

    #[test]
    fn unpin_keeps_page_resident_and_tracked() {
        for (name, policy) in all_policies() {
            let mut pool = BufferPool::new(2, policy);
            pool.pin(PageId(1)).unwrap();
            pool.unpin(PageId(1));
            assert!(pool.contains(PageId(1)), "{name}: page not resident");
            assert!(!pool.is_pinned(PageId(1)), "{name}: page still pinned");
            // The page is evictable again: enough pressure cycles it out.
            for i in 10..40 {
                pool.access(PageId(i));
            }
            assert!(!pool.contains(PageId(1)), "{name}: page never evicted");
        }
    }

    /// `MissBypass` accounting (per policy): a miss against a fully pinned
    /// pool still counts as an access and a miss, and leaves residency,
    /// pin set and policy state untouched.
    #[test]
    fn miss_bypass_counts_and_leaves_pool_untouched() {
        for (name, policy) in all_policies() {
            let mut pool = BufferPool::new(2, policy);
            pool.pin(PageId(0)).unwrap();
            pool.pin(PageId(1)).unwrap();
            let before = pool.stats();
            for round in 0..3u64 {
                assert_eq!(
                    pool.access(PageId(100 + round)),
                    AccessOutcome::MissBypass,
                    "{name}: expected bypass"
                );
                assert!(!pool.contains(PageId(100 + round)), "{name}: bypass cached");
            }
            let s = pool.stats();
            assert_eq!(s.accesses, before.accesses + 3, "{name}: accesses");
            assert_eq!(s.misses, before.misses + 3, "{name}: misses");
            assert_eq!(s.hits, before.hits, "{name}: hits");
            assert_eq!(pool.len(), 2, "{name}: residency changed");
            assert_eq!(pool.pinned_count(), 2, "{name}: pins changed");
            // Pinned pages still hit.
            assert_eq!(pool.access(PageId(0)), AccessOutcome::Hit, "{name}");
        }
    }

    /// Fully pinned pool (per policy): further pins fail cleanly and an
    /// unpin restores normal replacement.
    #[test]
    fn fully_pinned_pool_recovers_after_unpin() {
        for (name, policy) in all_policies() {
            let mut pool = BufferPool::new(2, policy);
            pool.pin(PageId(0)).unwrap();
            pool.pin(PageId(1)).unwrap();
            assert_eq!(
                pool.pin(PageId(2)),
                Err(PinError::CapacityExceeded),
                "{name}"
            );
            pool.unpin(PageId(0));
            match pool.access(PageId(2)) {
                AccessOutcome::Miss { evicted } => {
                    assert_eq!(evicted, Some(PageId(0)), "{name}: wrong victim")
                }
                other => panic!("{name}: unexpected {other:?}"),
            }
            assert!(pool.contains(PageId(1)), "{name}: pinned page lost");
        }
    }
}
