//! Buffer pool with pluggable replacement policies and page pinning.
//!
//! The paper models an **LRU** buffer (following Bhide, Dan & Dias) and
//! studies pinning the top levels of the R-tree in the pool (§3.3, §5.5).
//! This crate provides the pool used by both the trace-driven simulator
//! (`rtree-sim`) and the physical buffer manager (`rtree-pager`), plus
//! FIFO / Clock / Random replacement as ablation baselines.
//!
//! The pool tracks *which* pages are resident, not their contents — content
//! management is the pager's job. That split keeps the simulator allocation
//! free on the hot path.

mod clock;
mod fifo;
mod lru;
mod lruk;
mod pool;
mod random;
mod stats;

pub use clock::ClockPolicy;
pub use fifo::FifoPolicy;
pub use lru::LruPolicy;
pub use lruk::LruKPolicy;
pub use pool::{AccessOutcome, BufferPool, BufferStats, PinError};
pub use random::RandomPolicy;
pub use stats::AtomicBufferStats;

/// Identifier of a buffered page. In the R-tree study one page holds one
/// tree node.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct PageId(pub u64);

/// A replacement policy tracks the set of *evictable* (resident, unpinned)
/// pages and chooses victims.
///
/// Contract: a page is either *tracked* (after `on_insert`, until `evict`
/// returns it or `remove` is called) or not; `on_hit` is only called for
/// tracked pages, and `evict` is only called when at least one page is
/// tracked.
pub trait ReplacementPolicy: Send {
    /// A tracked page was referenced again.
    fn on_hit(&mut self, page: PageId);
    /// Starts tracking a page that just became resident (and evictable).
    fn on_insert(&mut self, page: PageId);
    /// Chooses a victim, removes it from tracking and returns it.
    fn evict(&mut self) -> PageId;
    /// Stops tracking a page (e.g. it is being pinned).
    fn remove(&mut self, page: PageId);
    /// A pinned page was released and re-enters the evictable set. The
    /// contract (see [`BufferPool::unpin`]) is that the page re-enters the
    /// replacement order *as most recently used*. The default defers to
    /// `on_insert`; policies whose fresh inserts are immediately evictable
    /// (Clock's cleared reference bit) must override this.
    fn on_unpin(&mut self, page: PageId) {
        self.on_insert(page);
    }
    /// Number of tracked pages.
    fn len(&self) -> usize;
    /// True if no pages are tracked.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Short policy name for experiment output.
    fn name(&self) -> &'static str;
}

/// Boxed policies forward to the inner policy, so heterogeneous policy
/// choices (CLI flags, per-shard factories) can use `Box<dyn
/// ReplacementPolicy>` wherever an `impl ReplacementPolicy` is expected.
impl ReplacementPolicy for Box<dyn ReplacementPolicy> {
    fn on_hit(&mut self, page: PageId) {
        (**self).on_hit(page);
    }
    fn on_insert(&mut self, page: PageId) {
        (**self).on_insert(page);
    }
    fn evict(&mut self) -> PageId {
        (**self).evict()
    }
    fn remove(&mut self, page: PageId) {
        (**self).remove(page);
    }
    fn on_unpin(&mut self, page: PageId) {
        (**self).on_unpin(page);
    }
    fn len(&self) -> usize {
        (**self).len()
    }
    fn is_empty(&self) -> bool {
        (**self).is_empty()
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
}
