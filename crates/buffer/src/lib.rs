//! Buffer pool with pluggable replacement policies and page pinning.
//!
//! The paper models an **LRU** buffer (following Bhide, Dan & Dias) and
//! studies pinning the top levels of the R-tree in the pool (§3.3, §5.5).
//! This crate provides the pool used by both the trace-driven simulator
//! (`rtree-sim`) and the physical buffer manager (`rtree-pager`), plus
//! FIFO / Clock / Random replacement as ablation baselines.
//!
//! The pool tracks *which* pages are resident, not their contents — content
//! management is the pager's job. That split keeps the simulator allocation
//! free on the hot path.

mod clock;
mod fifo;
mod lru;
mod lruk;
mod pool;
mod random;

pub use clock::ClockPolicy;
pub use fifo::FifoPolicy;
pub use lru::LruPolicy;
pub use lruk::LruKPolicy;
pub use pool::{AccessOutcome, BufferPool, BufferStats, PinError};
pub use random::RandomPolicy;

/// Identifier of a buffered page. In the R-tree study one page holds one
/// tree node.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct PageId(pub u64);

/// A replacement policy tracks the set of *evictable* (resident, unpinned)
/// pages and chooses victims.
///
/// Contract: a page is either *tracked* (after `on_insert`, until `evict`
/// returns it or `remove` is called) or not; `on_hit` is only called for
/// tracked pages, and `evict` is only called when at least one page is
/// tracked.
pub trait ReplacementPolicy: Send {
    /// A tracked page was referenced again.
    fn on_hit(&mut self, page: PageId);
    /// Starts tracking a page that just became resident (and evictable).
    fn on_insert(&mut self, page: PageId);
    /// Chooses a victim, removes it from tracking and returns it.
    fn evict(&mut self) -> PageId;
    /// Stops tracking a page (e.g. it is being pinned).
    fn remove(&mut self, page: PageId);
    /// Number of tracked pages.
    fn len(&self) -> usize;
    /// True if no pages are tracked.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Short policy name for experiment output.
    fn name(&self) -> &'static str;
}
