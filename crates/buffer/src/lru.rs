//! Least-recently-used replacement with O(1) operations.

use crate::{PageId, ReplacementPolicy};
use std::collections::HashMap;

const NIL: u32 = u32::MAX;

struct Slot {
    page: PageId,
    prev: u32,
    next: u32,
}

/// LRU policy: an intrusive doubly-linked recency list over a slab, plus a
/// page → slot map. `evict` removes the tail (least recently used).
pub struct LruPolicy {
    slots: Vec<Slot>,
    free: Vec<u32>,
    map: HashMap<PageId, u32>,
    head: u32, // most recently used
    tail: u32, // least recently used
}

impl LruPolicy {
    /// Creates an empty LRU tracker.
    pub fn new() -> Self {
        LruPolicy {
            slots: Vec::new(),
            free: Vec::new(),
            map: HashMap::new(),
            head: NIL,
            tail: NIL,
        }
    }

    fn unlink(&mut self, i: u32) {
        let (prev, next) = {
            let s = &self.slots[i as usize];
            (s.prev, s.next)
        };
        if prev != NIL {
            self.slots[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, i: u32) {
        self.slots[i as usize].prev = NIL;
        self.slots[i as usize].next = self.head;
        if self.head != NIL {
            self.slots[self.head as usize].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    /// The current victim candidate (least recently used page), if any.
    /// Exposed for tests and debugging.
    pub fn peek_lru(&self) -> Option<PageId> {
        (self.tail != NIL).then(|| self.slots[self.tail as usize].page)
    }
}

impl Default for LruPolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl ReplacementPolicy for LruPolicy {
    fn on_hit(&mut self, page: PageId) {
        let i = *self.map.get(&page).expect("on_hit for untracked page");
        self.unlink(i);
        self.push_front(i);
    }

    fn on_insert(&mut self, page: PageId) {
        debug_assert!(!self.map.contains_key(&page), "double insert");
        let i = if let Some(i) = self.free.pop() {
            self.slots[i as usize].page = page;
            i
        } else {
            let i = u32::try_from(self.slots.len()).expect("too many buffered pages");
            self.slots.push(Slot {
                page,
                prev: NIL,
                next: NIL,
            });
            i
        };
        self.map.insert(page, i);
        self.push_front(i);
    }

    fn evict(&mut self) -> PageId {
        let i = self.tail;
        assert!(i != NIL, "evict from empty LRU");
        let page = self.slots[i as usize].page;
        self.unlink(i);
        self.free.push(i);
        self.map.remove(&page);
        page
    }

    fn remove(&mut self, page: PageId) {
        if let Some(i) = self.map.remove(&page) {
            self.unlink(i);
            self.free.push(i);
        }
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn name(&self) -> &'static str {
        "LRU"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used() {
        let mut p = LruPolicy::new();
        for i in 0..4 {
            p.on_insert(PageId(i));
        }
        // Touch 0 and 1; LRU order (oldest first) is now 2, 3, 0, 1.
        p.on_hit(PageId(0));
        p.on_hit(PageId(1));
        assert_eq!(p.evict(), PageId(2));
        assert_eq!(p.evict(), PageId(3));
        assert_eq!(p.evict(), PageId(0));
        assert_eq!(p.evict(), PageId(1));
        assert!(p.is_empty());
    }

    #[test]
    fn remove_mid_list() {
        let mut p = LruPolicy::new();
        for i in 0..3 {
            p.on_insert(PageId(i));
        }
        p.remove(PageId(1));
        assert_eq!(p.len(), 2);
        assert_eq!(p.evict(), PageId(0));
        assert_eq!(p.evict(), PageId(2));
    }

    #[test]
    fn remove_untracked_is_noop() {
        let mut p = LruPolicy::new();
        p.on_insert(PageId(5));
        p.remove(PageId(99));
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn slots_are_reused() {
        let mut p = LruPolicy::new();
        for round in 0..10u64 {
            for i in 0..8u64 {
                p.on_insert(PageId(round * 100 + i));
            }
            for _ in 0..8 {
                p.evict();
            }
        }
        assert!(p.slots.len() <= 8, "slab grew: {}", p.slots.len());
    }

    #[test]
    fn peek_matches_evict() {
        let mut p = LruPolicy::new();
        p.on_insert(PageId(1));
        p.on_insert(PageId(2));
        p.on_hit(PageId(1));
        assert_eq!(p.peek_lru(), Some(PageId(2)));
        assert_eq!(p.evict(), PageId(2));
    }

    #[test]
    #[should_panic]
    fn evict_empty_panics() {
        let mut p = LruPolicy::new();
        let _ = p.evict();
    }
}
