//! LRU-K replacement (O'Neil, O'Neil & Weikum) — the classical database
//! refinement of LRU, added as an ablation baseline: the paper models plain
//! LRU, and LRU-K quantifies how much a history-aware policy would change
//! its conclusions.

use crate::{PageId, ReplacementPolicy};
use std::collections::{BTreeSet, HashMap};

/// Reference history of one page: the times of its last `K` references,
/// most recent first.
#[derive(Clone, Debug)]
struct History {
    times: Vec<u64>,
}

/// LRU-K policy: evicts the page whose `K`-th most recent reference is
/// oldest (pages with fewer than `K` references are treated as having an
/// infinitely old `K`-th reference and evicted first, breaking ties by the
/// least recent last reference).
pub struct LruKPolicy {
    k: usize,
    clock: u64,
    pages: HashMap<PageId, History>,
    /// Eviction order: (k-th reference time or 0, last reference time, page).
    order: BTreeSet<(u64, u64, PageId)>,
}

impl LruKPolicy {
    /// Creates an LRU-K tracker.
    ///
    /// # Panics
    /// Panics if `k` is 0.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "LRU-K requires k >= 1");
        LruKPolicy {
            k,
            clock: 0,
            pages: HashMap::new(),
            order: BTreeSet::new(),
        }
    }

    /// Standard LRU-2.
    pub fn lru2() -> Self {
        Self::new(2)
    }

    fn key_of(&self, h: &History) -> (u64, u64) {
        let kth = h.times.get(self.k - 1).copied().unwrap_or(0);
        let last = h.times.first().copied().unwrap_or(0);
        (kth, last)
    }

    fn touch(&mut self, page: PageId, fresh: bool) {
        self.clock += 1;
        let now = self.clock;
        let k = self.k;
        if fresh {
            let h = History { times: vec![now] };
            let key = self.key_of(&h);
            self.pages.insert(page, h);
            self.order.insert((key.0, key.1, page));
        } else {
            let old_key = {
                let h = self.pages.get(&page).expect("touch of untracked page");
                self.key_of(h)
            };
            self.order.remove(&(old_key.0, old_key.1, page));
            let h = self.pages.get_mut(&page).expect("checked above");
            h.times.insert(0, now);
            h.times.truncate(k);
            let new_key = {
                let h = self.pages.get(&page).expect("still present");
                self.key_of(h)
            };
            self.order.insert((new_key.0, new_key.1, page));
        }
    }
}

impl ReplacementPolicy for LruKPolicy {
    fn on_hit(&mut self, page: PageId) {
        self.touch(page, false);
    }

    fn on_insert(&mut self, page: PageId) {
        debug_assert!(!self.pages.contains_key(&page), "double insert");
        self.touch(page, true);
    }

    fn evict(&mut self) -> PageId {
        let &(a, b, page) = self.order.iter().next().expect("evict from empty LRU-K");
        self.order.remove(&(a, b, page));
        self.pages.remove(&page);
        page
    }

    fn remove(&mut self, page: PageId) {
        if let Some(h) = self.pages.remove(&page) {
            let kth = h.times.get(self.k - 1).copied().unwrap_or(0);
            let last = h.times.first().copied().unwrap_or(0);
            self.order.remove(&(kth, last, page));
        }
    }

    fn len(&self) -> usize {
        self.pages.len()
    }

    fn name(&self) -> &'static str {
        "LRU-K"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k1_degenerates_to_lru() {
        let mut p = LruKPolicy::new(1);
        for i in 0..4 {
            p.on_insert(PageId(i));
        }
        p.on_hit(PageId(0));
        assert_eq!(p.evict(), PageId(1));
        assert_eq!(p.evict(), PageId(2));
        assert_eq!(p.evict(), PageId(3));
        assert_eq!(p.evict(), PageId(0));
    }

    #[test]
    fn single_reference_pages_evicted_before_doubly_referenced() {
        let mut p = LruKPolicy::lru2();
        p.on_insert(PageId(1)); // one reference
        p.on_insert(PageId(2));
        p.on_hit(PageId(1)); // now two references
                             // Page 2 has no 2nd reference -> infinitely old backward distance.
        assert_eq!(p.evict(), PageId(2));
        assert_eq!(p.evict(), PageId(1));
    }

    #[test]
    fn scan_resistance() {
        // The signature LRU-2 property: a one-time scan does not flush
        // pages with an established reference history.
        let mut p = LruKPolicy::lru2();
        for i in 0..3u64 {
            p.on_insert(PageId(i));
            p.on_hit(PageId(i)); // hot set: two references each
        }
        for i in 100..103u64 {
            p.on_insert(PageId(i)); // scan: single references
        }
        // Evictions take the scan pages first.
        let mut victims = std::collections::HashSet::new();
        for _ in 0..3 {
            victims.insert(p.evict().0);
        }
        assert_eq!(victims, [100u64, 101, 102].into_iter().collect());
    }

    #[test]
    fn remove_keeps_order_consistent() {
        let mut p = LruKPolicy::lru2();
        for i in 0..4 {
            p.on_insert(PageId(i));
        }
        p.on_hit(PageId(0));
        p.remove(PageId(1));
        assert_eq!(p.len(), 3);
        // Page 2 is now the oldest single-reference page.
        assert_eq!(p.evict(), PageId(2));
    }

    #[test]
    fn history_is_bounded_to_k() {
        let mut p = LruKPolicy::lru2();
        p.on_insert(PageId(7));
        for _ in 0..100 {
            p.on_hit(PageId(7));
        }
        assert_eq!(p.pages[&PageId(7)].times.len(), 2);
        assert_eq!(p.len(), 1);
    }

    #[test]
    #[should_panic]
    fn zero_k_rejected() {
        let _ = LruKPolicy::new(0);
    }

    #[test]
    #[should_panic]
    fn evict_empty_panics() {
        let mut p = LruKPolicy::lru2();
        let _ = p.evict();
    }
}
