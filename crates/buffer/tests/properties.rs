//! Property tests: the O(1) LRU must match a naive reference model, and all
//! policies must uphold the pool's residency invariants.

use proptest::prelude::*;
use rtree_buffer::{
    AccessOutcome, BufferPool, ClockPolicy, FifoPolicy, LruPolicy, PageId, RandomPolicy,
};

/// Naive reference LRU: a vector ordered most-recent-first.
struct NaiveLru {
    capacity: usize,
    pages: Vec<u64>,
}

impl NaiveLru {
    fn new(capacity: usize) -> Self {
        NaiveLru {
            capacity,
            pages: Vec::new(),
        }
    }

    /// Returns true on hit.
    fn access(&mut self, page: u64) -> bool {
        if let Some(pos) = self.pages.iter().position(|&p| p == page) {
            self.pages.remove(pos);
            self.pages.insert(0, page);
            true
        } else {
            self.pages.insert(0, page);
            if self.pages.len() > self.capacity {
                self.pages.pop();
            }
            false
        }
    }
}

proptest! {
    #[test]
    fn lru_pool_matches_reference(
        capacity in 1usize..20,
        accesses in prop::collection::vec(0u64..40, 1..400),
    ) {
        let mut pool = BufferPool::new(capacity, LruPolicy::new());
        let mut reference = NaiveLru::new(capacity);
        for &page in &accesses {
            let expected_hit = reference.access(page);
            let outcome = pool.access(PageId(page));
            prop_assert_eq!(outcome == AccessOutcome::Hit, expected_hit, "page {}", page);
        }
        // Final residency sets agree.
        for &page in &reference.pages {
            prop_assert!(pool.contains(PageId(page)));
        }
        prop_assert_eq!(pool.len(), reference.pages.len());
    }

    #[test]
    fn residency_never_exceeds_capacity(
        capacity in 1usize..16,
        policy_pick in 0usize..4,
        accesses in prop::collection::vec(0u64..64, 1..300),
    ) {
        let mut pool = match policy_pick {
            0 => BufferPool::new(capacity, LruPolicy::new()),
            1 => BufferPool::new(capacity, FifoPolicy::new()),
            2 => BufferPool::new(capacity, ClockPolicy::new()),
            _ => BufferPool::new(capacity, RandomPolicy::new(9)),
        };
        for &page in &accesses {
            let outcome = pool.access(PageId(page));
            prop_assert!(pool.len() <= capacity);
            prop_assert!(pool.contains(PageId(page)) || outcome == AccessOutcome::MissBypass);
        }
        let s = pool.stats();
        prop_assert_eq!(s.hits + s.misses, s.accesses);
        prop_assert_eq!(s.accesses, accesses.len() as u64);
    }

    #[test]
    fn repeat_access_is_always_hit(
        capacity in 1usize..16,
        policy_pick in 0usize..4,
        pages in prop::collection::vec(0u64..64, 1..100),
    ) {
        // Accessing the same page twice in a row must hit the second time
        // under every policy (except a fully pinned pool, not used here).
        let mut pool = match policy_pick {
            0 => BufferPool::new(capacity, LruPolicy::new()),
            1 => BufferPool::new(capacity, FifoPolicy::new()),
            2 => BufferPool::new(capacity, ClockPolicy::new()),
            _ => BufferPool::new(capacity, RandomPolicy::new(5)),
        };
        for &page in &pages {
            pool.access(PageId(page));
            prop_assert_eq!(pool.access(PageId(page)), AccessOutcome::Hit);
        }
    }

    #[test]
    fn pinned_pages_always_hit(
        capacity in 2usize..16,
        accesses in prop::collection::vec(0u64..64, 1..300),
    ) {
        let mut pool = BufferPool::new(capacity, LruPolicy::new());
        let pinned = PageId(1000);
        pool.pin(pinned).unwrap();
        for &page in &accesses {
            pool.access(PageId(page));
        }
        prop_assert_eq!(pool.access(pinned), AccessOutcome::Hit);
        prop_assert!(pool.len() <= capacity);
    }
}
