//! The level-synchronous batch executor.

use rtree_buffer::PageId;
use rtree_geom::Rect;
use rtree_pager::{BufferManager, DiskRTree, NodeSoA, PageStore, PrefetchOutcome};
use std::collections::BTreeMap;
use std::io;

/// Tuning knobs for a [`BatchExecutor`].
#[derive(Clone, Copy, Debug)]
pub struct BatchConfig {
    /// How many frontier pages ahead of the one being consumed the executor
    /// keeps read-in through [`BufferManager::prefetch`]. `0` disables
    /// readahead. The window is naturally bounded by the buffer: when every
    /// frame is pinned the manager declines
    /// ([`PrefetchOutcome::NoCapacity`]) and the executor falls back to
    /// demand fetching until reservations free up.
    pub prefetch_window: usize,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig { prefetch_window: 8 }
    }
}

/// Counters describing one batch execution.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Queries in the batch.
    pub queries: u64,
    /// Queries whose rectangle intersected the root MBR (the rest cost
    /// nothing, mirroring the model semantics).
    pub active_queries: u64,
    /// Deduplicated `(page, query-set)` work items processed — every pool
    /// access the batch performed.
    pub work_items: u64,
    /// Page requests *before* dedup: the accesses the same queries would
    /// have made traversing alone. `page_requests - work_items` is the
    /// traffic dedup removed.
    pub page_requests: u64,
    /// Frames filled by the readahead window.
    pub prefetched: u64,
    /// Frontier steps executed (tree levels touched).
    pub levels: u32,
}

/// Per-query result sets plus execution counters.
#[derive(Clone, Debug, Default)]
pub struct BatchOutput {
    /// `results[i]` are the item ids matching `queries[i]`, in traversal
    /// order (sort before comparing across execution strategies).
    pub results: Vec<Vec<u64>>,
    /// What the execution did.
    pub stats: BatchStats,
}

/// Executes batches of rectangle queries against a [`DiskRTree`] with page
/// dedup, `PageId`-sorted level-synchronous traversal and buffer-aware
/// prefetch. See the crate docs for the algorithm.
///
/// # Examples
///
/// ```
/// use rtree_buffer::LruPolicy;
/// use rtree_exec::BatchExecutor;
/// use rtree_geom::Rect;
/// use rtree_index::BulkLoader;
/// use rtree_pager::{DiskRTree, MemStore};
///
/// let rects: Vec<Rect> = (0..400)
///     .map(|i| {
///         let x = (i as f64 * 0.618) % 0.95;
///         let y = (i as f64 * 0.414) % 0.95;
///         Rect::new(x, y, x + 0.01, y + 0.01)
///     })
///     .collect();
/// let tree = BulkLoader::hilbert(16).load(&rects);
/// let mut disk = DiskRTree::create(MemStore::new(), &tree, 32, LruPolicy::new()).unwrap();
///
/// let queries: Vec<Rect> = (0..8)
///     .map(|i| {
///         let x = i as f64 * 0.1;
///         Rect::new(x, x, x + 0.2, x + 0.2)
///     })
///     .collect();
/// let out = BatchExecutor::new().execute(&mut disk, &queries).unwrap();
/// assert_eq!(out.results.len(), 8);
/// // Overlapping queries share pages: dedup removed real traffic.
/// assert!(out.stats.work_items <= out.stats.page_requests);
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct BatchExecutor {
    config: BatchConfig,
}

impl BatchExecutor {
    /// An executor with the default configuration.
    pub fn new() -> Self {
        BatchExecutor::default()
    }

    /// An executor with an explicit configuration.
    pub fn with_config(config: BatchConfig) -> Self {
        BatchExecutor { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &BatchConfig {
        &self.config
    }

    /// Runs `queries` as one batch against `tree`. Equivalent to calling
    /// [`DiskRTree::query`] per query — same result sets — but pages shared
    /// between queries are fetched once, each level is visited in page
    /// order, and the readahead window keeps upcoming frontier pages
    /// resident.
    pub fn execute<S: PageStore>(
        &self,
        tree: &mut DiskRTree<S>,
        queries: &[Rect],
    ) -> io::Result<BatchOutput> {
        let mut out = BatchOutput {
            results: vec![Vec::new(); queries.len()],
            stats: BatchStats {
                queries: queries.len() as u64,
                ..BatchStats::default()
            },
        };
        if queries.is_empty() {
            return Ok(out);
        }

        let root = tree.meta().root;
        let root_level = (tree.meta().height - 1) as i16;
        #[cfg(feature = "trace")]
        let span = tree.allocate_op_id();
        let mgr = tree.manager_mut();
        #[cfg(feature = "trace")]
        mgr.set_trace_span(span, root_level);

        let run = self.run_levels(mgr, root, root_level, queries, &mut out);
        #[cfg(feature = "trace")]
        mgr.set_trace_span(0, -1);
        run?;
        Ok(out)
    }

    /// The frontier loop. Any outstanding readahead reservations are
    /// released before an error propagates, so a failed batch never leaks
    /// pins into the pool.
    // `root_level`/`level` only feed the trace span attribution.
    #[cfg_attr(not(feature = "trace"), allow(unused_variables, unused_assignments))]
    fn run_levels<S: PageStore>(
        &self,
        mgr: &mut BufferManager<S>,
        root: u64,
        root_level: i16,
        queries: &[Rect],
        out: &mut BatchOutput,
    ) -> io::Result<()> {
        // Uncharged root-MBR peek, mirroring `DiskRTree::query`: queries
        // that miss the root MBR never touch the buffer at all.
        let root_node = NodeSoA::decode(mgr.fetch_uncharged(PageId(root))?)?;
        let Some(root_mbr) = root_node.rects.mbr() else {
            return Ok(());
        };
        let active: Vec<u32> = (0..queries.len() as u32)
            .filter(|&q| root_mbr.intersects(&queries[q as usize]))
            .collect();
        out.stats.active_queries = active.len() as u64;
        if active.is_empty() {
            return Ok(());
        }

        // The frontier: page -> ids of the queries that need it. A BTreeMap
        // keys the dedup *and* yields each level in ascending page order.
        let mut frontier: BTreeMap<u64, Vec<u32>> = BTreeMap::new();
        frontier.insert(root, active);
        let mut level = root_level;

        // Scratch node reused across the batch: on v3 pages the coordinate
        // planes decode contiguously into the SoA, so the per-node gather
        // loop this executor used to run is gone.
        let mut node = NodeSoA::new();
        let mut matched: Vec<u32> = Vec::new();
        // Pages currently held by a readahead reservation, for cleanup on
        // error (`drain_pins`) and hand-back on consumption.
        let mut pinned: Vec<u64> = Vec::new();

        while !frontier.is_empty() {
            out.stats.levels += 1;
            #[cfg(feature = "trace")]
            mgr.set_trace_span(mgr.trace_span_id(), level);
            let items: Vec<(u64, Vec<u32>)> = std::mem::take(&mut frontier).into_iter().collect();
            let mut ahead = 0usize; // next item the readahead will consider

            for (i, (page, qids)) in items.iter().enumerate() {
                // Keep up to `prefetch_window` upcoming pages of this level
                // read-in and reserved. `NoCapacity` pauses the window; it
                // resumes once consumption unpins reservations.
                while ahead < items.len() && ahead <= i + self.config.prefetch_window {
                    if ahead <= i {
                        ahead += 1;
                        continue;
                    }
                    match self.guarded_prefetch(mgr, items[ahead].0, &mut pinned) {
                        Ok(PrefetchOutcome::NoCapacity) => break,
                        Ok(outcome) => {
                            if outcome == PrefetchOutcome::Fetched {
                                out.stats.prefetched += 1;
                            }
                            ahead += 1;
                        }
                        Err(e) => {
                            drain_pins(mgr, &mut pinned);
                            return Err(e);
                        }
                    }
                }

                if let Err(e) = fetch_node(mgr, *page, &mut node) {
                    drain_pins(mgr, &mut pinned);
                    return Err(e);
                }
                if let Some(pos) = pinned.iter().position(|&p| p == *page) {
                    pinned.swap_remove(pos);
                    mgr.unpin(PageId(*page));
                }
                out.stats.work_items += 1;
                out.stats.page_requests += qids.len() as u64;

                for &qid in qids {
                    matched.clear();
                    node.rects
                        .intersecting(&queries[qid as usize], &mut matched);
                    for &e in &matched {
                        let ptr = node.ptrs[e as usize];
                        if node.level == 0 {
                            out.results[qid as usize].push(ptr);
                        } else {
                            frontier.entry(ptr).or_default().push(qid);
                        }
                    }
                }
            }
            level -= 1;
        }
        debug_assert!(pinned.is_empty(), "every reservation was consumed");
        drain_pins(mgr, &mut pinned);
        Ok(())
    }

    /// One readahead probe, recording successful reservations in `pinned`.
    fn guarded_prefetch<S: PageStore>(
        &self,
        mgr: &mut BufferManager<S>,
        page: u64,
        pinned: &mut Vec<u64>,
    ) -> io::Result<PrefetchOutcome> {
        let outcome = mgr.prefetch(PageId(page))?;
        if outcome == PrefetchOutcome::Fetched {
            pinned.push(page);
        }
        Ok(outcome)
    }
}

/// Fetches one node page (the charged, demand access) and decodes it into
/// the caller's scratch node, reusing its allocations. The manager behind a
/// [`DiskRTree`] verifies checksums at page-in, so the decode trusts the
/// frame and skips its own checksum pass.
fn fetch_node<S: PageStore>(
    mgr: &mut BufferManager<S>,
    page: u64,
    node: &mut NodeSoA,
) -> io::Result<()> {
    let frame = mgr.fetch(PageId(page))?;
    node.decode_into_trusted(frame)?;
    Ok(())
}

/// Releases every outstanding readahead reservation.
fn drain_pins<S: PageStore>(mgr: &mut BufferManager<S>, pinned: &mut Vec<u64>) {
    for page in pinned.drain(..) {
        mgr.unpin(PageId(page));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtree_buffer::{ClockPolicy, LruPolicy};
    use rtree_index::BulkLoader;
    use rtree_pager::MemStore;

    fn sample_rects(n: usize) -> Vec<Rect> {
        (0..n)
            .map(|i| {
                let x = (i as f64 * 0.618_033) % 0.97;
                let y = (i as f64 * 0.414_213) % 0.97;
                Rect::new(x, y, x + 0.012, y + 0.012)
            })
            .collect()
    }

    fn queries(n: usize) -> Vec<Rect> {
        (0..n)
            .map(|i| {
                let x = (i as f64 * 0.37) % 0.8;
                let y = (i as f64 * 0.59) % 0.8;
                Rect::new(x, y, x + 0.08, y + 0.08)
            })
            .collect()
    }

    #[test]
    fn batch_matches_sequential_results() {
        let rects = sample_rects(800);
        let tree = BulkLoader::hilbert(16).load(&rects);
        let mut disk = DiskRTree::create(MemStore::new(), &tree, 40, LruPolicy::new()).unwrap();
        let qs = queries(24);
        let out = BatchExecutor::new().execute(&mut disk, &qs).unwrap();
        for (i, q) in qs.iter().enumerate() {
            let mut got = out.results[i].clone();
            let mut want = tree.search(q);
            got.sort_unstable();
            want.sort_unstable();
            assert_eq!(got, want, "query {i}");
        }
        assert_eq!(out.stats.queries, 24);
        assert!(out.stats.work_items <= out.stats.page_requests);
        assert_eq!(out.stats.levels as u32, disk.meta().height);
    }

    #[test]
    fn cold_batch_reads_each_distinct_page_at_most_once() {
        let rects = sample_rects(1_500);
        let tree = BulkLoader::hilbert(10).load(&rects);
        // Tiny buffer + readahead: the per-batch dedup (not cache capacity)
        // must bound the reads.
        let mut disk = DiskRTree::create(MemStore::new(), &tree, 8, ClockPolicy::new()).unwrap();
        let qs = queries(16);
        let out = BatchExecutor::new().execute(&mut disk, &qs).unwrap();
        assert!(disk.physical_reads() <= out.stats.work_items);
        assert_eq!(
            disk.io_stats().demand_reads() + disk.io_stats().prefetch_reads,
            disk.physical_reads()
        );
    }

    #[test]
    fn prefetch_window_zero_disables_readahead() {
        let rects = sample_rects(600);
        let tree = BulkLoader::hilbert(10).load(&rects);
        let mut disk = DiskRTree::create(MemStore::new(), &tree, 16, LruPolicy::new()).unwrap();
        let out = BatchExecutor::with_config(BatchConfig { prefetch_window: 0 })
            .execute(&mut disk, &queries(12))
            .unwrap();
        assert_eq!(out.stats.prefetched, 0);
        assert_eq!(disk.io_stats().prefetch_reads, 0);
    }

    #[test]
    fn readahead_turns_demand_misses_into_hits() {
        let rects = sample_rects(1_200);
        let tree = BulkLoader::hilbert(10).load(&rects);
        let mut disk = DiskRTree::create(MemStore::new(), &tree, 64, LruPolicy::new()).unwrap();
        let out = BatchExecutor::new()
            .execute(&mut disk, &queries(16))
            .unwrap();
        assert!(out.stats.prefetched > 0, "readahead engaged");
        assert_eq!(disk.io_stats().prefetch_reads, out.stats.prefetched);
        // Every prefetched frame was consumed as a pool hit.
        assert!(disk.buffer_stats().hits >= out.stats.prefetched);
        // No reservation leaked.
        assert_eq!(disk.buffer_stats().accesses, out.stats.work_items);
    }

    #[test]
    fn queries_outside_the_root_mbr_cost_nothing() {
        let rects = sample_rects(300);
        let tree = BulkLoader::hilbert(10).load(&rects);
        let mut disk = DiskRTree::create(MemStore::new(), &tree, 16, LruPolicy::new()).unwrap();
        let far = vec![Rect::new(0.995, 0.995, 1.0, 1.0); 4];
        let out = BatchExecutor::new().execute(&mut disk, &far).unwrap();
        assert_eq!(out.stats.active_queries, 0);
        assert_eq!(disk.physical_reads(), 0);
        assert!(out.results.iter().all(Vec::is_empty));
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let rects = sample_rects(100);
        let tree = BulkLoader::hilbert(10).load(&rects);
        let mut disk = DiskRTree::create(MemStore::new(), &tree, 8, LruPolicy::new()).unwrap();
        let out = BatchExecutor::new().execute(&mut disk, &[]).unwrap();
        assert!(out.results.is_empty());
        assert_eq!(disk.physical_reads(), 0);
    }
}
