//! Batched query execution for disk-backed R-trees.
//!
//! The paper's central claim is that inter-query buffer locality — not
//! nodes visited — determines R-tree cost. A single query traversal only
//! exploits that locality by accident: whatever the replacement policy
//! happens to have kept resident. This crate makes it deliberate. A
//! [`BatchExecutor`] runs a *batch* of point/range queries together,
//! level-synchronously:
//!
//! 1. The BFS frontier holds `(page, query-set)` work items. A page needed
//!    by k queries of the batch appears **once**, carrying all k query ids
//!    — it is fetched and decoded once instead of k times (dedup).
//! 2. Each level's frontier is processed in ascending `PageId` order. The
//!    bulk-loaded layout stores each level contiguously, so the access
//!    pattern within a level is sequential.
//! 3. A bounded readahead window of upcoming frontier pages is filled
//!    through [`rtree_pager::BufferManager::prefetch`]: the frames are read
//!    early, held (pinned) until their consuming access, and charged as
//!    physical reads but never as query misses.
//! 4. Per-node filtering runs the [`rtree_geom::RectSoA`] rect-vs-many-rects
//!    kernel: the node's entry rectangles in flat SoA layout tested against
//!    each query of the work item.
//!
//! Results are identical to running [`rtree_pager::DiskRTree::query`] per
//! query, and — from a cold buffer — the batch never performs more physical
//! reads than the sequential runs combined, under *any* replacement policy:
//! each distinct page is read at most once per batch
//! (`tests/batch_vs_sequential.rs` proves both properties over arbitrary
//! trees, buffers, policies and batches).

mod batch;

pub use batch::{BatchConfig, BatchExecutor, BatchOutput, BatchStats};
