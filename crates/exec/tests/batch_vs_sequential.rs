//! The batch executor's two contracts, proven over arbitrary inputs:
//!
//! 1. **Equivalence** — for any tree, buffer size, replacement policy,
//!    prefetch window and query batch, [`BatchExecutor`] returns exactly
//!    the result set per query that sequential [`DiskRTree::query`] (and
//!    the in-memory reference) returns.
//! 2. **Cost dominance** — from a cold buffer, the batch performs at most
//!    as many physical reads as the same queries run sequentially against
//!    an equally cold tree. This holds for *every* policy, including
//!    RANDOM: dedup means each distinct page is fetched once per batch
//!    (demand fetches are decoded immediately; prefetched frames stay
//!    pinned until consumed, so they cannot be evicted and re-read), while
//!    the sequential run must read each distinct page at least once.
//!
//! The accounting identities (`demand + prefetch == physical reads`,
//! `hits + misses == accesses`) ride along on every case.

use proptest::prelude::*;
use rtree_buffer::{
    ClockPolicy, FifoPolicy, LruKPolicy, LruPolicy, RandomPolicy, ReplacementPolicy,
};
use rtree_exec::{BatchConfig, BatchExecutor};
use rtree_geom::Rect;
use rtree_index::BulkLoader;
use rtree_pager::{DiskRTree, MemStore};

fn arb_rect() -> impl Strategy<Value = Rect> {
    (
        (0.0f64..=0.95, 0.0f64..=0.95),
        (0.0f64..=0.08, 0.0f64..=0.08),
    )
        .prop_map(|((x, y), (w, h))| Rect::new(x, y, x + w, y + h))
}

/// Queries mix extended regions with degenerate (point) rectangles.
fn arb_query() -> impl Strategy<Value = Rect> {
    prop_oneof![
        arb_rect(),
        (0.0f64..=1.0, 0.0f64..=1.0).prop_map(|(x, y)| Rect::new(x, y, x, y)),
    ]
}

/// All five replacement policies, index-selected so one proptest run
/// sweeps the full matrix.
fn make_policy(which: usize, seed: u64) -> Box<dyn ReplacementPolicy> {
    match which {
        0 => Box::new(LruPolicy::new()),
        1 => Box::new(LruKPolicy::new(2)),
        2 => Box::new(FifoPolicy::new()),
        3 => Box::new(ClockPolicy::new()),
        _ => Box::new(RandomPolicy::new(seed)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn batch_equals_sequential_and_never_reads_more(
        rects in prop::collection::vec(arb_rect(), 1..300),
        queries in prop::collection::vec(arb_query(), 1..40),
        cap in 4usize..24,
        buffer in 4usize..40,
        which in 0usize..5,
        seed in 0u64..1_000,
        window in 0usize..12,
    ) {
        let tree = BulkLoader::hilbert(cap).load(&rects);

        // Cold batch run.
        let mut batch_tree =
            DiskRTree::create(MemStore::new(), &tree, buffer, make_policy(which, seed)).unwrap();
        let exec = BatchExecutor::with_config(BatchConfig { prefetch_window: window });
        let out = exec.execute(&mut batch_tree, &queries).unwrap();
        let batch_reads = batch_tree.physical_reads();

        // Equally cold sequential run under the same policy (RANDOM is
        // seeded, so both sides see the identical eviction stream).
        let mut seq_tree =
            DiskRTree::create(MemStore::new(), &tree, buffer, make_policy(which, seed)).unwrap();
        let mut seq_reads = 0u64;
        for (i, q) in queries.iter().enumerate() {
            let before = seq_tree.physical_reads();
            let mut seq = seq_tree.query(q).unwrap();
            seq_reads += seq_tree.physical_reads() - before;

            let mut got = out.results[i].clone();
            let mut want = tree.search(q);
            got.sort_unstable();
            seq.sort_unstable();
            want.sort_unstable();
            prop_assert_eq!(&got, &seq, "query {}: batch vs sequential", i);
            prop_assert_eq!(&got, &want, "query {}: batch vs reference", i);
        }

        prop_assert!(
            batch_reads <= seq_reads,
            "policy {} window {}: batch read {} pages, sequential {}",
            which, window, batch_reads, seq_reads
        );

        // Accounting identities on the batch side.
        let io = batch_tree.io_stats();
        prop_assert_eq!(io.demand_reads() + io.prefetch_reads, batch_reads);
        prop_assert_eq!(io.prefetch_reads, out.stats.prefetched);
        let pool = batch_tree.buffer_stats();
        prop_assert_eq!(pool.hits + pool.misses, pool.accesses);
        prop_assert_eq!(pool.accesses, out.stats.work_items);
        // Dedup: one pool access per distinct (level-synchronous) work
        // item, never more than the undeduplicated request count.
        prop_assert!(out.stats.work_items <= out.stats.page_requests);
    }
}
