//! TIGER-like street map (substitute for the TIGER/Long Beach data set).
//!
//! The real data set — 53,145 road-segment rectangles from the U.S. Census
//! TIGER files — is not redistributable here, so this generator produces a
//! street map with the same statistical fingerprint the paper relies on:
//!
//! * thin, axis-aligned segment rectangles laid along a jittered grid of
//!   streets (roads digitize into chains of short segments);
//! * density skew: streets concentrate around a "downtown" point;
//! * **large portions of empty space** (the coastline/ocean band), which is
//!   what makes uniform queries cheap relative to data-driven queries on
//!   this data (§5.4: "Uniform queries often fall in these empty regions
//!   and, hence, are pruned at the root").

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtree_geom::{Point, Rect};

/// Generator for a TIGER-like street map.
///
/// # Examples
///
/// ```
/// use rtree_datagen::TigerLike;
///
/// let rects = TigerLike::new(1_000).generate(7);
/// assert_eq!(rects.len(), 1_000);
/// // Same seed, same data — every generator here is deterministic.
/// assert_eq!(rects, TigerLike::new(1_000).generate(7));
/// ```
#[derive(Clone, Copy, Debug)]
pub struct TigerLike {
    count: usize,
}

impl TigerLike {
    /// The cardinality of the paper's Long Beach data set.
    pub const PAPER_COUNT: usize = 53_145;

    /// A generator with the paper's cardinality.
    pub fn paper() -> Self {
        TigerLike {
            count: Self::PAPER_COUNT,
        }
    }

    /// A generator for an arbitrary number of segments.
    pub fn new(count: usize) -> Self {
        TigerLike { count }
    }

    /// The downtown focus (streets are densest here).
    const DOWNTOWN: Point = Point { x: 0.32, y: 0.55 };

    /// True if `p` is on land. The coast runs roughly along `x ≈ 0.72`,
    /// leaving an empty ocean band of ~25% of the unit square on the right,
    /// plus an empty harbor notch at the bottom.
    pub fn on_land(p: &Point) -> bool {
        let coast = 0.72 + 0.06 * (6.3 * p.y).sin();
        if p.x >= coast {
            return false;
        }
        // Harbor notch.
        let harbor = (p.x - 0.55).hypot(p.y - 0.05) < 0.13;
        !harbor
    }

    /// Generates exactly `count` segment rectangles.
    pub fn generate(&self, seed: u64) -> Vec<Rect> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Vec::with_capacity(self.count);
        while out.len() < self.count {
            self.generate_street(&mut rng, &mut out);
        }
        out.truncate(self.count);
        out
    }

    /// Lays one street: picks an orientation and a (downtown-biased) grid
    /// position, then walks along it emitting short thin segments on land.
    fn generate_street(&self, rng: &mut StdRng, out: &mut Vec<Rect>) {
        let horizontal = rng.gen_bool(0.5);
        // Cross-position of the street: 65% of streets cluster around
        // downtown (triangular jitter), the rest are city-wide.
        let focus = if horizontal {
            Self::DOWNTOWN.y
        } else {
            Self::DOWNTOWN.x
        };
        let raw = if rng.gen_bool(0.65) {
            let t = (rng.gen::<f64>() + rng.gen::<f64>()) / 2.0 - 0.5; // triangular on [-0.5, 0.5]
            focus + t * 0.55
        } else {
            rng.gen_range(0.0..1.0)
        };
        // Snap to a 1/72 grid with jitter, like a real street plan.
        let pos = ((raw * 72.0).round() / 72.0 + rng.gen_range(-0.002..0.002)).clamp(0.0, 0.999);

        let start: f64 = rng.gen_range(0.0..0.9);
        let run: f64 = rng.gen_range(0.05..0.45);
        let mut t = start;
        while t < (start + run).min(0.999) && out.len() < self.count {
            let seg_len = rng.gen_range(0.004..0.016);
            let thickness = rng.gen_range(0.0004..0.0018);
            let center = if horizontal {
                Point::new((t + seg_len / 2.0).min(0.999), pos)
            } else {
                Point::new(pos, (t + seg_len / 2.0).min(0.999))
            };
            if Self::on_land(&center) {
                let (w, h) = if horizontal {
                    (seg_len, thickness)
                } else {
                    (thickness, seg_len)
                };
                if let Some(r) = Rect::centered(center, w, h).clamp_unit() {
                    out.push(r);
                }
            }
            t += seg_len + rng.gen_range(0.0..0.002);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtree_geom::UNIT;

    #[test]
    fn paper_cardinality() {
        let rects = TigerLike::paper().generate(42);
        assert_eq!(rects.len(), 53_145);
    }

    #[test]
    fn segments_are_thin_and_inside_unit_square() {
        let rects = TigerLike::new(5_000).generate(1);
        for r in &rects {
            assert!(UNIT.contains_rect(r));
            let thin = r.x_extent().min(r.y_extent());
            let long = r.x_extent().max(r.y_extent());
            assert!(thin <= 0.002, "too thick: {r}");
            assert!(long <= 0.02, "too long: {r}");
        }
    }

    #[test]
    fn ocean_stays_empty() {
        let rects = TigerLike::new(20_000).generate(2);
        let deep_ocean = Rect::new(0.85, 0.3, 1.0, 0.7);
        assert!(
            !rects.iter().any(|r| r.intersects(&deep_ocean)),
            "segments in the ocean"
        );
    }

    #[test]
    fn ocean_is_a_large_fraction() {
        // Monte-Carlo estimate of the empty fraction: at least ~20%.
        let mut water = 0usize;
        let n = 40_000;
        for i in 0..n {
            let x = (i % 200) as f64 / 200.0;
            let y = (i / 200) as f64 / 200.0;
            if !TigerLike::on_land(&Point::new(x, y)) {
                water += 1;
            }
        }
        let share = water as f64 / n as f64;
        assert!((0.2..0.5).contains(&share), "water share {share}");
    }

    #[test]
    fn density_is_skewed_toward_downtown() {
        let rects = TigerLike::new(20_000).generate(3);
        let downtown = Rect::new(0.22, 0.45, 0.42, 0.65); // area 0.04
        let outskirt = Rect::new(0.0, 0.78, 0.2, 0.98); // same area
        let count_in = |region: &Rect| {
            rects
                .iter()
                .filter(|r| region.contains_point(&r.center()))
                .count()
        };
        let hot = count_in(&downtown);
        let cold = count_in(&outskirt);
        assert!(
            hot > 2 * cold.max(1),
            "no skew: downtown {hot} vs outskirts {cold}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = TigerLike::new(1_000).generate(9);
        let b = TigerLike::new(1_000).generate(9);
        assert_eq!(a, b);
    }
}
