//! CFD-like unstructured grid (substitute for the Boeing-737 wing data).
//!
//! The paper's CFD data set is a cross-section of a 737 wing with flaps out:
//! ~52,510 mesh nodes whose density decays with distance from the wing
//! elements, with the element interiors empty ("the blank ovalish areas are
//! parts of the wing"). This generator reproduces those properties with
//! three airfoil-shaped (elliptical) elements — slat, main element, flap —
//! and an exponential fall-off of node density away from their boundaries,
//! plus a sparse far field. The result is "highly skewed": most of the unit
//! square is nearly empty while the neighborhood of the wing is packed,
//! which is exactly the regime in which the uniform and data-driven query
//! models diverge (Fig. 8).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtree_geom::{Point, Rect};

/// A rotated ellipse (one wing element).
#[derive(Clone, Copy, Debug)]
struct Element {
    center: Point,
    a: f64,
    b: f64,
    /// Rotation in radians.
    phi: f64,
}

impl Element {
    fn boundary(&self, theta: f64) -> (Point, f64, f64) {
        let (s, c) = self.phi.sin_cos();
        let ex = self.a * theta.cos();
        let ey = self.b * theta.sin();
        let dx = c * ex - s * ey;
        let dy = s * ex + c * ey;
        let p = Point::new(self.center.x + dx, self.center.y + dy);
        // Outward direction (from center through the boundary point).
        let norm = (dx * dx + dy * dy).sqrt().max(f64::MIN_POSITIVE);
        (p, dx / norm, dy / norm)
    }

    fn contains(&self, p: &Point) -> bool {
        let (s, c) = self.phi.sin_cos();
        let dx = p.x - self.center.x;
        let dy = p.y - self.center.y;
        // Rotate into the ellipse frame.
        let ex = c * dx + s * dy;
        let ey = -s * dx + c * dy;
        (ex / self.a).powi(2) + (ey / self.b).powi(2) < 1.0
    }
}

/// Generator for a CFD-like mesh-node point set.
#[derive(Clone, Copy, Debug)]
pub struct CfdLike {
    count: usize,
}

impl CfdLike {
    /// The cardinality of the paper's experimental CFD data set.
    pub const PAPER_COUNT: usize = 52_510;
    /// The cardinality of the paper's Fig. 5 illustration.
    pub const FIG5_COUNT: usize = 5_088;

    /// A generator with the paper's experimental cardinality.
    pub fn paper() -> Self {
        CfdLike {
            count: Self::PAPER_COUNT,
        }
    }

    /// A generator with the Fig. 5 plot cardinality.
    pub fn fig5() -> Self {
        CfdLike {
            count: Self::FIG5_COUNT,
        }
    }

    /// A generator for an arbitrary number of nodes.
    pub fn new(count: usize) -> Self {
        CfdLike { count }
    }

    /// Wing cross-section: main element, deployed flap, leading-edge slat.
    fn elements() -> [Element; 3] {
        [
            Element {
                center: Point::new(0.46, 0.52),
                a: 0.17,
                b: 0.032,
                phi: -0.10,
            },
            Element {
                center: Point::new(0.66, 0.455),
                a: 0.055,
                b: 0.011,
                phi: -0.45,
            },
            Element {
                center: Point::new(0.265, 0.565),
                a: 0.035,
                b: 0.008,
                phi: 0.35,
            },
        ]
    }

    /// True if `p` is inside one of the wing elements (the blank areas).
    pub fn inside_wing(p: &Point) -> bool {
        Self::elements().iter().any(|e| e.contains(p))
    }

    /// Generates exactly `count` mesh nodes as degenerate rectangles.
    pub fn generate(&self, seed: u64) -> Vec<Rect> {
        let elements = Self::elements();
        // Element sampling weights roughly proportional to boundary length.
        let weights = [0.62, 0.24, 0.14];
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Vec::with_capacity(self.count);
        while out.len() < self.count {
            let p = if rng.gen_bool(0.06) {
                // Sparse far field covering the rest of the domain.
                Point::new(rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0))
            } else {
                // Near-field: exponential fall-off from an element boundary.
                let u: f64 = rng.gen();
                let e = if u < weights[0] {
                    &elements[0]
                } else if u < weights[0] + weights[1] {
                    &elements[1]
                } else {
                    &elements[2]
                };
                let theta = rng.gen_range(0.0..std::f64::consts::TAU);
                let (bp, nx, ny) = e.boundary(theta);
                // d ~ Exp(mean 0.012), occasionally boosted for mid field.
                let mean = if rng.gen_bool(0.85) { 0.012 } else { 0.06 };
                let d = -mean * (1.0 - rng.gen::<f64>()).ln();
                Point::new(bp.x + nx * d, bp.y + ny * d)
            };
            if p.x < 0.0 || p.x > 1.0 || p.y < 0.0 || p.y > 1.0 {
                continue;
            }
            if Self::inside_wing(&p) {
                continue;
            }
            out.push(Rect::point(p));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtree_geom::UNIT;

    #[test]
    fn cardinalities() {
        assert_eq!(CfdLike::fig5().generate(1).len(), CfdLike::FIG5_COUNT);
        assert_eq!(CfdLike::new(500).generate(1).len(), 500);
    }

    #[test]
    fn nodes_avoid_wing_interiors_and_stay_in_square() {
        let pts = CfdLike::new(20_000).generate(2);
        for r in &pts {
            assert_eq!(r.area(), 0.0);
            assert!(UNIT.contains_rect(r));
            assert!(!CfdLike::inside_wing(&r.lo), "node inside wing: {r}");
        }
    }

    #[test]
    fn density_is_highly_skewed() {
        let pts = CfdLike::new(20_000).generate(3);
        // A small box hugging the main element's trailing edge vs an
        // equal-area box in a far corner.
        let near = Rect::new(0.56, 0.50, 0.66, 0.60);
        let far = Rect::new(0.02, 0.02, 0.12, 0.12);
        let count_in = |region: &Rect| pts.iter().filter(|r| region.contains_point(&r.lo)).count();
        let hot = count_in(&near);
        let cold = count_in(&far);
        assert!(hot > 20 * cold.max(1), "near {hot} vs far {cold}");
    }

    #[test]
    fn far_field_is_sparse_but_present() {
        let pts = CfdLike::new(30_000).generate(4);
        let corner = Rect::new(0.0, 0.0, 0.25, 0.25);
        let n = pts.iter().filter(|r| corner.contains_point(&r.lo)).count();
        assert!(n > 0, "far field missing");
        assert!((n as f64) < 0.05 * pts.len() as f64, "far field too dense");
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(CfdLike::new(800).generate(5), CfdLike::new(800).generate(5));
    }

    #[test]
    fn wing_interior_test_is_sane() {
        assert!(CfdLike::inside_wing(&Point::new(0.46, 0.52)));
        assert!(!CfdLike::inside_wing(&Point::new(0.05, 0.05)));
    }
}
