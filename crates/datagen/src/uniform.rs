//! The paper's exactly-specified synthetic data sets.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtree_geom::{Point, Rect};

/// Synthetic Region data (§5.1): squares whose centers are uniform in the
/// unit square and whose side length is uniform in `(0, ε)` with
/// `ε = 2·√(0.25/10000)` — fixed across data set sizes, so total covered
/// area scales linearly (≈0.25 at 10,000 rectangles, ≈2.5 at 100,000).
#[derive(Clone, Copy, Debug)]
pub struct SyntheticRegion {
    count: usize,
    epsilon: f64,
}

impl SyntheticRegion {
    /// The paper's ε.
    pub const EPSILON: f64 = 0.01; // 2 * sqrt(0.25 / 10_000)

    /// Creates a generator for `count` rectangles with the paper's ε.
    pub fn new(count: usize) -> Self {
        SyntheticRegion {
            count,
            epsilon: Self::EPSILON,
        }
    }

    /// Overrides ε (for sensitivity studies).
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        assert!(epsilon > 0.0 && epsilon < 1.0);
        self.epsilon = epsilon;
        self
    }

    /// Generates the data set. Rectangles are clamped to the unit square
    /// (all data sets in the paper are normalized to it).
    pub fn generate(&self, seed: u64) -> Vec<Rect> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..self.count)
            .map(|_| {
                let cx: f64 = rng.gen_range(0.0..1.0);
                let cy: f64 = rng.gen_range(0.0..1.0);
                let side: f64 = rng.gen_range(0.0..self.epsilon);
                Rect::centered(Point::new(cx, cy), side, side)
                    .clamp_unit()
                    .expect("center is inside the unit square")
            })
            .collect()
    }
}

/// Synthetic Point data (§5.1): points "located with equal probability on
/// any location within the unit square", stored as degenerate rectangles.
#[derive(Clone, Copy, Debug)]
pub struct SyntheticPoint {
    count: usize,
}

impl SyntheticPoint {
    /// Creates a generator for `count` points.
    pub fn new(count: usize) -> Self {
        SyntheticPoint { count }
    }

    /// Generates the data set.
    pub fn generate(&self, seed: u64) -> Vec<Rect> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..self.count)
            .map(|_| Rect::point(Point::new(rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0))))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtree_geom::UNIT;

    #[test]
    fn epsilon_matches_papers_formula() {
        assert!((SyntheticRegion::EPSILON - 2.0 * (0.25f64 / 10_000.0).sqrt()).abs() < 1e-15);
    }

    #[test]
    fn region_total_area_tracks_the_papers_calibration() {
        // E[side^2] = eps^2 / 3, so 10,000 rects cover eps^2/3 * 1e4 = 1/3
        // of the square in expectation — the paper rounds this to "roughly
        // 0.25" (it matches exactly if side^2 is read as E[side]^2).
        let rects = SyntheticRegion::new(10_000).generate(1);
        let total: f64 = rects.iter().map(Rect::area).sum();
        assert!((0.2..0.45).contains(&total), "total area {total}");
    }

    #[test]
    fn region_rects_stay_in_unit_square() {
        for r in SyntheticRegion::new(5_000).generate(2) {
            assert!(UNIT.contains_rect(&r), "{r} escapes the unit square");
            assert!(r.x_extent() <= SyntheticRegion::EPSILON);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = SyntheticRegion::new(100).generate(7);
        let b = SyntheticRegion::new(100).generate(7);
        let c = SyntheticRegion::new(100).generate(8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn points_are_degenerate_and_uniformish() {
        let pts = SyntheticPoint::new(10_000).generate(3);
        assert_eq!(pts.len(), 10_000);
        let mut left = 0usize;
        for r in &pts {
            assert_eq!(r.area(), 0.0);
            assert!(UNIT.contains_rect(r));
            if r.lo.x < 0.5 {
                left += 1;
            }
        }
        let share = left as f64 / pts.len() as f64;
        assert!((0.45..0.55).contains(&share), "skew: {share}");
    }

    #[test]
    fn custom_epsilon() {
        let rects = SyntheticRegion::new(100).with_epsilon(0.2).generate(4);
        assert!(rects.iter().any(|r| r.x_extent() > 0.01));
    }
}
