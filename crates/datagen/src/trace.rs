//! Deterministic, replayable operation traces.
//!
//! A trace is a flat list of tree operations — region / point / kNN
//! queries, inserts, deletes — with a fixed byte serialization, so a
//! workload can be recorded once and replayed **byte-identically** against
//! any tree build (v3 vs v4 pages, any replacement policy). Two replays of
//! the same trace against the same image issue the same page requests in
//! the same order; any throughput or hit-rate difference is then
//! attributable to the configuration, not the workload.
//!
//! The on-disk format is self-checking:
//!
//! ```text
//! offset  size  field
//! 0       4     magic "RTRC"
//! 4       4     format version (1)
//! 8       8     generator seed (provenance; not used by replay)
//! 16      8     op count
//! 24      ...   ops: tag byte + payload (see TraceOp encodings)
//! end     4     crc32 over all preceding bytes
//! ```
//!
//! The generator draws query centers *from the data* (the paper's §3.2
//! query-follows-data discipline) under one of three skews, and keeps a
//! live-item ledger so every delete names an object that actually exists
//! at that point in the trace — replays never see a spurious miss.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtree_geom::{Point, Rect};

use crate::centers;
use crate::zipf::zipf_center_multiset;

/// Trace file magic.
pub const TRACE_MAGIC: [u8; 4] = *b"RTRC";
/// Current trace format version.
pub const TRACE_VERSION: u32 = 1;

/// One replayable tree operation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TraceOp {
    /// Region (window) query.
    Region(Rect),
    /// Point containment query.
    Point(Point),
    /// k-nearest-neighbor query.
    Knn(Point, u32),
    /// Insert an item with the given rect and id.
    Insert(Rect, u64),
    /// Delete the item with the given rect and id.
    Delete(Rect, u64),
}

/// A recorded operation stream plus the seed that produced it.
#[derive(Clone, Debug, PartialEq)]
pub struct Trace {
    /// Generator seed, kept for provenance (replay never re-randomizes).
    pub seed: u64,
    /// The operations, in replay order.
    pub ops: Vec<TraceOp>,
}

/// How query centers are drawn from the data centers.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Skew {
    /// Uniform over the data centers (the paper's §3.2 baseline).
    Uniform,
    /// Zipf-ranked: center of rank k drawn with probability ∝ 1/(k+1)^θ.
    Zipf {
        /// Skew exponent; 0 is uniform, ~1 is classic web-log skew.
        theta: f64,
    },
    /// A 10%-of-data hot window that slides across the (sorted) centers
    /// over the trace — the working set moves, stressing replacement.
    Shifting,
}

/// Relative operation-mix weights; only ratios matter. A 90/9/1
/// read/insert/delete mix is `region: 80, point: 5, knn: 5, insert: 9,
/// delete: 1`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MixWeights {
    /// Region-query weight.
    pub region: u32,
    /// Point-query weight.
    pub point: u32,
    /// kNN-query weight.
    pub knn: u32,
    /// Insert weight.
    pub insert: u32,
    /// Delete weight.
    pub delete: u32,
}

impl MixWeights {
    /// Pure read workload: region-heavy with some point and kNN traffic.
    pub fn read_only() -> Self {
        MixWeights {
            region: 80,
            point: 15,
            knn: 5,
            insert: 0,
            delete: 0,
        }
    }

    /// The macro-benchmark's 90/9/1 read/insert/delete mix.
    pub fn read_mostly() -> Self {
        MixWeights {
            region: 80,
            point: 5,
            knn: 5,
            insert: 9,
            delete: 1,
        }
    }

    fn total(&self) -> u32 {
        self.region + self.point + self.knn + self.insert + self.delete
    }
}

/// Everything that determines a generated trace. Same spec + same data →
/// the same bytes, always.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TraceSpec {
    /// Number of operations to generate.
    pub ops: usize,
    /// Region-query extent along x (also scales insert rects).
    pub qx: f64,
    /// Region-query extent along y.
    pub qy: f64,
    /// Center-selection skew.
    pub skew: Skew,
    /// Operation mix.
    pub mix: MixWeights,
    /// Master seed: drives center permutation, op choice, and jitter.
    pub seed: u64,
}

/// The center multiset a skew draws from — shared between the trace
/// generator and the analytic model, so a [`rtree_core::Workload`] built
/// over this pool describes exactly the centers the trace queries hit.
/// (For [`Skew::Shifting`] the pool is the sorted data centers; a uniform
/// draw over it is the trace's *steady-state average* as the 10% window
/// slides end to end.)
///
/// # Panics
/// Panics if `rects` is empty or a Zipf θ is invalid.
pub fn center_pool(rects: &[Rect], skew: Skew, seed: u64) -> Vec<Point> {
    let data_centers = centers(rects);
    assert!(!data_centers.is_empty(), "need at least one data rect");
    match skew {
        Skew::Uniform => data_centers,
        Skew::Zipf { theta } => {
            zipf_center_multiset(&data_centers, theta, data_centers.len().max(256) * 4, seed)
        }
        Skew::Shifting => {
            // Sorted so the sliding window is spatially coherent.
            let mut sorted = data_centers;
            sorted.sort_by(|a, b| {
                (a.x, a.y)
                    .partial_cmp(&(b.x, b.y))
                    .expect("finite data centers")
            });
            sorted
        }
    }
}

/// Generates a trace over a data set. Query centers follow the data under
/// `spec.skew`; inserts place new small rects near drawn centers with
/// fresh ids starting at `rects.len()`; deletes target a uniformly drawn
/// *live* item (original or previously inserted, not yet deleted), so a
/// replay applies cleanly. If the ledger ever empties, the delete becomes
/// a region query instead — the trace stays the declared length.
///
/// # Panics
/// Panics if `rects` is empty, `spec.ops` is 0, the mix has zero total
/// weight, or a query extent is negative or non-finite.
pub fn generate(rects: &[Rect], spec: &TraceSpec) -> Trace {
    assert!(!rects.is_empty(), "need at least one data rect");
    assert!(spec.ops >= 1, "need at least one op");
    assert!(spec.mix.total() > 0, "mix weights sum to zero");
    assert!(
        spec.qx >= 0.0 && spec.qx.is_finite() && spec.qy >= 0.0 && spec.qy.is_finite(),
        "query extents must be finite and non-negative"
    );

    let mut rng = StdRng::seed_from_u64(spec.seed);
    let pool = center_pool(rects, spec.skew, spec.seed);
    let window = (pool.len() / 10).max(1);

    let draw_center = |rng: &mut StdRng, i: usize| -> Point {
        match spec.skew {
            Skew::Uniform | Skew::Zipf { .. } => pool[rng.gen_range(0..pool.len())],
            Skew::Shifting => {
                // Window start slides linearly over the trace.
                let span = pool.len() - window;
                let start = if spec.ops <= 1 {
                    0
                } else {
                    i * span / (spec.ops - 1)
                };
                pool[start + rng.gen_range(0..window)]
            }
        }
    };

    // Live-item ledger: every delete targets something that exists.
    let mut live: Vec<(Rect, u64)> = rects
        .iter()
        .enumerate()
        .map(|(i, r)| (*r, i as u64))
        .collect();
    let mut next_id = rects.len() as u64;

    let total = spec.mix.total();
    let mut ops = Vec::with_capacity(spec.ops);
    for i in 0..spec.ops {
        let pick = rng.gen_range(0..total);
        let m = spec.mix;
        // Cumulative thresholds over the mix weights, in declaration order.
        let after_region = m.region;
        let after_point = after_region + m.point;
        let after_knn = after_point + m.knn;
        let after_insert = after_knn + m.insert;
        let op = if pick < after_region {
            TraceOp::Region(Rect::centered(draw_center(&mut rng, i), spec.qx, spec.qy))
        } else if pick < after_point {
            TraceOp::Point(draw_center(&mut rng, i))
        } else if pick < after_knn {
            TraceOp::Knn(draw_center(&mut rng, i), rng.gen_range(1..=8))
        } else if pick < after_insert {
            let c = draw_center(&mut rng, i);
            let jx: f64 = rng.gen_range(-0.5..0.5) * spec.qx;
            let jy: f64 = rng.gen_range(-0.5..0.5) * spec.qy;
            let rect = Rect::centered(Point::new(c.x + jx, c.y + jy), spec.qx * 0.2, spec.qy * 0.2);
            let id = next_id;
            next_id += 1;
            live.push((rect, id));
            TraceOp::Insert(rect, id)
        } else if live.is_empty() {
            // Ledger drained: degrade to a query, never an invalid delete.
            TraceOp::Region(Rect::centered(draw_center(&mut rng, i), spec.qx, spec.qy))
        } else {
            let victim = rng.gen_range(0..live.len());
            let (rect, id) = live.swap_remove(victim);
            TraceOp::Delete(rect, id)
        };
        ops.push(op);
    }
    Trace {
        seed: spec.seed,
        ops,
    }
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_rect(out: &mut Vec<u8>, r: &Rect) {
    put_f64(out, r.lo.x);
    put_f64(out, r.lo.y);
    put_f64(out, r.hi.x);
    put_f64(out, r.hi.y);
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.buf.len() - self.pos < n {
            return Err(format!(
                "trace truncated: need {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len() - self.pos
            ));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn rect(&mut self) -> Result<Rect, String> {
        Ok(Rect {
            lo: Point::new(self.f64()?, self.f64()?),
            hi: Point::new(self.f64()?, self.f64()?),
        })
    }

    fn point(&mut self) -> Result<Point, String> {
        Ok(Point::new(self.f64()?, self.f64()?))
    }
}

impl Trace {
    /// Serializes the trace to its canonical byte form. Deterministic:
    /// equal traces always produce equal bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(24 + self.ops.len() * 41 + 4);
        out.extend_from_slice(&TRACE_MAGIC);
        out.extend_from_slice(&TRACE_VERSION.to_le_bytes());
        out.extend_from_slice(&self.seed.to_le_bytes());
        out.extend_from_slice(&(self.ops.len() as u64).to_le_bytes());
        for op in &self.ops {
            match op {
                TraceOp::Region(r) => {
                    out.push(0);
                    put_rect(&mut out, r);
                }
                TraceOp::Point(p) => {
                    out.push(1);
                    put_f64(&mut out, p.x);
                    put_f64(&mut out, p.y);
                }
                TraceOp::Knn(p, k) => {
                    out.push(2);
                    put_f64(&mut out, p.x);
                    put_f64(&mut out, p.y);
                    out.extend_from_slice(&k.to_le_bytes());
                }
                TraceOp::Insert(r, id) => {
                    out.push(3);
                    put_rect(&mut out, r);
                    out.extend_from_slice(&id.to_le_bytes());
                }
                TraceOp::Delete(r, id) => {
                    out.push(4);
                    put_rect(&mut out, r);
                    out.extend_from_slice(&id.to_le_bytes());
                }
            }
        }
        let crc = rtree_wal::crc32::checksum(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Parses a trace from bytes, verifying magic, version, declared op
    /// count, and the trailing checksum.
    pub fn from_bytes(bytes: &[u8]) -> Result<Trace, String> {
        if bytes.len() < 28 {
            return Err(format!("trace too short: {} bytes", bytes.len()));
        }
        let (body, tail) = bytes.split_at(bytes.len() - 4);
        let stored = u32::from_le_bytes(tail.try_into().expect("4"));
        let actual = rtree_wal::crc32::checksum(body);
        if stored != actual {
            return Err(format!(
                "trace checksum mismatch: stored {stored:#010x}, computed {actual:#010x}"
            ));
        }
        let mut r = Reader { buf: body, pos: 0 };
        if r.take(4)? != TRACE_MAGIC {
            return Err("bad trace magic (want \"RTRC\")".to_string());
        }
        let version = r.u32()?;
        if version != TRACE_VERSION {
            return Err(format!(
                "unsupported trace version {version} (this build reads {TRACE_VERSION})"
            ));
        }
        let seed = r.u64()?;
        let count = r.u64()? as usize;
        let mut ops = Vec::with_capacity(count.min(1 << 20));
        for _ in 0..count {
            let op = match r.u8()? {
                0 => TraceOp::Region(r.rect()?),
                1 => TraceOp::Point(r.point()?),
                2 => TraceOp::Knn(r.point()?, r.u32()?),
                3 => TraceOp::Insert(r.rect()?, r.u64()?),
                4 => TraceOp::Delete(r.rect()?, r.u64()?),
                t => return Err(format!("unknown trace op tag {t}")),
            };
            ops.push(op);
        }
        if r.pos != body.len() {
            return Err(format!(
                "{} trailing bytes after the declared {count} ops",
                body.len() - r.pos
            ));
        }
        Ok(Trace { seed, ops })
    }

    /// Writes the trace to a file.
    ///
    /// # Errors
    /// Propagates the underlying I/O error.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_bytes())
    }

    /// Reads a trace from a file, validating as [`Trace::from_bytes`].
    ///
    /// # Errors
    /// I/O errors and format violations both surface as `io::Error`.
    pub fn load(path: &std::path::Path) -> std::io::Result<Trace> {
        let bytes = std::fs::read(path)?;
        Trace::from_bytes(&bytes).map_err(std::io::Error::other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(n: usize) -> Vec<Rect> {
        (0..n)
            .map(|i| {
                let x = (i % 37) as f64 / 37.0;
                let y = (i / 37) as f64 / 16.0;
                Rect::new(x, y, x + 0.01, y + 0.01)
            })
            .collect()
    }

    fn spec(skew: Skew, seed: u64) -> TraceSpec {
        TraceSpec {
            ops: 600,
            qx: 0.05,
            qy: 0.05,
            skew,
            mix: MixWeights::read_mostly(),
            seed,
        }
    }

    #[test]
    fn byte_round_trip_is_identical() {
        for skew in [Skew::Uniform, Skew::Zipf { theta: 1.0 }, Skew::Shifting] {
            let t = generate(&data(400), &spec(skew, 11));
            let bytes = t.to_bytes();
            let back = Trace::from_bytes(&bytes).expect("round trip");
            assert_eq!(back, t);
            assert_eq!(back.to_bytes(), bytes, "re-serialization must be stable");
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let d = data(300);
        let a = generate(&d, &spec(Skew::Zipf { theta: 1.0 }, 5));
        let b = generate(&d, &spec(Skew::Zipf { theta: 1.0 }, 5));
        assert_eq!(a, b);
        let c = generate(&d, &spec(Skew::Zipf { theta: 1.0 }, 6));
        assert_ne!(a, c);
    }

    #[test]
    fn deletes_always_target_live_items() {
        // Replay the ledger: every delete must name an id that is live at
        // that point (original or inserted, not yet deleted), with the
        // exact rect it was created with.
        let d = data(200);
        let mut aggressive = spec(Skew::Uniform, 3);
        aggressive.mix = MixWeights {
            region: 10,
            point: 0,
            knn: 0,
            insert: 20,
            delete: 70,
        };
        aggressive.ops = 2_000;
        let t = generate(&d, &aggressive);
        let mut live: std::collections::HashMap<u64, Rect> =
            d.iter().enumerate().map(|(i, r)| (i as u64, *r)).collect();
        let mut deletes = 0;
        for op in &t.ops {
            match op {
                TraceOp::Insert(r, id) => {
                    assert!(live.insert(*id, *r).is_none(), "id {id} reused");
                }
                TraceOp::Delete(r, id) => {
                    deletes += 1;
                    let had = live.remove(id);
                    assert_eq!(had, Some(*r), "delete of dead or mismatched item {id}");
                }
                _ => {}
            }
        }
        assert!(deletes > 100, "mix produced only {deletes} deletes");
    }

    #[test]
    fn shifting_skew_moves_the_working_set() {
        let d = data(500);
        let mut s = spec(Skew::Shifting, 9);
        s.mix = MixWeights::read_only();
        let t = generate(&d, &s);
        let center_x = |op: &TraceOp| match op {
            TraceOp::Region(r) => r.center().x,
            TraceOp::Point(p) => p.x,
            TraceOp::Knn(p, _) => p.x,
            _ => unreachable!("read-only mix"),
        };
        let n = t.ops.len();
        let early: f64 = t.ops[..n / 4].iter().map(center_x).sum::<f64>() / (n / 4) as f64;
        let late: f64 =
            t.ops[3 * n / 4..].iter().map(center_x).sum::<f64>() / (n - 3 * n / 4) as f64;
        assert!(
            late - early > 0.2,
            "window did not slide: early mean x {early:.3}, late {late:.3}"
        );
    }

    #[test]
    fn corruption_is_rejected() {
        let t = generate(&data(100), &spec(Skew::Uniform, 1));
        let good = t.to_bytes();

        let mut flipped = good.clone();
        flipped[40] ^= 0x5A;
        assert!(Trace::from_bytes(&flipped)
            .expect_err("flip")
            .contains("checksum"));

        // Bad magic, resealed so the magic check (not the CRC) rejects.
        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        let n = bad_magic.len();
        let crc = rtree_wal::crc32::checksum(&bad_magic[..n - 4]);
        bad_magic[n - 4..].copy_from_slice(&crc.to_le_bytes());
        assert!(Trace::from_bytes(&bad_magic)
            .expect_err("magic")
            .contains("magic"));

        assert!(Trace::from_bytes(&good[..good.len() / 2])
            .expect_err("cut")
            .contains("checksum"));
        assert!(Trace::from_bytes(&[]).expect_err("empty").contains("short"));
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join(format!("rtrc-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("t.rtrc");
        let t = generate(&data(150), &spec(Skew::Zipf { theta: 0.8 }, 77));
        t.save(&path).expect("save");
        assert_eq!(Trace::load(&path).expect("load"), t);
        std::fs::remove_dir_all(&dir).ok();
    }
}
