//! Deterministic synthetic spatial data sets (§5.1 of the paper).
//!
//! Two of the paper's four data sets are specified exactly and implemented
//! verbatim:
//!
//! * [`SyntheticRegion`] — uniformly placed squares with side
//!   `~ U(0, ε)`, `ε = 2·√(0.25/10000)`, so 10,000 rectangles cover about a
//!   quarter of the unit square in total area.
//! * [`SyntheticPoint`] — uniform points.
//!
//! The other two are proprietary and substituted with statistically similar
//! generators (documented in `DESIGN.md`):
//!
//! * [`TigerLike`] — stands in for the TIGER/Long Beach road map: thin
//!   street-segment rectangles on a jittered grid inside an irregular city
//!   boundary, with a large empty "ocean" region. Same default cardinality
//!   (53,145).
//! * [`CfdLike`] — stands in for the Boeing-737 CFD grid: points packed
//!   exponentially tightly around airfoil-shaped elements whose interiors
//!   stay empty, plus a sparse far field. Same default cardinality (52,510).
//!
//! All generators take an explicit seed and are fully reproducible.

mod cfd;
mod clustered;
mod tiger;
pub mod trace;
mod uniform;
mod zipf;

pub use cfd::CfdLike;
pub use clustered::ClusteredPoints;
pub use tiger::TigerLike;
pub use trace::{center_pool, MixWeights, Skew, Trace, TraceOp, TraceSpec};
pub use uniform::{SyntheticPoint, SyntheticRegion};
pub use zipf::{
    chi_square, data_driven_workload, zipf_center_multiset, zipf_workload, ZipfWeights,
};

use rtree_geom::{Point, Rect};

/// Extracts the center points of a data set — the input of the data-driven
/// query model (§3.2).
pub fn centers(rects: &[Rect]) -> Vec<Point> {
    rects.iter().map(Rect::center).collect()
}

/// Parses a data set from the `x0,y0,x1,y1` CSV produced by [`to_csv`]
/// (header line required, blank lines ignored).
pub fn from_csv(text: &str) -> Result<Vec<Rect>, String> {
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, h)) if h.trim() == "x0,y0,x1,y1" => {}
        _ => return Err("missing x0,y0,x1,y1 header".into()),
    }
    let mut out = Vec::new();
    for (i, line) in lines {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 4 {
            return Err(format!("line {}: expected 4 fields", i + 1));
        }
        let mut v = [0.0f64; 4];
        for (slot, field) in v.iter_mut().zip(&fields) {
            *slot = field
                .trim()
                .parse()
                .map_err(|e| format!("line {}: {e}", i + 1))?;
        }
        if !(v[0] <= v[2] && v[1] <= v[3]) || v.iter().any(|x| !x.is_finite()) {
            return Err(format!("line {}: invalid rectangle", i + 1));
        }
        out.push(Rect::new(v[0], v[1], v[2], v[3]));
    }
    Ok(out)
}

/// Writes a data set as `x0,y0,x1,y1` CSV lines (used by the figure-5 dump).
pub fn to_csv(rects: &[Rect]) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(rects.len() * 40);
    out.push_str("x0,y0,x1,y1\n");
    for r in rects {
        writeln!(out, "{},{},{},{}", r.lo.x, r.lo.y, r.hi.x, r.hi.y).expect("string write");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn centers_are_midpoints() {
        let rects = vec![Rect::new(0.0, 0.0, 0.2, 0.4)];
        let c = centers(&rects);
        assert_eq!(c, vec![Point::new(0.1, 0.2)]);
    }

    #[test]
    fn csv_round_trip() {
        let rects = vec![Rect::new(0.0, 0.0, 0.5, 0.5), Rect::new(0.1, 0.1, 0.2, 0.2)];
        let back = from_csv(&to_csv(&rects)).unwrap();
        assert_eq!(back, rects);
    }

    #[test]
    fn csv_rejects_garbage() {
        assert!(from_csv("nope").is_err());
        assert!(from_csv("x0,y0,x1,y1\n1,2,3").is_err());
        assert!(from_csv("x0,y0,x1,y1\n0.5,0,0.1,1").is_err());
        assert!(from_csv("x0,y0,x1,y1\na,b,c,d").is_err());
    }

    #[test]
    fn csv_shape() {
        let rects = vec![Rect::new(0.0, 0.0, 0.5, 0.5), Rect::new(0.1, 0.1, 0.2, 0.2)];
        let csv = to_csv(&rects);
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("x0,y0,x1,y1\n"));
    }
}
