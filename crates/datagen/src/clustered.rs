//! Gaussian-mixture clustered points (extension data set).
//!
//! The paper's data sets pin down two extremes — uniform and wing-profile
//! skew. This generator spans the middle ground with a tunable knob: `k`
//! cluster centers placed uniformly, points scattered around them with
//! standard deviation `sigma`. Small `sigma` approaches the CFD-like
//! regime, large `sigma` degenerates toward uniform — which is exactly
//! what the `model_accuracy_sweep` experiment varies.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtree_geom::{Point, Rect};

/// Generator for a Gaussian-mixture point cloud in the unit square.
#[derive(Clone, Copy, Debug)]
pub struct ClusteredPoints {
    count: usize,
    clusters: usize,
    sigma: f64,
}

impl ClusteredPoints {
    /// Creates a generator: `count` points around `clusters` centers with
    /// per-axis standard deviation `sigma`.
    ///
    /// # Panics
    /// Panics if `clusters` is 0 or `sigma` is not positive and finite.
    pub fn new(count: usize, clusters: usize, sigma: f64) -> Self {
        assert!(clusters >= 1, "need at least one cluster");
        assert!(sigma > 0.0 && sigma.is_finite(), "sigma must be positive");
        ClusteredPoints {
            count,
            clusters,
            sigma,
        }
    }

    /// Generates the point set (as degenerate rectangles). Points falling
    /// outside the unit square are re-drawn, so marginal density near the
    /// border is slightly compressed — the same convention the paper's
    /// normalized data sets use.
    pub fn generate(&self, seed: u64) -> Vec<Rect> {
        let mut rng = StdRng::seed_from_u64(seed);
        let centers: Vec<Point> = (0..self.clusters)
            .map(|_| Point::new(rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)))
            .collect();
        let mut out = Vec::with_capacity(self.count);
        while out.len() < self.count {
            let c = centers[rng.gen_range(0..centers.len())];
            let (gx, gy) = gauss_pair(&mut rng);
            let p = Point::new(c.x + self.sigma * gx, c.y + self.sigma * gy);
            if (0.0..=1.0).contains(&p.x) && (0.0..=1.0).contains(&p.y) {
                out.push(Rect::point(p));
            }
        }
        out
    }
}

/// One Box–Muller draw: two independent standard normals.
fn gauss_pair(rng: &mut StdRng) -> (f64, f64) {
    let u1: f64 = 1.0 - rng.gen::<f64>(); // (0, 1]
    let u2: f64 = rng.gen();
    let r = (-2.0 * u1.ln()).sqrt();
    let theta = std::f64::consts::TAU * u2;
    (r * theta.cos(), r * theta.sin())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtree_geom::UNIT;

    #[test]
    fn cardinality_and_bounds() {
        let pts = ClusteredPoints::new(5_000, 8, 0.05).generate(1);
        assert_eq!(pts.len(), 5_000);
        for r in &pts {
            assert!(UNIT.contains_rect(r));
            assert_eq!(r.area(), 0.0);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = ClusteredPoints::new(500, 4, 0.02).generate(9);
        let b = ClusteredPoints::new(500, 4, 0.02).generate(9);
        assert_eq!(a, b);
    }

    #[test]
    fn small_sigma_is_more_skewed_than_large() {
        // Discrepancy proxy: fraction of points in the densest of a 4x4
        // grid of cells. Uniform would put ~1/16 in each.
        let peak_share = |sigma: f64| {
            let pts = ClusteredPoints::new(8_000, 4, sigma).generate(3);
            let mut cells = [0usize; 16];
            for r in &pts {
                let i = ((r.lo.x * 4.0) as usize).min(3);
                let j = ((r.lo.y * 4.0) as usize).min(3);
                cells[i * 4 + j] += 1;
            }
            *cells.iter().max().expect("non-empty") as f64 / pts.len() as f64
        };
        let tight = peak_share(0.01);
        let loose = peak_share(0.5);
        assert!(tight > 2.0 * loose, "tight {tight} vs loose {loose}");
        assert!(loose < 0.25, "large sigma should approach uniform");
    }

    #[test]
    fn gauss_pair_moments() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 20_000;
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        for _ in 0..n {
            let (a, b) = gauss_pair(&mut rng);
            sum += a + b;
            sum2 += a * a + b * b;
        }
        let mean = sum / (2.0 * n as f64);
        let var = sum2 / (2.0 * n as f64);
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }

    #[test]
    #[should_panic]
    fn rejects_zero_clusters() {
        let _ = ClusteredPoints::new(10, 0, 0.1);
    }

    #[test]
    #[should_panic]
    fn rejects_bad_sigma() {
        let _ = ClusteredPoints::new(10, 2, 0.0);
    }
}
