//! Zipf-skewed query-follows-data workloads (extension data set).
//!
//! The paper's data-driven workload (§3.2) draws query centers *uniformly*
//! from the data centers. Real query logs are rank-skewed: a few hot
//! objects draw most of the traffic. This module adds that axis while
//! keeping the analytic model exact: a Zipf draw over centers is
//! represented as a **weighted center multiset** — center of rank `k`
//! appears `∝ 1/k^θ` times — and a uniform draw from the multiset (which
//! is what both [`rtree_core::Workload::data_driven`] and the query
//! samplers do) reproduces the Zipf frequencies. No new model code is
//! needed; eq. 4 evaluates the multiset as-is.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtree_core::Workload;
use rtree_geom::{Point, Rect};

/// Normalized Zipf rank distribution: `P(rank k) ∝ 1/(k+1)^θ` for
/// `k = 0..n`. `θ = 0` is uniform; larger `θ` is more skewed.
#[derive(Clone, Debug)]
pub struct ZipfWeights {
    probs: Vec<f64>,
    cdf: Vec<f64>,
}

impl ZipfWeights {
    /// Creates the distribution over `n` ranks with exponent `theta`.
    ///
    /// # Panics
    /// Panics if `n` is 0 or `theta` is negative or non-finite.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n >= 1, "need at least one rank");
        assert!(theta >= 0.0 && theta.is_finite(), "theta must be >= 0");
        let mut probs: Vec<f64> = (0..n).map(|k| 1.0 / ((k + 1) as f64).powf(theta)).collect();
        let z: f64 = probs.iter().sum();
        for p in &mut probs {
            *p /= z;
        }
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for &p in &probs {
            acc += p;
            cdf.push(acc);
        }
        // Guard the tail against rounding so `sample(1.0)` stays in range.
        *cdf.last_mut().expect("n >= 1") = 1.0;
        ZipfWeights { probs, cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.probs.len()
    }

    /// True only for the (impossible by construction) empty distribution.
    pub fn is_empty(&self) -> bool {
        self.probs.is_empty()
    }

    /// Probability of rank `k` (0 = hottest).
    ///
    /// # Panics
    /// Panics if `k` is out of range.
    pub fn probability(&self, k: usize) -> f64 {
        self.probs[k]
    }

    /// Inverse-CDF sample: maps `u ∈ [0, 1]` to a rank.
    pub fn sample(&self, u: f64) -> usize {
        let u = u.clamp(0.0, 1.0);
        self.cdf.partition_point(|&c| c < u).min(self.len() - 1)
    }

    /// Draws a rank from `rng`.
    pub fn draw(&self, rng: &mut StdRng) -> usize {
        self.sample(rng.gen())
    }
}

/// Builds the Zipf-weighted center multiset: ranks are assigned to the
/// centers by a seeded permutation (so "which object is hot" varies with
/// the seed, not with input order), and each center is replicated by
/// largest-remainder apportionment of `total · P(rank)`. A uniform draw
/// from the returned multiset is a Zipf(θ) draw over the input centers;
/// centers whose share rounds to zero copies are simply absent.
///
/// # Panics
/// Panics if `centers` is empty, `total` is 0, or `theta` is invalid.
pub fn zipf_center_multiset(centers: &[Point], theta: f64, total: usize, seed: u64) -> Vec<Point> {
    assert!(!centers.is_empty(), "need at least one center");
    assert!(total >= 1, "need at least one multiset slot");
    let weights = ZipfWeights::new(centers.len(), theta);

    // Seeded rank assignment: a Fisher-Yates permutation of the centers.
    let mut by_rank: Vec<Point> = centers.to_vec();
    let mut rng = StdRng::seed_from_u64(seed);
    for i in (1..by_rank.len()).rev() {
        by_rank.swap(i, rng.gen_range(0..=i));
    }

    // Largest-remainder apportionment of `total` copies over the ranks.
    let shares: Vec<f64> = (0..by_rank.len())
        .map(|k| weights.probability(k) * total as f64)
        .collect();
    let mut copies: Vec<usize> = shares.iter().map(|s| s.floor() as usize).collect();
    let assigned: usize = copies.iter().sum();
    let mut order: Vec<usize> = (0..shares.len()).collect();
    order.sort_by(|&a, &b| {
        let (ra, rb) = (shares[a] - shares[a].floor(), shares[b] - shares[b].floor());
        rb.partial_cmp(&ra)
            .expect("finite remainders")
            .then(a.cmp(&b))
    });
    for &k in order.iter().take(total - assigned) {
        copies[k] += 1;
    }

    let mut out = Vec::with_capacity(total);
    for (k, &c) in copies.iter().enumerate() {
        for _ in 0..c {
            out.push(by_rank[k]);
        }
    }
    out
}

/// Query-follows-data workload over a data set: query rectangles of size
/// `qx × qy` centered on the data centers, drawn uniformly (§3.2). The
/// degenerate `qx = qy = 0` case is the data-driven *point* workload.
pub fn data_driven_workload(rects: &[Rect], qx: f64, qy: f64) -> Workload {
    Workload::data_driven(qx, qy, crate::centers(rects))
}

/// Zipf-skewed query-follows-data workload: like
/// [`data_driven_workload`], but the centers are drawn Zipf(θ) — hot
/// objects attract most queries. `total` is the multiset resolution
/// (larger = finer approximation of the real-valued Zipf weights; a few
/// times `rects.len()` is plenty), `seed` picks which objects are hot.
pub fn zipf_workload(
    rects: &[Rect],
    qx: f64,
    qy: f64,
    theta: f64,
    total: usize,
    seed: u64,
) -> Workload {
    Workload::data_driven(
        qx,
        qy,
        zipf_center_multiset(&crate::centers(rects), theta, total, seed),
    )
}

/// Pearson chi-square statistic `Σ (O−E)²/E` over matched observed and
/// expected counts (cells with nonpositive expectation are skipped).
/// Shared by the skew sanity tests here and the workload-estimation tests
/// in `rtree-tune`.
///
/// # Panics
/// Panics if the slices differ in length.
pub fn chi_square(observed: &[f64], expected: &[f64]) -> f64 {
    assert_eq!(observed.len(), expected.len(), "cell count mismatch");
    observed
        .iter()
        .zip(expected)
        .filter(|(_, &e)| e > 0.0)
        .map(|(&o, &e)| (o - e) * (o - e) / e)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_normalize_and_order() {
        let w = ZipfWeights::new(100, 1.1);
        let sum: f64 = (0..100).map(|k| w.probability(k)).sum();
        assert!((sum - 1.0).abs() < 1e-12);
        for k in 1..100 {
            assert!(w.probability(k) < w.probability(k - 1));
        }
        // theta = 0 is uniform.
        let u = ZipfWeights::new(10, 0.0);
        for k in 0..10 {
            assert!((u.probability(k) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn inverse_cdf_endpoints() {
        let w = ZipfWeights::new(5, 1.0);
        assert_eq!(w.sample(0.0), 0);
        assert_eq!(w.sample(1.0), 4);
        assert_eq!(w.sample(f64::NAN.clamp(0.0, 1.0)), 0);
    }

    /// The chi-square sanity test of the skew: sampled rank frequencies
    /// must fit Zipf(θ) and must *not* fit uniform.
    #[test]
    fn sampled_skew_passes_chi_square_against_zipf_not_uniform() {
        let n = 50usize;
        let draws = 100_000usize;
        let w = ZipfWeights::new(n, 1.2);
        let mut rng = StdRng::seed_from_u64(42);
        let mut observed = vec![0.0f64; n];
        for _ in 0..draws {
            observed[w.draw(&mut rng)] += 1.0;
        }
        let zipf_expected: Vec<f64> = (0..n).map(|k| w.probability(k) * draws as f64).collect();
        let uniform_expected = vec![draws as f64 / n as f64; n];
        let fit = chi_square(&observed, &zipf_expected);
        let misfit = chi_square(&observed, &uniform_expected);
        // 49 degrees of freedom: the 0.999 quantile is ~85.4. The uniform
        // misfit is astronomically larger — the skew is real.
        assert!(fit < 100.0, "chi-square vs Zipf too large: {fit}");
        assert!(misfit > 10_000.0, "uniform not rejected: {misfit}");
    }

    #[test]
    fn multiset_matches_weights_and_seed() {
        let centers: Vec<Point> = (0..40)
            .map(|i| Point::new(i as f64 / 40.0, (i % 7) as f64 / 7.0))
            .collect();
        let total = 4_000usize;
        let ms = zipf_center_multiset(&centers, 1.0, total, 7);
        assert_eq!(ms.len(), total);
        // Copy counts reproduce the Zipf weights to within one slot.
        let w = ZipfWeights::new(centers.len(), 1.0);
        let mut counts = std::collections::HashMap::new();
        for p in &ms {
            *counts
                .entry((p.x.to_bits(), p.y.to_bits()))
                .or_insert(0usize) += 1;
        }
        let mut by_count: Vec<usize> = counts.values().copied().collect();
        by_count.sort_unstable_by(|a, b| b.cmp(a));
        for (k, &c) in by_count.iter().enumerate() {
            let want = w.probability(k) * total as f64;
            assert!(
                (c as f64 - want).abs() <= 1.0,
                "rank {k}: {c} copies vs expected {want:.2}"
            );
        }
        // Deterministic per seed; a different seed heats different centers.
        assert_eq!(ms, zipf_center_multiset(&centers, 1.0, total, 7));
        assert_ne!(ms, zipf_center_multiset(&centers, 1.0, total, 8));
    }

    #[test]
    fn workload_builders_wire_through() {
        let rects: Vec<Rect> = (0..30)
            .map(|i| {
                let x = i as f64 / 30.0;
                Rect::new(x, 0.2, x + 0.01, 0.21)
            })
            .collect();
        let dd = data_driven_workload(&rects, 0.05, 0.05);
        assert!(dd.is_data_driven());
        assert_eq!(dd.centers().map(<[Point]>::len), Some(30));
        let z = zipf_workload(&rects, 0.05, 0.05, 1.5, 300, 3);
        assert!(z.is_data_driven());
        assert_eq!(z.centers().map(<[Point]>::len), Some(300));
        // Strong skew: the hottest center holds a large share of the slots.
        let centers = z.centers().expect("data driven");
        let mut counts = std::collections::HashMap::new();
        for p in centers {
            *counts
                .entry((p.x.to_bits(), p.y.to_bits()))
                .or_insert(0usize) += 1;
        }
        let max = counts.values().copied().max().expect("non-empty");
        assert!(max > 300 / 10, "hottest center only {max}/300 slots");
    }

    #[test]
    #[should_panic]
    fn rejects_empty_centers() {
        let _ = zipf_center_multiset(&[], 1.0, 10, 0);
    }

    #[test]
    #[should_panic]
    fn rejects_negative_theta() {
        let _ = ZipfWeights::new(10, -0.5);
    }
}
