//! **Macro-benchmark** — effective OPS under replayable traces, across
//! {v3, v4} × {lru, fifo, clock, lru-2, random} × {uniform, zipf,
//! shifting}.
//!
//! Each cell: build the tree once, materialize it in both page formats,
//! walk the on-disk image into the analytic model's tree description,
//! warm the buffer with a read-only prefix, then replay the recorded
//! trace and report hit rate, demand reads/op, latency quantiles, and
//! effective OPS (misses charged `--miss-ns`, default ~1.9 µs NVMe).
//!
//! The run *gates* (exit 1) unless, on the Zipf read-only leg at equal
//! frame budgets:
//! 1. v4 does strictly fewer demand reads/op than v3 under **every**
//!    policy, and
//! 2. under LRU the measured v4/v3 ratio lands within ±0.35 of the
//!    model-predicted ratio (the band documented in
//!    `rtree_bench::macrobench::Gate`).
//!
//! ```text
//! cargo run --release -p rtree-bench --bin macrobench -- --quick --json
//! ```
//! Flags: `--quick` (small data/trace for CI smoke), `--csv`, `--json`,
//! `--miss-ns <float>` (miss latency override).

use rtree_bench::macrobench::{
    describe_store, model_reads_per_query, policies, replay, Boxed, Gate, PageFormat,
    DEFAULT_MISS_NS,
};
use rtree_bench::{f, flag, pct, synthetic_region, Loader, Table};
use rtree_core::Workload;
use rtree_datagen::trace::{center_pool, generate, MixWeights, Skew, Trace, TraceSpec};
use rtree_pager::DiskRTree;

fn miss_ns() -> f64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--miss-ns")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--miss-ns takes a float"))
        .unwrap_or(DEFAULT_MISS_NS)
}

fn main() {
    let quick = flag("--quick");
    // Scale so v3 genuinely needs internal pages v4 can fold away: the
    // quick tree (134 leaves at cap 30) and the full tree (200 leaves at
    // the page-limit cap 100) both repack to a single 253-entry internal
    // level under v4 — one level shallower than v3. The frame budget is
    // starved relative to the leaf count so the buffer, not capacity,
    // shapes the reads.
    let (n, cap, ops, frames) = if quick {
        (4_000, 30, 3_000, 12)
    } else {
        (20_000, 100, 20_000, 32)
    };
    let (qx, qy) = (0.05, 0.05);
    let miss = miss_ns();
    let rects = synthetic_region(n);
    let tree = Loader::Hs.build(cap, &rects);

    // One trace per (skew, mix) leg, recorded once and replayed
    // byte-identically against every format × policy cell.
    let legs: Vec<(&str, Skew, &str, MixWeights)> = vec![
        (
            "uniform",
            Skew::Uniform,
            "90/9/1",
            MixWeights::read_mostly(),
        ),
        (
            "zipf",
            Skew::Zipf { theta: 1.0 },
            "90/9/1",
            MixWeights::read_mostly(),
        ),
        (
            "shifting",
            Skew::Shifting,
            "90/9/1",
            MixWeights::read_mostly(),
        ),
        (
            "zipf",
            Skew::Zipf { theta: 1.0 },
            "read-only",
            MixWeights::read_only(),
        ),
    ];
    let traces: Vec<(usize, Trace, Trace)> = legs
        .iter()
        .enumerate()
        .map(|(i, (_, skew, _, mix))| {
            let spec = TraceSpec {
                ops,
                qx,
                qy,
                skew: *skew,
                mix: *mix,
                seed: 0x7AC3 + i as u64,
            };
            // A read-only warm-up prefix with the same skew, so measured
            // replays start from a policy-shaped steady state instead of
            // a cold buffer.
            let warm = TraceSpec {
                ops: (ops / 4).max(1),
                mix: MixWeights::read_only(),
                seed: spec.seed ^ 0xFF,
                ..spec
            };
            (i, generate(&rects, &warm), generate(&rects, &spec))
        })
        .collect();

    let mut table = Table::new(
        format!("Effective OPS macro-benchmark (miss = {miss:.0} ns, {frames} frames)"),
        &[
            "format",
            "policy",
            "skew",
            "mix",
            "ops",
            "hit_rate",
            "reads_per_op",
            "model_rpq",
            "p50_us",
            "p99_us",
            "eff_ops",
        ],
    );
    let mut gates: Vec<Gate> = Vec::new();

    for (leg_idx, warm_trace, trace) in &traces {
        let (skew_name, skew, mix_name, _) = legs[*leg_idx];
        // The model workload draws from exactly the center pool the trace
        // generator used.
        let workload =
            Workload::data_driven(qx, qy, center_pool(&rects, skew, 0x7AC3 + *leg_idx as u64));
        for (policy_name, policy) in policies() {
            let mut measured = [0.0f64; 2];
            let mut modeled = [0.0f64; 2];
            let mut digests = [0u64; 2];
            for (fi, format) in PageFormat::ALL.into_iter().enumerate() {
                let disk = format.materialize(&tree, frames, Boxed(policy()));
                let meta = disk.meta().clone();
                let mut store = disk.into_store();
                let desc = describe_store(&mut store, &meta).expect("walk image");
                let mut disk =
                    DiskRTree::open(store, frames, Boxed(policy())).expect("reopen image");
                replay(&mut disk, warm_trace).expect("warm-up replay");
                let out = replay(&mut disk, trace).expect("measured replay");
                let model = model_reads_per_query(&desc, &workload, frames);
                measured[fi] = out.demand_reads_per_op();
                modeled[fi] = model;
                digests[fi] = out.digest;
                table.row(vec![
                    format.name().into(),
                    policy_name.into(),
                    skew_name.into(),
                    mix_name.into(),
                    out.ops.to_string(),
                    pct(out.hit_rate),
                    f(out.demand_reads_per_op()),
                    f(model),
                    f(out.p50_ns as f64 / 1e3),
                    f(out.p99_ns as f64 / 1e3),
                    format!("{:.0}", out.effective_ops(miss)),
                ]);
            }
            // On mutating legs the two formats evolve different tree
            // shapes (v4 internal pages split at 253, v3 at the f64
            // capacity), so result order and kNN tie-breaks legitimately
            // differ; answers are only required to be identical while the
            // images stay read-only. The differential test suite
            // (`tests/compress_vs_seed.rs`) covers mutation equivalence
            // set-wise.
            if mix_name == "read-only" {
                assert_eq!(
                    digests[0], digests[1],
                    "{policy_name}/{skew_name}: v4 answers diverged from v3"
                );
            }
            if mix_name == "read-only" {
                gates.push(Gate {
                    policy: policy_name,
                    v3_reads_per_op: measured[0],
                    v4_reads_per_op: measured[1],
                    model_v3: modeled[0],
                    model_v4: modeled[1],
                });
            }
        }
    }

    table.emit("macrobench");

    let mut pass = true;
    println!("gate (zipf read-only, {frames} frames):");
    for g in &gates {
        let strict = g.strict_win();
        let band_checked = g.policy == "lru";
        let band = !band_checked || g.within_band();
        println!(
            "  {:<7} v3 {:.4} -> v4 {:.4} reads/op (model {:.4} -> {:.4}; ratio {:.3} vs model {:.3}) {}{}",
            g.policy,
            g.v3_reads_per_op,
            g.v4_reads_per_op,
            g.model_v3,
            g.model_v4,
            g.measured_ratio(),
            g.model_ratio(),
            if strict { "WIN" } else { "FAIL: not fewer" },
            if band_checked {
                if band { ", in band" } else { ", FAIL: outside model band" }
            } else {
                ""
            },
        );
        pass &= strict && band;
    }
    if !pass {
        eprintln!("macrobench gate FAILED");
        std::process::exit(1);
    }
    println!("macrobench gate passed: v4 beats v3 on demand reads under every policy");
}
