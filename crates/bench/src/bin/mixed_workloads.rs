//! **Extension** — workload mixtures. Real query streams blend point
//! look-ups with pans of several sizes; the mixture model (per-node
//! probabilities are convex combinations) must track a simulation that
//! draws each query from the mixture. Sweeps the point/region blend from
//! all-points to all-regions.

use rtree_bench::{f, pct, seeds, sim_scale, tiger, Loader, Table};
use rtree_core::{BufferModel, MixedWorkload, TreeDescription, Workload};
use rtree_sim::{SimConfig, SimTree, Simulation};

fn main() {
    let cap = 100;
    let rects = tiger();
    let tree = Loader::Hs.build(cap, &rects);
    let desc = TreeDescription::from_tree(&tree);
    let sim_tree = SimTree::from_tree(&tree);
    let (batches, qpb) = sim_scale();
    let buffer = 100;

    let mut table = Table::new(
        format!("Mixed workloads: point/1%-region blends, B = {buffer} (TIGER-like, HS cap {cap})"),
        &["% region", "visits/query", "sim", "model", "diff"],
    );

    for region_share in [0usize, 10, 25, 50, 75, 100] {
        let mix = match region_share {
            0 => MixedWorkload::new(vec![(1.0, Workload::uniform_point())]),
            100 => MixedWorkload::new(vec![(1.0, Workload::uniform_region(0.1, 0.1))]),
            p => MixedWorkload::new(vec![
                (1.0 - p as f64 / 100.0, Workload::uniform_point()),
                (p as f64 / 100.0, Workload::uniform_region(0.1, 0.1)),
            ]),
        };
        let model = BufferModel::new_mixed(&desc, &mix);
        let cfg = SimConfig::new(buffer)
            .batches(batches, qpb)
            .seed(seeds::SIM);
        let sim = Simulation::new(cfg).run_mixed(&sim_tree, &mix);
        let predicted = model.expected_disk_accesses(buffer);
        let diff = (predicted - sim.disk_accesses_per_query) / sim.disk_accesses_per_query;
        table.row(vec![
            region_share.to_string(),
            f(sim.nodes_accessed_per_query),
            f(sim.disk_accesses_per_query),
            f(predicted),
            pct(diff),
        ]);
    }
    table.emit("mixed_workloads");
    println!("Per-node access probabilities mix linearly, so one model covers any blend.");
}
