//! **Ablation** — replacement policies. The analytic model is derived for
//! LRU (via the Bhide et al. warm-up argument); this experiment simulates
//! LRU, FIFO, Clock and Random buffers on the same tree and workload to
//! show how much the policy choice moves the disk-access count, and how
//! close each lands to the LRU model's prediction.

use rtree_bench::{f, seeds, sim_scale, tiger, Loader, Table};
use rtree_core::{BufferModel, TreeDescription, Workload};
use rtree_sim::{PolicyKind, SimConfig, SimTree, Simulation};

fn main() {
    let cap = 100;
    let rects = tiger();
    let tree = Loader::Hs.build(cap, &rects);
    let desc = TreeDescription::from_tree(&tree);
    let sim_tree = SimTree::from_tree(&tree);
    let workload = Workload::uniform_point();
    let model = BufferModel::new(&desc, &workload);
    let (batches, qpb) = sim_scale();

    let policies = [
        PolicyKind::Lru,
        PolicyKind::Lru2,
        PolicyKind::Clock,
        PolicyKind::Fifo,
        PolicyKind::Random,
    ];
    let mut table = Table::new(
        "Ablation: replacement policy vs disk accesses (TIGER-like, HS cap 100, point queries)",
        &[
            "buffer",
            "model(LRU)",
            "LRU",
            "LRU-2",
            "CLOCK",
            "FIFO",
            "RANDOM",
        ],
    );
    for b in [10usize, 50, 200, 400] {
        let mut cells = vec![b.to_string(), f(model.expected_disk_accesses(b))];
        for p in policies {
            let cfg = SimConfig::new(b)
                .policy(p)
                .batches(batches, qpb)
                .seed(seeds::SIM);
            let res = Simulation::new(cfg).run(&sim_tree, &workload);
            cells.push(f(res.disk_accesses_per_query));
        }
        table.row(cells);
    }
    table.emit("ablation_policies");
    println!(
        "LRU and CLOCK track the model; FIFO/RANDOM pay for ignoring recency;\n\
         LRU-2's reference history beats plain LRU by keeping hot internal pages resident."
    );
}
