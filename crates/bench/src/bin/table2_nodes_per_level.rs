//! **Table 2** — number of nodes per level for the synthetic point data
//! sets used in the pinning study (§5.5): 40,000–250,000 points, node size
//! 25, Hilbert-packed, giving 4-level trees.

use rtree_bench::{synthetic_point, Loader, Table};

fn main() {
    let cap = 25;
    let sizes = [40_000usize, 80_000, 120_000, 160_000, 200_000, 250_000];

    let mut table = Table::new(
        "Table 2: nodes per level (synthetic point data, node size 25, HS)",
        &[
            "points",
            "level 0 (root)",
            "level 1",
            "level 2",
            "level 3 (leaf)",
            "total",
        ],
    );

    for &n in &sizes {
        let tree = Loader::Hs.build(cap, &synthetic_point(n));
        let stats = tree.stats();
        let per_level = stats.nodes_per_level();
        assert_eq!(per_level.len(), 4, "expected 4-level trees as in the paper");
        table.row(vec![
            n.to_string(),
            per_level[0].to_string(),
            per_level[1].to_string(),
            per_level[2].to_string(),
            per_level[3].to_string(),
            stats.total_nodes.to_string(),
        ]);
    }
    table.emit("table2_nodes_per_level");
}
