//! **Figure 9** — disk accesses vs data set size on synthetic region data,
//! NX and HS, point queries. Top-left of the figure ignores buffering
//! (nodes visited); the other panels use buffers of 10 and 300 pages.
//!
//! The paper's point: without a buffer, cost appears to saturate with data
//! size (leaf MBRs tighten as density grows), which "could cause a query
//! optimizer to produce a poor query plan"; with a buffer the real cost of
//! larger trees is evident.

use rtree_bench::{f, synthetic_region, Loader, Table};
use rtree_core::{BufferModel, TreeDescription, Workload};

fn main() {
    let cap = 100;
    let sizes = [
        10_000usize,
        25_000,
        50_000,
        100_000,
        150_000,
        200_000,
        250_000,
        300_000,
    ];
    let workload = Workload::uniform_point();

    let mut table = Table::new(
        "Fig 9: nodes visited (no buffer) and disk accesses (B=10, B=300) vs data size \
         (synthetic region, cap 100, point queries)",
        &[
            "rects", "nodes", "visit NX", "visit HS", "B10 NX", "B10 HS", "B300 NX", "B300 HS",
        ],
    );

    for &n in &sizes {
        let rects = synthetic_region(n);
        let nx = TreeDescription::from_tree(&Loader::Nx.build(cap, &rects));
        let hs = TreeDescription::from_tree(&Loader::Hs.build(cap, &rects));
        let m_nx = BufferModel::new(&nx, &workload);
        let m_hs = BufferModel::new(&hs, &workload);
        table.row(vec![
            n.to_string(),
            nx.total_nodes().to_string(),
            f(m_nx.expected_node_accesses()),
            f(m_hs.expected_node_accesses()),
            f(m_nx.expected_disk_accesses(10)),
            f(m_hs.expected_disk_accesses(10)),
            f(m_nx.expected_disk_accesses(300)),
            f(m_hs.expected_disk_accesses(300)),
        ]);
    }
    table.emit("fig9_datasize");
}
