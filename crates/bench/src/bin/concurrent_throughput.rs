//! **Extension** — throughput scaling of the *sharded* buffer pool.
//!
//! `concurrent_scaling` checks that disk accesses per query stay at the
//! model's prediction when clients share one pool; this experiment measures
//! the other axis: queries per second as the client count grows, with the
//! pool's bookkeeping sharded so threads stop serializing on one latch.
//! Two configurations bracket the design space:
//!
//! - **buffer-resident**: capacity holds the whole tree, so after warm-up
//!   every access is a hit and the experiment isolates latch contention;
//! - **buffer-starved**: a small pool keeps the miss path (store read +
//!   frame replacement) on the critical path.
//!
//! Shards are auto-sized (one per hardware thread, power of two). The
//! speedup column is relative to the 1-thread run of the same
//! configuration; on a multi-core box the buffer-resident speedup at 8
//! threads should approach the core count.

use rtree_bench::{f, flag, synthetic_region, Loader, Table};
use rtree_buffer::LruPolicy;
use rtree_core::Workload;
use rtree_obs::Histogram;
use rtree_pager::{ConcurrentDiskRTree, MemStore};
use rtree_sim::QuerySampler;
use std::sync::Arc;
use std::time::Instant;

/// Time every Nth query; sparse sampling keeps the timing syscalls off the
/// throughput-critical path while still filling the latency histogram.
const LATENCY_SAMPLE_EVERY: usize = 8;

fn main() {
    let cap = 50;
    let rects = synthetic_region(50_000);
    let tree = Loader::Hs.build(cap, &rects);
    let workload = Workload::uniform_region(0.05, 0.05);
    let nodes = tree.node_count();
    let queries_per_thread = if flag("--quick") { 2_000 } else { 25_000 };
    let warmup = if flag("--quick") { 2_000 } else { 20_000 };

    // Whole tree resident vs ~2% resident.
    let configs = [
        ("buffer-resident", nodes + 1),
        ("buffer-starved", (nodes / 50).max(16)),
    ];

    let mut table = Table::new(
        format!(
            "Sharded pool throughput: {queries_per_thread} region queries/thread \
             (synthetic region 50k, HS cap 50, {nodes} nodes)"
        ),
        &[
            "config",
            "buffer",
            "threads",
            "shards",
            "queries/s",
            "speedup",
            "disk reads/query",
            "hit ratio",
            "p50 us",
            "p99 us",
        ],
    );

    for (label, buffer) in configs {
        let mut baseline_qps = 0.0;
        for threads in [1usize, 2, 4, 8] {
            let disk = Arc::new(
                ConcurrentDiskRTree::create_sharded(
                    MemStore::new(),
                    &tree,
                    buffer,
                    0, // auto: one shard per hardware thread
                    LruPolicy::new,
                )
                .expect("create"),
            );
            let mut warm = QuerySampler::new(&workload, 0xACED);
            for _ in 0..warmup {
                disk.query(&warm.sample()).expect("warmup query");
            }
            disk.reset_counters();

            let started = Instant::now();
            let latency = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..threads)
                    .map(|t| {
                        let disk = Arc::clone(&disk);
                        let workload = workload.clone();
                        scope.spawn(move || {
                            let mut sampler = QuerySampler::new(&workload, 0xBEEF + t as u64);
                            let mut hist = Histogram::new();
                            for i in 0..queries_per_thread {
                                if i % LATENCY_SAMPLE_EVERY == 0 {
                                    let t0 = Instant::now();
                                    disk.query(&sampler.sample()).expect("query");
                                    hist.record(t0.elapsed().as_nanos() as u64);
                                } else {
                                    disk.query(&sampler.sample()).expect("query");
                                }
                            }
                            hist
                        })
                    })
                    .collect();
                let mut merged = Histogram::new();
                for h in handles {
                    merged.merge(&h.join().expect("worker thread"));
                }
                merged
            });
            let elapsed = started.elapsed().as_secs_f64();
            let total_queries = (threads * queries_per_thread) as f64;
            let qps = total_queries / elapsed;
            if threads == 1 {
                baseline_qps = qps;
            }
            let stats = disk.buffer_stats();
            table.row(vec![
                label.to_string(),
                buffer.to_string(),
                threads.to_string(),
                disk.shard_count().to_string(),
                format!("{qps:.0}"),
                format!("{:.2}", qps / baseline_qps),
                f(disk.physical_reads() as f64 / total_queries),
                f(stats.hit_ratio()),
                format!("{:.1}", latency.quantile(0.50) as f64 / 1_000.0),
                format!("{:.1}", latency.quantile(0.99) as f64 / 1_000.0),
            ]);
        }
    }
    table.emit("concurrent_throughput");
    println!(
        "Buffer-resident isolates latch contention (all hits); buffer-starved keeps the miss \
         path hot. Speedup is vs the 1-thread run of the same config."
    );
}
