//! **Adaptive buffering** — does closing the loop on the paper's model pay?
//!
//! One query stream, one frame budget, a mid-run workload shift:
//!
//! * **Phase 1** — uniform region queries over the whole space. Each query
//!   drags a fresh set of leaves through the pool, so plain LRU keeps
//!   evicting the internal levels between their re-touches; pinning the
//!   top levels is the paper's fix (fig. 11's window).
//! * **Phase 2** — clustered point queries confined to one hot patch.
//!   Now the hot leaves *are* the working set and they fit in the budget;
//!   frames wasted on pinned internals crowd them out, so pinning hurts.
//!
//! No single static configuration wins both phases. The static rows hold
//! one pin depth for the whole run; the adaptive row runs the
//! `rtree-tune` controller (estimate → refit → actuate every `TICK`
//! queries) against the identical stream. The gate — exercised by CI via
//! `--quick --json` — is that the adaptive run finishes with strictly
//! fewer demand reads per query than every static row, actuation costs
//! included. Exits non-zero when it does not.

use rtree_bench::{f, flag, synthetic_point, Loader, Table};
use rtree_buffer::LruPolicy;
use rtree_core::TreeDescription;
use rtree_geom::Rect;
use rtree_index::RTree;
use rtree_obs::TuneObserver;
use rtree_pager::{DiskRTree, MemStore};
use rtree_tune::{Actuator, Controller, ControllerConfig, DiskActuator, Setting};

/// Frame budget every configuration gets: big enough to pin the internal
/// levels with room to spare, small enough that LRU alone cannot hold
/// them under the phase-1 leaf churn.
const BUDGET: usize = 60;
/// Controller cadence in queries.
const TICK: usize = 50;

/// The shared query stream: phase 1 is uniform 0.1-side region queries,
/// phase 2 point queries inside one hot patch covering ~5% of the space.
/// Both phases are low-discrepancy (golden-ratio) walks, so runs are
/// deterministic and every configuration sees the identical stream.
fn query(i: usize, per_phase: usize) -> Rect {
    let t = i as f64;
    if i < per_phase {
        let cx = (t * 0.618_033_988_749) % 0.9;
        let cy = (t * 0.414_213_562_373) % 0.9;
        Rect::new(cx, cy, cx + 0.1, cy + 0.1)
    } else {
        // Patch sized so its ~50 hot leaves fit the full budget but not
        // the budget minus the pinned internal levels — the regime where
        // holding on to phase 1's pinning costs real misses.
        let cx = 0.36 + (t * 0.618_033_988_749) % 0.28;
        let cy = 0.36 + (t * 0.414_213_562_373) % 0.28;
        Rect::new(cx, cy, cx, cy)
    }
}

/// Demand reads after the phase-1 and full streams for one static pin
/// depth, pinning reads included (the cold start is part of the cost).
fn run_static(tree: &RTree, stream: &[Rect], per_phase: usize, pin: usize) -> (u64, u64) {
    let mut disk = DiskRTree::create(MemStore::new(), tree, BUDGET, LruPolicy::new())
        .expect("create disk tree");
    if pin > 0 {
        disk.pin_top_levels(pin).expect("pin top levels");
    }
    let mut phase1 = 0;
    for (i, q) in stream.iter().enumerate() {
        disk.query(q).expect("query");
        if i + 1 == per_phase {
            phase1 = disk.io_stats().demand_reads();
        }
    }
    (phase1, disk.io_stats().demand_reads())
}

/// The adaptive run: same tree, same stream, the controller observing
/// every query and actuating (unpin → resize → re-pin) on its tick.
fn run_adaptive(
    tree: &RTree,
    desc: &TreeDescription,
    stream: &[Rect],
    per_phase: usize,
) -> (u64, u64, Controller) {
    let mut disk = DiskRTree::create(MemStore::new(), tree, BUDGET, LruPolicy::new())
        .expect("create disk tree");
    let cfg = ControllerConfig {
        min_samples: 48,
        min_interval: 2,
        // The gate compares miss totals, so the controller must not trade
        // misses for frames: keep the full budget, move only the pinning.
        knee_tolerance: 0.0,
        ..ControllerConfig::new(BUDGET)
    };
    let controller = Controller::new(
        desc.clone(),
        Setting {
            buffer: BUDGET,
            pin_levels: 0,
        },
        cfg,
    );
    let mut phase1 = 0;
    for (i, q) in stream.iter().enumerate() {
        controller.observe_query(q.lo.x, q.lo.y, q.hi.x, q.hi.y);
        disk.query(q).expect("query");
        if (i + 1) % TICK == 0 {
            controller
                .tick_with(|s| DiskActuator::new(&mut disk).apply(s))
                .expect("actuate");
        }
        if i + 1 == per_phase {
            phase1 = disk.io_stats().demand_reads();
        }
    }
    (phase1, disk.io_stats().demand_reads(), controller)
}

fn main() {
    let quick = flag("--quick");
    // The tree shape (and with it the pinning window) stays fixed;
    // --quick only shortens the phases.
    let items = 12_000;
    let per_phase = if quick { 3_000 } else { 10_000 };
    let rects = synthetic_point(items);
    let tree = Loader::Hs.build(25, &rects);
    let desc = TreeDescription::from_tree(&tree);
    let stream: Vec<Rect> = (0..2 * per_phase).map(|i| query(i, per_phase)).collect();

    println!(
        "synthetic point {items}, HS cap 25, pages per level {:?}, budget {BUDGET} frames\n",
        desc.nodes_per_level()
    );

    // Every pin depth whose pages leave at least one replaceable frame.
    let max_pin = (0..=desc.height())
        .take_while(|&p| desc.pages_in_top_levels(p) < BUDGET)
        .last()
        .unwrap_or(0);

    let mut table = Table::new(
        format!(
            "adaptive buffering vs every static pin depth \
             ({} uniform-region then {} hot-patch queries, B={BUDGET})",
            per_phase, per_phase
        ),
        &[
            "config",
            "phase1 reads/q",
            "phase2 reads/q",
            "total reads/q",
        ],
    );
    let per_q = |n: u64| n as f64 / per_phase as f64;
    let mut static_totals: Vec<(usize, u64)> = Vec::new();
    for pin in 0..=max_pin {
        let (p1, total) = run_static(&tree, &stream, per_phase, pin);
        table.row(vec![
            format!("static pin {pin}"),
            f(per_q(p1)),
            f(per_q(total - p1)),
            f(total as f64 / stream.len() as f64),
        ]);
        static_totals.push((pin, total));
    }
    let (p1, total, controller) = run_adaptive(&tree, &desc, &stream, per_phase);
    table.row(vec![
        "adaptive".to_string(),
        f(per_q(p1)),
        f(per_q(total - p1)),
        f(total as f64 / stream.len() as f64),
    ]);
    table.emit("adaptive_buffer");

    println!(
        "\ncontroller: {} ticks, {} decisions",
        controller.ticks(),
        controller.decisions().len()
    );
    for d in controller.decisions() {
        println!("  {d}");
    }

    let losers: Vec<String> = static_totals
        .iter()
        .filter(|&&(_, s)| total >= s)
        .map(|&(pin, s)| format!("pin {pin} ({} <= {} adaptive)", s, total))
        .collect();
    if losers.is_empty() {
        println!(
            "\nPASS: adaptive beat every static configuration ({} demand reads vs best static {})",
            total,
            static_totals.iter().map(|&(_, s)| s).min().unwrap(),
        );
    } else {
        eprintln!(
            "\nFAIL: adaptive did not strictly beat static {}",
            losers.join(", ")
        );
        std::process::exit(1);
    }
}
