//! **Figure 5** — the CFD data set plots (full data set + center detail).
//! This binary dumps the point sets as CSV for plotting and prints summary
//! statistics demonstrating the skew the paper describes.

use rtree_bench::{cfd, cfd_fig5, Table};
use rtree_datagen::to_csv;
use rtree_geom::Rect;
use std::path::Path;

fn density(rects: &[Rect], region: &Rect) -> f64 {
    let inside = rects
        .iter()
        .filter(|r| region.contains_point(&r.center()))
        .count();
    inside as f64 / rects.len() as f64 / region.area()
}

fn main() {
    let sample = cfd_fig5();
    let full = cfd();

    let dir = Path::new("results");
    std::fs::create_dir_all(dir).expect("create results dir");
    std::fs::write(dir.join("fig5_cfd_sample.csv"), to_csv(&sample)).expect("write sample");
    std::fs::write(dir.join("fig5_cfd_full.csv"), to_csv(&full)).expect("write full");
    println!(
        "[csv] wrote results/fig5_cfd_sample.csv ({} points)",
        sample.len()
    );
    println!(
        "[csv] wrote results/fig5_cfd_full.csv ({} points)",
        full.len()
    );

    // Relative density (1.0 = uniform): near-wing boxes vs far corners.
    let mut table = Table::new(
        "Fig 5: CFD-like data summary (density relative to uniform)",
        &["region", "sample(5088)", "full(52510)"],
    );
    let regions = [
        ("wing neighborhood", Rect::new(0.25, 0.42, 0.75, 0.62)),
        ("center detail", Rect::new(0.4, 0.47, 0.55, 0.57)),
        ("far corner", Rect::new(0.0, 0.0, 0.2, 0.2)),
        ("far field top", Rect::new(0.3, 0.8, 0.7, 1.0)),
    ];
    for (name, region) in regions {
        table.row(vec![
            name.to_string(),
            format!("{:.2}", density(&sample, &region)),
            format!("{:.2}", density(&full, &region)),
        ]);
    }
    table.emit("fig5_cfd_density");
}
