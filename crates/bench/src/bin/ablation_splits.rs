//! **Ablation** — Guttman split heuristics under buffering. The paper's
//! TAT loader uses the quadratic split; this experiment compares quadratic
//! vs linear splits through the buffer model, showing whether split quality
//! still matters once a buffer absorbs the hot top of the tree.

use rtree_bench::{f, synthetic_region, Table};
use rtree_core::{BufferModel, TreeDescription, Workload};
use rtree_index::{LinearSplit, RStarSplit, TupleAtATime};

fn main() {
    let cap = 50;
    let rects = synthetic_region(20_000);

    let quad = TupleAtATime::quadratic(cap).load(&rects);
    let lin = TupleAtATime::with_split(cap, LinearSplit).load(&rects);
    let rstar = TupleAtATime::with_split(cap, RStarSplit).load(&rects);
    let rstar_full = TupleAtATime::rstar(cap).load(&rects);

    let d_quad = TreeDescription::from_tree(&quad);
    let d_lin = TreeDescription::from_tree(&lin);
    let d_rstar = TreeDescription::from_tree(&rstar);
    let d_full = TreeDescription::from_tree(&rstar_full);

    println!(
        "tree sizes: quadratic {} nodes, linear {} nodes, R*-split {} nodes, full R* {} nodes\n",
        d_quad.total_nodes(),
        d_lin.total_nodes(),
        d_rstar.total_nodes(),
        d_full.total_nodes()
    );

    for (slug, title, workload) in [
        (
            "ablation_splits_point",
            "Ablation: split heuristic, point queries (synthetic region 20k, cap 50)",
            Workload::uniform_point(),
        ),
        (
            "ablation_splits_region",
            "Ablation: split heuristic, 1% region queries (synthetic region 20k, cap 50)",
            Workload::uniform_region(0.1, 0.1),
        ),
    ] {
        let m_quad = BufferModel::new(&d_quad, &workload);
        let m_lin = BufferModel::new(&d_lin, &workload);
        let m_rstar = BufferModel::new(&d_rstar, &workload);
        let m_full = BufferModel::new(&d_full, &workload);
        let mut table = Table::new(
            title,
            &[
                "buffer",
                "quadratic",
                "linear",
                "rstar-split",
                "full R*",
                "full R*/quadratic",
            ],
        );
        table.row(vec![
            "(no buffer)".to_string(),
            f(m_quad.expected_node_accesses()),
            f(m_lin.expected_node_accesses()),
            f(m_rstar.expected_node_accesses()),
            f(m_full.expected_node_accesses()),
            f(m_full.expected_node_accesses() / m_quad.expected_node_accesses()),
        ]);
        for b in [10usize, 50, 100, 200, 400] {
            let q = m_quad.expected_disk_accesses(b);
            let l = m_lin.expected_disk_accesses(b);
            let r = m_rstar.expected_disk_accesses(b);
            let fu = m_full.expected_disk_accesses(b);
            table.row(vec![
                b.to_string(),
                f(q),
                f(l),
                f(r),
                f(fu),
                f(if q > 0.0 { fu / q } else { f64::NAN }),
            ]);
        }
        table.emit(slug);
    }
}
