//! **Extension** — multi-client scaling of disk-backed query execution.
//!
//! The paper's setting is a database buffer shared by concurrent clients;
//! this experiment drives the `ConcurrentDiskRTree` (latch-protected pool,
//! lock-free page decoding) with 1–8 threads of uniform region queries and
//! reports aggregate throughput and the physical read rate. Disk accesses
//! per query must stay at the model's prediction regardless of the client
//! count — residency depends on the reference stream, not on who issues it.
//! The single-shard constructor is used deliberately so the pool replays
//! the paper's sequential LRU decisions; see `concurrent_throughput` for
//! the sharded-pool scaling experiment.

use rtree_bench::{f, flag, synthetic_region, Loader, Table};
use rtree_buffer::LruPolicy;
use rtree_core::{BufferModel, TreeDescription, Workload};
use rtree_pager::{ConcurrentDiskRTree, MemStore};
use rtree_sim::QuerySampler;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let cap = 50;
    let rects = synthetic_region(50_000);
    let tree = Loader::Hs.build(cap, &rects);
    let desc = TreeDescription::from_tree(&tree);
    let workload = Workload::uniform_region(0.05, 0.05);
    let buffer = 200;
    let model = BufferModel::new(&desc, &workload).expected_disk_accesses(buffer);
    let queries_per_thread = if flag("--quick") { 5_000 } else { 40_000 };

    let mut table = Table::new(
        format!(
            "Concurrent scaling: {queries_per_thread} region queries/thread, B={buffer} \
             (synthetic region 50k, HS cap 50)"
        ),
        &["threads", "queries/s", "disk accesses/query", "model"],
    );

    for threads in [1usize, 2, 4, 8] {
        let disk = Arc::new(
            ConcurrentDiskRTree::create(MemStore::new(), &tree, buffer, LruPolicy::new())
                .expect("create"),
        );
        // Warm up single-threaded so the measurement is steady-state.
        let mut warm = QuerySampler::new(&workload, 0xACED);
        for _ in 0..20_000 {
            disk.query(&warm.sample()).expect("warmup query");
        }
        disk.reset_counters();

        let started = Instant::now();
        std::thread::scope(|scope| {
            for t in 0..threads {
                let disk = Arc::clone(&disk);
                let workload = workload.clone();
                scope.spawn(move || {
                    let mut sampler = QuerySampler::new(&workload, 0xBEEF + t as u64);
                    for _ in 0..queries_per_thread {
                        disk.query(&sampler.sample()).expect("query");
                    }
                });
            }
        });
        let elapsed = started.elapsed().as_secs_f64();
        let total_queries = (threads * queries_per_thread) as f64;
        table.row(vec![
            threads.to_string(),
            format!("{:.0}", total_queries / elapsed),
            f(disk.physical_reads() as f64 / total_queries),
            f(model),
        ]);
    }
    table.emit("concurrent_scaling");
    println!("Disk accesses/query should be flat across thread counts and near the model.");
}
