//! **Extension** — the model in higher dimensions. The paper: "R-trees
//! generalize easily to dimensions higher than two... Generalizations to
//! higher dimensions are straightforward." This experiment makes that
//! claim measurable: uniform point queries over STR-packed trees of the
//! same cardinality in 2-D, 3-D and 4-D, model vs LRU simulation, plus the
//! dimensionality trend (higher D → leakier MBR volumes → more expensive
//! queries at every buffer size).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtree_bench::{f, flag, pct, Table};
use rtree_buffer::{BufferPool, LruPolicy, PageId};
use rtree_nd::{buffer_model, BulkLoaderN, PointN, RTreeN, RectN, WorkloadN};

fn scattered<const D: usize>(n: usize, seed: u64) -> Vec<RectN<D>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let mut c = [0.0; D];
            for v in c.iter_mut() {
                *v = rng.gen_range(0.02..0.98);
            }
            RectN::centered(PointN::new(c), [0.012; D])
        })
        .collect()
}

fn simulate<const D: usize>(tree: &RTreeN<D>, buffer: usize, queries: usize) -> f64 {
    let pages = tree.page_numbers();
    let mut pool = BufferPool::new(buffer, LruPolicy::new());
    let mut rng = StdRng::seed_from_u64(0xD1A6 + D as u64);
    let mut misses = 0u64;
    let mut measured = 0usize;
    let warmup = queries / 4;
    for i in 0..queries + warmup {
        let mut c = [0.0; D];
        for v in c.iter_mut() {
            *v = rng.gen_range(0.0..1.0);
        }
        if i == warmup {
            pool.reset_stats();
            misses = 0;
        }
        tree.search_with(
            &RectN::point(PointN::new(c)),
            |id| {
                if pool.access(PageId(pages[id] as u64)).is_miss() && i >= warmup {
                    misses += 1;
                }
            },
            |_| {},
        );
        if i >= warmup {
            measured += 1;
        }
    }
    misses as f64 / measured as f64
}

fn row<const D: usize>(table: &mut Table, n: usize, cap: usize, buffer: usize, queries: usize) {
    let rects = scattered::<D>(n, 1_000 + D as u64);
    let tree = BulkLoaderN::str_pack(cap).load(&rects);
    let model = buffer_model(&tree, &WorkloadN::uniform_point());
    let predicted = model.expected_disk_accesses(buffer);
    let simulated = simulate(&tree, buffer, queries);
    let diff = (predicted - simulated) / simulated.max(1e-9);
    table.row(vec![
        D.to_string(),
        tree.node_count().to_string(),
        f(model.expected_node_accesses()),
        f(simulated),
        f(predicted),
        pct(diff),
    ]);
}

fn main() {
    let n = 20_000;
    let cap = 16;
    let queries = if flag("--quick") { 20_000 } else { 120_000 };
    for buffer in [50usize, 400] {
        let mut table = Table::new(
            format!(
                "N-D generalization: model vs simulation, point queries, \
                 {n} items, cap {cap}, B = {buffer}"
            ),
            &["D", "nodes", "visits", "sim", "model", "diff"],
        );
        row::<2>(&mut table, n, cap, buffer, queries);
        row::<3>(&mut table, n, cap, buffer, queries);
        row::<4>(&mut table, n, cap, buffer, queries);
        table.emit(&format!("nd_generalization_b{buffer}"));
    }
    println!(
        "The same dimension-free buffer model (eq. 5-6) prices every dimension;\n\
         only the access probabilities change, and agreement stays at the 2-D\n\
         level (~2%). At fixed cardinality, node-visit counts are nearly flat\n\
         across D while per-node probabilities grow more skewed, so the buffer\n\
         captures relatively more of the access mass in higher dimensions."
    );
}
