//! **Figure 10** — the effect of pinning the top levels: disk accesses vs
//! data size for HS trees on synthetic point data (node size 25, 4-level
//! trees, Table 2 shapes), buffers of 500 / 1,000 / 2,000 pages, point
//! queries.
//!
//! The paper's finding: pinning 0, 1 or 2 levels is indistinguishable (LRU
//! already keeps those few pages hot); pinning 3 levels helps only once the
//! pinned page count is within roughly a factor of two of the buffer size
//! (417 pinned pages at 250k points: −53% for B = 500; 135 pages at 80k:
//! −4%).

use rtree_bench::{f, pct, synthetic_point, Loader, Table};
use rtree_core::{BufferModel, TreeDescription, Workload};

fn main() {
    let cap = 25;
    let sizes = [40_000usize, 80_000, 120_000, 160_000, 200_000, 250_000];
    let buffers = [500usize, 1_000, 2_000];
    let workload = Workload::uniform_point();

    let models: Vec<(usize, BufferModel)> = sizes
        .iter()
        .map(|&n| {
            let tree = Loader::Hs.build(cap, &synthetic_point(n));
            (
                n,
                BufferModel::new(&TreeDescription::from_tree(&tree), &workload),
            )
        })
        .collect();

    for &b in &buffers {
        let mut table = Table::new(
            format!("Fig 10: disk accesses vs data size, buffer = {b} (HS, cap 25, point queries)"),
            &[
                "points",
                "pin 0",
                "pin 1",
                "pin 2",
                "pin 3",
                "pinned pages(3)",
                "pin-3 gain",
            ],
        );
        for (n, model) in &models {
            let mut ed = Vec::new();
            for pin in 0..=3usize {
                let v = if pin == 0 {
                    model.expected_disk_accesses(b)
                } else {
                    model
                        .expected_disk_accesses_pinned(b, pin)
                        .unwrap_or(f64::NAN)
                };
                ed.push(v);
            }
            let gain = if ed[3].is_nan() || ed[0] == 0.0 {
                "n/a".to_string()
            } else {
                pct((ed[0] - ed[3]) / ed[0])
            };
            table.row(vec![
                n.to_string(),
                f(ed[0]),
                f(ed[1]),
                f(ed[2]),
                f(ed[3]),
                model.pinned_pages(3).to_string(),
                gain,
            ]);
        }
        table.emit(&format!("fig10_buffer{b}"));
    }
}
