//! Runs the complete reproduction suite — every table/figure binary plus
//! the extension experiments — in paper order, as one process. Accepts the
//! same `--csv` / `--quick` flags and forwards them implicitly (the
//! experiments read the process arguments).
//!
//! ```text
//! cargo run --release -p rtree-bench --bin repro_all -- --quick
//! ```

use std::process::Command;
use std::time::Instant;

const EXPERIMENTS: &[&str] = &[
    "table1_validation",
    "table2_nodes_per_level",
    "fig5_cfd_data",
    "fig6_buffer_sensitivity",
    "fig7_tiger_datadriven",
    "fig8_cfd_datadriven",
    "fig9_datasize",
    "fig10_pinning_datasize",
    "fig11_pinning",
    "validate_disk",
    "ablation_policies",
    "ablation_loaders",
    "ablation_splits",
    "update_quality",
    "write_amplification",
    "model_accuracy_sweep",
    "mixed_workloads",
    "concurrent_scaling",
    "nd_generalization",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let exe_dir = std::env::current_exe()
        .expect("current exe path")
        .parent()
        .expect("exe has a directory")
        .to_path_buf();

    let started = Instant::now();
    let mut failures = Vec::new();
    for name in EXPERIMENTS {
        println!("\n######## {name} ########\n");
        let t = Instant::now();
        let direct = exe_dir.join(name);
        // `cargo run --bin repro_all` only builds this binary; fall back to
        // cargo for siblings that were not built yet.
        let status = if direct.exists() {
            Command::new(direct).args(&args).status()
        } else {
            Command::new("cargo")
                .args([
                    "run",
                    "--release",
                    "-q",
                    "-p",
                    "rtree-bench",
                    "--bin",
                    name,
                    "--",
                ])
                .args(&args)
                .status()
        }
        .unwrap_or_else(|e| panic!("failed to spawn {name}: {e}"));
        println!("[{name}: {:.1}s]", t.elapsed().as_secs_f64());
        if !status.success() {
            failures.push(*name);
        }
    }
    println!(
        "\n======== reproduction suite finished in {:.1}s ========",
        started.elapsed().as_secs_f64()
    );
    if failures.is_empty() {
        println!("all {} experiments completed", EXPERIMENTS.len());
    } else {
        println!("FAILED: {failures:?}");
        std::process::exit(1);
    }
}
