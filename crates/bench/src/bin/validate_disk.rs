//! **End-to-end physical validation** — the same workload measured three
//! ways:
//!
//! 1. the analytic buffer model (eq. 6),
//! 2. the trace-driven LRU simulation (§4),
//! 3. actual execution against a page file through the buffer manager
//!    (`rtree-pager`), counting real page reads.
//!
//! All three must agree: that is the claim that "number of disk accesses"
//! as computed by the model is the physical quantity a database would pay.

use rtree_bench::{f, seeds, sim_scale, synthetic_region, Loader, Table};
use rtree_buffer::LruPolicy;
use rtree_core::{BufferModel, TreeDescription, Workload};
use rtree_pager::{DiskRTree, MemStore};
use rtree_sim::{QuerySampler, SimConfig, SimTree, Simulation};

fn main() {
    let cap = 50;
    let rects = synthetic_region(20_000);
    let tree = Loader::Hs.build(cap, &rects);
    let desc = TreeDescription::from_tree(&tree);
    let sim_tree = SimTree::from_tree(&tree);
    let workload = Workload::uniform_point();
    let model = BufferModel::new(&desc, &workload);
    let (batches, qpb) = sim_scale();
    let queries = (batches * qpb / 4).max(10_000);

    let mut table = Table::new(
        "End-to-end: model vs trace simulation vs physical page reads \
         (synthetic region 20k, HS cap 50, point queries)",
        &[
            "buffer",
            "model",
            "trace sim",
            "physical",
            "physical hit ratio",
        ],
    );

    for b in [25usize, 100, 300] {
        // 1. Model.
        let predicted = model.expected_disk_accesses(b);

        // 2. Trace simulation.
        let cfg = SimConfig::new(b).batches(batches, qpb).seed(seeds::SIM);
        let sim = Simulation::new(cfg).run(&sim_tree, &workload);

        // 3. Physical execution: serialize to pages, run real queries.
        let mut disk =
            DiskRTree::create(MemStore::new(), &tree, b, LruPolicy::new()).expect("create");
        let mut sampler = QuerySampler::new(&workload, seeds::SIM ^ 0xD15C);
        // Warm-up, then measure.
        for _ in 0..queries / 4 {
            disk.query(&sampler.sample()).expect("query");
        }
        disk.reset_counters();
        for _ in 0..queries {
            disk.query(&sampler.sample()).expect("query");
        }
        let physical = disk.physical_reads() as f64 / queries as f64;

        table.row(vec![
            b.to_string(),
            f(predicted),
            f(sim.disk_accesses_per_query),
            f(physical),
            f(disk.hit_ratio()),
        ]);
    }
    table.emit("validate_disk");
}
