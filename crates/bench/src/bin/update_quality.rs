//! **Extension** — using the buffer model to judge *update* operations.
//!
//! The paper positions the model as a tool "to evaluate the quality of any
//! R-tree update operation, such as node splitting policies or loading
//! algorithms". This experiment does exactly that for churn: start from a
//! freshly Hilbert-packed tree, repeatedly delete a random batch of items
//! and reinsert them tuple-at-a-time (with the quadratic split), and watch
//! the predicted disk accesses per query degrade as the packed structure
//! erodes — quantified at several buffer sizes, not just as nodes visited.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtree_bench::{f, synthetic_region, Loader, Table};
use rtree_core::{BufferModel, TreeDescription, Workload};

fn main() {
    let cap = 50;
    let rects = synthetic_region(20_000);
    let mut tree = Loader::Hs.build(cap, &rects);
    let mut rng = StdRng::seed_from_u64(0xC4A2);

    let churn_step = tree.len() / 10; // 10% of the data per round
    let workload = Workload::uniform_region(0.05, 0.05);

    let mut table = Table::new(
        "Update quality: Hilbert-packed tree under delete/reinsert churn \
         (synthetic region 20k, cap 50, 0.25% region queries)",
        &["churn rounds", "nodes", "visits", "B=50", "B=200", "B=400"],
    );

    for round in 0..=5 {
        let desc = TreeDescription::from_tree(&tree);
        let model = BufferModel::new(&desc, &workload);
        table.row(vec![
            round.to_string(),
            desc.total_nodes().to_string(),
            f(model.expected_node_accesses()),
            f(model.expected_disk_accesses(50)),
            f(model.expected_disk_accesses(200)),
            f(model.expected_disk_accesses(400)),
        ]);
        if round == 5 {
            break;
        }
        // One churn round: delete a random 10% and reinsert the same items.
        for _ in 0..churn_step {
            let id = rng.gen_range(0..rects.len()) as u64;
            let r = rects[id as usize];
            if tree.delete(&r, id) {
                tree.insert(r, id);
            }
        }
        tree.validate().expect("churned tree stays valid");
    }
    table.emit("update_quality");
    println!(
        "Packed structure erodes under churn; the buffer model prices that erosion in disk\n\
         accesses — the \"evaluate any update operation\" use case the paper proposes."
    );
}
