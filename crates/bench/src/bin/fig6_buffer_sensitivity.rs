//! **Figure 6** — sensitivity to buffer size on the TIGER-like data with
//! node capacity 100 (the paper's 532 leaf pages + 6 level-1 pages + root):
//! expected disk accesses per query vs buffer size for TAT, NX and HS,
//! for point queries (left plot) and 1% region queries (right plot).
//!
//! The headline qualitative result: with a small buffer TAT can beat NX,
//! but the curves **cross** as the buffer grows — ignoring buffering gets
//! the loader ranking wrong.

use rtree_bench::{f, tiger, Loader, Table};
use rtree_core::{BufferModel, TreeDescription, Workload};

fn main() {
    let cap = 100;
    let buffers = [2usize, 5, 10, 25, 50, 75, 100, 150, 200, 250, 300, 400, 500];
    let rects = tiger();

    let trees: Vec<(Loader, TreeDescription)> = Loader::PAPER
        .iter()
        .map(|&l| (l, TreeDescription::from_tree(&l.build(cap, &rects))))
        .collect();

    for (slug, title, workload) in [
        (
            "fig6_point",
            "Fig 6 (left): disk accesses vs buffer size, point queries (TIGER-like, cap 100)",
            Workload::uniform_point(),
        ),
        (
            "fig6_region",
            "Fig 6 (right): disk accesses vs buffer size, 1% region queries (TIGER-like, cap 100)",
            Workload::uniform_region(0.1, 0.1),
        ),
    ] {
        let models: Vec<(Loader, BufferModel)> = trees
            .iter()
            .map(|(l, d)| (*l, BufferModel::new(d, &workload)))
            .collect();

        let mut table = Table::new(title, &["buffer", "TAT", "NX", "HS"]);
        let mut crossover: Option<usize> = None;
        let mut prev_sign: Option<bool> = None;
        for &b in &buffers {
            let ed: Vec<f64> = models
                .iter()
                .map(|(_, m)| m.expected_disk_accesses(b))
                .collect();
            let sign = ed[0] < ed[1]; // TAT better than NX?
            if let Some(p) = prev_sign {
                if p != sign && crossover.is_none() {
                    crossover = Some(b);
                }
            }
            prev_sign = Some(sign);
            table.row(vec![b.to_string(), f(ed[0]), f(ed[1]), f(ed[2])]);
        }
        table.emit(slug);
        match crossover {
            Some(b) => println!("TAT/NX ordering flips by buffer size {b} — the paper's qualitative-change result.\n"),
            None => println!("no TAT/NX crossover in this sweep.\n"),
        }
    }

    // Context the paper quotes: page counts per level at cap 100.
    let (_, hs) = &trees[2];
    println!(
        "HS tree pages per level (root first): {:?} (paper: 1 root, 6 level-1, 532 leaves)",
        hs.nodes_per_level()
    );
}
