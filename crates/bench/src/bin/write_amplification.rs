//! **Extension** — write amplification of the durable write path.
//!
//! The paper prices *reads* under a buffer; this experiment prices
//! *writes*. Every insert runs Guttman's algorithm through the WAL-attached
//! write-back buffer pool, and the shared `IoStats` counts the physical
//! page writes that actually reach the store (dirty evictions plus
//! periodic checkpoint flushes). A larger buffer absorbs repeated updates
//! to the same hot pages between checkpoints, so physical writes per
//! insert — the write amplification, in 4 KiB pages — falls with buffer
//! size exactly as read cost does in Fig. 6.

use rtree_bench::{f, synthetic_region, Table};
use rtree_buffer::LruPolicy;
use rtree_obs::Histogram;
use rtree_pager::{DiskRTree, MemStore};
use rtree_wal::{LogBackend, MemLog, Wal};
use std::time::Instant;

/// Checkpoint interval in operations: bounds the log and models a steady
/// write-back cadence.
const CHECKPOINT_EVERY: usize = 2_000;

fn main() {
    let n = if rtree_bench::flag("--quick") {
        4_000
    } else {
        20_000
    };
    let rects = synthetic_region(n);
    let cap = 50;
    let min = cap * 2 / 5;

    let mut table = Table::new(
        format!(
            "Write amplification: physical page writes per insert \
             (synthetic region {n}, cap {cap}, checkpoint every {CHECKPOINT_EVERY} ops, LRU)"
        ),
        &[
            "buffer",
            "writes/insert",
            "reads/insert",
            "WAL KiB/insert",
            "nodes",
            "p50 us",
            "p99 us",
        ],
    );

    for buffer in [10, 50, 100, 200, 400] {
        let log = MemLog::new();
        let mut disk = DiskRTree::create_empty(MemStore::new(), cap, min, buffer, LruPolicy::new())
            .expect("create");
        disk.attach_wal(Wal::open(log.clone()).expect("wal"));

        let mut wal_bytes = 0u64;
        let mut latency = Histogram::new();
        for (id, r) in rects.iter().enumerate() {
            let t0 = Instant::now();
            disk.insert(*r, id as u64).expect("insert");
            latency.record(t0.elapsed().as_nanos() as u64);
            if (id + 1) % CHECKPOINT_EVERY == 0 {
                wal_bytes += log.len();
                disk.checkpoint().expect("checkpoint");
            }
        }
        let stats = disk.io_stats();
        wal_bytes += log.len();
        let nodes = disk.meta().nodes;

        table.row(vec![
            buffer.to_string(),
            f(stats.writes as f64 / n as f64),
            f(stats.reads as f64 / n as f64),
            f(wal_bytes as f64 / 1024.0 / n as f64),
            nodes.to_string(),
            format!("{:.1}", latency.quantile(0.50) as f64 / 1_000.0),
            format!("{:.1}", latency.quantile(0.99) as f64 / 1_000.0),
        ]);
    }

    table.emit("write_amplification");
    println!(
        "Buffering amortizes writes exactly as it does reads: with more frames, a node\n\
         page absorbs many inserts before a checkpoint or eviction writes it once."
    );
}
