//! **Extension** — where is the model accurate? A sweep over data skew and
//! relative buffer size, validating the model against simulation at each
//! grid point. The paper validates at a handful of configurations; this
//! maps the error surface: agreement is excellent once the buffer exceeds
//! the per-query footprint and degrades below it, independent of skew.

use rtree_bench::{f, pct, seeds, sim_scale, Loader, Table};
use rtree_core::{BufferModel, TreeDescription, Workload};
use rtree_datagen::ClusteredPoints;
use rtree_sim::{SimConfig, SimTree, Simulation};

fn main() {
    let cap = 25;
    let n = 20_000;
    let (batches, qpb) = sim_scale();
    let sigmas = [0.01f64, 0.05, 0.2];
    let buffers = [5usize, 20, 80, 320];
    let workload = Workload::uniform_point();

    let mut table = Table::new(
        "Model accuracy vs data skew and buffer size \
         (clustered points 20k, 6 clusters, HS cap 25, point queries)",
        &["sigma", "buffer", "visits/query", "sim", "model", "diff"],
    );

    for &sigma in &sigmas {
        let rects = ClusteredPoints::new(n, 6, sigma).generate(seeds::POINT ^ 0xC1);
        let tree = Loader::Hs.build(cap, &rects);
        let desc = TreeDescription::from_tree(&tree);
        let sim_tree = SimTree::from_tree(&tree);
        let model = BufferModel::new(&desc, &workload);
        for &b in &buffers {
            let cfg = SimConfig::new(b).batches(batches, qpb).seed(seeds::SIM);
            let sim = Simulation::new(cfg).run(&sim_tree, &workload);
            let predicted = model.expected_disk_accesses(b);
            let diff =
                (predicted - sim.disk_accesses_per_query) / sim.disk_accesses_per_query.max(1e-9);
            table.row(vec![
                format!("{sigma}"),
                b.to_string(),
                f(sim.nodes_accessed_per_query),
                f(sim.disk_accesses_per_query),
                f(predicted),
                pct(diff),
            ]);
        }
    }
    table.emit("model_accuracy_sweep");
    println!(
        "Expect small diffs where B clearly exceeds visits/query, growing underestimates\n\
         as B sinks toward the per-query footprint (the warm-up approximation's regime edge)."
    );
}
