//! **Figure 8** — uniform vs data-driven point queries on the CFD-like
//! data. The data is extremely skewed: under the uniform model a handful of
//! huge, sparse MBRs cover the empty far field, so a modest buffer drives
//! disk accesses toward zero and the improvement ratio explodes (the paper
//! notes 0.06 accesses at B = 100 and ratios beyond 20). Data-driven
//! queries hammer the dense wing region and improve far less.

use rtree_bench::{cfd, f, Loader, Table};
use rtree_core::{BufferModel, TreeDescription, Workload};
use rtree_datagen::centers;

fn main() {
    let cap = 100;
    let rects = cfd();
    let tree = Loader::Hs.build(cap, &rects);
    let desc = TreeDescription::from_tree(&tree);

    let uniform = BufferModel::new(&desc, &Workload::uniform_point());
    let driven = BufferModel::new(&desc, &Workload::data_driven_point(centers(&rects)));

    let buffers = [10usize, 25, 50, 75, 100, 150, 200, 300, 400, 500];

    let mut left = Table::new(
        "Fig 8 (left): disk accesses vs buffer size (CFD-like, HS, point queries)",
        &["buffer", "uniform", "data-driven"],
    );
    let mut right = Table::new(
        "Fig 8 (right): improvement ratio ED(B=10)/ED(B=N)",
        &["buffer", "uniform", "data-driven"],
    );

    let base_u = uniform.expected_disk_accesses(10);
    let base_d = driven.expected_disk_accesses(10);
    for &b in &buffers {
        let eu = uniform.expected_disk_accesses(b);
        let ed = driven.expected_disk_accesses(b);
        left.row(vec![b.to_string(), f(eu), f(ed)]);
        right.row(vec![
            b.to_string(),
            f(if eu > 0.0 { base_u / eu } else { f64::INFINITY }),
            f(if ed > 0.0 { base_d / ed } else { f64::INFINITY }),
        ]);
    }
    left.emit("fig8_left_disk_accesses");
    right.emit("fig8_right_improvement");

    println!(
        "uniform disk accesses at B=100: {} (paper: 0.06)",
        f(uniform.expected_disk_accesses(100))
    );
}
