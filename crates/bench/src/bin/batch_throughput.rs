//! **Extension** — the batched-execution hit-ratio curve.
//!
//! The paper's experiments cost queries one at a time; inter-query buffer
//! locality is whatever the replacement policy happens to retain. The
//! batched executor makes that locality deliberate: one batch traverses
//! level-synchronously, deduplicates page requests across its queries,
//! visits each level in `PageId` order and keeps a readahead window of
//! upcoming frontier pages resident. This experiment sweeps the batch size
//! 1 → 1024 over a clustered workload — the same fixed query stream against
//! an equally cold tree at every size — so the physical-reads-per-query
//! curve isolates what batching alone buys. Expect a monotone drop: at
//! batch 1 the executor degenerates to sequential traversal; by batch 256 a
//! page shared by k queries costs one read instead of up to k.
//!
//! `--json` / `--csv` write `results/batch_throughput.*`; `--quick` shrinks
//! the workload for smoke runs.

use rtree_bench::{f, flag, Loader, Table};
use rtree_buffer::LruPolicy;
use rtree_core::Workload;
use rtree_datagen::ClusteredPoints;
use rtree_exec::{BatchConfig, BatchExecutor};
use rtree_geom::Rect;
use rtree_pager::{DiskRTree, MemStore};
use rtree_sim::QuerySampler;
use std::time::Instant;

fn main() {
    let cap = 50;
    let (n_rects, n_queries) = if flag("--quick") {
        (5_000, 512)
    } else {
        (50_000, 4_096)
    };
    let rects = ClusteredPoints::new(n_rects, 32, 0.02).generate(0xBA7C);
    let tree = Loader::Hs.build(cap, &rects);
    let nodes = tree.node_count();
    let buffer = (nodes / 50).max(16); // starved: the curve, not the cache
    let window = 8;

    // One fixed clustered query stream reused at every batch size.
    let workload = Workload::uniform_region(0.04, 0.04);
    let mut sampler = QuerySampler::new(&workload, 0x5EED);
    let stream: Vec<Rect> = (0..n_queries).map(|_| sampler.sample()).collect();

    let mut table = Table::new(
        format!(
            "Batched execution: {n_queries} region queries over clustered {n_rects} \
             (HS cap {cap}, {nodes} nodes, buffer {buffer}, window {window}, cold per size)"
        ),
        &[
            "batch",
            "reads/query",
            "hit ratio",
            "dedup saved",
            "prefetched",
            "queries/s",
        ],
    );

    for size in [1usize, 4, 16, 64, 256, 1024] {
        let mut disk = DiskRTree::create(MemStore::new(), &tree, buffer, LruPolicy::new())
            .expect("create tree");
        let exec = BatchExecutor::with_config(BatchConfig {
            prefetch_window: window,
        });
        let (mut work, mut requests, mut prefetched) = (0u64, 0u64, 0u64);
        let started = Instant::now();
        for chunk in stream.chunks(size) {
            let out = exec.execute(&mut disk, chunk).expect("batch");
            work += out.stats.work_items;
            requests += out.stats.page_requests;
            prefetched += out.stats.prefetched;
        }
        let elapsed = started.elapsed().as_secs_f64();
        table.row(vec![
            size.to_string(),
            f(disk.physical_reads() as f64 / n_queries as f64),
            f(disk.buffer_stats().hit_ratio()),
            f(1.0 - work as f64 / requests.max(1) as f64),
            prefetched.to_string(),
            format!("{:.0}", n_queries as f64 / elapsed),
        ]);
    }
    table.emit("batch_throughput");
    println!(
        "Every row answers the identical query stream from a cold tree; only the batch \
         size changes. reads/query falling with batch size is dedup + the shared \
         frontier turning inter-query locality into single fetches."
    );
}
