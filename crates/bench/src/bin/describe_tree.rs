//! **Tooling** — dump the per-level MBR description of a loaded tree in the
//! interchange text format (`level x0 y0 x1 y1`, level 0 = root).
//!
//! This is the paper's hybrid workflow made concrete: build trees here,
//! run the model (or an external tool) on the dumps.
//!
//! ```text
//! cargo run --release -p rtree-bench --bin describe_tree -- tiger 100 HS
//! ```
//! Arguments: `<dataset> <node-capacity> <loader>` with
//! dataset ∈ {tiger, cfd, region:<N>, point:<N>} and
//! loader ∈ {TAT, NX, HS, MORTON, STR}. Output goes to
//! `results/desc_<dataset>_<loader>_<cap>.txt`.

use rtree_bench::{cfd, synthetic_point, synthetic_region, tiger, Loader};
use rtree_core::TreeDescription;
use std::path::Path;

fn usage() -> ! {
    eprintln!(
        "usage: describe_tree <tiger|cfd|region:N|point:N> <capacity> <TAT|NX|HS|MORTON|STR>"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| !a.starts_with("--"))
        .collect();
    if args.len() != 3 {
        usage();
    }
    let rects = match args[0].as_str() {
        "tiger" => tiger(),
        "cfd" => cfd(),
        other => {
            let Some((kind, n)) = other.split_once(':') else {
                usage()
            };
            let n: usize = n.parse().unwrap_or_else(|_| usage());
            match kind {
                "region" => synthetic_region(n),
                "point" => synthetic_point(n),
                _ => usage(),
            }
        }
    };
    let cap: usize = args[1].parse().unwrap_or_else(|_| usage());
    let loader = match args[2].to_uppercase().as_str() {
        "TAT" => Loader::Tat,
        "NX" => Loader::Nx,
        "HS" => Loader::Hs,
        "MORTON" => Loader::Morton,
        "STR" => Loader::Str,
        _ => usage(),
    };

    let tree = loader.build(cap, &rects);
    let desc = TreeDescription::from_tree(&tree);
    let dir = Path::new("results");
    std::fs::create_dir_all(dir).expect("create results dir");
    let name = format!(
        "desc_{}_{}_{cap}.txt",
        args[0].replace(':', ""),
        loader.name()
    );
    let path = dir.join(name);
    std::fs::write(&path, desc.to_text()).expect("write description");
    println!(
        "{} items -> {} nodes over {} levels {:?}; wrote {}",
        tree.len(),
        desc.total_nodes(),
        desc.height(),
        desc.nodes_per_level(),
        path.display()
    );
}
