//! **Figure 11** — when does pinning pay off?
//!
//! Left: disk accesses vs buffer size on the TIGER-like data (HS, 25 keys
//! per node, point queries) for 0–3 pinned levels. Pinning ≤2 levels
//! changes nothing; pinning 3 helps only in a window of buffer sizes, and
//! becomes infeasible once the buffer is smaller than the top three levels.
//!
//! Right: percent improvement of pinning vs region query side length `QX`
//! (synthetic point data, 250,000 points, B = 500). Bigger queries fetch
//! many leaves, drowning the benefit of pinned internal levels.

use rtree_bench::{f, pct, synthetic_point, tiger, Loader, Table};
use rtree_core::{BufferModel, TreeDescription, Workload};

fn main() {
    left_panel();
    right_panel();
}

fn left_panel() {
    let cap = 25;
    let rects = tiger();
    let tree = Loader::Hs.build(cap, &rects);
    let desc = TreeDescription::from_tree(&tree);
    let model = BufferModel::new(&desc, &Workload::uniform_point());
    println!(
        "TIGER-like HS tree at cap 25, pages per level: {:?}\n",
        desc.nodes_per_level()
    );

    let buffers = [25usize, 50, 75, 100, 150, 200, 300, 500, 1_000, 2_000];
    let mut table = Table::new(
        "Fig 11 (left): disk accesses vs buffer size and pinned levels (TIGER-like, HS, cap 25)",
        &["buffer", "pin 0", "pin 1", "pin 2", "pin 3", "max pinnable"],
    );
    for &b in &buffers {
        let mut cells = vec![b.to_string()];
        cells.push(f(model.expected_disk_accesses(b)));
        for pin in 1..=3usize {
            match model.expected_disk_accesses_pinned(b, pin) {
                Ok(v) => cells.push(f(v)),
                Err(_) => cells.push("infeasible".to_string()),
            }
        }
        cells.push(model.max_pinnable_levels(b).to_string());
        table.row(cells);
    }
    table.emit("fig11_left");
}

fn right_panel() {
    let cap = 25;
    let buffer = 500;
    let rects = synthetic_point(250_000);
    let tree = Loader::Hs.build(cap, &rects);
    let desc = TreeDescription::from_tree(&tree);

    let mut table = Table::new(
        "Fig 11 (right): % improvement from pinning vs query size QX \
         (synthetic point 250k, HS cap 25, B=500)",
        &["QX", "pin 2 gain", "pin 3 gain"],
    );
    for step in 0..=6 {
        let qx = 0.025 * step as f64;
        let workload = if qx == 0.0 {
            Workload::uniform_point()
        } else {
            Workload::uniform_region(qx, qx)
        };
        let model = BufferModel::new(&desc, &workload);
        let base = model.expected_disk_accesses(buffer);
        let gain = |pin: usize| -> String {
            match model.expected_disk_accesses_pinned(buffer, pin) {
                Ok(v) if base > 0.0 => pct((base - v) / base),
                _ => "n/a".to_string(),
            }
        };
        table.row(vec![format!("{qx:.3}"), gain(2), gain(3)]);
    }
    table.emit("fig11_right");
}
