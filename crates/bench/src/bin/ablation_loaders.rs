//! **Ablation** — the full loader roster. The paper studies TAT, NX and
//! HS; this experiment adds the Morton (Z-order) and STR packings to the
//! same buffered comparison, reporting the geometry aggregates the cost
//! model depends on (total MBR area and perimeter) alongside expected disk
//! accesses at several buffer sizes.

use rtree_bench::{f, tiger, Loader, Table};
use rtree_core::{BufferModel, TreeDescription, Workload};

fn main() {
    let cap = 100;
    let rects = tiger();

    for (slug, title, workload) in [
        (
            "ablation_loaders_point",
            "Ablation: all loaders, point queries (TIGER-like, cap 100)",
            Workload::uniform_point(),
        ),
        (
            "ablation_loaders_region",
            "Ablation: all loaders, 1% region queries (TIGER-like, cap 100)",
            Workload::uniform_region(0.1, 0.1),
        ),
    ] {
        let mut table = Table::new(
            title,
            &[
                "loader", "nodes", "area A", "Lx+Ly", "visits", "B=10", "B=50", "B=200",
            ],
        );
        for loader in Loader::ALL {
            let tree = loader.build(cap, &rects);
            let desc = TreeDescription::from_tree(&tree);
            let (a, lx, ly) = desc.aggregates();
            let model = BufferModel::new(&desc, &workload);
            table.row(vec![
                loader.name().to_string(),
                desc.total_nodes().to_string(),
                f(a),
                f(lx + ly),
                f(model.expected_node_accesses()),
                f(model.expected_disk_accesses(10)),
                f(model.expected_disk_accesses(50)),
                f(model.expected_disk_accesses(200)),
            ]);
        }
        table.emit(slug);
    }
}
