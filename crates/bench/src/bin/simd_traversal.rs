//! **Extension** — the SIMD-traversal speedup gate.
//!
//! The paper holds CPU cost constant and varies buffering; this experiment
//! does the inverse. A buffer large enough to hold the whole tree removes
//! every disk access, so what remains of query latency is pure traversal
//! CPU: page decode plus rectangle filtering. The seed path decodes
//! array-of-structs pages and tests one `Rect` at a time
//! ([`DiskRTree::query_scalar`]); the v3 path decodes structure-of-arrays
//! pages — the four coordinate planes arrive contiguously, no per-entry
//! gather — and filters with the dispatched SIMD kernel
//! ([`DiskRTree::query`]). Both answer the identical clustered query
//! stream from a fully warmed buffer; the speedup column is the whole
//! claim.
//!
//! The run **fails** (exit 1) if the dispatched kernel's speedup over the
//! seed path is below 2.0× — relaxed to 1.2× under `--quick`, which shared
//! CI runners can hold. Additional rows pin each available kernel in turn
//! so regressions are attributable.
//!
//! `--json` / `--csv` write `results/simd_traversal.*`; `--quick` shrinks
//! the workload for smoke runs.

use rtree_bench::{f, flag, Loader, Table};
use rtree_buffer::LruPolicy;
use rtree_core::Workload;
use rtree_datagen::ClusteredPoints;
use rtree_geom::{active_kernel, available_kernels, set_kernel, Rect};
use rtree_pager::{DiskRTree, MemStore, PageLayout};
use rtree_sim::QuerySampler;
use std::time::Instant;

fn main() {
    let cap = 50;
    let (n_rects, n_queries, repeats, gate) = if flag("--quick") {
        (8_000, 512, 2, 1.2)
    } else {
        (60_000, 4_096, 3, 2.0)
    };
    let rects = ClusteredPoints::new(n_rects, 32, 0.02).generate(0x51D7);
    let tree = Loader::Hs.build(cap, &rects);
    let nodes = tree.node_count();
    // Buffer-resident: every page fits, so after one warm pass no query
    // performs physical I/O and the timing isolates traversal CPU.
    let buffer = nodes + 8;

    let workload = Workload::uniform_region(0.04, 0.04);
    let mut sampler = QuerySampler::new(&workload, 0x5EED);
    let stream: Vec<Rect> = (0..n_queries).map(|_| sampler.sample()).collect();

    let mut v2 = DiskRTree::create_with_layout(
        MemStore::new(),
        &tree,
        buffer,
        LruPolicy::new(),
        PageLayout::Aos,
    )
    .expect("create v2 tree");
    let mut v3 = DiskRTree::create(MemStore::new(), &tree, buffer, LruPolicy::new())
        .expect("create v3 tree");

    // Warm both buffers and cross-check answers while doing it.
    let mut hits = 0u64;
    for q in &stream {
        let a = v2.query_scalar(q).expect("seed query");
        let b = v3.query(q).expect("simd query");
        assert_eq!(a, b, "seed and SIMD paths disagree on {q:?}");
        hits += a.len() as u64;
    }
    let warm_reads = v2.physical_reads() + v3.physical_reads();

    let time = |run: &mut dyn FnMut()| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..repeats {
            let started = Instant::now();
            run();
            best = best.min(started.elapsed().as_secs_f64());
        }
        best
    };

    let scalar_secs = time(&mut || {
        for q in &stream {
            std::hint::black_box(v2.query_scalar(q).expect("seed query"));
        }
    });
    assert_eq!(
        v2.physical_reads() + v3.physical_reads(),
        warm_reads,
        "timed passes must be buffer-resident"
    );

    let dispatched = active_kernel();
    let mut table = Table::new(
        format!(
            "SIMD traversal: {n_queries} region queries over clustered {n_rects} \
             (HS cap {cap}, {nodes} nodes buffer-resident, {hits} total hits, \
             best of {repeats})"
        ),
        &["path", "kernel", "queries/s", "speedup", "gate"],
    );
    table.row(vec![
        "seed v2 AoS".into(),
        "scalar".into(),
        format!("{:.0}", n_queries as f64 / scalar_secs),
        f(1.0),
        "-".into(),
    ]);

    let mut dispatched_speedup = 0.0;
    for kernel in available_kernels() {
        if !kernel.is_available() {
            continue;
        }
        set_kernel(kernel).expect("kernel availability was just checked");
        let secs = time(&mut || {
            for q in &stream {
                std::hint::black_box(v3.query(q).expect("simd query"));
            }
        });
        let speedup = scalar_secs / secs;
        let gated = kernel == dispatched;
        if gated {
            dispatched_speedup = speedup;
        }
        table.row(vec![
            "v3 SoA".into(),
            if gated {
                format!("{} *", kernel.name())
            } else {
                kernel.name().into()
            },
            format!("{:.0}", n_queries as f64 / secs),
            f(speedup),
            if gated {
                format!(">= {gate}")
            } else {
                "-".into()
            },
        ]);
    }
    set_kernel(dispatched).expect("restoring the dispatched kernel");

    table.emit("simd_traversal");
    println!(
        "Both paths answer the identical stream from a fully resident buffer; \
         the speedup is decode (no gather) plus the dispatched filter kernel \
         (*). KernelKind::{dispatched:?} was auto-selected for this host."
    );
    if dispatched_speedup < gate {
        eprintln!(
            "GATE FAILED: dispatched kernel speedup {dispatched_speedup:.2}x \
             is below the required {gate}x"
        );
        std::process::exit(1);
    }
    println!("gate passed: {dispatched_speedup:.2}x >= {gate}x");
}
