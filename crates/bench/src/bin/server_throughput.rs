//! **Extension** — what micro-batching buys a network query server.
//!
//! PR 5 showed the batched executor turning inter-query page locality into
//! single fetches when a client hands it whole batches. A network server
//! does not get whole batches — it gets concurrent clients. This experiment
//! measures whether the micro-batching scheduler can harvest that
//! concurrency: the same closed-loop client fleet drives a cold clustered
//! tree behind the framed-TCP server at several batch windows, and the
//! demand-reads-per-query and latency quantiles land in the same table.
//!
//! Window 1 is the baseline: every query is its own batch, the server
//! degenerates to one-at-a-time serving. Wider windows let the scheduler
//! close batches on the count-or-deadline rule, so queries that arrived
//! together traverse together and share page fetches. Expect demand
//! reads/query to drop from window 1 to window ≥ 64 — that drop is the
//! serving-side rendition of the executor's dedup curve — at the cost of
//! up to one batch deadline of added latency, which the p50/p99/p999
//! columns price.
//!
//! The run fails (exit 1) if a window ≥ 64 does not beat window 1 on
//! demand reads/query: that inversion would mean the scheduler shreds
//! locality instead of harvesting it.
//!
//! `--json` / `--csv` write `results/server_throughput.*`; `--quick`
//! shrinks the fleet for smoke runs.

use rtree_bench::{f, flag, Loader, Table};
use rtree_buffer::LruPolicy;
use rtree_core::Workload;
use rtree_datagen::ClusteredPoints;
use rtree_pager::{DiskRTree, MemStore};
use rtree_server::{loadgen, serve, BatchPolicy, LoadConfig, SequentialEngine, ServerConfig};
use std::time::Duration;

fn main() {
    let cap = 50;
    let quick = flag("--quick");
    let (n_rects, n_queries, windows): (usize, usize, &[usize]) = if quick {
        (8_000, 2_000, &[1, 64])
    } else {
        (50_000, 20_000, &[1, 8, 64, 256])
    };
    let connections = 16; // ≥ 8 concurrent clients: the batching fuel
    let rects = ClusteredPoints::new(n_rects, 32, 0.02).generate(0xBA7C);
    let tree = Loader::Hs.build(cap, &rects);
    let nodes = tree.node_count();
    let buffer = (nodes / 50).max(16); // starved: the curve, not the cache
    let prefetch_window = 8;

    let mut table = Table::new(
        format!(
            "Server micro-batching: {n_queries} region queries from {connections} \
             closed-loop connections over clustered {n_rects} (HS cap {cap}, {nodes} \
             nodes, buffer {buffer}, cold per window)"
        ),
        &[
            "window",
            "mean batch",
            "queries/s",
            "demand r/q",
            "prefetch r/q",
            "physical r/q",
            "p50 ms",
            "p99 ms",
            "p999 ms",
        ],
    );

    let mut demand = Vec::new();
    for &window in windows {
        // A fresh tree per window: every row starts cold, so the only
        // difference between rows is how the scheduler groups arrivals.
        let disk = DiskRTree::create(MemStore::new(), &tree, buffer, LruPolicy::new())
            .expect("create tree");
        let handle = serve(
            SequentialEngine::new(disk, prefetch_window),
            "127.0.0.1:0",
            ServerConfig {
                batch: BatchPolicy {
                    max_batch: window,
                    max_wait: Duration::from_micros(700),
                    ..BatchPolicy::default()
                },
                read_timeout: Duration::from_millis(20),
            },
        )
        .expect("bind ephemeral port");

        // Same seed every row: each window answers the identical stream.
        let report = loadgen::run(
            handle.addr(),
            &LoadConfig {
                connections,
                queries: n_queries,
                target_qps: 0.0,
                workload: Workload::uniform_region(0.04, 0.04),
                count_fraction: 0.0,
                seed: 0x5EED,
                shutdown_after: false,
            },
        )
        .expect("load run");
        let stats = handle.shutdown();
        assert_eq!(report.ok as usize, n_queries, "closed loop completes all");

        let per_query = |n: u64| n as f64 / stats.queries.max(1) as f64;
        demand.push(report.demand_reads_per_query());
        table.row(vec![
            window.to_string(),
            format!("{:.1}", stats.queries as f64 / stats.batches.max(1) as f64),
            format!("{:.0}", report.achieved_qps()),
            f(report.demand_reads_per_query()),
            f(per_query(stats.prefetch_reads)),
            f(per_query(stats.physical_reads)),
            format!("{:.3}", report.latency_ms(0.50)),
            format!("{:.3}", report.latency_ms(0.99)),
            format!("{:.3}", report.latency_ms(0.999)),
        ]);
    }
    table.emit("server_throughput");
    println!(
        "Every row answers the identical query stream from a cold tree; only the batch \
         window changes. demand r/q falling with the window is the scheduler harvesting \
         client concurrency into executor batches; the latency columns price the wait."
    );

    // The acceptance gate: a window ≥ 64 must strictly beat one-at-a-time
    // serving on demand reads per query.
    let baseline = demand[0];
    for (&window, &d) in windows.iter().zip(&demand).skip(1) {
        if window >= 64 && d >= baseline {
            eprintln!(
                "FAIL: window {window} demand r/q {d:.4} not below window 1 baseline \
                 {baseline:.4}"
            );
            std::process::exit(1);
        }
    }
}
