//! **Extension** — what micro-batching buys a network query server.
//!
//! PR 5 showed the batched executor turning inter-query page locality into
//! single fetches when a client hands it whole batches. A network server
//! does not get whole batches — it gets concurrent clients. This experiment
//! measures whether the micro-batching scheduler can harvest that
//! concurrency: the same closed-loop client fleet drives a cold clustered
//! tree behind the framed-TCP server at several batch windows, and the
//! demand-reads-per-query and latency quantiles land in the same table.
//!
//! Window 1 is the baseline: every query is its own batch, the server
//! degenerates to one-at-a-time serving. Wider windows let the scheduler
//! close batches on the count-or-deadline rule, so queries that arrived
//! together traverse together and share page fetches. Expect demand
//! reads/query to drop from window 1 to window ≥ 64 — that drop is the
//! serving-side rendition of the executor's dedup curve — at the cost of
//! up to one batch deadline of added latency, which the p50/p99/p999
//! columns price.
//!
//! The run fails (exit 1) if a window ≥ 64 does not beat window 1 on
//! demand reads/query: that inversion would mean the scheduler shreds
//! locality instead of harvesting it.
//!
//! The second table prices the *write* side of the same harvesting
//! argument: 8 closed-loop writer connections drive inserts through the
//! latch-crabbing tree against a WAL whose sync costs a realistic
//! ~200 µs (an in-memory log with a sleeping barrier — the fsync cost
//! without the filesystem noise). With group commit the concurrent
//! writers' commits coalesce behind one leader's sync; with per-op
//! commit every insert pays its own. The run fails (exit 1) unless group
//! commit cuts fsyncs/insert by at least 4x — the ISSUE's acceptance
//! bar for the write path.
//!
//! `--json` / `--csv` write `results/server_throughput.*`; `--quick`
//! shrinks the fleet for smoke runs.

use rtree_bench::{f, flag, Loader, Table};
use rtree_buffer::LruPolicy;
use rtree_core::Workload;
use rtree_datagen::ClusteredPoints;
use rtree_pager::{ConcurrentDiskRTree, DiskRTree, MemStore, SharedMemStore};
use rtree_server::{
    loadgen, serve, BatchPolicy, LoadConfig, SequentialEngine, ServerConfig, WriterEngine,
};
use rtree_wal::{GroupWal, LogBackend, MemLog};
use std::io;
use std::time::Duration;

/// An in-memory log whose durability barrier takes `delay` of wall time:
/// the cost model of a real fsync (hundreds of microseconds) without disk
/// noise, so the fsync-amortization ratio is the signal being measured.
struct SlowLog {
    inner: MemLog,
    delay: Duration,
}

impl LogBackend for SlowLog {
    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.inner.append(bytes)
    }

    fn sync(&mut self) -> io::Result<()> {
        std::thread::sleep(self.delay);
        self.inner.sync()
    }

    fn read_all(&self) -> io::Result<Vec<u8>> {
        self.inner.read_all()
    }

    fn truncate(&mut self) -> io::Result<()> {
        self.inner.truncate()
    }

    fn len(&self) -> u64 {
        self.inner.len()
    }
}

fn main() {
    let cap = 50;
    let quick = flag("--quick");
    let (n_rects, n_queries, windows): (usize, usize, &[usize]) = if quick {
        (8_000, 2_000, &[1, 64])
    } else {
        (50_000, 20_000, &[1, 8, 64, 256])
    };
    let connections = 16; // ≥ 8 concurrent clients: the batching fuel
    let rects = ClusteredPoints::new(n_rects, 32, 0.02).generate(0xBA7C);
    let tree = Loader::Hs.build(cap, &rects);
    let nodes = tree.node_count();
    let buffer = (nodes / 50).max(16); // starved: the curve, not the cache
    let prefetch_window = 8;

    let mut table = Table::new(
        format!(
            "Server micro-batching: {n_queries} region queries from {connections} \
             closed-loop connections over clustered {n_rects} (HS cap {cap}, {nodes} \
             nodes, buffer {buffer}, cold per window)"
        ),
        &[
            "window",
            "mean batch",
            "queries/s",
            "demand r/q",
            "prefetch r/q",
            "physical r/q",
            "p50 ms",
            "p99 ms",
            "p999 ms",
        ],
    );

    let mut demand = Vec::new();
    for &window in windows {
        // A fresh tree per window: every row starts cold, so the only
        // difference between rows is how the scheduler groups arrivals.
        let disk = DiskRTree::create(MemStore::new(), &tree, buffer, LruPolicy::new())
            .expect("create tree");
        let handle = serve(
            SequentialEngine::new(disk, prefetch_window),
            "127.0.0.1:0",
            ServerConfig {
                batch: BatchPolicy {
                    max_batch: window,
                    max_wait: Duration::from_micros(700),
                    ..BatchPolicy::default()
                },
                read_timeout: Duration::from_millis(20),
            },
        )
        .expect("bind ephemeral port");

        // Same seed every row: each window answers the identical stream.
        let report = loadgen::run(
            handle.addr(),
            &LoadConfig {
                connections,
                queries: n_queries,
                target_qps: 0.0,
                workload: Workload::uniform_region(0.04, 0.04),
                count_fraction: 0.0,
                write_fraction: 0.0,
                seed: 0x5EED,
                shutdown_after: false,
            },
        )
        .expect("load run");
        let stats = handle.shutdown();
        assert_eq!(report.ok as usize, n_queries, "closed loop completes all");

        let per_query = |n: u64| n as f64 / stats.queries.max(1) as f64;
        demand.push(report.demand_reads_per_query());
        table.row(vec![
            window.to_string(),
            format!("{:.1}", stats.queries as f64 / stats.batches.max(1) as f64),
            format!("{:.0}", report.achieved_qps()),
            f(report.demand_reads_per_query()),
            f(per_query(stats.prefetch_reads)),
            f(per_query(stats.physical_reads)),
            format!("{:.3}", report.latency_ms(0.50)),
            format!("{:.3}", report.latency_ms(0.99)),
            format!("{:.3}", report.latency_ms(0.999)),
        ]);
    }
    table.emit("server_throughput");
    println!(
        "Every row answers the identical query stream from a cold tree; only the batch \
         window changes. demand r/q falling with the window is the scheduler harvesting \
         client concurrency into executor batches; the latency columns price the wait."
    );

    // The acceptance gate: a window ≥ 64 must strictly beat one-at-a-time
    // serving on demand reads per query.
    let baseline = demand[0];
    for (&window, &d) in windows.iter().zip(&demand).skip(1) {
        if window >= 64 && d >= baseline {
            eprintln!(
                "FAIL: window {window} demand r/q {d:.4} not below window 1 baseline \
                 {baseline:.4}"
            );
            std::process::exit(1);
        }
    }

    // ---- Write side: group commit vs per-op commit under 8 writers ----
    let writer_connections = 8;
    let n_writes = if quick { 800 } else { 4_000 };
    let fsync_delay = Duration::from_micros(200);

    let mut wtable = Table::new(
        format!(
            "WAL group commit: {n_writes} inserts from {writer_connections} closed-loop \
             writer connections into an empty crabbing tree (cap {cap}, ~200 µs per WAL \
             sync, write window 64)"
        ),
        &[
            "commit",
            "inserts/s",
            "fsyncs/insert",
            "mean commit batch",
            "write p50 ms",
            "write p99 ms",
        ],
    );

    // Row 0 is per-op commit (every insert syncs alone), row 1 group commit.
    let mut fsyncs_per_insert = Vec::new();
    for group in [false, true] {
        let wal = GroupWal::open(SlowLog {
            inner: MemLog::new(),
            delay: fsync_delay,
        })
        .expect("open wal");
        if group {
            // Hold each batch open briefly so a whole burst of writers
            // lands under one fsync (the commit_delay knob).
            wal.set_commit_delay(Duration::from_micros(150));
        }
        let disk = ConcurrentDiskRTree::create_writable(
            SharedMemStore::new(),
            cap,
            cap / 4,
            buffer,
            LruPolicy::new(),
            wal,
        )
        .expect("create writable tree");
        let handle = serve(
            WriterEngine::new(disk, 2, writer_connections, group),
            "127.0.0.1:0",
            ServerConfig {
                batch: BatchPolicy {
                    max_batch: 64,
                    max_wait: Duration::from_micros(700),
                    ..BatchPolicy::default()
                },
                read_timeout: Duration::from_millis(20),
            },
        )
        .expect("bind ephemeral port");

        let report = loadgen::run(
            handle.addr(),
            &LoadConfig {
                connections: writer_connections,
                queries: n_writes,
                target_qps: 0.0,
                workload: Workload::uniform_region(0.01, 0.01),
                count_fraction: 0.0,
                write_fraction: 1.0,
                seed: 0x5EED,
                shutdown_after: false,
            },
        )
        .expect("write load run");
        let stats = handle.shutdown();
        assert_eq!(report.writes_ok as usize, n_writes, "all inserts commit");
        assert_eq!(stats.writes as usize, n_writes, "server saw every insert");

        fsyncs_per_insert.push(report.fsyncs_per_write());
        wtable.row(vec![
            if group { "group" } else { "per-op" }.to_string(),
            format!(
                "{:.0}",
                report.writes_ok as f64 / report.elapsed.as_secs_f64()
            ),
            f(report.fsyncs_per_write()),
            format!(
                "{:.1}",
                stats.writes as f64 / stats.commit_batches.max(1) as f64
            ),
            format!("{:.3}", report.write_latency_ms(0.50)),
            format!("{:.3}", report.write_latency_ms(0.99)),
        ]);
    }
    wtable.emit("server_group_commit");
    println!(
        "Both rows commit the identical insert stream durably; only the commit protocol \
         changes. Per-op commit pays one WAL sync per insert, group commit lets the \
         concurrent writers ride one leader's sync — fsyncs/insert is the amortization."
    );

    // The write-side acceptance gate: group commit must amortize syncs at
    // least 4x better than per-op commit under 8 concurrent writers.
    let (per_op, grouped) = (fsyncs_per_insert[0], fsyncs_per_insert[1]);
    if grouped * 4.0 > per_op {
        eprintln!(
            "FAIL: group commit fsyncs/insert {grouped:.4} is not >=4x below per-op \
             {per_op:.4}"
        );
        std::process::exit(1);
    }
}
