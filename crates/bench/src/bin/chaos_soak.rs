//! **Chaos soak** — runs the deterministic simulation harness over a block
//! of consecutive seeds and tabulates what the fleet of runs exercised:
//! fault kinds hit, operations committed, queries cross-checked, and (the
//! point of the exercise) zero oracle violations. A failing seed prints
//! its shrunk replay line and fails the process, so the soak doubles as a
//! long-running regression gate.
//!
//! `--quick` shrinks the sweep; the seed block is fixed so every soak run
//! explores the same runs bit for bit.

use rtree_bench::{flag, Table};
use rtree_chaos::{run, shrink, FaultPlan};

fn main() {
    let (seed_count, ops) = if flag("--quick") { (8, 60) } else { (48, 250) };
    let base_seed = 0u64;

    let mut by_fault = [0u64; 5];
    let mut crashed = 0u64;
    let mut total_committed = 0u64;
    let mut total_queries = 0u64;
    let mut failures: Vec<String> = Vec::new();

    for seed in base_seed..base_seed + seed_count {
        let report = run(seed, ops);
        let slot = match report.fault {
            FaultPlan::None => 0,
            FaultPlan::StoreCrash { .. } => 1,
            FaultPlan::LogCrash { .. } => 2,
            FaultPlan::ShortAppend { .. } => 3,
            FaultPlan::ReadFault { .. } => 4,
        };
        by_fault[slot] += 1;
        crashed += u64::from(report.crashed);
        total_committed += report.committed_items;
        total_queries += report.queries_checked as u64;
        if !report.passed() {
            let shrunk = shrink(seed, ops, false);
            failures.push(format!(
                "seed {seed} ({}): {} failure(s), first: {} — replay: rtrees chaos --seed {seed} --ops {}",
                report.fault,
                report.failures.len(),
                report.failures[0].detail,
                shrunk.unwrap_or(ops),
            ));
        }
    }

    let mut table = Table::new(
        format!(
            "Chaos soak: seeds {base_seed}..{} at {ops} ops",
            base_seed + seed_count
        ),
        &["metric", "value"],
    );
    table.row(vec!["runs".into(), seed_count.to_string()]);
    table.row(vec!["fault: none".into(), by_fault[0].to_string()]);
    table.row(vec!["fault: store crash".into(), by_fault[1].to_string()]);
    table.row(vec!["fault: log crash".into(), by_fault[2].to_string()]);
    table.row(vec!["fault: short append".into(), by_fault[3].to_string()]);
    table.row(vec!["fault: read fault".into(), by_fault[4].to_string()]);
    table.row(vec!["runs that crashed mid-op".into(), crashed.to_string()]);
    table.row(vec![
        "items committed (total)".into(),
        total_committed.to_string(),
    ]);
    table.row(vec![
        "queries cross-checked".into(),
        total_queries.to_string(),
    ]);
    table.row(vec!["oracle violations".into(), failures.len().to_string()]);
    table.emit("chaos_soak");

    if !failures.is_empty() {
        for line in &failures {
            eprintln!("FAIL {line}");
        }
        std::process::exit(1);
    }
}
