//! **Figure 7** — uniform vs data-driven point queries on the TIGER-like
//! data. Left: expected disk accesses vs buffer size (data-driven on top —
//! uniform queries often land in empty space and are pruned at the root).
//! Right: the speedup from growing the buffer,
//! `ED(B=10) / ED(B=N)` — larger for the uniform model, which has "hot"
//! nodes that extra buffer captures (the paper reports 3.91× vs 2.86× at
//! B = 500).

use rtree_bench::{f, tiger, Loader, Table};
use rtree_core::{BufferModel, TreeDescription, Workload};
use rtree_datagen::centers;

fn main() {
    let cap = 100;
    let rects = tiger();
    let tree = Loader::Hs.build(cap, &rects);
    let desc = TreeDescription::from_tree(&tree);

    let uniform = BufferModel::new(&desc, &Workload::uniform_point());
    let driven = BufferModel::new(&desc, &Workload::data_driven_point(centers(&rects)));

    let buffers = [10usize, 25, 50, 75, 100, 150, 200, 300, 400, 500];

    let mut left = Table::new(
        "Fig 7 (left): disk accesses vs buffer size (TIGER-like, HS, point queries)",
        &["buffer", "uniform", "data-driven"],
    );
    let mut right = Table::new(
        "Fig 7 (right): improvement ratio ED(B=10)/ED(B=N)",
        &["buffer", "uniform", "data-driven"],
    );

    let base_u = uniform.expected_disk_accesses(10);
    let base_d = driven.expected_disk_accesses(10);
    for &b in &buffers {
        let eu = uniform.expected_disk_accesses(b);
        let ed = driven.expected_disk_accesses(b);
        left.row(vec![b.to_string(), f(eu), f(ed)]);
        right.row(vec![
            b.to_string(),
            f(if eu > 0.0 { base_u / eu } else { f64::INFINITY }),
            f(if ed > 0.0 { base_d / ed } else { f64::INFINITY }),
        ]);
    }
    left.emit("fig7_left_disk_accesses");
    right.emit("fig7_right_improvement");

    let su = base_u / uniform.expected_disk_accesses(500).max(1e-12);
    let sd = base_d / driven.expected_disk_accesses(500).max(1e-12);
    println!(
        "B 10 -> 500 speedup: uniform {su:.2}x vs data-driven {sd:.2}x (paper: 3.91x vs 2.86x)"
    );
}
