//! **Table 1** — model validation: average disk accesses per uniform point
//! query, analytic model vs LRU simulation, across loaders and buffer
//! sizes. The paper reports agreement within 2% (inside the simulation's
//! own confidence intervals).
//!
//! The paper's trees hold 1,668 nodes each (TIGER/Long Beach data); with
//! our TIGER-like substitute and node capacity 33 the packed trees come out
//! within a few nodes of that.

use rtree_bench::{f, pct, seeds, sim_scale, tiger, Loader, Table};
use rtree_core::{BufferModel, TreeDescription, Workload};
use rtree_sim::{SimConfig, SimTree, Simulation};

fn main() {
    let cap = 33;
    let buffers = [2usize, 10, 50, 100, 200, 400];
    let rects = tiger();
    let workload = Workload::uniform_point();
    let (batches, qpb) = sim_scale();

    let mut table = Table::new(
        "Table 1: model vs simulation, disk accesses per point query (TIGER-like, cap 33)",
        &[
            "tree",
            "nodes",
            "buffer",
            "simulation",
            "ci90",
            "model",
            "diff",
        ],
    );

    for loader in Loader::PAPER {
        let tree = loader.build(cap, &rects);
        let desc = TreeDescription::from_tree(&tree);
        let sim_tree = SimTree::from_tree(&tree);
        let model = BufferModel::new(&desc, &workload);
        for &b in &buffers {
            let cfg = SimConfig::new(b).batches(batches, qpb).seed(seeds::SIM);
            let sim = Simulation::new(cfg).run(&sim_tree, &workload);
            let predicted = model.expected_disk_accesses(b);
            let diff = (predicted - sim.disk_accesses_per_query) / sim.disk_accesses_per_query;
            table.row(vec![
                loader.name().to_string(),
                desc.total_nodes().to_string(),
                b.to_string(),
                f(sim.disk_accesses_per_query),
                f(sim.ci_half_width),
                f(predicted),
                pct(diff),
            ]);
        }
    }
    table.emit("table1_validation");
    println!(
        "Regime note: the warm-up approximation (Bhide et al.) assumes the buffer exceeds a\n\
         typical per-query footprint; rows with B below ~2x the nodes-visited-per-query\n\
         (B = 2, 10 here) sit outside that regime and the model underestimates there.\n\
         Within the regime, agreement is ~2% or better, as the paper reports."
    );
}
