//! Shared infrastructure for the experiment binaries.
//!
//! Every table and figure of the paper has a dedicated binary in
//! `src/bin/`; this module provides the common pieces: standard data sets
//! (fixed seeds), the loader roster, table formatting, and CSV output.
//!
//! Run an experiment with, e.g.:
//! ```text
//! cargo run --release -p rtree-bench --bin fig6_buffer_sensitivity
//! ```
//! Flags understood by every binary: `--csv` (also write `results/*.csv`),
//! `--json` (also write `results/*.json`), and `--quick` (shrink
//! simulation sizes for smoke runs).

pub mod macrobench;

use rtree_datagen::{CfdLike, SyntheticPoint, SyntheticRegion, TigerLike};
use rtree_geom::Rect;
use rtree_index::{BulkLoader, RTree, TupleAtATime};
use std::fmt::Write as _;
use std::path::Path;

/// Seeds: one per data set, fixed so every experiment sees the same data.
pub mod seeds {
    /// TIGER-like street map.
    pub const TIGER: u64 = 0x7169_e201;
    /// CFD-like mesh.
    pub const CFD: u64 = 0xcfd0_0737;
    /// Synthetic region data.
    pub const REGION: u64 = 0x5e91_0a01;
    /// Synthetic point data.
    pub const POINT: u64 = 0x901_717;
    /// Simulation RNG.
    pub const SIM: u64 = 0x51u64 << 32 | 0x1aab;
}

/// The TIGER-like data set at the paper's cardinality (53,145 rectangles).
pub fn tiger() -> Vec<Rect> {
    TigerLike::paper().generate(seeds::TIGER)
}

/// The CFD-like data set at the paper's cardinality (52,510 points).
pub fn cfd() -> Vec<Rect> {
    CfdLike::paper().generate(seeds::CFD)
}

/// The CFD-like Fig. 5 sample (5,088 points).
pub fn cfd_fig5() -> Vec<Rect> {
    CfdLike::fig5().generate(seeds::CFD)
}

/// Synthetic region data (§5.1) of a given size.
pub fn synthetic_region(n: usize) -> Vec<Rect> {
    SyntheticRegion::new(n).generate(seeds::REGION)
}

/// Synthetic point data (§5.1) of a given size.
pub fn synthetic_point(n: usize) -> Vec<Rect> {
    SyntheticPoint::new(n).generate(seeds::POINT)
}

/// The loading algorithms under study.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Loader {
    /// Tuple-at-a-time Guttman insertion, quadratic split (§2.2 TAT).
    Tat,
    /// Nearest-X packing (§2.2 NX).
    Nx,
    /// Hilbert-sort packing (§2.2 HS).
    Hs,
    /// Morton/Z-order packing (extension).
    Morton,
    /// Sort-tile-recursive packing (extension).
    Str,
    /// Full R*-tree insertion: R* split + forced reinsertion (extension).
    Rstar,
}

impl Loader {
    /// The paper's three loaders, in its reporting order.
    pub const PAPER: [Loader; 3] = [Loader::Tat, Loader::Nx, Loader::Hs];
    /// All six loaders.
    pub const ALL: [Loader; 6] = [
        Loader::Tat,
        Loader::Rstar,
        Loader::Nx,
        Loader::Hs,
        Loader::Morton,
        Loader::Str,
    ];

    /// Display name used in tables.
    pub fn name(self) -> &'static str {
        match self {
            Loader::Tat => "TAT",
            Loader::Nx => "NX",
            Loader::Hs => "HS",
            Loader::Morton => "MORTON",
            Loader::Str => "STR",
            Loader::Rstar => "R*",
        }
    }

    /// Builds a tree with node capacity `cap`.
    pub fn build(self, cap: usize, rects: &[Rect]) -> RTree {
        match self {
            Loader::Tat => TupleAtATime::quadratic(cap).load(rects),
            Loader::Nx => BulkLoader::nearest_x(cap).load(rects),
            Loader::Hs => BulkLoader::hilbert(cap).load(rects),
            Loader::Morton => BulkLoader::morton(cap).load(rects),
            Loader::Str => BulkLoader::str_pack(cap).load(rects),
            Loader::Rstar => TupleAtATime::rstar(cap).load(rects),
        }
    }
}

/// A printable/exportable result table.
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        writeln!(out, "== {} ==", self.title).expect("string write");
        let line = |cells: &[String], widths: &[usize], out: &mut String| {
            for (i, (c, w)) in cells.iter().zip(widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let pad = w - c.len();
                // Right-align numeric-looking cells, left-align labels.
                if c.chars()
                    .next()
                    .is_some_and(|ch| ch.is_ascii_digit() || ch == '-' || ch == '.')
                {
                    out.push_str(&" ".repeat(pad));
                    out.push_str(c);
                } else {
                    out.push_str(c);
                    out.push_str(&" ".repeat(pad));
                }
            }
            out.push('\n');
        };
        line(&self.headers, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(row, &widths, &mut out);
        }
        out
    }

    /// Renders CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        writeln!(out, "{}", self.headers.join(",")).expect("string write");
        for row in &self.rows {
            writeln!(out, "{}", row.join(",")).expect("string write");
        }
        out
    }

    /// Renders JSON: `{"title": ..., "rows": [{header: cell, ...}, ...]}`.
    /// Cells that parse as finite numbers are emitted unquoted so the file
    /// plots without post-processing; everything else is a string.
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            let mut out = String::with_capacity(s.len() + 2);
            out.push('"');
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => {
                        write!(out, "\\u{:04x}", c as u32).expect("string write")
                    }
                    c => out.push(c),
                }
            }
            out.push('"');
            out
        }
        fn cell(s: &str) -> String {
            // JSON has no NaN/inf literals, and leading zeros ("007") or a
            // leading '+' are not valid JSON numbers — quote those.
            match s.parse::<f64>() {
                Ok(v)
                    if v.is_finite()
                        && !s.starts_with('+')
                        && s != "."
                        && !(s.len() > 1
                            && (s.starts_with('0') || s.starts_with("-0"))
                            && !s.contains('.')) =>
                {
                    s.to_string()
                }
                _ => esc(s),
            }
        }
        let mut out = String::new();
        writeln!(out, "{{").expect("string write");
        writeln!(out, "  \"title\": {},", esc(&self.title)).expect("string write");
        writeln!(out, "  \"rows\": [").expect("string write");
        for (i, row) in self.rows.iter().enumerate() {
            let fields: Vec<String> = self
                .headers
                .iter()
                .zip(row)
                .map(|(h, c)| format!("{}: {}", esc(h), cell(c)))
                .collect();
            let comma = if i + 1 < self.rows.len() { "," } else { "" };
            writeln!(out, "    {{{}}}{}", fields.join(", "), comma).expect("string write");
        }
        writeln!(out, "  ]").expect("string write");
        writeln!(out, "}}").expect("string write");
        out
    }

    /// Prints the table; when `--csv` / `--json` was passed, also writes
    /// `results/<slug>.csv` / `results/<slug>.json`.
    pub fn emit(&self, slug: &str) {
        println!("{}", self.render());
        if flag("--csv") {
            let dir = Path::new("results");
            std::fs::create_dir_all(dir).expect("create results dir");
            let path = dir.join(format!("{slug}.csv"));
            std::fs::write(&path, self.to_csv()).expect("write csv");
            println!("[csv] wrote {}", path.display());
        }
        if flag("--json") {
            let dir = Path::new("results");
            std::fs::create_dir_all(dir).expect("create results dir");
            let path = dir.join(format!("{slug}.json"));
            std::fs::write(&path, self.to_json()).expect("write json");
            println!("[json] wrote {}", path.display());
        }
    }
}

/// True if a command-line flag is present.
pub fn flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

/// Simulation scale: (`batches`, `queries_per_batch`) — reduced by
/// `--quick`.
pub fn sim_scale() -> (usize, usize) {
    if flag("--quick") {
        (5, 5_000)
    } else {
        (20, 50_000)
    }
}

/// Formats a float with 4 significant decimals.
pub fn f(v: f64) -> String {
    format!("{v:.4}")
}

/// Formats a percentage.
pub fn pct(v: f64) -> String {
    format!("{:.2}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datasets_have_paper_cardinalities() {
        assert_eq!(tiger().len(), 53_145);
        assert_eq!(cfd_fig5().len(), 5_088);
        assert_eq!(synthetic_region(1_000).len(), 1_000);
        assert_eq!(synthetic_point(1_000).len(), 1_000);
    }

    #[test]
    fn loaders_build_valid_trees() {
        let rects = synthetic_region(600);
        for loader in Loader::ALL {
            let t = loader.build(10, &rects);
            t.validate()
                .unwrap_or_else(|e| panic!("{}: {e}", loader.name()));
            assert_eq!(t.len(), 600);
        }
    }

    #[test]
    fn table_render_and_csv() {
        let mut t = Table::new("Demo", &["loader", "value"]);
        t.row(vec!["HS".into(), "1.25".into()]);
        let text = t.render();
        assert!(text.contains("== Demo =="));
        assert!(text.contains("HS"));
        let csv = t.to_csv();
        assert_eq!(csv, "loader,value\nHS,1.25\n");
    }

    #[test]
    fn table_json_types_cells() {
        let mut t = Table::new("Demo \"quoted\"", &["loader", "qps", "note"]);
        t.row(vec!["HS".into(), "1.25".into(), "line\nbreak".into()]);
        t.row(vec!["NX".into(), "300".into(), "007".into()]);
        let json = t.to_json();
        assert!(json.contains("\"title\": \"Demo \\\"quoted\\\"\""));
        assert!(json.contains("\"qps\": 1.25"));
        assert!(json.contains("\"qps\": 300"));
        assert!(json.contains("\"loader\": \"HS\""));
        // Leading-zero and control-character cells stay quoted strings.
        assert!(json.contains("\"note\": \"007\""));
        assert!(json.contains("\"note\": \"line\\nbreak\""));
    }

    #[test]
    #[should_panic]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new("Demo", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }
}
