//! Trace-replayable effective-OPS macro-benchmark.
//!
//! The figure-level experiments measure *disk accesses per query* — the
//! paper's unit. This module measures what an application feels: effective
//! operations per second under a recorded, byte-replayable operation
//! trace ([`rtree_datagen::trace`]), with the buffer miss penalty made
//! explicit through a configurable miss-cost model:
//!
//! ```text
//! effective_ops = 1e9 / (hit_ns + demand_reads_per_op × miss_ns)
//! ```
//!
//! `hit_ns` is the *measured* mean in-memory op time (the replay runs on
//! a `MemStore`, so every buffer hit and miss costs only memcpy — the
//! measured time is the CPU side), and `demand_reads_per_op × miss_ns`
//! charges each demand miss the latency of one device read (default
//! ~1.9 µs, an NVMe 4 KiB random read). The split keeps the number
//! honest on a machine with a page cache: misses are counted, not timed.
//!
//! Alongside measurement, each configuration is scored by the paper's
//! analytic buffer model over the *actual on-disk tree* (walked from the
//! page image, so v4's repacked internal levels and conservative
//! quantized MBRs are what the model sees). The headline comparison: at
//! equal frame budgets, v4's higher internal fan-out (253 vs 102
//! entries/page) shrinks the tree's page footprint and height, so both
//! the model and the measurement must show fewer demand reads per
//! operation — see [`Gate`].

use std::io;
use std::time::Instant;

use rtree_buffer::{
    ClockPolicy, FifoPolicy, LruKPolicy, LruPolicy, PageId, RandomPolicy, ReplacementPolicy,
};
use rtree_core::{BufferModel, TreeDescription, Workload};
use rtree_datagen::trace::{Trace, TraceOp};
use rtree_geom::Rect;
use rtree_index::RTree;
use rtree_obs::Histogram;
use rtree_pager::{DiskRTree, MemStore, NodePage, PageStore, PAGE_SIZE};

/// The two on-disk page formats under comparison.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PageFormat {
    /// Format v3: exact f64 SoA pages at every level (102 entries/page).
    V3,
    /// Format v4: leaves stay exact f64; internal levels are repacked into
    /// quantized pages (253 entries/page) with conservative rounding.
    V4,
}

impl PageFormat {
    /// Both formats, reporting order.
    pub const ALL: [PageFormat; 2] = [PageFormat::V3, PageFormat::V4];

    /// Display name used in tables.
    pub fn name(self) -> &'static str {
        match self {
            PageFormat::V3 => "v3",
            PageFormat::V4 => "v4",
        }
    }

    /// Materializes `tree` in this format over a fresh in-memory store.
    ///
    /// # Panics
    /// Panics if materialization fails (in-memory stores do not error).
    pub fn materialize(self, tree: &RTree, frames: usize, policy: Boxed) -> DiskRTree<MemStore> {
        match self {
            PageFormat::V3 => {
                DiskRTree::create(MemStore::new(), tree, frames, policy).expect("create v3")
            }
            PageFormat::V4 => DiskRTree::create_compressed(MemStore::new(), tree, frames, policy)
                .expect("create v4"),
        }
    }
}

/// Boxed-policy adapter: the tree constructors take `impl
/// ReplacementPolicy`, the benchmark grid iterates `dyn` constructors.
pub struct Boxed(pub Box<dyn ReplacementPolicy>);

impl ReplacementPolicy for Boxed {
    fn name(&self) -> &'static str {
        self.0.name()
    }
    fn len(&self) -> usize {
        self.0.len()
    }
    fn on_hit(&mut self, page: PageId) {
        self.0.on_hit(page);
    }
    fn on_insert(&mut self, page: PageId) {
        self.0.on_insert(page);
    }
    fn evict(&mut self) -> PageId {
        self.0.evict()
    }
    fn remove(&mut self, page: PageId) {
        self.0.remove(page);
    }
    fn on_unpin(&mut self, page: PageId) {
        self.0.on_unpin(page);
    }
}

/// A named replacement-policy constructor.
pub type PolicyCtor = Box<dyn Fn() -> Box<dyn ReplacementPolicy>>;

/// The five replacement policies of the study, in reporting order.
pub fn policies() -> Vec<(&'static str, PolicyCtor)> {
    vec![
        (
            "lru",
            Box::new(|| Box::new(LruPolicy::new()) as Box<dyn ReplacementPolicy>),
        ),
        (
            "fifo",
            Box::new(|| Box::new(FifoPolicy::new()) as Box<dyn ReplacementPolicy>),
        ),
        (
            "clock",
            Box::new(|| Box::new(ClockPolicy::new()) as Box<dyn ReplacementPolicy>),
        ),
        (
            "lru-2",
            Box::new(|| Box::new(LruKPolicy::new(2)) as Box<dyn ReplacementPolicy>),
        ),
        (
            "random",
            Box::new(|| Box::new(RandomPolicy::new(0xD1CE)) as Box<dyn ReplacementPolicy>),
        ),
    ]
}

/// Default miss latency: a 4 KiB random read on a datacenter NVMe device.
pub const DEFAULT_MISS_NS: f64 = 1_934.0;

/// The effective-OPS formula: throughput with each demand miss charged
/// `miss_ns` on top of the measured in-memory op time.
pub fn effective_ops(mean_op_ns: f64, demand_reads_per_op: f64, miss_ns: f64) -> f64 {
    1e9 / (mean_op_ns + demand_reads_per_op * miss_ns)
}

/// What one trace replay observed.
#[derive(Clone, Debug, PartialEq)]
pub struct ReplayOutcome {
    /// Operations replayed.
    pub ops: usize,
    /// Wall-clock for the whole replay.
    pub elapsed_ns: u64,
    /// Physical I/O during the replay (counters reset at entry).
    pub io: rtree_pager::IoStats,
    /// Buffer hit ratio over the replay.
    pub hit_rate: f64,
    /// Median per-op latency (in-memory component).
    pub p50_ns: u64,
    /// 99th-percentile per-op latency.
    pub p99_ns: u64,
    /// Order-sensitive digest of every result id — two replays that
    /// return the same answers in the same order have equal digests.
    pub digest: u64,
}

impl ReplayOutcome {
    /// Demand (non-prefetch) physical reads per operation.
    pub fn demand_reads_per_op(&self) -> f64 {
        self.io.demand_reads() as f64 / self.ops as f64
    }

    /// Mean in-memory op latency.
    pub fn mean_op_ns(&self) -> f64 {
        self.elapsed_ns as f64 / self.ops as f64
    }

    /// Effective operations/second under a given miss latency.
    pub fn effective_ops(&self, miss_ns: f64) -> f64 {
        effective_ops(self.mean_op_ns(), self.demand_reads_per_op(), miss_ns)
    }
}

/// Replays a trace against a tree, measuring I/O, latency quantiles, and
/// a result digest. Counters are reset on entry, so the outcome covers
/// exactly this replay; the buffer content is whatever the caller left
/// (replay a warm-up prefix first for steady-state numbers, or nothing
/// for a cold run).
///
/// # Errors
/// Propagates the first I/O error from the underlying store.
pub fn replay<S: PageStore>(tree: &mut DiskRTree<S>, trace: &Trace) -> io::Result<ReplayOutcome> {
    assert!(!trace.ops.is_empty(), "empty trace");
    tree.reset_counters();
    let mut hist = Histogram::new();
    let mut digest = 0u64;
    let mut absorb =
        |id: u64| digest = digest.rotate_left(7) ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let start = Instant::now();
    for op in &trace.ops {
        let t0 = Instant::now();
        match op {
            TraceOp::Region(r) => {
                for id in tree.query(r)? {
                    absorb(id);
                }
            }
            TraceOp::Point(p) => {
                for id in tree.query_point(p)? {
                    absorb(id);
                }
            }
            TraceOp::Knn(p, k) => {
                // Absorb distances, not ids: when k cuts through a group
                // of equidistant items (common at distance 0 inside
                // overlapping rects), *which* tied item is returned is a
                // heap-order artifact, but the distance sequence is
                // unique — that is the format-independent answer.
                for n in tree.nearest_neighbors(p, *k as usize)? {
                    absorb(n.distance.to_bits());
                }
            }
            TraceOp::Insert(r, id) => tree.insert(*r, *id)?,
            TraceOp::Delete(r, id) => {
                absorb(u64::from(tree.delete(r, *id)?));
            }
        }
        hist.record(t0.elapsed().as_nanos() as u64);
    }
    let elapsed_ns = start.elapsed().as_nanos() as u64;
    Ok(ReplayOutcome {
        ops: trace.ops.len(),
        elapsed_ns,
        io: tree.io_stats(),
        hit_rate: tree.hit_ratio(),
        p50_ns: hist.quantile(0.5),
        p99_ns: hist.quantile(0.99),
        digest,
    })
}

/// Rebuilds the per-level MBR description from the *on-disk image* by
/// decoding every node page — so for v4 the model sees the repacked
/// internal levels and their conservatively rounded (slightly larger)
/// MBRs, exactly the rectangles traversal tests against.
///
/// # Errors
/// Propagates store read errors; corrupt pages surface as `InvalidData`.
///
/// # Panics
/// Panics if the meta's level table is stale (mutated tree).
pub fn describe_store<S: PageStore>(
    store: &mut S,
    meta: &rtree_pager::PageMeta,
) -> io::Result<TreeDescription> {
    assert!(
        !meta.level_starts.is_empty(),
        "level table is stale: describe before mutating"
    );
    let mut buf = vec![0u8; PAGE_SIZE];
    let mut levels: Vec<Vec<Rect>> = Vec::with_capacity(meta.level_starts.len());
    for (k, &start) in meta.level_starts.iter().enumerate() {
        let end = meta
            .level_starts
            .get(k + 1)
            .copied()
            .unwrap_or(meta.nodes + 1);
        let mut mbrs = Vec::with_capacity((end - start) as usize);
        for id in start..end {
            store.read_page(PageId(id), &mut buf)?;
            let node = NodePage::decode(&buf).map_err(io::Error::other)?;
            let rects: Vec<Rect> = node.entries.iter().map(|(r, _)| *r).collect();
            mbrs.push(Rect::mbr_of(&rects));
        }
        levels.push(mbrs);
    }
    Ok(TreeDescription::from_levels(levels))
}

/// Model-predicted steady-state disk accesses per query for a tree
/// description under a workload at a given frame budget (eq. 4 + the
/// buffer extension of the paper).
pub fn model_reads_per_query(desc: &TreeDescription, workload: &Workload, frames: usize) -> f64 {
    BufferModel::new(desc, workload).expected_disk_accesses(frames)
}

/// The macro-benchmark's acceptance gate, evaluated on the Zipf read-only
/// leg at equal frame budgets:
///
/// 1. **Strict win** (every policy): v4 demand reads/op < v3.
/// 2. **Model band** (LRU, the policy the paper's steady-state analysis
///    describes): the measured v4/v3 read ratio is within
///    [`Gate::BAND`] of the model-predicted ratio.
#[derive(Clone, Debug, PartialEq)]
pub struct Gate {
    /// Policy name this sample came from.
    pub policy: &'static str,
    /// Measured v3 demand reads per op.
    pub v3_reads_per_op: f64,
    /// Measured v4 demand reads per op.
    pub v4_reads_per_op: f64,
    /// Model-predicted v3 disk accesses per query.
    pub model_v3: f64,
    /// Model-predicted v4 disk accesses per query.
    pub model_v4: f64,
}

impl Gate {
    /// Maximum allowed |measured ratio − model ratio|. The model is exact
    /// for uniformly random reference strings; a Zipf trace's locality
    /// beats the model's steady-state assumption by a bounded margin, so
    /// the band is generous but still rejects a sign error or a broken
    /// repack (which would land far outside it).
    pub const BAND: f64 = 0.35;

    /// Measured v4/v3 demand-read ratio.
    pub fn measured_ratio(&self) -> f64 {
        self.v4_reads_per_op / self.v3_reads_per_op
    }

    /// Model-predicted v4/v3 ratio.
    pub fn model_ratio(&self) -> f64 {
        self.model_v4 / self.model_v3
    }

    /// Condition 1: strictly fewer demand reads per op on v4.
    pub fn strict_win(&self) -> bool {
        self.v4_reads_per_op < self.v3_reads_per_op
    }

    /// Condition 2: measured gap within the model band.
    pub fn within_band(&self) -> bool {
        (self.measured_ratio() - self.model_ratio()).abs() <= Self::BAND
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtree_datagen::trace::{generate, MixWeights, Skew, TraceSpec};
    use rtree_index::BulkLoader;

    fn data(n: usize) -> Vec<Rect> {
        (0..n)
            .map(|i| {
                let x = (i as f64 * 0.618_033) % 0.95;
                let y = (i as f64 * 0.414_213) % 0.95;
                Rect::new(x, y, x + 0.01, y + 0.01)
            })
            .collect()
    }

    #[test]
    fn effective_ops_math() {
        // No misses: pure CPU throughput.
        assert!((effective_ops(1_000.0, 0.0, 2_000.0) - 1e6).abs() < 1e-6);
        // One 2µs miss per op on a 1µs op: 3µs per op total.
        let v = effective_ops(1_000.0, 1.0, 2_000.0);
        assert!((v - 1e9 / 3_000.0).abs() < 1e-6);
        // More misses, lower throughput — monotone.
        assert!(effective_ops(1_000.0, 2.0, 2_000.0) < v);
    }

    #[test]
    fn replay_digests_are_deterministic_and_format_independent() {
        let rects = data(900);
        let tree = BulkLoader::hilbert(16).load(&rects);
        let trace = generate(
            &rects,
            &TraceSpec {
                ops: 400,
                qx: 0.04,
                qy: 0.04,
                skew: Skew::Zipf { theta: 1.0 },
                mix: MixWeights::read_only(),
                seed: 42,
            },
        );
        let lru = || Boxed(Box::new(LruPolicy::new()));
        let mut v3 = PageFormat::V3.materialize(&tree, 12, lru());
        let mut v3_again = PageFormat::V3.materialize(&tree, 12, lru());
        let mut v4 = PageFormat::V4.materialize(&tree, 12, lru());
        let a = replay(&mut v3, &trace).expect("replay v3");
        let b = replay(&mut v3_again, &trace).expect("replay v3 again");
        let c = replay(&mut v4, &trace).expect("replay v4");
        // Same trace, same image → identical I/O and answers.
        assert_eq!(a.io, b.io);
        assert_eq!(a.digest, b.digest);
        // Different format, same answers — and no more demand reads.
        assert_eq!(a.digest, c.digest, "v4 must answer exactly like v3");
        assert!(c.io.demand_reads() <= a.io.demand_reads());
    }

    #[test]
    fn described_store_matches_v4_repack() {
        let rects = data(1_200);
        let tree = BulkLoader::hilbert(16).load(&rects);
        let lru = || Boxed(Box::new(LruPolicy::new()));
        let v3 = PageFormat::V3.materialize(&tree, 8, lru());
        let v4 = PageFormat::V4.materialize(&tree, 8, lru());
        let (meta3, meta4) = (v3.meta().clone(), v4.meta().clone());
        let mut s3 = v3.into_store();
        let mut s4 = v4.into_store();
        let d3 = describe_store(&mut s3, &meta3).expect("describe v3");
        let d4 = describe_store(&mut s4, &meta4).expect("describe v4");
        // Same leaf level, fewer (or equal) pages above it.
        assert_eq!(
            d3.level(d3.height() - 1).len(),
            d4.level(d4.height() - 1).len()
        );
        assert!(d4.total_nodes() < d3.total_nodes());
        // The smaller footprint must show up in the model at a starved
        // frame budget.
        let w = Workload::uniform_region(0.04, 0.04);
        assert!(model_reads_per_query(&d4, &w, 8) < model_reads_per_query(&d3, &w, 8));
    }
}
