//! Loader throughput: how fast each loading algorithm builds a tree.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rtree_bench::{synthetic_region, Loader};

fn bench_loaders(c: &mut Criterion) {
    let mut group = c.benchmark_group("build");
    for &n in &[2_000usize, 10_000] {
        let rects = synthetic_region(n);
        group.throughput(Throughput::Elements(n as u64));
        for loader in Loader::ALL {
            // TAT at 10k is two orders slower than packing; keep it to the
            // small size so the suite stays quick.
            if loader == Loader::Tat && n > 2_000 {
                continue;
            }
            group.bench_with_input(BenchmarkId::new(loader.name(), n), &rects, |b, rects| {
                b.iter(|| loader.build(50, std::hint::black_box(rects)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_loaders);
criterion_main!(benches);
