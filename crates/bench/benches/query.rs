//! Query latency per loader: in-memory traversal cost of point and 1%
//! region queries against trees built by each loading algorithm.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtree_bench::{synthetic_region, Loader};
use rtree_geom::{Point, Rect};

fn bench_queries(c: &mut Criterion) {
    let rects = synthetic_region(20_000);
    let trees: Vec<_> = Loader::ALL
        .iter()
        .map(|&l| (l, l.build(50, &rects)))
        .collect();

    let mut rng = StdRng::seed_from_u64(7);
    let points: Vec<Rect> = (0..256)
        .map(|_| Rect::point(Point::new(rng.gen(), rng.gen())))
        .collect();
    let regions: Vec<Rect> = (0..256)
        .map(|_| {
            let x: f64 = rng.gen_range(0.0..0.9);
            let y: f64 = rng.gen_range(0.0..0.9);
            Rect::new(x, y, x + 0.1, y + 0.1)
        })
        .collect();

    for (kind, queries) in [("point", &points), ("region1pct", &regions)] {
        let mut group = c.benchmark_group(format!("query/{kind}"));
        for (loader, tree) in &trees {
            group.bench_with_input(BenchmarkId::from_parameter(loader.name()), tree, |b, t| {
                let mut i = 0usize;
                b.iter(|| {
                    let q = &queries[i % queries.len()];
                    i += 1;
                    std::hint::black_box(t.count_accesses(q))
                })
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_queries);
criterion_main!(benches);
