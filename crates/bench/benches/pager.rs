//! Pager micro-benchmarks: page encode/decode and buffer-manager fetch —
//! the fixed per-access CPU costs that sit under every "disk access" the
//! study counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtree_bench::{synthetic_region, Loader};
use rtree_buffer::{LruPolicy, PageId};
use rtree_geom::Rect;
use rtree_pager::{BufferManager, DiskRTree, MemStore, NodePage, PageStore, PAGE_SIZE};

fn bench_codec(c: &mut Criterion) {
    let node = NodePage {
        level: 0,
        entries: (0..100u64)
            .map(|i| {
                let v = i as f64 / 100.0;
                (
                    Rect::new(v * 0.9, v * 0.8, v * 0.9 + 0.05, v * 0.8 + 0.05),
                    i,
                )
            })
            .collect(),
    };
    let mut buf = vec![0u8; PAGE_SIZE];
    node.encode(&mut buf);

    let mut group = c.benchmark_group("pager/codec");
    group.throughput(Throughput::Bytes(PAGE_SIZE as u64));
    group.bench_function("encode_100_entries", |b| {
        b.iter(|| node.encode(std::hint::black_box(&mut buf)))
    });
    group.bench_function("decode_100_entries", |b| {
        b.iter(|| NodePage::decode(std::hint::black_box(&buf)).expect("valid page"))
    });
    group.finish();
}

fn bench_fetch(c: &mut Criterion) {
    // A store of 2,000 pages, a 500-frame manager, skewed references.
    let mut buf = vec![0u8; PAGE_SIZE];
    let node = NodePage {
        level: 0,
        entries: vec![(Rect::new(0.1, 0.1, 0.2, 0.2), 7); 50],
    };
    node.encode(&mut buf);
    let mut rng = StdRng::seed_from_u64(11);
    let refs: Vec<PageId> = (0..1 << 14)
        .map(|_| {
            let u: f64 = rng.gen();
            PageId((u * u * 2_000.0) as u64)
        })
        .collect();

    let mut group = c.benchmark_group("pager/fetch");
    group.throughput(Throughput::Elements(refs.len() as u64));
    group.bench_function("skewed_mix", |b| {
        b.iter_batched(
            || BufferManager::new(mut_store_clone(&buf), 500, LruPolicy::new()),
            |mut mgr| {
                let mut sum = 0u64;
                for &p in &refs {
                    sum += mgr.fetch(p).expect("fetch")[4] as u64;
                }
                sum
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

/// Builds a fresh 2,000-page store filled with `page` content.
fn mut_store_clone(page: &[u8]) -> MemStore {
    let mut store = MemStore::new();
    for _ in 0..2_000 {
        let id = store.allocate().expect("mem alloc");
        store.write_page(id, page).expect("mem write");
    }
    store
}

fn bench_disk_query(c: &mut Criterion) {
    let rects = synthetic_region(20_000);
    let tree = Loader::Hs.build(50, &rects);
    let mut group = c.benchmark_group("pager/query");
    for buffer in [25usize, 400] {
        group.bench_with_input(
            BenchmarkId::new("point_query", buffer),
            &buffer,
            |b, &buffer| {
                let mut disk = DiskRTree::create(MemStore::new(), &tree, buffer, LruPolicy::new())
                    .expect("create");
                let mut rng = StdRng::seed_from_u64(3);
                b.iter(|| {
                    let p = rtree_geom::Point::new(rng.gen(), rng.gen());
                    disk.query(&Rect::point(p)).expect("query").len()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_codec, bench_fetch, bench_disk_query);
criterion_main!(benches);
