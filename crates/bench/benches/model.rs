//! Model solve time: the paper argues the model is "simple to implement
//! and quick to solve"; these benches quantify "quick" — probability
//! evaluation and the `N*` warm-up search as a function of tree size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtree_bench::{synthetic_region, Loader};
use rtree_core::{BufferModel, TreeDescription, Workload};
use rtree_datagen::centers;

fn bench_model(c: &mut Criterion) {
    for &n in &[10_000usize, 100_000] {
        let rects = synthetic_region(n);
        let tree = Loader::Hs.build(100, &rects);
        let desc = TreeDescription::from_tree(&tree);
        let cs = centers(&rects);

        let mut group = c.benchmark_group(format!("model/{n}"));

        group.bench_function(BenchmarkId::from_parameter("uniform_probs"), |b| {
            let w = Workload::uniform_region(0.1, 0.1);
            b.iter(|| BufferModel::new(std::hint::black_box(&desc), &w))
        });

        group.bench_function(BenchmarkId::from_parameter("data_driven_probs"), |b| {
            let w = Workload::data_driven_point(cs.clone());
            b.iter(|| BufferModel::new(std::hint::black_box(&desc), &w))
        });

        group.bench_function(BenchmarkId::from_parameter("solve_ed"), |b| {
            let w = Workload::uniform_point();
            let model = BufferModel::new(&desc, &w);
            b.iter(|| model.expected_disk_accesses(std::hint::black_box(100)))
        });

        group.finish();
    }
}

criterion_group!(benches, bench_model);
criterion_main!(benches);
