//! Buffer pool overhead: cost of one `access` call per replacement policy
//! under a Zipf-ish skewed page reference string.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtree_buffer::{BufferPool, ClockPolicy, FifoPolicy, LruPolicy, PageId, RandomPolicy};

/// A skewed reference string: square of a uniform favors low page numbers.
fn reference_string(pages: u64, len: usize, seed: u64) -> Vec<PageId> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len)
        .map(|_| {
            let u: f64 = rng.gen();
            PageId((u * u * pages as f64) as u64)
        })
        .collect()
}

fn bench_policies(c: &mut Criterion) {
    let refs = reference_string(10_000, 1 << 16, 99);
    let capacity = 1_000;

    let mut group = c.benchmark_group("buffer/access");
    group.throughput(Throughput::Elements(refs.len() as u64));
    let run = |pool: &mut BufferPool, refs: &[PageId]| {
        let mut misses = 0u64;
        for &p in refs {
            if pool.access(p).is_miss() {
                misses += 1;
            }
        }
        misses
    };
    group.bench_with_input(BenchmarkId::from_parameter("LRU"), &refs, |b, refs| {
        b.iter_batched(
            || BufferPool::new(capacity, LruPolicy::new()),
            |mut pool| run(&mut pool, refs),
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_with_input(BenchmarkId::from_parameter("CLOCK"), &refs, |b, refs| {
        b.iter_batched(
            || BufferPool::new(capacity, ClockPolicy::new()),
            |mut pool| run(&mut pool, refs),
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_with_input(BenchmarkId::from_parameter("FIFO"), &refs, |b, refs| {
        b.iter_batched(
            || BufferPool::new(capacity, FifoPolicy::new()),
            |mut pool| run(&mut pool, refs),
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_with_input(BenchmarkId::from_parameter("RANDOM"), &refs, |b, refs| {
        b.iter_batched(
            || BufferPool::new(capacity, RandomPolicy::new(3)),
            |mut pool| run(&mut pool, refs),
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
