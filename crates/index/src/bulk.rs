//! Bottom-up packing loaders (§2.2 of the paper).
//!
//! All packing loaders share the paper's *General Algorithm*: order the `R`
//! rectangles, place consecutive runs of `n` into leaf nodes, then
//! recursively pack the resulting MBRs until a single root remains. The
//! loaders differ only in how rectangles are ordered at each level:
//!
//! * **NX (Nearest-X)** — sort by the x-coordinate of the rectangle center
//!   (Roussopoulos & Leifker).
//! * **HS (Hilbert Sort)** — sort centers by Hilbert-curve distance from the
//!   origin (Kamel & Faloutsos).
//! * **Morton** — Z-order variant of HS (extension; ablation for curve
//!   locality).
//! * **STR** — Sort-Tile-Recursive (Leutenegger, López & Edgington, the
//!   authors' cited follow-up [7]; extension).
//!
//! [`TupleAtATime`] wraps Guttman insertion so that TAT can be used through
//! the same interface as the packing loaders.

use crate::split::SplitPolicy;
use crate::tree::RTree;
use rtree_geom::{HilbertCurve, MortonCurve, Rect};

/// The ordering strategy used by the general packing algorithm.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PackingOrder {
    /// Sort by center x-coordinate (the paper's NX).
    NearestX,
    /// Sort centers along a Hilbert curve of the given order (the paper's HS).
    Hilbert { order: u32 },
    /// Sort centers along a Morton / Z-order curve (extension).
    Morton { order: u32 },
    /// Sort-Tile-Recursive slicing (extension).
    Str,
}

impl PackingOrder {
    /// Short name used in experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            PackingOrder::NearestX => "NX",
            PackingOrder::Hilbert { .. } => "HS",
            PackingOrder::Morton { .. } => "MORTON",
            PackingOrder::Str => "STR",
        }
    }

    /// Permutes `entries` into packing order for one level of the tree.
    /// `cap` is the node capacity (needed by STR to shape its tiles).
    fn arrange(&self, entries: &mut [(Rect, u64)], cap: usize) {
        match *self {
            PackingOrder::NearestX => {
                sort_by_key_f64(entries, |r| r.center().x);
            }
            PackingOrder::Hilbert { order } => {
                let curve = HilbertCurve::new(order);
                entries.sort_by_key(|(r, _)| curve.index_of(&r.center()));
            }
            PackingOrder::Morton { order } => {
                let curve = MortonCurve::new(order);
                entries.sort_by_key(|(r, _)| curve.index_of(&r.center()));
            }
            PackingOrder::Str => {
                // STR: P = ceil(R/n) pages; S = ceil(sqrt(P)) vertical
                // slices of S*n rectangles each, sorted by x; each slice
                // sorted by y. Consecutive runs of n then form the tiles.
                let r = entries.len();
                let pages = r.div_ceil(cap);
                let slices = (pages as f64).sqrt().ceil() as usize;
                let slice_len = slices * cap;
                sort_by_key_f64(entries, |rect| rect.center().x);
                for chunk in entries.chunks_mut(slice_len.max(1)) {
                    sort_by_key_f64(chunk, |rect| rect.center().y);
                }
            }
        }
    }
}

fn sort_by_key_f64(entries: &mut [(Rect, u64)], key: impl Fn(&Rect) -> f64) {
    entries.sort_by(|a, b| {
        key(&a.0)
            .partial_cmp(&key(&b.0))
            .expect("rect coordinates are finite")
    });
}

/// A bottom-up packing loader.
///
/// # Examples
///
/// ```
/// use rtree_index::BulkLoader;
/// use rtree_geom::Rect;
///
/// let rects: Vec<Rect> = (0..230)
///     .map(|i| {
///         let x = (i as f64 * 0.618) % 0.99;
///         let y = (i as f64 * 0.414) % 0.99;
///         Rect::new(x, y, x + 0.01, y + 0.01)
///     })
///     .collect();
/// let tree = BulkLoader::hilbert(10).load(&rects);
/// // ceil(230/10) = 23 leaves, 3 level-1 nodes, 1 root.
/// assert_eq!(tree.node_count(), 27);
/// assert_eq!(tree.height(), 3);
/// assert_eq!(tree.search(&Rect::new(0.0, 0.0, 1.0, 1.0)).len(), 230);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct BulkLoader {
    cap: usize,
    order: PackingOrder,
}

impl BulkLoader {
    /// Creates a loader with an explicit ordering.
    ///
    /// # Panics
    /// Panics if `cap < 2`.
    pub fn new(cap: usize, order: PackingOrder) -> Self {
        assert!(cap >= 2, "node capacity must be at least 2");
        BulkLoader { cap, order }
    }

    /// The paper's NX loader.
    pub fn nearest_x(cap: usize) -> Self {
        Self::new(cap, PackingOrder::NearestX)
    }

    /// The paper's HS loader (default Hilbert order 16).
    pub fn hilbert(cap: usize) -> Self {
        Self::new(
            cap,
            PackingOrder::Hilbert {
                order: HilbertCurve::DEFAULT_ORDER,
            },
        )
    }

    /// Morton / Z-order loader (extension).
    pub fn morton(cap: usize) -> Self {
        Self::new(
            cap,
            PackingOrder::Morton {
                order: MortonCurve::DEFAULT_ORDER,
            },
        )
    }

    /// Sort-Tile-Recursive loader (extension).
    pub fn str_pack(cap: usize) -> Self {
        Self::new(cap, PackingOrder::Str)
    }

    /// The ordering used.
    pub fn order(&self) -> PackingOrder {
        self.order
    }

    /// Loads rectangles, assigning item ids `0..rects.len()`.
    pub fn load(&self, rects: &[Rect]) -> RTree {
        let entries: Vec<(Rect, u64)> = rects.iter().copied().zip(0..rects.len() as u64).collect();
        self.load_entries(entries)
    }

    /// Loads explicit `(rect, id)` items.
    pub fn load_entries(&self, mut items: Vec<(Rect, u64)>) -> RTree {
        let mut tree = RTree::builder(self.cap.max(4)).build();
        // The builder enforces cap >= 4 for splits; packing never splits, so
        // we honor the requested capacity exactly.
        tree.max_entries = self.cap;
        if items.is_empty() {
            return tree;
        }
        tree.len = items.len();
        for (r, _) in &items {
            assert!(r.is_valid(), "cannot load invalid rect {r}");
        }

        // Build the leaf level.
        self.order.arrange(&mut items, self.cap);
        let mut level = 0u32;
        // (node MBR, node id) entries for the level being packed upward.
        let mut upper: Vec<(Rect, u64)> = Vec::with_capacity(items.len().div_ceil(self.cap));
        for chunk in items.chunks(self.cap) {
            let id = tree.alloc(level);
            for (r, p) in chunk {
                tree.node_mut(id).push(*r, *p);
            }
            upper.push((tree.node(id).mbr(), id.index() as u64));
        }

        // Pack MBRs upward until one node remains.
        while upper.len() > 1 {
            level += 1;
            self.order.arrange(&mut upper, self.cap);
            let mut next: Vec<(Rect, u64)> = Vec::with_capacity(upper.len().div_ceil(self.cap));
            for chunk in upper.chunks(self.cap) {
                let id = tree.alloc(level);
                for (r, p) in chunk {
                    tree.node_mut(id).push(*r, *p);
                }
                next.push((tree.node(id).mbr(), id.index() as u64));
            }
            upper = next;
        }

        let root_id = crate::node::NodeId(upper[0].1 as u32);
        // Slot 0 was pre-allocated by the builder as an empty leaf root;
        // release it unless it became the real root.
        let placeholder = crate::node::NodeId(0);
        tree.root = root_id;
        if root_id != placeholder {
            tree.dealloc(placeholder);
        }
        tree
    }
}

/// Tuple-at-a-time loading (the paper's TAT): Guttman insertion of one
/// rectangle at a time with a configurable split heuristic.
pub struct TupleAtATime {
    cap: usize,
    split: Option<Box<dyn Fn() -> Box<dyn SplitPolicy>>>,
    reinsert: Option<f64>,
}

impl TupleAtATime {
    /// TAT with the paper's quadratic split.
    pub fn quadratic(cap: usize) -> Self {
        TupleAtATime {
            cap,
            split: None,
            reinsert: None,
        }
    }

    /// The full R*-tree configuration: R* split, overlap-aware
    /// ChooseSubtree and 30% forced reinsertion (extension; the paper's
    /// reference [1]).
    pub fn rstar(cap: usize) -> Self {
        let mut t = Self::with_split(cap, crate::rstar::RStarSplit);
        t.reinsert = Some(0.3);
        t
    }

    /// TAT with an arbitrary split policy (ablation).
    pub fn with_split<P: SplitPolicy + Clone + 'static>(cap: usize, policy: P) -> Self {
        TupleAtATime {
            cap,
            split: Some(Box::new(move || Box::new(policy.clone()))),
            reinsert: None,
        }
    }

    /// Loads rectangles, assigning item ids `0..rects.len()`.
    pub fn load(&self, rects: &[Rect]) -> RTree {
        let mut builder = RTree::builder(self.cap);
        if let Some(make) = &self.split {
            builder = builder.split_policy(BoxedPolicy(make()));
        }
        if let Some(f) = self.reinsert {
            builder = builder.forced_reinsert(f);
        }
        let mut tree = builder.build();
        for (i, r) in rects.iter().enumerate() {
            tree.insert(*r, i as u64);
        }
        tree
    }
}

struct BoxedPolicy(Box<dyn SplitPolicy>);

impl SplitPolicy for BoxedPolicy {
    fn split(&self, rects: &[Rect], min: usize) -> (Vec<usize>, Vec<usize>) {
        self.0.split(rects, min)
    }
    fn name(&self) -> &'static str {
        self.0.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtree_geom::Point;

    fn squares(n: usize) -> Vec<Rect> {
        (0..n)
            .map(|i| {
                // Low-discrepancy-ish scatter, deterministic.
                let x = (i as f64 * 0.754_877_666) % 1.0;
                let y = (i as f64 * 0.569_840_296) % 1.0;
                Rect::centered(Point::new(x.min(0.99), y.min(0.99)), 0.005, 0.005)
            })
            .map(|r| r.clamp_unit().expect("generated inside unit square"))
            .collect()
    }

    fn check_loader(loader: BulkLoader, n: usize) -> RTree {
        let rects = squares(n);
        let tree = loader.load(&rects);
        tree.validate().expect("packed tree must be valid");
        assert_eq!(tree.len(), n);
        // Every item must be findable.
        for (i, r) in rects.iter().enumerate() {
            assert!(tree.search(r).contains(&(i as u64)));
        }
        tree
    }

    #[test]
    fn nx_structure() {
        let t = check_loader(BulkLoader::nearest_x(10), 500);
        // ceil(500/10) = 50 leaves, 5 level-1 nodes, 1 root.
        assert_eq!(t.node_count(), 56);
        assert_eq!(t.height(), 3);
    }

    #[test]
    fn hilbert_structure() {
        let t = check_loader(BulkLoader::hilbert(10), 500);
        assert_eq!(t.node_count(), 56);
    }

    #[test]
    fn morton_structure() {
        let t = check_loader(BulkLoader::morton(10), 500);
        assert_eq!(t.node_count(), 56);
    }

    #[test]
    fn str_structure() {
        let t = check_loader(BulkLoader::str_pack(10), 500);
        assert_eq!(t.node_count(), 56);
    }

    #[test]
    fn last_group_may_be_short() {
        // The paper: "the last group may contain less than n rectangles".
        let t = check_loader(BulkLoader::hilbert(10), 101);
        assert_eq!(t.height(), 3); // 11 leaves -> 2 nodes -> root
        assert_eq!(t.node_count(), 11 + 2 + 1);
    }

    #[test]
    fn single_item_tree() {
        let t = check_loader(BulkLoader::nearest_x(10), 1);
        assert_eq!(t.height(), 1);
        assert_eq!(t.node_count(), 1);
    }

    #[test]
    fn exactly_one_full_leaf() {
        let t = check_loader(BulkLoader::hilbert(10), 10);
        assert_eq!(t.height(), 1);
    }

    #[test]
    fn empty_load() {
        let t = BulkLoader::hilbert(10).load(&[]);
        assert!(t.is_empty());
        t.validate().unwrap();
    }

    #[test]
    fn hilbert_beats_nx_on_total_leaf_area() {
        // The qualitative fact the whole paper leans on: HS produces
        // better-clustered leaves than NX on 2-D scattered data.
        let rects = squares(2000);
        let area = |t: &RTree| -> f64 {
            t.level_mbrs()
                .last()
                .expect("leaf level exists")
                .iter()
                .map(Rect::area)
                .sum()
        };
        let hs = area(&BulkLoader::hilbert(20).load(&rects));
        let nx = area(&BulkLoader::nearest_x(20).load(&rects));
        assert!(hs < nx, "HS leaf area {hs} not better than NX {nx}");
    }

    #[test]
    fn tat_loads_and_validates() {
        let rects = squares(300);
        let t = TupleAtATime::quadratic(10).load(&rects);
        t.validate().unwrap();
        assert_eq!(t.len(), 300);
        // TAT space utilization is worse: strictly more nodes than packing.
        let packed = BulkLoader::hilbert(10).load(&rects);
        assert!(t.node_count() > packed.node_count());
    }

    #[test]
    fn small_capacity_packing() {
        let t = check_loader(BulkLoader::str_pack(2), 33);
        assert_eq!(t.max_entries(), 2);
        assert!(t.height() >= 5);
    }
}
