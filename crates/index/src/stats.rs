//! Tree statistics: the geometric aggregates the analytic model is built on
//! (`M_i`, `A`, `Lx`, `Ly`) plus packing-quality measures.

use crate::tree::RTree;
use rtree_geom::Rect;

/// Aggregates for one tree level (paper numbering: level 0 = root).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LevelStats {
    /// Number of nodes at this level (the paper's `M_i`).
    pub nodes: usize,
    /// Sum of node MBR areas at this level.
    pub total_area: f64,
    /// Sum of node MBR x-extents (contribution to `Lx`).
    pub total_x_extent: f64,
    /// Sum of node MBR y-extents (contribution to `Ly`).
    pub total_y_extent: f64,
    /// Average node fill (entries / capacity).
    pub avg_fill: f64,
}

/// Whole-tree statistics.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TreeStats {
    /// Per-level aggregates, root (level 0) first.
    pub levels: Vec<LevelStats>,
    /// Total number of nodes `M`.
    pub total_nodes: usize,
    /// Sum of all MBR areas (the paper's `A`).
    pub total_area: f64,
    /// Sum of all MBR x-extents (the paper's `Lx`).
    pub total_x_extent: f64,
    /// Sum of all MBR y-extents (the paper's `Ly`).
    pub total_y_extent: f64,
    /// Number of items stored.
    pub items: usize,
    /// Overall space utilization: items / (leaf nodes × capacity).
    pub leaf_utilization: f64,
}

impl TreeStats {
    /// Nodes per level, root first — the content of the paper's Table 2.
    pub fn nodes_per_level(&self) -> Vec<usize> {
        self.levels.iter().map(|l| l.nodes).collect()
    }
}

impl RTree {
    /// Computes per-level and whole-tree statistics.
    pub fn stats(&self) -> TreeStats {
        let height = self.height() as usize;
        let mut levels = vec![LevelStats::default(); height];
        let mut fill_sums = vec![0usize; height];
        for id in self.node_ids() {
            let n = self.node(id);
            if n.is_empty() {
                continue;
            }
            let paper_level = height - 1 - n.level() as usize;
            let mbr = n.mbr();
            let l = &mut levels[paper_level];
            l.nodes += 1;
            l.total_area += mbr.area();
            l.total_x_extent += mbr.x_extent();
            l.total_y_extent += mbr.y_extent();
            fill_sums[paper_level] += n.len();
        }
        for (l, &fill) in levels.iter_mut().zip(fill_sums.iter()) {
            if l.nodes > 0 {
                l.avg_fill = fill as f64 / (l.nodes * self.max_entries()) as f64;
            }
        }
        let leaf = levels.last().copied().unwrap_or_default();
        TreeStats {
            total_nodes: levels.iter().map(|l| l.nodes).sum(),
            total_area: levels.iter().map(|l| l.total_area).sum(),
            total_x_extent: levels.iter().map(|l| l.total_x_extent).sum(),
            total_y_extent: levels.iter().map(|l| l.total_y_extent).sum(),
            items: self.len(),
            leaf_utilization: if leaf.nodes > 0 {
                self.len() as f64 / (leaf.nodes * self.max_entries()) as f64
            } else {
                0.0
            },
            levels,
        }
    }

    /// Sum of the areas of all node MBRs (the paper's `A`, the expected
    /// number of nodes visited by an unclamped uniform point query).
    pub fn total_mbr_area(&self) -> f64 {
        self.stats().total_area
    }
}

/// Convenience: aggregates over a plain list of rectangles (used to report
/// model inputs for externally supplied MBR lists).
pub fn rect_aggregates(rects: &[Rect]) -> (f64, f64, f64) {
    let mut area = 0.0;
    let mut lx = 0.0;
    let mut ly = 0.0;
    for r in rects {
        area += r.area();
        lx += r.x_extent();
        ly += r.y_extent();
    }
    (area, lx, ly)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bulk::BulkLoader;
    use rtree_geom::Point;

    fn sample_tree(n: usize, cap: usize) -> RTree {
        let rects: Vec<Rect> = (0..n)
            .map(|i| {
                let x = (i as f64 * 0.618_033_988) % 1.0;
                let y = (i as f64 * 0.414_213_562) % 1.0;
                Rect::centered(
                    Point::new(x.clamp(0.01, 0.99), y.clamp(0.01, 0.99)),
                    0.01,
                    0.01,
                )
            })
            .collect();
        BulkLoader::hilbert(cap).load(&rects)
    }

    #[test]
    fn nodes_per_level_matches_ceil_division() {
        // This arithmetic is what produces the paper's Table 2.
        let t = sample_tree(1000, 25);
        let s = t.stats();
        // 1000/25 = 40 leaves, 40/25 -> 2, then the root.
        assert_eq!(s.nodes_per_level(), vec![1, 2, 40]);
        assert_eq!(s.total_nodes, 43);
        assert_eq!(s.items, 1000);
    }

    #[test]
    fn packed_leaves_are_full() {
        let t = sample_tree(1000, 25);
        let s = t.stats();
        assert!((s.leaf_utilization - 1.0).abs() < 1e-12);
    }

    #[test]
    fn root_level_is_first() {
        let t = sample_tree(1000, 25);
        let s = t.stats();
        assert_eq!(s.levels[0].nodes, 1);
        // Root MBR covers everything, so its area >= any leaf's.
        assert!(s.levels[0].total_area <= 1.0 + 1e-9);
        assert!(s.levels[0].total_area >= s.levels[2].total_area / s.levels[2].nodes as f64);
    }

    #[test]
    fn aggregates_are_sums_over_levels() {
        let t = sample_tree(500, 10);
        let s = t.stats();
        let area: f64 = s.levels.iter().map(|l| l.total_area).sum();
        assert!((area - s.total_area).abs() < 1e-12);
        // level_mbrs agrees with stats.
        let mbrs = t.level_mbrs();
        assert_eq!(mbrs.len(), s.levels.len());
        for (lvl, rects) in mbrs.iter().enumerate() {
            assert_eq!(rects.len(), s.levels[lvl].nodes);
            let (a, lx, ly) = rect_aggregates(rects);
            assert!((a - s.levels[lvl].total_area).abs() < 1e-12);
            assert!((lx - s.levels[lvl].total_x_extent).abs() < 1e-12);
            assert!((ly - s.levels[lvl].total_y_extent).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_tree_stats() {
        let t = RTree::builder(8).build();
        let s = t.stats();
        assert_eq!(s.total_nodes, 0);
        assert_eq!(s.items, 0);
        assert_eq!(s.leaf_utilization, 0.0);
    }
}
