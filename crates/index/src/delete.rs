//! Deletion with Guttman's condense-tree.
//!
//! The paper evaluates *loading* algorithms, but its model is explicitly a
//! tool "to evaluate the quality of any R-tree update operation"; a complete
//! index therefore needs deletion so that restructured trees can be fed to
//! the model too.

use crate::node::NodeId;
use crate::tree::RTree;
use rtree_geom::Rect;

impl RTree {
    /// Removes the item with the given id whose stored rectangle equals
    /// `rect`. Returns `true` if an item was removed.
    ///
    /// Underflowing nodes are dissolved and their entries reinserted at the
    /// appropriate level (Guttman's CondenseTree); if the root becomes an
    /// internal node with a single child the tree shrinks by one level.
    pub fn delete(&mut self, rect: &Rect, id: u64) -> bool {
        let Some(path) = self.find_leaf(self.root, rect, id) else {
            return false;
        };
        let leaf = *path.last().expect("find_leaf returns non-empty path");

        // Remove the entry from the leaf.
        let n = self.node_mut(leaf);
        let pos = n
            .entries()
            .position(|(r, p)| p == id && r == *rect)
            .expect("find_leaf located the entry");
        n.remove(pos);
        self.len -= 1;

        self.condense(path);
        true
    }

    /// Depth-first search for the leaf containing `(rect, id)`; returns the
    /// root-to-leaf path.
    fn find_leaf(&self, node: NodeId, rect: &Rect, id: u64) -> Option<Vec<NodeId>> {
        let n = self.node(node);
        if n.is_leaf() {
            if n.entries().any(|(r, p)| p == id && r == *rect) {
                return Some(vec![node]);
            }
            return None;
        }
        for i in 0..n.len() {
            if n.rect(i).contains_rect(rect) {
                if let Some(mut path) = self.find_leaf(n.child(i), rect, id) {
                    path.insert(0, node);
                    return Some(path);
                }
            }
        }
        None
    }

    /// CondenseTree: walk the path leaf-to-root, dissolving underfull nodes
    /// and collecting their entries for reinsertion; then fix up the root.
    fn condense(&mut self, mut path: Vec<NodeId>) {
        // (level, rect, ptr) entries awaiting reinsertion.
        let mut orphans: Vec<(u32, Rect, u64)> = Vec::new();

        while path.len() > 1 {
            let node_id = path.pop().expect("loop guard");
            let parent_id = *path.last().expect("loop guard");

            let slot = {
                let parent = self.node(parent_id);
                (0..parent.len())
                    .find(|&i| parent.child(i) == node_id)
                    .expect("parent links to child on path")
            };

            if self.node(node_id).len() < self.min_entries {
                // Dissolve: remove from parent, queue entries for reinsertion.
                self.node_mut(parent_id).remove(slot);
                let level = self.node(node_id).level;
                let entries: Vec<(Rect, u64)> = self.node(node_id).entries().collect();
                for (r, p) in entries {
                    orphans.push((level, r, p));
                }
                self.dealloc(node_id);
            } else {
                // Keep: tighten the parent's rectangle.
                let mbr = self.node(node_id).mbr();
                self.node_mut(parent_id).rects[slot] = mbr;
            }
        }

        // Reinsert orphans, higher levels first so subtree heights line up.
        orphans.sort_by_key(|o| std::cmp::Reverse(o.0));
        // An entry from a dissolved node at level L must be re-attached to a
        // node at level L, so its subtree keeps hanging at level L - 1.
        for (level, rect, ptr) in orphans {
            self.insert_at_level(rect, ptr, level);
        }

        // Shrink the root while it is an internal node with one child.
        loop {
            let root = self.node(self.root);
            if !root.is_leaf() && root.len() == 1 {
                let child = root.child(0);
                let old = self.root;
                self.root = child;
                self.dealloc(old);
            } else {
                break;
            }
        }
        // An empty tree collapses back to a bare leaf root.
        if self.len == 0 {
            let root = self.root;
            if self.node(root).level != 0 || !self.node(root).is_empty() {
                self.dealloc(root);
                let fresh = self.alloc(0);
                self.root = fresh;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_items(n: usize) -> Vec<(Rect, u64)> {
        let mut out = Vec::new();
        for i in 0..n {
            for j in 0..n {
                let x = i as f64 / n as f64;
                let y = j as f64 / n as f64;
                out.push((
                    Rect::new(x, y, x + 0.3 / n as f64, y + 0.3 / n as f64),
                    (i * n + j) as u64,
                ));
            }
        }
        out
    }

    #[test]
    fn delete_missing_returns_false() {
        let mut t = RTree::builder(4).build();
        t.insert(Rect::new(0.1, 0.1, 0.2, 0.2), 1);
        assert!(!t.delete(&Rect::new(0.5, 0.5, 0.6, 0.6), 1));
        assert!(!t.delete(&Rect::new(0.1, 0.1, 0.2, 0.2), 2));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn delete_single_item() {
        let mut t = RTree::builder(4).build();
        let r = Rect::new(0.1, 0.1, 0.2, 0.2);
        t.insert(r, 1);
        assert!(t.delete(&r, 1));
        assert!(t.is_empty());
        t.validate().unwrap();
    }

    #[test]
    fn delete_everything_in_insertion_order() {
        let mut t = RTree::builder(5).build();
        let items = grid_items(10);
        for (r, id) in &items {
            t.insert(*r, *id);
        }
        for (r, id) in &items {
            assert!(t.delete(r, *id), "lost item {id}");
            t.validate().unwrap();
        }
        assert!(t.is_empty());
        assert_eq!(t.height(), 1);
    }

    #[test]
    fn delete_everything_in_reverse_order() {
        let mut t = RTree::builder(5).build();
        let items = grid_items(8);
        for (r, id) in &items {
            t.insert(*r, *id);
        }
        for (r, id) in items.iter().rev() {
            assert!(t.delete(r, *id));
        }
        assert!(t.is_empty());
        t.validate().unwrap();
    }

    #[test]
    fn delete_half_keeps_rest_findable() {
        let mut t = RTree::builder(6).build();
        let items = grid_items(12);
        for (r, id) in &items {
            t.insert(*r, *id);
        }
        for (r, id) in items.iter().filter(|(_, id)| id % 2 == 0) {
            assert!(t.delete(r, *id));
        }
        t.validate().unwrap();
        assert_eq!(t.len(), items.len() / 2);
        for (r, id) in items.iter().filter(|(_, id)| id % 2 == 1) {
            assert!(t.search(r).contains(id), "survivor {id} lost");
        }
    }

    #[test]
    fn tree_shrinks_after_mass_delete() {
        let mut t = RTree::builder(4).build();
        let items = grid_items(10);
        for (r, id) in &items {
            t.insert(*r, *id);
        }
        let tall = t.height();
        assert!(tall >= 3);
        for (r, id) in items.iter().skip(3) {
            assert!(t.delete(r, *id));
        }
        assert!(t.height() < tall);
        t.validate().unwrap();
    }
}
