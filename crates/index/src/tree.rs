//! The R-tree container: arena storage, construction, and invariant checks.

use crate::node::{Node, NodeId};
use crate::split::{QuadraticSplit, SplitPolicy};
use rtree_geom::Rect;
use std::fmt;
use std::sync::Arc;

/// Builder for an empty [`RTree`] used with tuple-at-a-time insertion.
///
/// Defaults match the paper's TAT configuration: Guttman insertion with the
/// quadratic split heuristic and a 40% minimum fill.
pub struct RTreeBuilder {
    max_entries: usize,
    min_entries: Option<usize>,
    split: Arc<dyn SplitPolicy>,
    reinsert_fraction: Option<f64>,
}

impl RTreeBuilder {
    /// Starts a builder with the given node capacity (the paper's `n`).
    ///
    /// # Panics
    /// Panics if `max_entries < 4`.
    pub fn new(max_entries: usize) -> Self {
        assert!(max_entries >= 4, "node capacity must be at least 4");
        RTreeBuilder {
            max_entries,
            min_entries: None,
            split: Arc::new(QuadraticSplit),
            reinsert_fraction: None,
        }
    }

    /// Overrides the minimum fill (must be `2..=max_entries/2`).
    pub fn min_entries(mut self, m: usize) -> Self {
        assert!(m >= 2 && m <= self.max_entries / 2, "invalid min_entries");
        self.min_entries = Some(m);
        self
    }

    /// Overrides the node split policy (default: [`QuadraticSplit`]).
    pub fn split_policy(mut self, p: impl SplitPolicy + 'static) -> Self {
        self.split = Arc::new(p);
        self
    }

    /// Enables the R*-tree insertion path: on the first overflow at each
    /// level of an insertion, this fraction of the node's entries (those
    /// farthest from the node center) is removed and reinserted instead of
    /// splitting, and ChooseSubtree minimizes overlap enlargement at the
    /// target level (Beckmann et al., the paper's reference [1]).
    ///
    /// # Panics
    /// Panics unless `0 < fraction <= 0.45`.
    pub fn forced_reinsert(mut self, fraction: f64) -> Self {
        assert!(
            fraction > 0.0 && fraction <= 0.45,
            "reinsert fraction must be in (0, 0.45]"
        );
        self.reinsert_fraction = Some(fraction);
        self
    }

    /// Builds the empty tree.
    pub fn build(self) -> RTree {
        let max = self.max_entries;
        let min = self.min_entries.unwrap_or_else(|| (max * 2 / 5).max(2));
        let nodes = vec![Node::new(0, max)];
        RTree {
            nodes,
            free: Vec::new(),
            root: NodeId(0),
            max_entries: max,
            min_entries: min,
            len: 0,
            split: self.split,
            reinsert_fraction: self.reinsert_fraction,
        }
    }
}

/// An R-tree over `(Rect, u64)` items.
///
/// Nodes live in an arena (`Vec<Node>`) and are addressed by [`NodeId`]; one
/// node corresponds to one disk page in the buffering study.
#[derive(Clone)]
pub struct RTree {
    pub(crate) nodes: Vec<Node>,
    pub(crate) free: Vec<NodeId>,
    pub(crate) root: NodeId,
    pub(crate) max_entries: usize,
    pub(crate) min_entries: usize,
    pub(crate) len: usize,
    pub(crate) split: Arc<dyn SplitPolicy>,
    pub(crate) reinsert_fraction: Option<f64>,
}

impl fmt::Debug for RTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RTree")
            .field("len", &self.len)
            .field("height", &self.height())
            .field("node_count", &self.node_count())
            .field("max_entries", &self.max_entries)
            .field("min_entries", &self.min_entries)
            .finish()
    }
}

impl RTree {
    /// Starts building an empty tree with the given node capacity.
    pub fn builder(max_entries: usize) -> RTreeBuilder {
        RTreeBuilder::new(max_entries)
    }

    /// Number of items stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no items are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Node capacity (the paper's `n`).
    #[inline]
    pub fn max_entries(&self) -> usize {
        self.max_entries
    }

    /// Minimum fill enforced by deletion/splits (not binding on the root).
    #[inline]
    pub fn min_entries(&self) -> usize {
        self.min_entries
    }

    /// Root node id.
    #[inline]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Number of levels (a tree with only a root leaf has height 1).
    #[inline]
    pub fn height(&self) -> u32 {
        self.node(self.root).level + 1
    }

    /// Live node count (the number of pages the tree occupies).
    pub fn node_count(&self) -> usize {
        self.nodes.len() - self.free.len()
    }

    /// Borrows a node.
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    #[inline]
    pub(crate) fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.index()]
    }

    pub(crate) fn alloc(&mut self, level: u32) -> NodeId {
        if let Some(id) = self.free.pop() {
            self.nodes[id.index()] = Node::new(level, self.max_entries);
            id
        } else {
            let id = NodeId::from_index(self.nodes.len());
            self.nodes.push(Node::new(level, self.max_entries));
            id
        }
    }

    pub(crate) fn dealloc(&mut self, id: NodeId) {
        self.nodes[id.index()] = Node::new(0, 0);
        self.free.push(id);
    }

    /// Iterator over the ids of all live nodes, root first, in breadth-first
    /// (level) order — the traversal order used when materializing the tree
    /// onto pages.
    pub fn node_ids(&self) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.node_count());
        let mut frontier = vec![self.root];
        while !frontier.is_empty() {
            let mut next = Vec::new();
            for id in &frontier {
                let n = self.node(*id);
                if !n.is_leaf() {
                    for i in 0..n.len() {
                        next.push(n.child(i));
                    }
                }
            }
            out.extend_from_slice(&frontier);
            frontier = next;
        }
        out
    }

    /// Iterates over all stored items as `(rect, id)` pairs, in arbitrary
    /// order.
    pub fn items(&self) -> impl Iterator<Item = (Rect, u64)> + '_ {
        self.node_ids()
            .into_iter()
            .filter(|id| self.node(*id).is_leaf())
            .flat_map(move |id| {
                // node_ids() holds only live ids; collect per-leaf entries.
                self.node(id).entries().collect::<Vec<_>>()
            })
    }

    /// Per-level MBRs of all nodes, **in the paper's level numbering**:
    /// index 0 is the root level, index `H` the leaf level. The MBR of a
    /// node is the tight bounding box of its entries.
    ///
    /// This is the only input the analytic model needs (§3: "we compute the
    /// minimum bounding rectangles of tree nodes and use these as input to
    /// our buffer model").
    pub fn level_mbrs(&self) -> Vec<Vec<Rect>> {
        let height = self.height() as usize;
        let mut levels: Vec<Vec<Rect>> = vec![Vec::new(); height];
        for id in self.node_ids() {
            let n = self.node(id);
            if n.is_empty() {
                continue; // only possible for an empty root
            }
            // Paper level = height-1 - node.level (root is paper level 0).
            let paper_level = height - 1 - n.level as usize;
            levels[paper_level].push(n.mbr());
        }
        levels
    }

    /// Checks all structural invariants; used pervasively in tests.
    pub fn validate(&self) -> Result<(), ValidationError> {
        let root = self.node(self.root);
        if self.len == 0 {
            if !(root.is_leaf() && root.is_empty()) {
                return Err(ValidationError::new("empty tree must be a bare leaf root"));
            }
            return Ok(());
        }
        let mut item_count = 0usize;
        self.validate_node(self.root, self.node(self.root).level, true, &mut item_count)?;
        if item_count != self.len {
            return Err(ValidationError::new(format!(
                "item count mismatch: counted {item_count}, len {}",
                self.len
            )));
        }
        Ok(())
    }

    fn validate_node(
        &self,
        id: NodeId,
        expected_level: u32,
        is_root: bool,
        item_count: &mut usize,
    ) -> Result<(), ValidationError> {
        let n = self.node(id);
        if n.level != expected_level {
            return Err(ValidationError::new(format!(
                "node {id:?}: level {} but expected {expected_level}",
                n.level
            )));
        }
        if n.len() > self.max_entries {
            return Err(ValidationError::new(format!(
                "node {id:?}: overflow ({} > {})",
                n.len(),
                self.max_entries
            )));
        }
        if is_root {
            // Guttman: the root has at least two children unless it is a leaf.
            if !n.is_leaf() && n.len() < 2 {
                return Err(ValidationError::new("internal root with < 2 children"));
            }
        }
        for r in n.rects() {
            if !r.is_valid() {
                return Err(ValidationError::new(format!(
                    "node {id:?}: invalid rect {r}"
                )));
            }
        }
        if n.is_leaf() {
            *item_count += n.len();
        } else {
            for i in 0..n.len() {
                let child_id = n.child(i);
                let child = self.node(child_id);
                if child.is_empty() {
                    return Err(ValidationError::new(format!("empty child {child_id:?}")));
                }
                // Bulk-loaded trees may underfill interior slots only on the
                // rightmost path; Guttman trees enforce min_entries. We check
                // the weaker invariant (non-empty) plus tight MBRs, which both
                // construction paths must satisfy.
                let mbr = child.mbr();
                if n.rect(i) != mbr {
                    return Err(ValidationError::new(format!(
                        "node {id:?} entry {i}: stored rect {} != child MBR {mbr}",
                        n.rect(i)
                    )));
                }
                self.validate_node(child_id, expected_level - 1, false, item_count)?;
            }
        }
        Ok(())
    }
}

/// Error produced by [`RTree::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidationError {
    message: String,
}

impl ValidationError {
    fn new(message: impl Into<String>) -> Self {
        ValidationError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R-tree invariant violated: {}", self.message)
    }
}

impl std::error::Error for ValidationError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tree_is_valid() {
        let t = RTree::builder(8).build();
        assert!(t.is_empty());
        assert_eq!(t.height(), 1);
        assert_eq!(t.node_count(), 1);
        t.validate().unwrap();
    }

    #[test]
    fn builder_defaults() {
        let t = RTree::builder(10).build();
        assert_eq!(t.max_entries(), 10);
        assert_eq!(t.min_entries(), 4); // 40% of 10
    }

    #[test]
    fn builder_min_entries_override() {
        let t = RTree::builder(10).min_entries(5).build();
        assert_eq!(t.min_entries(), 5);
    }

    #[test]
    #[should_panic]
    fn builder_rejects_tiny_capacity() {
        let _ = RTree::builder(3);
    }

    #[test]
    #[should_panic]
    fn builder_rejects_bad_min() {
        let _ = RTree::builder(8).min_entries(7);
    }

    #[test]
    fn items_iterates_everything() {
        let mut t = RTree::builder(4).build();
        for i in 0..30u64 {
            let v = i as f64 / 40.0;
            t.insert(Rect::new(v, v, v + 0.01, v + 0.01), i);
        }
        let mut ids: Vec<u64> = t.items().map(|(_, id)| id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..30).collect::<Vec<u64>>());
        // Rects come back unchanged.
        let (r, id) = t.items().find(|(_, id)| *id == 7).expect("item 7");
        assert_eq!(
            r,
            Rect::new(7.0 / 40.0, 7.0 / 40.0, 7.0 / 40.0 + 0.01, 7.0 / 40.0 + 0.01)
        );
        assert_eq!(id, 7);
    }

    #[test]
    fn items_of_empty_tree() {
        let t = RTree::builder(4).build();
        assert_eq!(t.items().count(), 0);
    }

    #[test]
    fn alloc_reuses_freed_slots() {
        let mut t = RTree::builder(8).build();
        let a = t.alloc(0);
        t.dealloc(a);
        let b = t.alloc(1);
        assert_eq!(a, b);
        assert_eq!(t.node(b).level(), 1);
    }
}
