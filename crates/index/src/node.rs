//! Tree nodes.
//!
//! A node stores up to `max_entries` entries, each a rectangle plus a
//! pointer — exactly the paper's description of an R-tree node, and exactly
//! what is serialized into one disk page by `rtree-pager`. At leaf level the
//! pointer is an opaque item id; at internal levels it is a child [`NodeId`].

use rtree_geom::Rect;

/// Identifier of a node inside an [`crate::RTree`] arena.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The arena slot index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a `NodeId` from a raw index (used by the pager when
    /// mapping nodes to pages).
    #[inline]
    pub fn from_index(i: usize) -> Self {
        NodeId(u32::try_from(i).expect("node index exceeds u32"))
    }
}

/// One R-tree node: a level tag plus parallel arrays of rectangles and
/// pointers. `level == 0` is the leaf level (note: the *paper* numbers
/// levels from the root down; the conversion happens in
/// [`crate::RTree::level_mbrs`]).
#[derive(Clone, Debug)]
pub struct Node {
    pub(crate) level: u32,
    pub(crate) rects: Vec<Rect>,
    pub(crate) ptrs: Vec<u64>,
}

impl Node {
    pub(crate) fn new(level: u32, cap: usize) -> Self {
        Node {
            level,
            rects: Vec::with_capacity(cap + 1),
            ptrs: Vec::with_capacity(cap + 1),
        }
    }

    /// Height of this node above the leaf level (0 = leaf).
    #[inline]
    pub fn level(&self) -> u32 {
        self.level
    }

    /// True if this is a leaf node.
    #[inline]
    pub fn is_leaf(&self) -> bool {
        self.level == 0
    }

    /// Number of entries currently stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.rects.len()
    }

    /// True if the node has no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rects.is_empty()
    }

    /// The rectangle of entry `i`.
    #[inline]
    pub fn rect(&self, i: usize) -> Rect {
        self.rects[i]
    }

    /// All entry rectangles.
    #[inline]
    pub fn rects(&self) -> &[Rect] {
        &self.rects
    }

    /// Raw pointer value of entry `i` (child node index or item id).
    #[inline]
    pub fn ptr(&self, i: usize) -> u64 {
        self.ptrs[i]
    }

    /// Child node id of entry `i`.
    ///
    /// # Panics
    /// Panics if this is a leaf node.
    #[inline]
    pub fn child(&self, i: usize) -> NodeId {
        assert!(!self.is_leaf(), "leaf nodes have no children");
        NodeId(self.ptrs[i] as u32)
    }

    /// Item id of entry `i`.
    ///
    /// # Panics
    /// Panics if this is an internal node.
    #[inline]
    pub fn item_id(&self, i: usize) -> u64 {
        assert!(self.is_leaf(), "internal nodes have no items");
        self.ptrs[i]
    }

    /// Minimum bounding rectangle of all entries.
    ///
    /// # Panics
    /// Panics if the node is empty.
    pub fn mbr(&self) -> Rect {
        Rect::mbr_of(&self.rects)
    }

    /// Iterator over `(rect, pointer)` entries.
    pub fn entries(&self) -> impl Iterator<Item = (Rect, u64)> + '_ {
        self.rects.iter().copied().zip(self.ptrs.iter().copied())
    }

    pub(crate) fn push(&mut self, rect: Rect, ptr: u64) {
        self.rects.push(rect);
        self.ptrs.push(ptr);
    }

    pub(crate) fn remove(&mut self, i: usize) -> (Rect, u64) {
        (self.rects.swap_remove(i), self.ptrs.swap_remove(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_accessors() {
        let mut n = Node::new(0, 4);
        assert!(n.is_leaf());
        assert!(n.is_empty());
        n.push(Rect::new(0.0, 0.0, 0.5, 0.5), 7);
        n.push(Rect::new(0.25, 0.25, 1.0, 1.0), 9);
        assert_eq!(n.len(), 2);
        assert_eq!(n.item_id(0), 7);
        assert_eq!(n.mbr(), Rect::new(0.0, 0.0, 1.0, 1.0));
        let entries: Vec<_> = n.entries().collect();
        assert_eq!(entries[1], (Rect::new(0.25, 0.25, 1.0, 1.0), 9));
    }

    #[test]
    fn child_accessor_on_internal() {
        let mut n = Node::new(2, 4);
        n.push(Rect::new(0.0, 0.0, 0.1, 0.1), 3);
        assert_eq!(n.child(0), NodeId(3));
        assert!(!n.is_leaf());
    }

    #[test]
    #[should_panic]
    fn child_on_leaf_panics() {
        let mut n = Node::new(0, 4);
        n.push(Rect::new(0.0, 0.0, 0.1, 0.1), 3);
        let _ = n.child(0);
    }

    #[test]
    #[should_panic]
    fn item_on_internal_panics() {
        let mut n = Node::new(1, 4);
        n.push(Rect::new(0.0, 0.0, 0.1, 0.1), 3);
        let _ = n.item_id(0);
    }

    #[test]
    fn remove_swaps() {
        let mut n = Node::new(0, 4);
        n.push(Rect::new(0.0, 0.0, 0.1, 0.1), 1);
        n.push(Rect::new(0.2, 0.2, 0.3, 0.3), 2);
        n.push(Rect::new(0.4, 0.4, 0.5, 0.5), 3);
        let (_, id) = n.remove(0);
        assert_eq!(id, 1);
        assert_eq!(n.len(), 2);
        assert_eq!(n.item_id(0), 3); // swap_remove moved the last entry in
    }

    #[test]
    fn node_id_round_trip() {
        let id = NodeId::from_index(42);
        assert_eq!(id.index(), 42);
    }
}
