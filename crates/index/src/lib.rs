//! An R-tree index with the loading algorithms studied in
//! Leutenegger & López (ICDE 1998).
//!
//! The crate provides:
//!
//! * [`RTree`] — an arena-backed R-tree storing `(Rect, u64)` items, with
//!   Guttman insertion ([`RTreeBuilder`], quadratic or linear node splits),
//!   deletion with condense-tree, and region/point search.
//! * [`BulkLoader`] — bottom-up packing loaders: **NX** (nearest-X),
//!   **HS** (Hilbert sort), plus Morton and STR as extensions. Together with
//!   tuple-at-a-time insertion (**TAT**) these are the paper's §2.2 loading
//!   algorithms.
//! * Per-level MBR extraction ([`RTree::level_mbrs`]) — the input of the
//!   analytic models in `rtree-core`, using the paper's level numbering
//!   (level 0 = root).
//! * [`RTree::validate`] — structural invariant checking used heavily by
//!   the property-based tests.
//!
//! One tree node corresponds to one disk page throughout the study, so the
//! node capacity (`max_entries`) is the paper's "n rectangles per node".

mod bulk;
mod delete;
mod insert;
mod knn;
mod node;
mod query;
mod rstar;
mod split;
mod stats;
mod tree;

pub use bulk::{BulkLoader, PackingOrder, TupleAtATime};
pub use knn::Neighbor;
pub use node::{Node, NodeId};
pub use query::QueryStats;
pub use rstar::RStarSplit;
pub use split::{LinearSplit, QuadraticSplit, SplitPolicy};
pub use stats::{rect_aggregates, LevelStats, TreeStats};
pub use tree::{RTree, RTreeBuilder, ValidationError};
