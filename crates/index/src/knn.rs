//! k-nearest-neighbor search (branch-and-bound over MBR distances).
//!
//! Not part of the buffering study, but table stakes for an R-tree library
//! a downstream user would adopt. The classic best-first algorithm
//! (Hjaltason & Samet): a priority queue over minimum distances, expanding
//! nodes lazily, so only the nodes whose MBR could contain a closer item
//! are ever touched. The traversal reports accessed nodes through the same
//! callback shape as region search, so kNN workloads can be traced against
//! a buffer pool too.

use crate::node::NodeId;
use crate::tree::RTree;
use rtree_geom::{Point, Rect};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Minimum squared Euclidean distance from `p` to `r` (0 if inside).
fn min_dist2(p: &Point, r: &Rect) -> f64 {
    let dx = (r.lo.x - p.x).max(0.0).max(p.x - r.hi.x);
    let dy = (r.lo.y - p.y).max(0.0).max(p.y - r.hi.y);
    dx * dx + dy * dy
}

/// A search-queue entry ordered by ascending distance.
struct QueueEntry {
    dist2: f64,
    kind: EntryKind,
}

enum EntryKind {
    Node(NodeId),
    Item { rect: Rect, id: u64 },
}

impl PartialEq for QueueEntry {
    fn eq(&self, other: &Self) -> bool {
        self.dist2 == other.dist2
    }
}
impl Eq for QueueEntry {}
impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueueEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for min-first.
        other
            .dist2
            .partial_cmp(&self.dist2)
            .expect("distances are finite")
    }
}

/// One kNN result.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Neighbor {
    /// Item id.
    pub id: u64,
    /// The item's stored rectangle.
    pub rect: Rect,
    /// Euclidean distance from the query point to the rectangle.
    pub distance: f64,
}

impl RTree {
    /// Returns the `k` items nearest to `p` (by rectangle distance; items
    /// containing `p` have distance 0), closest first. Ties are broken
    /// arbitrarily. Returns fewer than `k` if the tree is smaller.
    pub fn nearest_neighbors(&self, p: &Point, k: usize) -> Vec<Neighbor> {
        self.nearest_neighbors_with(p, k, |_, _| {})
    }

    /// kNN with a node-access callback (for buffer tracing).
    pub fn nearest_neighbors_with(
        &self,
        p: &Point,
        k: usize,
        mut on_node: impl FnMut(NodeId, u32),
    ) -> Vec<Neighbor> {
        let mut result = Vec::with_capacity(k.min(self.len()));
        if k == 0 || self.is_empty() {
            return result;
        }
        let mut queue = BinaryHeap::new();
        queue.push(QueueEntry {
            dist2: min_dist2(p, &self.node(self.root).mbr()),
            kind: EntryKind::Node(self.root),
        });
        while let Some(entry) = queue.pop() {
            match entry.kind {
                EntryKind::Item { rect, id } => {
                    result.push(Neighbor {
                        id,
                        rect,
                        distance: entry.dist2.sqrt(),
                    });
                    if result.len() == k {
                        break;
                    }
                }
                EntryKind::Node(node_id) => {
                    let n = self.node(node_id);
                    on_node(node_id, n.level());
                    if n.is_leaf() {
                        for (rect, id) in n.entries() {
                            queue.push(QueueEntry {
                                dist2: min_dist2(p, &rect),
                                kind: EntryKind::Item { rect, id },
                            });
                        }
                    } else {
                        for i in 0..n.len() {
                            queue.push(QueueEntry {
                                dist2: min_dist2(p, &n.rect(i)),
                                kind: EntryKind::Node(n.child(i)),
                            });
                        }
                    }
                }
            }
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bulk::BulkLoader;

    fn grid_points(n: usize) -> Vec<Rect> {
        let mut out = Vec::new();
        for i in 0..n {
            for j in 0..n {
                out.push(Rect::point(Point::new(
                    i as f64 / (n - 1) as f64,
                    j as f64 / (n - 1) as f64,
                )));
            }
        }
        out
    }

    fn brute_force(rects: &[Rect], p: &Point, k: usize) -> Vec<u64> {
        let mut d: Vec<(f64, u64)> = rects
            .iter()
            .enumerate()
            .map(|(i, r)| (min_dist2(p, r), i as u64))
            .collect();
        d.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        d.into_iter().take(k).map(|(_, i)| i).collect()
    }

    #[test]
    fn min_dist_cases() {
        let r = Rect::new(0.4, 0.4, 0.6, 0.6);
        assert_eq!(min_dist2(&Point::new(0.5, 0.5), &r), 0.0); // inside
        assert!((min_dist2(&Point::new(0.3, 0.5), &r) - 0.01).abs() < 1e-12); // left
        assert!((min_dist2(&Point::new(0.7, 0.7), &r) - 0.02).abs() < 1e-12); // corner
    }

    #[test]
    fn nearest_one_is_the_containing_cell() {
        let rects = grid_points(11);
        let tree = BulkLoader::hilbert(8).load(&rects);
        let nn = tree.nearest_neighbors(&Point::new(0.5, 0.5), 1);
        assert_eq!(nn.len(), 1);
        assert_eq!(nn[0].distance, 0.0);
        assert_eq!(nn[0].rect, Rect::point(Point::new(0.5, 0.5)));
    }

    #[test]
    fn knn_matches_brute_force() {
        let rects = grid_points(13);
        let tree = BulkLoader::str_pack(10).load(&rects);
        for (px, py, k) in [
            (0.21, 0.37, 5),
            (0.0, 0.0, 3),
            (0.99, 0.5, 10),
            (0.5, 0.5, 1),
        ] {
            let p = Point::new(px, py);
            let got: Vec<f64> = tree
                .nearest_neighbors(&p, k)
                .iter()
                .map(|n| n.distance)
                .collect();
            let want: Vec<f64> = brute_force(&rects, &p, k)
                .iter()
                .map(|&i| min_dist2(&p, &rects[i as usize]).sqrt())
                .collect();
            // Compare distances (ids can tie).
            for (g, w) in got.iter().zip(&want) {
                assert!((g - w).abs() < 1e-12, "query ({px},{py}) k={k}");
            }
            assert_eq!(got.len(), k);
        }
    }

    #[test]
    fn results_are_sorted_by_distance() {
        let rects = grid_points(9);
        let tree = BulkLoader::nearest_x(6).load(&rects);
        let nn = tree.nearest_neighbors(&Point::new(0.33, 0.66), 12);
        for w in nn.windows(2) {
            assert!(w[0].distance <= w[1].distance + 1e-15);
        }
    }

    #[test]
    fn k_larger_than_tree_returns_everything() {
        let rects = grid_points(3);
        let tree = BulkLoader::hilbert(4).load(&rects);
        let nn = tree.nearest_neighbors(&Point::new(0.5, 0.5), 100);
        assert_eq!(nn.len(), 9);
    }

    #[test]
    fn k_zero_and_empty_tree() {
        let rects = grid_points(3);
        let tree = BulkLoader::hilbert(4).load(&rects);
        assert!(tree.nearest_neighbors(&Point::new(0.5, 0.5), 0).is_empty());
        let empty = RTree::builder(4).build();
        assert!(empty.nearest_neighbors(&Point::new(0.5, 0.5), 3).is_empty());
    }

    #[test]
    fn knn_touches_fewer_nodes_than_full_scan() {
        let rects = grid_points(40); // 1,600 points
        let tree = BulkLoader::hilbert(16).load(&rects);
        let mut touched = 0usize;
        let _ = tree.nearest_neighbors_with(&Point::new(0.5, 0.5), 4, |_, _| touched += 1);
        assert!(
            touched * 5 < tree.node_count(),
            "kNN touched {touched} of {} nodes",
            tree.node_count()
        );
    }
}
