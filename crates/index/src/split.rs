//! Guttman node-split heuristics.
//!
//! When a node overflows during tuple-at-a-time insertion its `M + 1`
//! entries must be partitioned into two groups. The paper's TAT loader uses
//! Guttman's *quadratic* heuristic; the *linear* heuristic is provided as an
//! ablation baseline (`ablation_splits` experiment).

use rtree_geom::Rect;

/// A node-split heuristic: partitions `rects` (of length `max_entries + 1`)
/// into two groups, each holding at least `min` entries.
///
/// Returns the entry indices of each group; together they must cover
/// `0..rects.len()` exactly once.
pub trait SplitPolicy: Send + Sync {
    /// Partition `rects` into two groups of at least `min` entries each.
    fn split(&self, rects: &[Rect], min: usize) -> (Vec<usize>, Vec<usize>);

    /// Short name used in experiment output.
    fn name(&self) -> &'static str;
}

/// Guttman's quadratic split: pick the pair of seeds wasting the most area,
/// then repeatedly assign the entry with the greatest affinity difference to
/// the group whose MBR it enlarges least.
#[derive(Clone, Copy, Debug, Default)]
pub struct QuadraticSplit;

impl SplitPolicy for QuadraticSplit {
    fn split(&self, rects: &[Rect], min: usize) -> (Vec<usize>, Vec<usize>) {
        let n = rects.len();
        assert!(
            n >= 2 && 2 * min <= n,
            "cannot split {n} entries with min {min}"
        );

        // PickSeeds: maximize d = area(union) - area(a) - area(b).
        let (mut s1, mut s2) = (0usize, 1usize);
        let mut worst = f64::NEG_INFINITY;
        for i in 0..n {
            for j in (i + 1)..n {
                let d = rects[i].union(&rects[j]).area() - rects[i].area() - rects[j].area();
                if d > worst {
                    worst = d;
                    s1 = i;
                    s2 = j;
                }
            }
        }

        let mut g1 = vec![s1];
        let mut g2 = vec![s2];
        let mut mbr1 = rects[s1];
        let mut mbr2 = rects[s2];
        let mut remaining: Vec<usize> = (0..n).filter(|&i| i != s1 && i != s2).collect();

        while !remaining.is_empty() {
            // If one group must absorb everything to reach `min`, do so.
            if g1.len() + remaining.len() == min {
                g1.append(&mut remaining);
                break;
            }
            if g2.len() + remaining.len() == min {
                g2.append(&mut remaining);
                break;
            }

            // PickNext: entry with maximum |d1 - d2|.
            let (mut best_k, mut best_diff) = (0usize, f64::NEG_INFINITY);
            let mut best_d = (0.0, 0.0);
            for (k, &i) in remaining.iter().enumerate() {
                let d1 = mbr1.enlargement(&rects[i]);
                let d2 = mbr2.enlargement(&rects[i]);
                let diff = (d1 - d2).abs();
                if diff > best_diff {
                    best_diff = diff;
                    best_k = k;
                    best_d = (d1, d2);
                }
            }
            let i = remaining.swap_remove(best_k);
            let (d1, d2) = best_d;

            // Resolve ties by smaller area, then fewer entries (Guttman).
            let to_first = if d1 < d2 {
                true
            } else if d2 < d1 {
                false
            } else if mbr1.area() < mbr2.area() {
                true
            } else if mbr2.area() < mbr1.area() {
                false
            } else {
                g1.len() <= g2.len()
            };
            if to_first {
                mbr1 = mbr1.union(&rects[i]);
                g1.push(i);
            } else {
                mbr2 = mbr2.union(&rects[i]);
                g2.push(i);
            }
        }
        (g1, g2)
    }

    fn name(&self) -> &'static str {
        "quadratic"
    }
}

/// Guttman's linear split: seeds with the greatest normalized separation,
/// remaining entries assigned in input order by least enlargement.
#[derive(Clone, Copy, Debug, Default)]
pub struct LinearSplit;

impl SplitPolicy for LinearSplit {
    fn split(&self, rects: &[Rect], min: usize) -> (Vec<usize>, Vec<usize>) {
        let n = rects.len();
        assert!(
            n >= 2 && 2 * min <= n,
            "cannot split {n} entries with min {min}"
        );

        // LinearPickSeeds: per dimension, the entry with the highest low side
        // and the one with the lowest high side; normalize the separation by
        // the total extent; take the dimension with the greatest value.
        let seed_pair = |lows: &dyn Fn(&Rect) -> f64, highs: &dyn Fn(&Rect) -> f64| {
            let mut max_low = 0usize;
            let mut min_high = 0usize;
            let mut lo_all = f64::INFINITY;
            let mut hi_all = f64::NEG_INFINITY;
            for (i, r) in rects.iter().enumerate() {
                if lows(r) > lows(&rects[max_low]) {
                    max_low = i;
                }
                if highs(r) < highs(&rects[min_high]) {
                    min_high = i;
                }
                lo_all = lo_all.min(lows(r));
                hi_all = hi_all.max(highs(r));
            }
            let width = (hi_all - lo_all).max(f64::MIN_POSITIVE);
            let sep = (lows(&rects[max_low]) - highs(&rects[min_high])) / width;
            (sep, max_low, min_high)
        };
        let (sep_x, ax, bx) = seed_pair(&|r: &Rect| r.lo.x, &|r: &Rect| r.hi.x);
        let (sep_y, ay, by) = seed_pair(&|r: &Rect| r.lo.y, &|r: &Rect| r.hi.y);
        let (mut s1, mut s2) = if sep_x >= sep_y { (ax, bx) } else { (ay, by) };
        if s1 == s2 {
            // Degenerate (e.g. identical rectangles): fall back to first two.
            s1 = 0;
            s2 = if s1 == 0 { 1 } else { 0 };
        }

        let mut g1 = vec![s1];
        let mut g2 = vec![s2];
        let mut mbr1 = rects[s1];
        let mut mbr2 = rects[s2];
        let mut remaining: Vec<usize> = (0..n).filter(|&i| i != s1 && i != s2).collect();

        while let Some(i) = remaining.pop() {
            if g1.len() + remaining.len() + 1 == min {
                g1.push(i);
                g1.append(&mut remaining);
                break;
            }
            if g2.len() + remaining.len() + 1 == min {
                g2.push(i);
                g2.append(&mut remaining);
                break;
            }
            if mbr1.enlargement(&rects[i]) <= mbr2.enlargement(&rects[i]) {
                mbr1 = mbr1.union(&rects[i]);
                g1.push(i);
            } else {
                mbr2 = mbr2.union(&rects[i]);
                g2.push(i);
            }
        }
        (g1, g2)
    }

    fn name(&self) -> &'static str {
        "linear"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_partition(policy: &dyn SplitPolicy, rects: &[Rect], min: usize) {
        let (g1, g2) = policy.split(rects, min);
        assert!(g1.len() >= min, "{}: group 1 too small", policy.name());
        assert!(g2.len() >= min, "{}: group 2 too small", policy.name());
        assert_eq!(g1.len() + g2.len(), rects.len());
        let mut all: Vec<usize> = g1.iter().chain(g2.iter()).copied().collect();
        all.sort_unstable();
        let expect: Vec<usize> = (0..rects.len()).collect();
        assert_eq!(all, expect, "{}: not a partition", policy.name());
    }

    fn clustered_rects() -> Vec<Rect> {
        // Two obvious clusters: bottom-left and top-right.
        vec![
            Rect::new(0.0, 0.0, 0.1, 0.1),
            Rect::new(0.05, 0.05, 0.15, 0.15),
            Rect::new(0.1, 0.0, 0.2, 0.1),
            Rect::new(0.8, 0.8, 0.9, 0.9),
            Rect::new(0.85, 0.85, 0.95, 0.95),
        ]
    }

    #[test]
    fn quadratic_is_a_partition() {
        check_partition(&QuadraticSplit, &clustered_rects(), 2);
    }

    #[test]
    fn linear_is_a_partition() {
        check_partition(&LinearSplit, &clustered_rects(), 2);
    }

    #[test]
    fn quadratic_separates_clusters() {
        let rects = clustered_rects();
        let (g1, g2) = QuadraticSplit.split(&rects, 2);
        // The two top-right rects (indices 3, 4) must land together.
        let together = (g1.contains(&3) && g1.contains(&4)) || (g2.contains(&3) && g2.contains(&4));
        assert!(together, "clusters split apart: {g1:?} {g2:?}");
    }

    #[test]
    fn identical_rects_still_split() {
        let rects = vec![Rect::new(0.4, 0.4, 0.6, 0.6); 6];
        check_partition(&QuadraticSplit, &rects, 3);
        check_partition(&LinearSplit, &rects, 3);
    }

    #[test]
    fn min_fill_is_respected_in_skewed_input() {
        // One far-away outlier: force-assignment must still fill both groups.
        let mut rects = vec![Rect::new(0.9, 0.9, 1.0, 1.0)];
        for i in 0..7 {
            let o = i as f64 * 0.01;
            rects.push(Rect::new(o, o, o + 0.005, o + 0.005));
        }
        check_partition(&QuadraticSplit, &rects, 4);
        check_partition(&LinearSplit, &rects, 4);
    }

    #[test]
    fn degenerate_point_rects() {
        let rects: Vec<Rect> = (0..5)
            .map(|i| {
                let v = i as f64 / 5.0;
                Rect::new(v, v, v, v)
            })
            .collect();
        check_partition(&QuadraticSplit, &rects, 2);
        check_partition(&LinearSplit, &rects, 2);
    }
}
