//! The R*-tree split heuristic (Beckmann, Kriegel, Schneider & Seeger —
//! reference [1] of the paper).
//!
//! The paper's TAT loader uses Guttman's quadratic split; the R* split is
//! the strongest classical alternative and is included as an extension so
//! the buffer model can rank all three split heuristics (`ablation_splits`).
//! This implements the R* *split* (ChooseSplitAxis by minimum total margin,
//! ChooseSplitIndex by minimum overlap, ties by area); forced reinsertion —
//! the other half of the R*-tree — is an insertion-path policy, not a split
//! policy, and is out of scope here.

use crate::split::SplitPolicy;
use rtree_geom::Rect;

/// The R* split heuristic.
#[derive(Clone, Copy, Debug, Default)]
pub struct RStarSplit;

/// One candidate distribution: the first `k` of `order` against the rest.
struct Distribution<'a> {
    order: &'a [usize],
    k: usize,
    mbr1: Rect,
    mbr2: Rect,
}

impl Distribution<'_> {
    fn margin(&self) -> f64 {
        self.mbr1.margin() + self.mbr2.margin()
    }

    fn overlap(&self) -> f64 {
        self.mbr1.intersection(&self.mbr2).map_or(0.0, |i| i.area())
    }

    fn area(&self) -> f64 {
        self.mbr1.area() + self.mbr2.area()
    }
}

fn mbr_of_indices(rects: &[Rect], idx: &[usize]) -> Rect {
    idx[1..]
        .iter()
        .fold(rects[idx[0]], |acc, &i| acc.union(&rects[i]))
}

/// Enumerates the R* distributions of one axis ordering and folds them with
/// `f`.
fn for_each_distribution<'a>(
    rects: &[Rect],
    order: &'a [usize],
    min: usize,
    mut f: impl FnMut(Distribution<'a>),
) {
    let n = order.len();
    // Prefix and suffix MBRs to make each distribution O(1).
    let mut prefix = Vec::with_capacity(n);
    let mut acc = rects[order[0]];
    prefix.push(acc);
    for &i in &order[1..] {
        acc = acc.union(&rects[i]);
        prefix.push(acc);
    }
    let mut suffix = vec![rects[order[n - 1]]; n];
    for j in (0..n - 1).rev() {
        suffix[j] = suffix[j + 1].union(&rects[order[j]]);
    }
    for k in min..=(n - min) {
        f(Distribution {
            order,
            k,
            mbr1: prefix[k - 1],
            mbr2: suffix[k],
        });
    }
}

impl SplitPolicy for RStarSplit {
    fn split(&self, rects: &[Rect], min: usize) -> (Vec<usize>, Vec<usize>) {
        let n = rects.len();
        assert!(
            n >= 2 && 2 * min <= n,
            "cannot split {n} entries with min {min}"
        );

        // Four sort orders: by lower and upper value on each axis.
        let mut orders: [Vec<usize>; 4] = std::array::from_fn(|_| (0..n).collect());
        let keys: [fn(&Rect) -> f64; 4] = [|r| r.lo.x, |r| r.hi.x, |r| r.lo.y, |r| r.hi.y];
        for (order, key) in orders.iter_mut().zip(keys) {
            order.sort_by(|&a, &b| {
                key(&rects[a])
                    .partial_cmp(&key(&rects[b]))
                    .expect("finite coordinates")
            });
        }

        // ChooseSplitAxis: the axis (x = orders 0,1; y = orders 2,3) with
        // the smallest sum of distribution margins.
        let margin_sum = |a: &[usize], b: &[usize]| {
            let mut s = 0.0;
            for order in [a, b] {
                for_each_distribution(rects, order, min, |d| s += d.margin());
            }
            s
        };
        let sx = margin_sum(&orders[0], &orders[1]);
        let sy = margin_sum(&orders[2], &orders[3]);
        let axis_orders: [&Vec<usize>; 2] = if sx <= sy {
            [&orders[0], &orders[1]]
        } else {
            [&orders[2], &orders[3]]
        };

        // ChooseSplitIndex: minimum overlap, ties by minimum total area.
        let mut best: Option<(f64, f64, &[usize], usize)> = None;
        for order in axis_orders {
            for_each_distribution(rects, order, min, |d| {
                let key = (d.overlap(), d.area());
                let better = match &best {
                    None => true,
                    Some((o, a, _, _)) => key.0 < *o || (key.0 == *o && key.1 < *a),
                };
                if better {
                    best = Some((key.0, key.1, d.order, d.k));
                }
            });
        }
        let (_, _, order, k) = best.expect("at least one distribution exists");
        let g1 = order[..k].to_vec();
        let g2 = order[k..].to_vec();
        debug_assert_eq!(mbr_of_indices(rects, &g1), {
            let mut m = rects[g1[0]];
            for &i in &g1[1..] {
                m = m.union(&rects[i]);
            }
            m
        });
        (g1, g2)
    }

    fn name(&self) -> &'static str {
        "rstar"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_partition(rects: &[Rect], min: usize) -> (Vec<usize>, Vec<usize>) {
        let (g1, g2) = RStarSplit.split(rects, min);
        assert!(g1.len() >= min && g2.len() >= min);
        let mut all: Vec<usize> = g1.iter().chain(g2.iter()).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..rects.len()).collect::<Vec<_>>());
        (g1, g2)
    }

    #[test]
    fn splits_two_clusters_with_zero_overlap() {
        let rects = vec![
            Rect::new(0.0, 0.0, 0.1, 0.1),
            Rect::new(0.05, 0.02, 0.12, 0.09),
            Rect::new(0.02, 0.05, 0.09, 0.15),
            Rect::new(0.8, 0.8, 0.9, 0.9),
            Rect::new(0.85, 0.82, 0.95, 0.88),
            Rect::new(0.82, 0.85, 0.89, 0.95),
        ];
        let (g1, g2) = check_partition(&rects, 2);
        let mbr = |g: &[usize]| {
            g[1..]
                .iter()
                .fold(rects[g[0]], |acc, &i| acc.union(&rects[i]))
        };
        // Perfect split: the two cluster MBRs must not overlap.
        assert!(mbr(&g1).intersection(&mbr(&g2)).is_none());
    }

    #[test]
    fn respects_min_fill() {
        let mut rects = vec![Rect::new(0.9, 0.9, 1.0, 1.0)];
        for i in 0..8 {
            let o = i as f64 * 0.01;
            rects.push(Rect::new(o, o, o + 0.004, o + 0.004));
        }
        let (g1, g2) = check_partition(&rects, 4);
        assert!(g1.len() >= 4 && g2.len() >= 4);
    }

    #[test]
    fn identical_rects_still_split() {
        let rects = vec![Rect::new(0.4, 0.4, 0.6, 0.6); 7];
        check_partition(&rects, 3);
    }

    #[test]
    fn degenerate_points_split() {
        let rects: Vec<Rect> = (0..6)
            .map(|i| {
                let v = i as f64 / 6.0;
                Rect::point(rtree_geom::Point::new(v, 1.0 - v))
            })
            .collect();
        check_partition(&rects, 2);
    }

    #[test]
    fn splits_along_elongated_axis() {
        // Entries in a horizontal line: the split must cut on x, producing
        // two horizontally adjacent groups rather than interleaving.
        let rects: Vec<Rect> = (0..8)
            .map(|i| {
                let x = i as f64 * 0.1;
                Rect::new(x, 0.5, x + 0.05, 0.55)
            })
            .collect();
        let (g1, g2) = check_partition(&rects, 3);
        let max1 = g1.iter().map(|&i| rects[i].hi.x).fold(f64::MIN, f64::max);
        let min2 = g2.iter().map(|&i| rects[i].lo.x).fold(f64::MAX, f64::min);
        let max2 = g2.iter().map(|&i| rects[i].hi.x).fold(f64::MIN, f64::max);
        let min1 = g1.iter().map(|&i| rects[i].lo.x).fold(f64::MAX, f64::min);
        // One group entirely left of the other.
        assert!(max1 <= min2 + 0.051 || max2 <= min1 + 0.051);
    }

    #[test]
    fn rstar_beats_linear_on_overlap() {
        use crate::split::LinearSplit;
        // Scattered rects: R* should produce no worse group overlap than
        // the linear heuristic on average. Single deterministic check:
        let rects: Vec<Rect> = (0..12)
            .map(|i| {
                let x = (i as f64 * 0.618) % 0.9;
                let y = (i as f64 * 0.414) % 0.9;
                Rect::new(x, y, x + 0.08, y + 0.08)
            })
            .collect();
        let overlap = |(g1, g2): (Vec<usize>, Vec<usize>)| {
            let mbr = |g: &[usize]| {
                g[1..]
                    .iter()
                    .fold(rects[g[0]], |acc, &i| acc.union(&rects[i]))
            };
            mbr(&g1).intersection(&mbr(&g2)).map_or(0.0, |i| i.area())
        };
        let rs = overlap(RStarSplit.split(&rects, 5));
        let lin = overlap(LinearSplit.split(&rects, 5));
        assert!(rs <= lin + 1e-12, "R* overlap {rs} vs linear {lin}");
    }
}
