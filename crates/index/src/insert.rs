//! Tuple-at-a-time insertion: Guttman's algorithm (the paper's TAT loader)
//! plus the R*-tree insertion path (reference [1] of the paper) as an
//! opt-in — overlap-aware ChooseSubtree and forced reinsertion.

use crate::node::NodeId;
use crate::tree::RTree;
use rtree_geom::Rect;
use std::sync::Arc;

impl RTree {
    /// Inserts one item using the tree's configured insertion algorithm:
    /// Guttman by default (ChooseLeaf by least enlargement, split on
    /// overflow, AdjustTree upward), or the R* path when the tree was built
    /// with [`crate::RTreeBuilder::forced_reinsert`].
    pub fn insert(&mut self, rect: Rect, id: u64) {
        assert!(rect.is_valid(), "cannot insert invalid rect {rect}");
        self.insert_at_level(rect, id, 0);
        self.len += 1;
    }

    /// Inserts an entry at a given node level (level 0 = leaf). Levels above
    /// 0 are used by condense-tree and forced reinsertion to re-attach
    /// subtrees; `ptr` is then a child [`NodeId`] index.
    pub(crate) fn insert_at_level(&mut self, rect: Rect, ptr: u64, level: u32) {
        if self.reinsert_fraction.is_some() {
            // One forced reinsert per level per top-level insertion
            // (R* overflow treatment); levels fit in a u64 bitmask.
            let mut reinserted: u64 = 0;
            self.insert_entry(rect, ptr, level, &mut reinserted);
        } else {
            let mut no_reinserts = u64::MAX; // every level already "done"
            self.insert_entry(rect, ptr, level, &mut no_reinserts);
        }
    }

    /// Chooses the child slot to descend into from `node` for an entry with
    /// rectangle `rect` heading to `target_level`.
    fn choose_subtree_slot(&self, node: NodeId, rect: &Rect, target_level: u32) -> usize {
        let n = self.node(node);
        // R* refinement: when the children are at the target level, minimize
        // *overlap* enlargement (ties: area enlargement, then area). Only
        // active for R*-configured trees; Guttman always uses enlargement.
        if self.reinsert_fraction.is_some() && n.level() == target_level + 1 {
            let rects = n.rects();
            let mut best = 0usize;
            let mut best_key = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
            for (i, r) in rects.iter().enumerate() {
                let grown = r.union(rect);
                let mut overlap_delta = 0.0;
                for (j, other) in rects.iter().enumerate() {
                    if i == j {
                        continue;
                    }
                    let after = grown.intersection(other).map_or(0.0, |x| x.area());
                    let before = r.intersection(other).map_or(0.0, |x| x.area());
                    overlap_delta += after - before;
                }
                let key = (overlap_delta, r.enlargement(rect), r.area());
                if key < best_key {
                    best_key = key;
                    best = i;
                }
            }
            return best;
        }
        // Guttman: least enlargement, ties by smallest area.
        let mut best = 0usize;
        let mut best_enl = f64::INFINITY;
        let mut best_area = f64::INFINITY;
        for (i, r) in n.rects().iter().enumerate() {
            let enl = r.enlargement(rect);
            let area = r.area();
            if enl < best_enl || (enl == best_enl && area < best_area) {
                best = i;
                best_enl = enl;
                best_area = area;
            }
        }
        best
    }

    /// Core insertion: descend to `level`, install, then resolve overflows
    /// walking back up (forced reinsert once per level if configured,
    /// otherwise split).
    fn insert_entry(&mut self, rect: Rect, ptr: u64, level: u32, reinserted: &mut u64) {
        debug_assert!(level <= self.node(self.root).level);

        let mut path: Vec<(NodeId, usize)> = Vec::new();
        let mut current = self.root;
        while self.node(current).level > level {
            let slot = self.choose_subtree_slot(current, &rect, level);
            path.push((current, slot));
            current = self.node(current).child(slot);
        }

        self.node_mut(current).push(rect, ptr);

        // Resolve an overflow at `current` (bottom), then walk up.
        let mut split_off: Option<NodeId> = None;
        if self.node(current).len() > self.max_entries {
            match self.try_forced_reinsert(current, &path, reinserted) {
                Some(removed) => {
                    // Tree is consistent again; reinsert and stop this walk.
                    self.reinsert_entries(removed, reinserted);
                    return;
                }
                None => split_off = Some(self.split_node(current)),
            }
        }

        while let Some((parent, slot)) = path.pop() {
            // Refresh the parent's rectangle for the adjusted child.
            let child_id = self.node(parent).child(slot);
            let mbr = self.node(child_id).mbr();
            self.node_mut(parent).rects[slot] = mbr;

            if let Some(new_node) = split_off.take() {
                let new_mbr = self.node(new_node).mbr();
                self.node_mut(parent).push(new_mbr, new_node.index() as u64);
                if self.node(parent).len() > self.max_entries {
                    match self.try_forced_reinsert(parent, &path, reinserted) {
                        Some(removed) => {
                            self.finish_tightening(&mut path);
                            self.reinsert_entries(removed, reinserted);
                            return;
                        }
                        None => split_off = Some(self.split_node(parent)),
                    }
                }
            }
        }

        // Root split: grow the tree by one level.
        if let Some(new_node) = split_off {
            let old_root = self.root;
            let root_level = self.node(old_root).level + 1;
            let new_root = self.alloc(root_level);
            let m1 = self.node(old_root).mbr();
            let m2 = self.node(new_node).mbr();
            let r = self.node_mut(new_root);
            r.push(m1, old_root.index() as u64);
            r.push(m2, new_node.index() as u64);
            self.root = new_root;
        }
    }

    /// R* overflow treatment: if enabled, not yet done at this node's level
    /// during the current insertion, and the node is not the root, remove
    /// the ~30% of entries whose centers lie farthest from the node's MBR
    /// center, tighten every ancestor on `path`, and return the removed
    /// entries as `(level, rect, ptr)` for reinsertion.
    fn try_forced_reinsert(
        &mut self,
        node: NodeId,
        path: &[(NodeId, usize)],
        reinserted: &mut u64,
    ) -> Option<Vec<(u32, Rect, u64)>> {
        let fraction = self.reinsert_fraction?;
        let level = self.node(node).level;
        let is_root = node == self.root;
        if is_root || level >= 64 || (*reinserted >> level) & 1 == 1 {
            return None;
        }
        let len = self.node(node).len();
        let p = ((len as f64 * fraction).ceil() as usize)
            .max(1)
            .min(len.saturating_sub(self.min_entries));
        if p == 0 {
            return None;
        }
        *reinserted |= 1 << level;

        // Sort entry indices by distance of their center from the node MBR
        // center, farthest first ("far" candidates leave).
        let center = self.node(node).mbr().center();
        let mut order: Vec<usize> = (0..len).collect();
        let n = self.node(node);
        order.sort_by(|&a, &b| {
            let da = n.rect(a).center().distance(&center);
            let db = n.rect(b).center().distance(&center);
            db.partial_cmp(&da).expect("finite distances")
        });
        let mut doomed: Vec<usize> = order[..p].to_vec();
        // Remove by descending index so swap_remove stays stable.
        doomed.sort_unstable_by(|a, b| b.cmp(a));
        let mut removed = Vec::with_capacity(p);
        for i in doomed {
            let (r, ptr) = self.node_mut(node).remove(i);
            removed.push((level, r, ptr));
        }
        // Close-reinsert (the R* paper's recommendation): nearest first.
        removed.sort_by(|a, b| {
            let da = a.1.center().distance(&center);
            let db = b.1.center().distance(&center);
            da.partial_cmp(&db).expect("finite distances")
        });

        // Tighten every ancestor on the path, bottom-up.
        for &(parent, slot) in path.iter().rev() {
            let child_id = self.node(parent).child(slot);
            let mbr = self.node(child_id).mbr();
            self.node_mut(parent).rects[slot] = mbr;
        }
        Some(removed)
    }

    /// Tightens the remaining ancestors of a walk that ends early because a
    /// forced reinsert resolved the overflow.
    fn finish_tightening(&mut self, path: &mut Vec<(NodeId, usize)>) {
        while let Some((parent, slot)) = path.pop() {
            let child_id = self.node(parent).child(slot);
            let mbr = self.node(child_id).mbr();
            self.node_mut(parent).rects[slot] = mbr;
        }
    }

    fn reinsert_entries(&mut self, removed: Vec<(u32, Rect, u64)>, reinserted: &mut u64) {
        for (level, r, ptr) in removed {
            // The tree may have grown/shrunk meanwhile; the level of an
            // entry is intrinsic, so re-attach at the same level.
            self.insert_entry(r, ptr, level, reinserted);
        }
    }

    /// Splits an overflowing node in place; returns the id of the new
    /// sibling holding the second group.
    fn split_node(&mut self, id: NodeId) -> NodeId {
        let level = self.node(id).level;
        let sibling = self.alloc(level);
        let policy = Arc::clone(&self.split);

        let node = self.node_mut(id);
        let rects = std::mem::take(&mut node.rects);
        let ptrs = std::mem::take(&mut node.ptrs);
        let (g1, g2) = policy.split(&rects, self.min_entries.min(rects.len() / 2));

        {
            let node = self.node_mut(id);
            for &i in &g1 {
                node.push(rects[i], ptrs[i]);
            }
        }
        {
            let sib = self.node_mut(sibling);
            for &i in &g2 {
                sib.push(rects[i], ptrs[i]);
            }
        }
        sibling
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::split::{LinearSplit, QuadraticSplit};
    use crate::tree::RTreeBuilder;

    fn grid_rects(n: usize) -> Vec<Rect> {
        // n x n grid of small squares.
        let mut out = Vec::new();
        for i in 0..n {
            for j in 0..n {
                let x = i as f64 / n as f64;
                let y = j as f64 / n as f64;
                out.push(Rect::new(x, y, x + 0.4 / n as f64, y + 0.4 / n as f64));
            }
        }
        out
    }

    fn rstar_builder(cap: usize) -> RTreeBuilder {
        RTree::builder(cap)
            .split_policy(crate::rstar::RStarSplit)
            .forced_reinsert(0.3)
    }

    #[test]
    fn single_insert() {
        let mut t = RTree::builder(4).build();
        t.insert(Rect::new(0.1, 0.1, 0.2, 0.2), 42);
        assert_eq!(t.len(), 1);
        assert_eq!(t.height(), 1);
        t.validate().unwrap();
    }

    #[test]
    fn overflow_splits_root_leaf() {
        let mut t = RTree::builder(4).build();
        for (i, r) in grid_rects(3).into_iter().take(5).enumerate() {
            t.insert(r, i as u64);
        }
        assert_eq!(t.len(), 5);
        assert_eq!(t.height(), 2);
        t.validate().unwrap();
    }

    #[test]
    fn many_inserts_keep_invariants_quadratic() {
        let mut t = RTree::builder(8).split_policy(QuadraticSplit).build();
        for (i, r) in grid_rects(20).into_iter().enumerate() {
            t.insert(r, i as u64);
            if i % 97 == 0 {
                t.validate().unwrap();
            }
        }
        assert_eq!(t.len(), 400);
        assert!(t.height() >= 3);
        t.validate().unwrap();
    }

    #[test]
    fn many_inserts_keep_invariants_linear() {
        let mut t = RTree::builder(8).split_policy(LinearSplit).build();
        for (i, r) in grid_rects(15).into_iter().enumerate() {
            t.insert(r, i as u64);
        }
        assert_eq!(t.len(), 225);
        t.validate().unwrap();
    }

    #[test]
    fn many_inserts_keep_invariants_rstar() {
        let mut t = rstar_builder(8).build();
        for (i, r) in grid_rects(20).into_iter().enumerate() {
            t.insert(r, i as u64);
            if i % 97 == 0 {
                t.validate().unwrap();
            }
        }
        assert_eq!(t.len(), 400);
        t.validate().unwrap();
    }

    #[test]
    fn rstar_items_all_findable() {
        let mut t = rstar_builder(6).build();
        let rects = grid_rects(14);
        for (i, r) in rects.iter().enumerate() {
            t.insert(*r, i as u64);
        }
        for (i, r) in rects.iter().enumerate() {
            assert!(t.search(r).contains(&(i as u64)), "item {i} lost");
        }
    }

    #[test]
    fn rstar_beats_guttman_on_leaf_area() {
        // The point of forced reinsertion: tighter leaves than plain
        // quadratic-split insertion on scattered data.
        let rects: Vec<Rect> = (0..1500)
            .map(|i| {
                let x = (i as f64 * 0.618_033_988) % 0.95;
                let y = (i as f64 * 0.414_213_562) % 0.95;
                Rect::new(x, y, x + 0.01, y + 0.01)
            })
            .collect();
        let total_area =
            |t: &RTree| -> f64 { t.level_mbrs().iter().flatten().map(Rect::area).sum() };
        let mut guttman = RTree::builder(16).build();
        let mut rstar = rstar_builder(16).build();
        for (i, r) in rects.iter().enumerate() {
            guttman.insert(*r, i as u64);
            rstar.insert(*r, i as u64);
        }
        rstar.validate().unwrap();
        let (g, r) = (total_area(&guttman), total_area(&rstar));
        assert!(r < g, "R* total MBR area {r} not better than Guttman {g}");
    }

    #[test]
    fn rstar_delete_reinsert_cycle() {
        let mut t = rstar_builder(6).build();
        let rects = grid_rects(10);
        for (i, r) in rects.iter().enumerate() {
            t.insert(*r, i as u64);
        }
        for (i, r) in rects.iter().enumerate().take(50) {
            assert!(t.delete(r, i as u64));
        }
        t.validate().unwrap();
        assert_eq!(t.len(), 50);
    }

    #[test]
    fn all_items_findable_after_inserts() {
        let mut t = RTree::builder(6).build();
        let rects = grid_rects(12);
        for (i, r) in rects.iter().enumerate() {
            t.insert(*r, i as u64);
        }
        for (i, r) in rects.iter().enumerate() {
            let hits = t.search(r);
            assert!(hits.contains(&(i as u64)), "item {i} lost");
        }
    }

    #[test]
    fn duplicate_rects_allowed() {
        let mut t = RTree::builder(4).build();
        let r = Rect::new(0.5, 0.5, 0.6, 0.6);
        for i in 0..50 {
            t.insert(r, i);
        }
        assert_eq!(t.len(), 50);
        t.validate().unwrap();
        assert_eq!(t.search(&r).len(), 50);
    }

    #[test]
    fn duplicate_rects_with_rstar() {
        // Forced reinsert on identical rects must terminate (distance ties).
        let mut t = rstar_builder(4).build();
        let r = Rect::new(0.5, 0.5, 0.6, 0.6);
        for i in 0..60 {
            t.insert(r, i);
        }
        assert_eq!(t.len(), 60);
        t.validate().unwrap();
    }
}
