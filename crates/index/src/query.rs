//! Region and point search.
//!
//! The traversal retrieves *all and only* the rectangles (internal or not)
//! intersecting the query region — the semantics assumed by both the model
//! and the paper's simulator. [`RTree::trace`] returns the node access
//! sequence, which is what gets replayed against a buffer pool.

use crate::node::NodeId;
use crate::tree::RTree;
use rtree_geom::{Point, Rect};

/// Per-query access statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Number of tree nodes touched (the metric of the bufferless models).
    pub nodes_accessed: usize,
    /// Number of matching items reported.
    pub results: usize,
}

impl RTree {
    /// Returns the ids of all items whose rectangle intersects `query`.
    pub fn search(&self, query: &Rect) -> Vec<u64> {
        let mut out = Vec::new();
        self.search_with(query, |_, _| {}, |id| out.push(id));
        out
    }

    /// Returns the ids of all items whose rectangle contains `p`.
    pub fn point_search(&self, p: &Point) -> Vec<u64> {
        self.search(&Rect::point(*p))
    }

    /// Region search with callbacks: `on_node(id, level)` fires for every
    /// node accessed (root first, depth-first), `on_item` for every match.
    pub fn search_with(
        &self,
        query: &Rect,
        mut on_node: impl FnMut(NodeId, u32),
        mut on_item: impl FnMut(u64),
    ) -> QueryStats {
        let mut stats = QueryStats::default();
        if self.is_empty() {
            return stats;
        }
        // The paper's access semantics: a node is accessed iff its MBR
        // intersects the query. Parent entries encode this for all non-root
        // nodes; the root's own MBR must be checked explicitly (both the
        // analytic model and the paper's simulator treat the root the same
        // way as any other node).
        if !self.node(self.root).mbr().intersects(query) {
            return stats;
        }
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            let n = self.node(id);
            stats.nodes_accessed += 1;
            on_node(id, n.level());
            if n.is_leaf() {
                for (r, item) in n.entries() {
                    if r.intersects(query) {
                        stats.results += 1;
                        on_item(item);
                    }
                }
            } else {
                for i in 0..n.len() {
                    if n.rect(i).intersects(query) {
                        stack.push(n.child(i));
                    }
                }
            }
        }
        stats
    }

    /// The sequence of nodes a region query touches, root first. A node
    /// appears iff its parent entry rectangle intersects the query, which —
    /// because parent rectangles contain child MBRs — is exactly the set of
    /// all nodes whose MBR intersects the query.
    pub fn trace(&self, query: &Rect) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.search_with(query, |id, _| out.push(id), |_| {});
        out
    }

    /// Counts nodes accessed by a query without materializing results.
    pub fn count_accesses(&self, query: &Rect) -> usize {
        self.search_with(query, |_, _| {}, |_| {}).nodes_accessed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bulk::BulkLoader;

    fn grid_tree(n: usize, cap: usize) -> (RTree, Vec<Rect>) {
        let mut rects = Vec::new();
        for i in 0..n {
            for j in 0..n {
                let x = i as f64 / n as f64;
                let y = j as f64 / n as f64;
                rects.push(Rect::new(x, y, x + 0.5 / n as f64, y + 0.5 / n as f64));
            }
        }
        (BulkLoader::hilbert(cap).load(&rects), rects)
    }

    #[test]
    fn empty_tree_returns_nothing() {
        let t = RTree::builder(4).build();
        assert!(t.search(&Rect::new(0.0, 0.0, 1.0, 1.0)).is_empty());
        assert_eq!(t.count_accesses(&Rect::new(0.0, 0.0, 1.0, 1.0)), 0);
    }

    #[test]
    fn full_cover_query_returns_all() {
        let (t, rects) = grid_tree(10, 8);
        let mut hits = t.search(&Rect::new(0.0, 0.0, 1.0, 1.0));
        hits.sort_unstable();
        let expect: Vec<u64> = (0..rects.len() as u64).collect();
        assert_eq!(hits, expect);
    }

    #[test]
    fn search_matches_linear_scan() {
        let (t, rects) = grid_tree(13, 6);
        let queries = [
            Rect::new(0.0, 0.0, 0.3, 0.3),
            Rect::new(0.45, 0.45, 0.55, 0.55),
            Rect::new(0.9, 0.0, 1.0, 1.0),
            Rect::point(Point::new(0.31, 0.72)),
        ];
        for q in &queries {
            let mut hits = t.search(q);
            hits.sort_unstable();
            let mut expect: Vec<u64> = rects
                .iter()
                .enumerate()
                .filter(|(_, r)| r.intersects(q))
                .map(|(i, _)| i as u64)
                .collect();
            expect.sort_unstable();
            assert_eq!(hits, expect);
        }
    }

    #[test]
    fn trace_equals_flat_mbr_scan() {
        // The paper's simulator checks every node MBR independently; the
        // hierarchical traversal must touch exactly the same set.
        let (t, _) = grid_tree(12, 5);
        let q = Rect::new(0.2, 0.3, 0.43, 0.41);
        let mut traced = t.trace(&q);
        traced.sort_unstable();
        let mut flat: Vec<NodeId> = t
            .node_ids()
            .into_iter()
            .filter(|id| t.node(*id).mbr().intersects(&q))
            .collect();
        flat.sort_unstable();
        assert_eq!(traced, flat);
    }

    #[test]
    fn trace_starts_at_root() {
        let (t, _) = grid_tree(10, 5);
        let q = Rect::point(Point::new(0.5, 0.5));
        let trace = t.trace(&q);
        assert_eq!(trace[0], t.root());
    }

    #[test]
    fn stats_count_matches_trace_len() {
        let (t, _) = grid_tree(9, 5);
        let q = Rect::new(0.1, 0.1, 0.6, 0.2);
        assert_eq!(t.count_accesses(&q), t.trace(&q).len());
    }
}
