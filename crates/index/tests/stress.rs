//! Randomized operation-sequence stress test: an R-tree driven by a long
//! mixed stream of inserts, deletes and searches must agree with a naive
//! oracle (a `Vec` scan) at every step and keep its invariants.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtree_geom::{Point, Rect};
use rtree_index::{LinearSplit, RStarSplit, RTree, TupleAtATime};

/// The oracle: a flat list of live items.
#[derive(Default)]
struct Oracle {
    items: Vec<(Rect, u64)>,
}

impl Oracle {
    fn insert(&mut self, r: Rect, id: u64) {
        self.items.push((r, id));
    }

    fn delete(&mut self, r: &Rect, id: u64) -> bool {
        if let Some(pos) = self.items.iter().position(|(ir, ii)| ii == &id && ir == r) {
            self.items.swap_remove(pos);
            true
        } else {
            false
        }
    }

    fn search(&self, q: &Rect) -> Vec<u64> {
        let mut v: Vec<u64> = self
            .items
            .iter()
            .filter(|(r, _)| r.intersects(q))
            .map(|(_, id)| *id)
            .collect();
        v.sort_unstable();
        v
    }
}

fn random_rect(rng: &mut StdRng) -> Rect {
    let x: f64 = rng.gen_range(0.0..0.95);
    let y: f64 = rng.gen_range(0.0..0.95);
    let w: f64 = rng.gen_range(0.0..0.05);
    let h: f64 = rng.gen_range(0.0..0.05);
    Rect::new(x, y, x + w, y + h)
}

fn stress(mut tree: RTree, seed: u64, ops: usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut oracle = Oracle::default();
    let mut next_id = 0u64;

    for step in 0..ops {
        let roll: f64 = rng.gen();
        if roll < 0.55 || oracle.items.is_empty() {
            // Insert.
            let r = random_rect(&mut rng);
            tree.insert(r, next_id);
            oracle.insert(r, next_id);
            next_id += 1;
        } else if roll < 0.8 {
            // Delete a random live item.
            let k = rng.gen_range(0..oracle.items.len());
            let (r, id) = oracle.items[k];
            assert!(tree.delete(&r, id), "step {step}: delete lost item {id}");
            assert!(oracle.delete(&r, id));
        } else if roll < 0.95 {
            // Region search.
            let q = random_rect(&mut rng);
            let mut got = tree.search(&q);
            got.sort_unstable();
            assert_eq!(got, oracle.search(&q), "step {step}: search diverged");
        } else {
            // Point search.
            let p = Point::new(rng.gen(), rng.gen());
            let mut got = tree.point_search(&p);
            got.sort_unstable();
            assert_eq!(
                got,
                oracle.search(&Rect::point(p)),
                "step {step}: point search diverged"
            );
        }
        assert_eq!(tree.len(), oracle.items.len(), "step {step}: len diverged");
        if step % 251 == 0 {
            tree.validate()
                .unwrap_or_else(|e| panic!("step {step}: {e}"));
        }
    }
    tree.validate().expect("final invariants");
    // Final state equivalence.
    let everything = Rect::new(0.0, 0.0, 1.0, 1.0);
    let mut got = tree.search(&everything);
    got.sort_unstable();
    assert_eq!(got, oracle.search(&everything));
}

#[test]
fn stress_guttman_quadratic() {
    stress(RTree::builder(8).build(), 1, 3_000);
}

#[test]
fn stress_guttman_linear() {
    stress(
        RTree::builder(6).split_policy(LinearSplit).build(),
        2,
        2_500,
    );
}

#[test]
fn stress_rstar_full() {
    stress(
        RTree::builder(8)
            .split_policy(RStarSplit)
            .forced_reinsert(0.3)
            .build(),
        3,
        3_000,
    );
}

#[test]
fn stress_small_capacity_deep_tree() {
    stress(RTree::builder(4).build(), 4, 2_000);
}

#[test]
fn stress_on_top_of_bulk_load() {
    // Start from a packed tree, then churn.
    let mut rng = StdRng::seed_from_u64(5);
    let base: Vec<Rect> = (0..500).map(|_| random_rect(&mut rng)).collect();
    let tree = TupleAtATime::rstar(8).load(&base);
    // Re-drive the same items through the oracle by reusing the stress
    // harness starting from scratch is simpler: here just verify churn on
    // the loaded tree keeps invariants and count.
    let mut tree = tree;
    for (i, r) in base.iter().enumerate().take(250) {
        assert!(tree.delete(r, i as u64));
    }
    for (i, r) in base.iter().enumerate().take(250) {
        tree.insert(*r, i as u64);
    }
    tree.validate().unwrap();
    assert_eq!(tree.len(), 500);
}
