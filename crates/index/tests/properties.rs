//! Property-based tests: every construction path must yield a structurally
//! valid tree whose queries agree with a linear scan.

use proptest::prelude::*;
use rtree_geom::{Point, Rect};
use rtree_index::{BulkLoader, LinearSplit, RStarSplit, RTree, TupleAtATime};

fn arb_rect() -> impl Strategy<Value = Rect> {
    ((0.0f64..=1.0, 0.0f64..=1.0), (0.0f64..=0.2, 0.0f64..=0.2)).prop_map(|((x, y), (w, h))| {
        Rect::new(
            x * 0.8,
            y * 0.8,
            (x * 0.8 + w).min(1.0),
            (y * 0.8 + h).min(1.0),
        )
    })
}

fn arb_rects(max: usize) -> impl Strategy<Value = Vec<Rect>> {
    prop::collection::vec(arb_rect(), 1..max)
}

fn scan(rects: &[Rect], q: &Rect) -> Vec<u64> {
    let mut v: Vec<u64> = rects
        .iter()
        .enumerate()
        .filter(|(_, r)| r.intersects(q))
        .map(|(i, _)| i as u64)
        .collect();
    v.sort_unstable();
    v
}

fn assert_agrees(tree: &RTree, rects: &[Rect], q: &Rect) {
    tree.validate().expect("invariants");
    let mut hits = tree.search(q);
    hits.sort_unstable();
    assert_eq!(hits, scan(rects, q));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn packed_loaders_agree_with_scan(rects in arb_rects(300), q in arb_rect(), cap in 4usize..32) {
        for loader in [
            BulkLoader::nearest_x(cap),
            BulkLoader::hilbert(cap),
            BulkLoader::morton(cap),
            BulkLoader::str_pack(cap),
        ] {
            let tree = loader.load(&rects);
            assert_agrees(&tree, &rects, &q);
        }
    }

    #[test]
    fn tat_quadratic_agrees_with_scan(rects in arb_rects(200), q in arb_rect(), cap in 4usize..16) {
        let tree = TupleAtATime::quadratic(cap).load(&rects);
        assert_agrees(&tree, &rects, &q);
    }

    #[test]
    fn tat_linear_agrees_with_scan(rects in arb_rects(150), q in arb_rect(), cap in 4usize..16) {
        let tree = TupleAtATime::with_split(cap, LinearSplit).load(&rects);
        assert_agrees(&tree, &rects, &q);
    }

    #[test]
    fn tat_rstar_agrees_with_scan(rects in arb_rects(150), q in arb_rect(), cap in 4usize..16) {
        let tree = TupleAtATime::with_split(cap, RStarSplit).load(&rects);
        assert_agrees(&tree, &rects, &q);
    }

    #[test]
    fn packed_node_count_is_exact(rects in arb_rects(400), cap in 2usize..32) {
        // The general algorithm is fully deterministic in shape:
        // ceil(R/n) nodes per level until a single root remains.
        let tree = BulkLoader::hilbert(cap).load(&rects);
        let mut expected = 0usize;
        let mut level_count = rects.len();
        loop {
            level_count = level_count.div_ceil(cap);
            expected += level_count;
            if level_count == 1 {
                break;
            }
        }
        prop_assert_eq!(tree.node_count(), expected);
    }

    #[test]
    fn delete_then_search_consistent(rects in arb_rects(120), keep_mod in 2u64..5) {
        let mut tree = TupleAtATime::quadratic(6).load(&rects);
        for (i, r) in rects.iter().enumerate() {
            if !(i as u64).is_multiple_of(keep_mod) {
                prop_assert!(tree.delete(r, i as u64));
            }
        }
        tree.validate().expect("invariants after deletes");
        let survivors: Vec<(usize, &Rect)> = rects
            .iter()
            .enumerate()
            .filter(|(i, _)| (*i as u64).is_multiple_of(keep_mod))
            .collect();
        prop_assert_eq!(tree.len(), survivors.len());
        for (i, r) in survivors {
            prop_assert!(tree.search(r).contains(&(i as u64)));
        }
    }

    #[test]
    fn insert_after_bulk_load(rects in arb_rects(150), extra in arb_rects(30)) {
        // Mixed workload: packed base + TAT additions stays consistent.
        let mut tree = BulkLoader::str_pack(8).load(&rects);
        for (j, r) in extra.iter().enumerate() {
            tree.insert(*r, (rects.len() + j) as u64);
        }
        tree.validate().expect("invariants");
        let q = Rect::new(0.0, 0.0, 1.0, 1.0);
        let all: Vec<Rect> = rects.iter().chain(extra.iter()).copied().collect();
        let mut hits = tree.search(&q);
        hits.sort_unstable();
        prop_assert_eq!(hits.len(), all.len());
    }

    #[test]
    fn point_search_agrees(rects in arb_rects(200), p in (0.0f64..=1.0, 0.0f64..=1.0)) {
        let tree = BulkLoader::hilbert(8).load(&rects);
        let pt = Point::new(p.0, p.1);
        let mut hits = tree.point_search(&pt);
        hits.sort_unstable();
        prop_assert_eq!(hits, scan(&rects, &Rect::point(pt)));
    }

    #[test]
    fn trace_covers_exactly_intersecting_nodes(rects in arb_rects(250), q in arb_rect()) {
        let tree = BulkLoader::nearest_x(6).load(&rects);
        let mut traced = tree.trace(&q);
        traced.sort_unstable();
        traced.dedup();
        let mut flat: Vec<_> = tree
            .node_ids()
            .into_iter()
            .filter(|id| tree.node(*id).mbr().intersects(&q))
            .collect();
        flat.sort_unstable();
        prop_assert_eq!(traced, flat);
    }
}
