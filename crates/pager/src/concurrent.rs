//! Concurrent disk-backed query execution.
//!
//! A database serves many clients at once; this module provides a
//! shared-ownership [`ConcurrentDiskRTree`] that multiple threads can query
//! concurrently. The design is the classical latch-protected mapping table:
//! pool bookkeeping (residency, replacement, read counting) sits behind one
//! short [`parking_lot::Mutex`] critical section per page access, while
//! frames are shared as `Arc<[u8]>` so decoding and geometry tests — the
//! CPU-heavy part of a query — run outside the lock.

use crate::disk_tree::materialize;
use crate::{IoStats, NodePage, PageMeta, PageStore, PAGE_SIZE};
use parking_lot::Mutex;
use rtree_buffer::{AccessOutcome, BufferPool, PageId, ReplacementPolicy};
use rtree_geom::Rect;
use rtree_index::RTree;
use std::collections::HashMap;
use std::io;
use std::sync::Arc;

struct PoolState<S: PageStore> {
    store: S,
    pool: BufferPool,
    frames: HashMap<PageId, Arc<[u8]>>,
    stats: IoStats,
}

impl<S: PageStore> PoolState<S> {
    fn fetch(&mut self, id: PageId) -> io::Result<Arc<[u8]>> {
        match self.pool.access(id) {
            AccessOutcome::Hit => Ok(Arc::clone(
                self.frames.get(&id).expect("resident page has a frame"),
            )),
            AccessOutcome::Miss { evicted } => {
                if let Some(victim) = evicted {
                    self.frames.remove(&victim);
                }
                let mut buf = vec![0u8; PAGE_SIZE];
                self.store.read_page(id, &mut buf)?;
                self.stats.reads += 1;
                let frame: Arc<[u8]> = Arc::from(buf.into_boxed_slice());
                self.frames.insert(id, Arc::clone(&frame));
                Ok(frame)
            }
            AccessOutcome::MissBypass => {
                let mut buf = vec![0u8; PAGE_SIZE];
                self.store.read_page(id, &mut buf)?;
                self.stats.reads += 1;
                Ok(Arc::from(buf.into_boxed_slice()))
            }
        }
    }
}

/// A disk-backed R-tree that can be queried from many threads at once
/// (`&self` queries; wrap in an `Arc` to share).
pub struct ConcurrentDiskRTree<S: PageStore> {
    state: Mutex<PoolState<S>>,
    meta: PageMeta,
}

impl<S: PageStore> ConcurrentDiskRTree<S> {
    /// Serializes `tree` into `store` and returns a shareable handle.
    ///
    /// # Panics
    /// Panics if the tree is empty or its node capacity exceeds
    /// [`crate::MAX_ENTRIES_PER_PAGE`].
    pub fn create(
        mut store: S,
        tree: &RTree,
        buffer_capacity: usize,
        policy: impl ReplacementPolicy + 'static,
    ) -> io::Result<Self> {
        let meta = materialize(&mut store, tree)?;
        Ok(ConcurrentDiskRTree {
            state: Mutex::new(PoolState {
                store,
                pool: BufferPool::new(buffer_capacity, policy),
                frames: HashMap::with_capacity(buffer_capacity + 1),
                stats: IoStats::default(),
            }),
            meta,
        })
    }

    /// Opens a previously materialized tree.
    pub fn open(
        mut store: S,
        buffer_capacity: usize,
        policy: impl ReplacementPolicy + 'static,
    ) -> io::Result<Self> {
        let mut buf = vec![0u8; PAGE_SIZE];
        store.read_page(PageId(0), &mut buf)?;
        let meta = PageMeta::decode(&buf)?;
        Ok(ConcurrentDiskRTree {
            state: Mutex::new(PoolState {
                store,
                pool: BufferPool::new(buffer_capacity, policy),
                frames: HashMap::with_capacity(buffer_capacity + 1),
                stats: IoStats::default(),
            }),
            meta,
        })
    }

    /// The stored metadata.
    pub fn meta(&self) -> &PageMeta {
        &self.meta
    }

    /// Physical I/O counters so far (all threads). The concurrent tree is
    /// read-only, so `writes` stays 0 — the shape matches
    /// [`crate::BufferManager::io_stats`] so benches report one thing.
    pub fn io_stats(&self) -> IoStats {
        self.state.lock().stats
    }

    /// Physical page reads so far (all threads).
    pub fn physical_reads(&self) -> u64 {
        self.state.lock().stats.reads
    }

    /// Resets the I/O counters and pool statistics.
    pub fn reset_counters(&self) {
        let mut s = self.state.lock();
        s.stats = IoStats::default();
        s.pool.reset_stats();
    }

    /// Pins the top `p` levels (reads them once).
    pub fn pin_top_levels(&self, p: usize) -> io::Result<()> {
        assert!(p <= self.meta.level_starts.len(), "not that many levels");
        let end = if p == self.meta.level_starts.len() {
            self.meta.nodes + 1
        } else {
            self.meta.level_starts[p]
        };
        let mut s = self.state.lock();
        for page in 1..end {
            let id = PageId(page);
            let was_resident = s.pool.contains(id);
            let evicted = s
                .pool
                .pin(id)
                .map_err(|e| io::Error::new(io::ErrorKind::OutOfMemory, e.to_string()))?;
            if let Some(victim) = evicted {
                s.frames.remove(&victim);
            }
            if !was_resident {
                let mut buf = vec![0u8; PAGE_SIZE];
                s.store.read_page(id, &mut buf)?;
                s.stats.reads += 1;
                s.frames.insert(id, Arc::from(buf.into_boxed_slice()));
            }
        }
        Ok(())
    }

    fn fetch(&self, id: PageId) -> io::Result<Arc<[u8]>> {
        self.state.lock().fetch(id)
    }

    /// Executes a region query; safe to call from many threads.
    pub fn query(&self, query: &Rect) -> io::Result<Vec<u64>> {
        let mut results = Vec::new();
        let root = PageId(self.meta.root);

        // Uncharged root peek (model semantics: a node is accessed iff its
        // MBR intersects the query).
        let root_frame = {
            let mut s = self.state.lock();
            if let Some(f) = s.frames.get(&root) {
                Arc::clone(f)
            } else {
                let mut buf = vec![0u8; PAGE_SIZE];
                s.store.read_page(root, &mut buf)?;
                Arc::from(buf.into_boxed_slice())
            }
        };
        let root_node = NodePage::decode(&root_frame)?;
        if root_node.entries.is_empty() {
            return Ok(results);
        }
        let root_mbr = root_node
            .entries
            .iter()
            .skip(1)
            .fold(root_node.entries[0].0, |acc, (r, _)| acc.union(r));
        if !root_mbr.intersects(query) {
            return Ok(results);
        }

        let mut stack = vec![root];
        while let Some(pid) = stack.pop() {
            let frame = self.fetch(pid)?;
            let node = NodePage::decode(&frame)?;
            for (r, ptr) in &node.entries {
                if r.intersects(query) {
                    if node.level == 0 {
                        results.push(*ptr);
                    } else {
                        stack.push(PageId(*ptr));
                    }
                }
            }
        }
        Ok(results)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemStore;
    use rtree_buffer::LruPolicy;
    use rtree_geom::Point;
    use rtree_index::BulkLoader;

    fn sample_rects(n: usize) -> Vec<Rect> {
        (0..n)
            .map(|i| {
                let x = (i as f64 * 0.618_033) % 0.97;
                let y = (i as f64 * 0.414_213) % 0.97;
                Rect::new(x, y, x + 0.01, y + 0.01)
            })
            .collect()
    }

    #[test]
    fn single_thread_matches_in_memory() {
        let rects = sample_rects(800);
        let tree = BulkLoader::hilbert(16).load(&rects);
        let disk =
            ConcurrentDiskRTree::create(MemStore::new(), &tree, 64, LruPolicy::new()).unwrap();
        for q in [
            Rect::new(0.1, 0.1, 0.4, 0.3),
            Rect::point(Point::new(0.5, 0.5)),
            Rect::new(0.0, 0.0, 1.0, 1.0),
        ] {
            let mut a = disk.query(&q).unwrap();
            let mut b = tree.search(&q);
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn concurrent_queries_are_correct_and_counted() {
        let rects = sample_rects(2_000);
        let tree = BulkLoader::hilbert(20).load(&rects);
        let disk = Arc::new(
            ConcurrentDiskRTree::create(MemStore::new(), &tree, 50, LruPolicy::new()).unwrap(),
        );

        let queries: Vec<Rect> = (0..64)
            .map(|i| {
                let x = (i as f64 * 0.37) % 0.8;
                let y = (i as f64 * 0.59) % 0.8;
                Rect::new(x, y, x + 0.1, y + 0.1)
            })
            .collect();
        let expected: Vec<Vec<u64>> = queries
            .iter()
            .map(|q| {
                let mut v = tree.search(q);
                v.sort_unstable();
                v
            })
            .collect();

        std::thread::scope(|scope| {
            for t in 0..4 {
                let disk = Arc::clone(&disk);
                let queries = &queries;
                let expected = &expected;
                scope.spawn(move || {
                    for (q, want) in queries.iter().zip(expected).skip(t).step_by(4) {
                        let mut got = disk.query(q).unwrap();
                        got.sort_unstable();
                        assert_eq!(&got, want);
                    }
                });
            }
        });
        assert!(disk.physical_reads() > 0);
    }

    #[test]
    fn pinning_works_shared() {
        let rects = sample_rects(1_500);
        let tree = BulkLoader::hilbert(10).load(&rects);
        let disk =
            ConcurrentDiskRTree::create(MemStore::new(), &tree, 40, LruPolicy::new()).unwrap();
        disk.pin_top_levels(2).unwrap();
        disk.reset_counters();
        disk.query(&Rect::point(Point::new(0.3, 0.3))).unwrap();
        // Only unpinned levels can cost reads.
        assert!(disk.physical_reads() <= u64::from(disk.meta().height));
    }

    #[test]
    fn open_round_trip() {
        let rects = sample_rects(400);
        let tree = BulkLoader::nearest_x(10).load(&rects);
        let mut store = MemStore::new();
        {
            let d = ConcurrentDiskRTree::create(&mut store, &tree, 8, LruPolicy::new()).unwrap();
            assert_eq!(d.meta().items, 400);
        }
        let d = ConcurrentDiskRTree::open(&mut store, 8, LruPolicy::new()).unwrap();
        assert_eq!(d.query(&Rect::new(0.0, 0.0, 1.0, 1.0)).unwrap().len(), 400);
    }

    #[test]
    fn shared_counts_match_sequential_counts() {
        // With one thread, the concurrent wrapper must count exactly like
        // the plain DiskRTree (same LRU decisions).
        let rects = sample_rects(1_200);
        let tree = BulkLoader::hilbert(12).load(&rects);
        let concurrent =
            ConcurrentDiskRTree::create(MemStore::new(), &tree, 25, LruPolicy::new()).unwrap();
        let mut plain =
            crate::DiskRTree::create(MemStore::new(), &tree, 25, LruPolicy::new()).unwrap();
        for i in 0..300 {
            let x = (i as f64 * 0.217) % 0.9;
            let y = (i as f64 * 0.431) % 0.9;
            let q = Rect::new(x, y, x + 0.05, y + 0.05);
            concurrent.query(&q).unwrap();
            plain.query(&q).unwrap();
        }
        assert_eq!(concurrent.physical_reads(), plain.physical_reads());
    }
}
