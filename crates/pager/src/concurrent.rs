//! Concurrent disk-backed query execution over a **sharded** buffer pool.
//!
//! A database serves many clients at once; this module provides a
//! shared-ownership [`ConcurrentDiskRTree`] that multiple threads can query
//! concurrently. Pool bookkeeping (residency, replacement, read counting)
//! is partitioned into N *shards*: each [`PageId`] hashes to exactly one
//! shard, and each shard owns its own short [`parking_lot::Mutex`] around a
//! [`BufferPool`] slice plus the frames of its resident pages. Threads
//! querying disjoint subtrees therefore touch disjoint latches and never
//! contend; frames are shared as `Arc<[u8]>` so decoding and geometry tests
//! — the CPU-heavy part of a query — run outside every lock, and the store
//! itself is read through [`SharedPageStore`] (`&self`), so even misses in
//! different shards proceed in parallel.
//!
//! Statistics are relaxed `AtomicU64`s aggregated across shards:
//! [`ConcurrentDiskRTree::io_stats`] and
//! [`ConcurrentDiskRTree::physical_reads`] never take a pool latch.
//!
//! # Accounting rules
//!
//! - A **physical read** (`IoStats::reads`) is any page transfer performed
//!   on behalf of a charged buffer-pool access: a miss fill, a bypass read
//!   against a fully pinned shard, or the one-time load of a pinned page.
//! - The **root peek** is *uncharged*, mirroring the model semantics where
//!   a node is accessed iff its MBR intersects the query. The peeked root
//!   frame is cached once per tree (the tree is immutable), and the
//!   transfer is surfaced in `IoStats::peek_reads` instead of being
//!   silently dropped.
//! - With `shards = 1` the access sequence seen by the pool is exactly the
//!   sequential [`crate::DiskRTree`] sequence, so single-threaded physical
//!   read counts reproduce the paper's numbers bit for bit.

use crate::disk_tree::materialize;
use crate::latch::{LatchSet, LatchTable, META_LATCH};
use crate::mutate::{choose_subtree, mbr, quadratic_split};
use crate::store::{ConcurrentPageStore, SharedPageStore};
use crate::{IoStats, NodePage, NodeSoA, PageMeta, MAX_ENTRIES_PER_PAGE, PAGE_SIZE};
use parking_lot::{Mutex, RwLock};
use rtree_buffer::{
    AccessOutcome, AtomicBufferStats, BufferPool, BufferStats, PageId, ReplacementPolicy,
};
use rtree_geom::{Point, Rect};
use rtree_index::{Neighbor, RTree};
#[cfg(feature = "trace")]
use rtree_obs::{EventKind, IoEvent, TraceSink};
use rtree_wal::{GroupCommitStats, GroupWal, Lsn};
use std::collections::{BTreeMap, HashMap};
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Per-query accounting carried through one traversal (trace builds only):
/// the span id plus local read/access counters, recorded into the tree's
/// [`rtree_obs::QueryMetrics`] when the query finishes.
#[cfg(feature = "trace")]
struct QuerySpan {
    qid: u64,
    reads: u64,
    accesses: u64,
}

/// Fibonacci multiplier for the page → shard hash.
const HASH: u64 = 0x9E37_79B9_7F4A_7C15;

struct ShardState {
    pool: BufferPool,
    frames: HashMap<PageId, Arc<[u8]>>,
}

/// One latch domain: a slice of the buffer capacity plus its counters.
struct Shard {
    state: Mutex<ShardState>,
    /// Physical page reads issued by this shard (relaxed; aggregated by
    /// [`ConcurrentDiskRTree::io_stats`] without taking the latch).
    reads: AtomicU64,
    stats: AtomicBufferStats,
}

impl Shard {
    fn new(capacity: usize, policy: Box<dyn ReplacementPolicy>) -> Self {
        Shard {
            state: Mutex::new(ShardState {
                pool: BufferPool::new(capacity, policy),
                frames: HashMap::with_capacity(capacity + 1),
            }),
            reads: AtomicU64::new(0),
            stats: AtomicBufferStats::new(),
        }
    }
}

/// Mutable-tree state attached by the writable constructors: everything a
/// latch-crabbing writer needs beyond the read path's shard pools.
///
/// The write path is **no-steal**: a dirty page lives in `overlay` (shadowing
/// both the shard pools and the store) and reaches the store only at a
/// [`ConcurrentDiskRTree::checkpoint`], by which point its operations are
/// group-committed in the WAL. Recovery is therefore logical redo only —
/// replay committed [`rtree_wal::WalRecord::OpInsert`]/`OpDelete` records on
/// top of the last checkpoint image (see [`crate::replay_committed`]).
struct WriterState {
    /// Per-page latches; see [`crate::latch`] for the deadlock-freedom
    /// argument (strict top-down acquisition).
    latches: LatchTable,
    /// Operation gate: crabbing inserts/deletes and queries hold it shared;
    /// checkpoints and the exclusive delete fallback hold it exclusively.
    op_gate: RwLock<()>,
    /// Live metadata (root, height, counters). The open-time snapshot in
    /// `ConcurrentDiskRTree::meta` is *not* updated by writes.
    meta: Mutex<PageMeta>,
    /// Dirty-page overlay: page id → latest image. Checked before the shard
    /// pools on every writer-mode load.
    overlay: RwLock<HashMap<u64, Arc<[u8]>>>,
    /// Session-local free list of dissolved pages (not persisted: a
    /// checkpointed meta page stores `free_head = 0`, so pages freed since
    /// the last checkpoint leak on reopen — a documented trade for keeping
    /// the on-disk free list out of the latch protocol).
    free: Mutex<Vec<u64>>,
    /// Group-commit write-ahead log (logical redo records).
    wal: GroupWal,
    /// Leaf capacity (compressed trees pack internal pages denser; see
    /// [`WriterState::cap`]).
    max_entries: usize,
    /// Internal-node capacity (`== max_entries` on uncompressed trees).
    internal_max_entries: usize,
    /// Whether internal pages are written in the Packed (v4) layout.
    compressed: bool,
    min_entries: usize,
    /// Latch acquisitions that had to wait (contention signal).
    latch_waits: AtomicU64,
    /// Physical page writes (checkpoint flushes).
    page_writes: AtomicU64,
    /// Applied logical operations (inserts + deletes that found their entry).
    logical_writes: AtomicU64,
}

impl WriterState {
    fn new(meta: PageMeta, wal: GroupWal) -> Self {
        WriterState {
            latches: LatchTable::new(),
            op_gate: RwLock::new(()),
            max_entries: meta.max_entries as usize,
            internal_max_entries: meta.internal_max_entries as usize,
            compressed: meta.compressed,
            min_entries: meta.min_entries as usize,
            meta: Mutex::new(meta),
            overlay: RwLock::new(HashMap::new()),
            free: Mutex::new(Vec::new()),
            wal,
            latch_waits: AtomicU64::new(0),
            page_writes: AtomicU64::new(0),
            logical_writes: AtomicU64::new(0),
        }
    }

    /// Entry capacity of a node at `level` (0 = leaf).
    fn cap(&self, level: u16) -> usize {
        if level == 0 {
            self.max_entries
        } else {
            self.internal_max_entries
        }
    }

    /// Body layout written for a node at `level` (layout-preserving:
    /// compressed trees keep their internal pages Packed across rewrites).
    fn layout(&self, level: u16) -> crate::page::PageLayout {
        if self.compressed && level > 0 {
            crate::page::PageLayout::Packed
        } else {
            crate::page::PageLayout::Soa
        }
    }
}

/// Largest power of two ≤ `n` (`n` ≥ 1).
fn floor_pow2(n: usize) -> usize {
    debug_assert!(n >= 1);
    1 << (usize::BITS - 1 - n.leading_zeros())
}

/// Resolves a shard-count request against the buffer capacity: `0` means
/// "one per hardware thread", everything is rounded to a power of two, and
/// the count never exceeds the capacity (each shard needs ≥ 1 frame).
fn resolve_shards(requested: usize, capacity: usize) -> usize {
    assert!(capacity > 0, "buffer capacity must be positive");
    let requested = if requested == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        requested
    };
    requested.next_power_of_two().min(floor_pow2(capacity))
}

/// A disk-backed R-tree that can be queried from many threads at once
/// (`&self` queries; wrap in an `Arc` to share).
///
/// [`ConcurrentDiskRTree::create`] / [`ConcurrentDiskRTree::open`] build a
/// **single-shard** tree whose replacement decisions and physical read
/// counts are exactly those of the sequential [`crate::DiskRTree`] — the
/// configuration every paper experiment uses. The `_sharded` constructors
/// split the capacity across N latch-disjoint shards for multi-threaded
/// throughput.
pub struct ConcurrentDiskRTree<S> {
    store: S,
    shards: Box<[Shard]>,
    /// `64 - log2(shard count)`: shift for the Fibonacci hash.
    shard_shift: u32,
    /// Cached root frame for the uncharged MBR peek (the tree is
    /// immutable, so the root page never changes).
    root_frame: OnceLock<Arc<[u8]>>,
    peek_reads: AtomicU64,
    meta: PageMeta,
    /// Trace sink shared by every querying thread (trace builds only).
    #[cfg(feature = "trace")]
    sink: Option<Arc<dyn TraceSink>>,
    /// Query span id source (trace builds only; 0 = no span).
    #[cfg(feature = "trace")]
    query_ids: AtomicU64,
    /// Per-query latency / reads / pins distributions (trace builds only).
    #[cfg(feature = "trace")]
    metrics: rtree_obs::QueryMetrics,
    /// Present iff the tree was opened writable.
    writer: Option<WriterState>,
}

impl<S: SharedPageStore> ConcurrentDiskRTree<S> {
    /// Serializes `tree` into `store` and returns a shareable single-shard
    /// handle with the paper's exact sequential accounting.
    ///
    /// # Panics
    /// Panics if the tree is empty or its node capacity exceeds
    /// [`crate::MAX_ENTRIES_PER_PAGE`].
    pub fn create(
        mut store: S,
        tree: &RTree,
        buffer_capacity: usize,
        policy: impl ReplacementPolicy + 'static,
    ) -> io::Result<Self> {
        let meta = materialize(&mut store, tree)?;
        let mut policy = Some(Box::new(policy) as Box<dyn ReplacementPolicy>);
        Ok(Self::assemble(store, meta, buffer_capacity, 1, move || {
            policy.take().expect("single shard uses the policy once")
        }))
    }

    /// Serializes `tree` into `store` and returns a sharded handle:
    /// `shards` is rounded to a power of two and capped by the capacity;
    /// `0` means one shard per hardware thread. `policy` is invoked once
    /// per shard.
    ///
    /// # Panics
    /// Panics if the tree is empty or its node capacity exceeds
    /// [`crate::MAX_ENTRIES_PER_PAGE`].
    pub fn create_sharded<P: ReplacementPolicy + 'static>(
        mut store: S,
        tree: &RTree,
        buffer_capacity: usize,
        shards: usize,
        mut policy: impl FnMut() -> P,
    ) -> io::Result<Self> {
        let meta = materialize(&mut store, tree)?;
        let n = resolve_shards(shards, buffer_capacity);
        Ok(Self::assemble(store, meta, buffer_capacity, n, move || {
            Box::new(policy())
        }))
    }

    /// Opens a previously materialized tree with a single shard.
    pub fn open(
        mut store: S,
        buffer_capacity: usize,
        policy: impl ReplacementPolicy + 'static,
    ) -> io::Result<Self> {
        let meta = Self::read_meta(&mut store)?;
        let mut policy = Some(Box::new(policy) as Box<dyn ReplacementPolicy>);
        Ok(Self::assemble(store, meta, buffer_capacity, 1, move || {
            policy.take().expect("single shard uses the policy once")
        }))
    }

    /// Opens a previously materialized tree with a sharded pool (see
    /// [`ConcurrentDiskRTree::create_sharded`] for the shard semantics).
    pub fn open_sharded<P: ReplacementPolicy + 'static>(
        mut store: S,
        buffer_capacity: usize,
        shards: usize,
        mut policy: impl FnMut() -> P,
    ) -> io::Result<Self> {
        let meta = Self::read_meta(&mut store)?;
        let n = resolve_shards(shards, buffer_capacity);
        Ok(Self::assemble(store, meta, buffer_capacity, n, move || {
            Box::new(policy())
        }))
    }

    fn read_meta(store: &mut S) -> io::Result<PageMeta> {
        let mut buf = vec![0u8; PAGE_SIZE];
        store.read_page(PageId(0), &mut buf)?;
        Ok(PageMeta::decode(&buf)?)
    }

    /// Builds the shard array: capacity is split proportionally, the first
    /// `capacity % n` shards taking one extra frame.
    fn assemble(
        store: S,
        meta: PageMeta,
        capacity: usize,
        n: usize,
        mut policy: impl FnMut() -> Box<dyn ReplacementPolicy>,
    ) -> Self {
        debug_assert!(n.is_power_of_two() && n <= capacity);
        let base = capacity / n;
        let rem = capacity % n;
        let shards: Box<[Shard]> = (0..n)
            .map(|i| Shard::new(base + usize::from(i < rem), policy()))
            .collect();
        ConcurrentDiskRTree {
            store,
            shards,
            shard_shift: u64::BITS - n.trailing_zeros(),
            root_frame: OnceLock::new(),
            peek_reads: AtomicU64::new(0),
            meta,
            #[cfg(feature = "trace")]
            sink: None,
            #[cfg(feature = "trace")]
            query_ids: AtomicU64::new(0),
            #[cfg(feature = "trace")]
            metrics: rtree_obs::QueryMetrics::new(),
            writer: None,
        }
    }

    /// Routes every physical-I/O and pool-outcome event to `sink` (`None`
    /// stops tracing). Takes `&mut self`: install the sink before sharing
    /// the tree across threads. Only present with the `trace` feature.
    #[cfg(feature = "trace")]
    pub fn set_trace_sink(&mut self, sink: Option<Arc<dyn TraceSink>>) {
        self.sink = sink;
    }

    /// Snapshot of the per-query latency / reads / pins histograms
    /// (all threads). Only present with the `trace` feature.
    #[cfg(feature = "trace")]
    pub fn query_metrics(&self) -> rtree_obs::QueryMetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Emits one trace event (trace builds only; no-op without a sink).
    #[cfg(feature = "trace")]
    #[inline]
    fn emit(&self, query_id: u64, page: PageId, level: i16, kind: EventKind) {
        if let Some(sink) = &self.sink {
            sink.record(IoEvent {
                query_id,
                page_id: page.0,
                level,
                kind,
                ns: rtree_obs::now_ns(),
            });
        }
    }

    /// The shard owning `id`.
    fn shard(&self, id: PageId) -> &Shard {
        if self.shards.len() == 1 {
            &self.shards[0]
        } else {
            &self.shards[(id.0.wrapping_mul(HASH) >> self.shard_shift) as usize]
        }
    }

    /// The stored metadata.
    pub fn meta(&self) -> &PageMeta {
        &self.meta
    }

    /// Number of shards the buffer capacity is split across.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Physical I/O counters so far (all threads), aggregated from the
    /// shards' relaxed atomics — no pool latch is taken. The concurrent
    /// tree is read-only, so `writes` stays 0; the shape matches
    /// [`crate::BufferManager::io_stats`] so benches report one thing.
    pub fn io_stats(&self) -> IoStats {
        IoStats {
            reads: self.physical_reads(),
            writes: self
                .writer
                .as_ref()
                .map_or(0, |w| w.page_writes.load(Ordering::Relaxed)),
            peek_reads: self.peek_reads.load(Ordering::Relaxed),
            prefetch_reads: 0,
        }
    }

    /// Physical page reads so far (all threads, latch-free).
    pub fn physical_reads(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.reads.load(Ordering::Relaxed))
            .sum()
    }

    /// Root-peek reads so far (all threads, latch-free). At most one per
    /// tree lifetime between counter resets — the peeked frame is cached.
    pub fn peek_reads(&self) -> u64 {
        self.peek_reads.load(Ordering::Relaxed)
    }

    /// Pool access statistics aggregated across shards (latch-free).
    pub fn buffer_stats(&self) -> BufferStats {
        let mut total = BufferStats::default();
        for s in &self.shards {
            total += s.stats.snapshot();
        }
        total
    }

    /// Resets the I/O counters and pool statistics (takes each shard latch
    /// once; the cached root frame is state, not a counter, and survives).
    pub fn reset_counters(&self) {
        for shard in self.shards.iter() {
            shard.state.lock().pool.reset_stats();
            shard.reads.store(0, Ordering::Relaxed);
            shard.stats.reset();
        }
        self.peek_reads.store(0, Ordering::Relaxed);
    }

    /// Pins the top `p` levels (reads each page once, into its shard).
    /// Pinned pages are distributed across shards like any other page and
    /// are exempt from replacement in their shard.
    ///
    /// # Errors
    /// `InvalidInput` if `p` exceeds the tree height; `OutOfMemory` if a
    /// shard's capacity slice cannot hold its share of the pinned pages.
    pub fn pin_top_levels(&self, p: usize) -> io::Result<()> {
        if p > self.meta.level_starts.len() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "cannot pin {p} levels: the tree has {}",
                    self.meta.level_starts.len()
                ),
            ));
        }
        let end = if p == self.meta.level_starts.len() {
            self.meta.nodes + 1
        } else {
            self.meta.level_starts[p]
        };
        for page in 1..end {
            let id = PageId(page);
            let shard = self.shard(id);
            let mut s = shard.state.lock();
            let was_resident = s.pool.contains(id);
            let evicted = s
                .pool
                .pin(id)
                .map_err(|e| io::Error::new(io::ErrorKind::OutOfMemory, e.to_string()))?;
            if let Some(victim) = evicted {
                s.frames.remove(&victim);
            }
            if !was_resident {
                let mut buf = vec![0u8; PAGE_SIZE];
                self.store.read_page_shared(id, &mut buf)?;
                if let Err(e) = Self::verify_read(id, &buf) {
                    s.pool.unpin(id);
                    s.pool.discard(id);
                    return Err(e);
                }
                shard.reads.fetch_add(1, Ordering::Relaxed);
                shard.stats.record_miss();
                s.frames.insert(id, Arc::from(buf.into_boxed_slice()));
                #[cfg(feature = "trace")]
                self.emit(0, id, self.meta.onpage_level_of(page), EventKind::Miss);
            }
        }
        Ok(())
    }

    /// Unpins every pinned page across all shards. Frames stay resident
    /// and re-enter replacement in their shard; no I/O is performed.
    pub fn unpin_all(&self) {
        for shard in self.shards.iter() {
            let mut s = shard.state.lock();
            let pinned: Vec<PageId> = s
                .frames
                .keys()
                .copied()
                .filter(|&id| s.pool.is_pinned(id))
                .collect();
            for id in pinned {
                s.pool.unpin(id);
            }
        }
    }

    /// Re-targets pinning at the top `p` levels: unpins everything, then
    /// pins (see [`ConcurrentDiskRTree::pin_top_levels`]). `p = 0` just
    /// unpins.
    pub fn set_pinned_levels(&self, p: usize) -> io::Result<()> {
        self.unpin_all();
        if p > 0 {
            self.pin_top_levels(p)?;
        }
        Ok(())
    }

    /// Number of currently pinned pages across all shards.
    pub fn pinned_pages(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.state.lock().pool.pinned_count())
            .sum()
    }

    /// Total buffer capacity in frames (sum of the shard slices).
    pub fn buffer_capacity(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.state.lock().pool.capacity())
            .sum()
    }

    /// Re-partitions the pool across the existing shards at a new total
    /// `capacity`: each shard gets a fresh pool of `capacity / n` frames
    /// (the first `capacity % n` shards one extra, mirroring construction),
    /// built by one call to `policy` per shard. Pinned pages stay pinned
    /// with their frames; unpinned frames are dropped, so the cache starts
    /// cold. Shard-level counters ([`ConcurrentDiskRTree::io_stats`],
    /// [`ConcurrentDiskRTree::buffer_stats`]) live outside the pools and
    /// survive.
    ///
    /// On a writable tree the operation gate is held exclusively, so no
    /// query or writer is in flight while the pools swap; dirty pages live
    /// in the overlay, never in shard frames, so dropping frames loses
    /// nothing.
    ///
    /// # Errors
    /// `InvalidInput` if `capacity` is smaller than the shard count (every
    /// shard needs ≥ 1 frame) or any shard's new slice cannot hold that
    /// shard's currently pinned pages. The pools are untouched on error.
    pub fn resize_buffer<P: ReplacementPolicy + 'static>(
        &self,
        capacity: usize,
        mut policy: impl FnMut() -> P,
    ) -> io::Result<()> {
        let n = self.shards.len();
        if capacity < n {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("cannot resize to {capacity} frames across {n} shards"),
            ));
        }
        let _gate = self.writer.as_ref().map(|w| w.op_gate.write());
        let mut guards: Vec<_> = self.shards.iter().map(|s| s.state.lock()).collect();
        let base = capacity / n;
        let rem = capacity % n;
        for (i, s) in guards.iter().enumerate() {
            let slice = base + usize::from(i < rem);
            let pinned = s.frames.keys().filter(|&&id| s.pool.is_pinned(id)).count();
            if slice < pinned {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!(
                        "cannot resize to {capacity} frames: shard {i} holds {pinned} pinned \
                         pages but would get {slice} frames"
                    ),
                ));
            }
        }
        for (i, s) in guards.iter_mut().enumerate() {
            let slice = base + usize::from(i < rem);
            let pinned: Vec<PageId> = s
                .frames
                .keys()
                .copied()
                .filter(|&id| s.pool.is_pinned(id))
                .collect();
            let mut pool = BufferPool::new(slice, Box::new(policy()) as Box<dyn ReplacementPolicy>);
            for &id in &pinned {
                pool.admit_pinned(id)
                    .expect("slice was checked against the pinned count");
            }
            s.pool = pool;
            s.frames.retain(|id, _| pinned.contains(id));
        }
        Ok(())
    }

    /// Checksum gate for bytes freshly read from the store. Every miss
    /// path runs it, so frames served from the shards are known-good and
    /// the traversal loops decode them with
    /// [`NodeSoA::decode_into_trusted`] — corruption is caught exactly
    /// once, at page-in, not on every access to a resident frame.
    fn verify_read(id: PageId, buf: &[u8]) -> io::Result<()> {
        crate::page::verify_checksum(buf)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("page {}: {e}", id.0)))
    }

    /// Fetches a page through its shard, charging the access to the pool.
    /// Also reports whether the access missed (i.e. cost a physical read),
    /// so the caller can attribute the event to its query span.
    fn fetch(&self, id: PageId) -> io::Result<(Arc<[u8]>, bool)> {
        let shard = self.shard(id);
        let mut s = shard.state.lock();
        let outcome = s.pool.access(id);
        shard.stats.record(&outcome);
        match outcome {
            AccessOutcome::Hit => Ok((
                Arc::clone(s.frames.get(&id).expect("resident page has a frame")),
                false,
            )),
            AccessOutcome::Miss { evicted } => {
                if let Some(victim) = evicted {
                    s.frames.remove(&victim);
                }
                let mut buf = vec![0u8; PAGE_SIZE];
                self.store.read_page_shared(id, &mut buf)?;
                if let Err(e) = Self::verify_read(id, &buf) {
                    // Back the admission out so the next access misses and
                    // re-reads instead of hitting a frameless entry.
                    s.pool.discard(id);
                    return Err(e);
                }
                shard.reads.fetch_add(1, Ordering::Relaxed);
                let frame: Arc<[u8]> = Arc::from(buf.into_boxed_slice());
                s.frames.insert(id, Arc::clone(&frame));
                Ok((frame, true))
            }
            AccessOutcome::MissBypass => {
                let mut buf = vec![0u8; PAGE_SIZE];
                self.store.read_page_shared(id, &mut buf)?;
                Self::verify_read(id, &buf)?;
                shard.reads.fetch_add(1, Ordering::Relaxed);
                Ok((Arc::from(buf.into_boxed_slice()), true))
            }
        }
    }

    /// The root frame for the uncharged MBR peek: read from the store at
    /// most once per tree (the tree is immutable) and cached outside the
    /// pool so the peek neither charges nor perturbs replacement state.
    /// Also reports whether *this* call performed the physical read, so the
    /// caller can emit the matching peek event.
    fn root_frame(&self) -> io::Result<(Arc<[u8]>, bool)> {
        if let Some(frame) = self.root_frame.get() {
            return Ok((Arc::clone(frame), false));
        }
        let mut buf = vec![0u8; PAGE_SIZE];
        self.store
            .read_page_shared(PageId(self.meta.root), &mut buf)?;
        Self::verify_read(PageId(self.meta.root), &buf)?;
        // Two racing threads may both read; both transfers really happened,
        // so both count, but only one frame is kept.
        self.peek_reads.fetch_add(1, Ordering::Relaxed);
        let frame: Arc<[u8]> = Arc::from(buf.into_boxed_slice());
        Ok((Arc::clone(self.root_frame.get_or_init(|| frame)), true))
    }

    /// Executes a region query; safe to call from many threads. On a
    /// writable tree the traversal runs under the reader latch protocol
    /// (breadth-first shared-latch coupling against the live root).
    pub fn query(&self, query: &Rect) -> io::Result<Vec<u64>> {
        if let Some(w) = &self.writer {
            return self.query_writer(w, query);
        }
        #[cfg(feature = "trace")]
        {
            let mut span = QuerySpan {
                qid: self.query_ids.fetch_add(1, Ordering::Relaxed) + 1,
                reads: 0,
                accesses: 0,
            };
            let start = rtree_obs::now_ns();
            let result = self.query_inner(query, &mut span);
            self.metrics
                .record_query(rtree_obs::now_ns() - start, span.reads, span.accesses);
            result
        }
        #[cfg(not(feature = "trace"))]
        self.query_inner(query)
    }

    fn query_inner(
        &self,
        query: &Rect,
        #[cfg(feature = "trace")] span: &mut QuerySpan,
    ) -> io::Result<Vec<u64>> {
        let mut results = Vec::new();
        let root = PageId(self.meta.root);
        let root_level = (self.meta.height - 1) as u16;

        // Uncharged root peek (model semantics: a node is accessed iff its
        // MBR intersects the query).
        let (root_frame, fresh_peek) = self.root_frame()?;
        #[cfg(feature = "trace")]
        if fresh_peek {
            self.emit(span.qid, root, root_level as i16, EventKind::PeekRead);
        }
        #[cfg(not(feature = "trace"))]
        let _ = fresh_peek;
        // Scratch node + match list reused across the walk (no per-page
        // allocation); the SoA decode is gather-free on v3 pages.
        let mut node = NodeSoA::new();
        let mut matches: Vec<u32> = Vec::new();
        node.decode_into_trusted(&root_frame)?;
        let Some(root_mbr) = node.rects.mbr() else {
            return Ok(results);
        };
        if !root_mbr.intersects(query) {
            return Ok(results);
        }

        // Each stack entry carries the node's level so every fetch can be
        // attributed to it (children of a level-L node sit at L - 1).
        let mut stack = vec![(root, root_level)];
        while let Some((pid, level)) = stack.pop() {
            let (frame, missed) = self.fetch(pid)?;
            #[cfg(feature = "trace")]
            {
                span.accesses += 1;
                if missed {
                    span.reads += 1;
                }
                let kind = if missed {
                    EventKind::Miss
                } else {
                    EventKind::Hit
                };
                self.emit(span.qid, pid, level as i16, kind);
            }
            #[cfg(not(feature = "trace"))]
            let _ = missed;
            node.decode_into_trusted(&frame)?;
            debug_assert_eq!(node.level, level, "stack level mirrors the page");
            matches.clear();
            node.rects.intersecting(query, &mut matches);
            if level == 0 {
                results.extend(matches.iter().map(|&i| node.ptrs[i as usize]));
            } else {
                stack.extend(
                    matches
                        .iter()
                        .map(|&i| (PageId(node.ptrs[i as usize]), level - 1)),
                );
            }
        }
        Ok(results)
    }

    /// Point query: item ids whose rectangle contains `p` (boundary
    /// inclusive). Runs as a degenerate region query, so it follows the
    /// same dispatched SIMD kernel and, on writable trees, the same reader
    /// latch protocol.
    pub fn query_point(&self, p: &Point) -> io::Result<Vec<u64>> {
        self.query(&Rect { lo: *p, hi: *p })
    }

    /// The `k` items nearest to `p` (closest first; ties broken
    /// arbitrarily), best-first over pages with the dispatched SIMD
    /// distance kernel pruning against the current k-th-best bound. On a
    /// writable tree the search runs under the exclusive operation gate
    /// (no concurrent mutation mid-search); on read-optimized trees it is
    /// freely concurrent.
    pub fn nearest_neighbors(&self, p: &Point, k: usize) -> io::Result<Vec<Neighbor>> {
        let _gate = self.writer.as_ref().map(|w| w.op_gate.write());
        let root = match &self.writer {
            Some(w) => w.meta.lock().root,
            None => self.meta.root,
        };
        let mut result = Vec::new();
        if k == 0 || (self.writer.is_none() && self.meta.items == 0) {
            return Ok(result);
        }
        let mut node = NodeSoA::new();
        let mut within: Vec<(u32, f64)> = Vec::new();
        let mut queue = std::collections::BinaryHeap::new();
        let mut best_k = std::collections::BinaryHeap::with_capacity(k + 1);
        queue.push(crate::disk_tree::KnnEntry {
            dist2: 0.0,
            kind: crate::disk_tree::KnnKind::Node(root, u16::MAX),
        });
        #[cfg(feature = "trace")]
        let qid = self.query_ids.fetch_add(1, Ordering::Relaxed) + 1;
        while let Some(entry) = queue.pop() {
            match entry.kind {
                crate::disk_tree::KnnKind::Item { rect, id } => {
                    result.push(Neighbor {
                        id,
                        rect,
                        distance: entry.dist2.sqrt(),
                    });
                    if result.len() == k {
                        break;
                    }
                }
                crate::disk_tree::KnnKind::Node(pid, _) => {
                    let bound = if best_k.len() == k {
                        let crate::disk_tree::OrdF64(b) = *best_k.peek().expect("k > 0");
                        b
                    } else {
                        f64::INFINITY
                    };
                    // Writer overlay shadows the shards, as in load_w.
                    let overlay = self
                        .writer
                        .as_ref()
                        .and_then(|w| w.overlay.read().get(&pid).cloned());
                    match overlay {
                        Some(frame) => node.decode_into_trusted(&frame)?,
                        None => {
                            let (frame, missed) = self.fetch(PageId(pid))?;
                            node.decode_into_trusted(&frame)?;
                            #[cfg(feature = "trace")]
                            {
                                let kind = if missed {
                                    EventKind::Miss
                                } else {
                                    EventKind::Hit
                                };
                                self.emit(qid, PageId(pid), node.level as i16, kind);
                            }
                            #[cfg(not(feature = "trace"))]
                            let _ = missed;
                        }
                    }
                    within.clear();
                    node.rects.min_dist2_within(p, bound, &mut within);
                    for &(i, d2) in &within {
                        if node.level == 0 {
                            queue.push(crate::disk_tree::KnnEntry {
                                dist2: d2,
                                kind: crate::disk_tree::KnnKind::Item {
                                    rect: node.rects.get(i as usize),
                                    id: node.ptrs[i as usize],
                                },
                            });
                            best_k.push(crate::disk_tree::OrdF64(d2));
                            if best_k.len() > k {
                                best_k.pop();
                            }
                        } else {
                            queue.push(crate::disk_tree::KnnEntry {
                                dist2: d2,
                                kind: crate::disk_tree::KnnKind::Node(
                                    node.ptrs[i as usize],
                                    node.level - 1,
                                ),
                            });
                        }
                    }
                }
            }
        }
        Ok(result)
    }

    /// Runs a batch of region queries sharded across `threads` worker
    /// threads (contiguous sub-batches; `0` means one per hardware
    /// thread). `results[i]` holds the ids matching `queries[i]`.
    ///
    /// Each worker traverses its sub-batch **level-synchronously with page
    /// dedup**: a page needed by k of its queries is fetched and decoded
    /// once, each level is visited in ascending page order (sequential
    /// under the bulk-loaded layout), and per-node filtering runs the
    /// [`rtree_geom::RectSoA`] kernel. The root peek is shared and
    /// uncharged, exactly as in [`ConcurrentDiskRTree::query`]. With
    /// `threads = 1` the traversal runs inline on the caller's thread.
    pub fn query_batch(&self, queries: &[Rect], threads: usize) -> io::Result<Vec<Vec<u64>>>
    where
        S: Sync,
    {
        if queries.is_empty() {
            return Ok(Vec::new());
        }
        if let Some(w) = &self.writer {
            // Writer mode: the bulk-load layout (and its level-synchronous
            // dedup walk) is gone; run each query under the latch protocol.
            return queries.iter().map(|q| self.query_writer(w, q)).collect();
        }
        let threads = if threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            threads
        }
        .min(queries.len());

        // Shared uncharged root peek; workers reuse the decoded MBR.
        let (root_frame, fresh_peek) = self.root_frame()?;
        #[cfg(feature = "trace")]
        if fresh_peek {
            self.emit(
                0,
                PageId(self.meta.root),
                (self.meta.height - 1) as i16,
                EventKind::PeekRead,
            );
        }
        #[cfg(not(feature = "trace"))]
        let _ = fresh_peek;
        let root_node = NodeSoA::decode(&root_frame)?;
        let Some(root_mbr) = root_node.rects.mbr() else {
            return Ok(vec![Vec::new(); queries.len()]);
        };

        if threads == 1 {
            return self.batch_inner(queries, &root_mbr);
        }
        let chunk = queries.len().div_ceil(threads);
        let outputs: Vec<io::Result<Vec<Vec<u64>>>> = std::thread::scope(|scope| {
            let workers: Vec<_> = queries
                .chunks(chunk)
                .map(|slice| scope.spawn(move || self.batch_inner(slice, &root_mbr)))
                .collect();
            workers
                .into_iter()
                .map(|w| w.join().expect("batch worker panicked"))
                .collect()
        });
        let mut results = Vec::with_capacity(queries.len());
        for out in outputs {
            results.extend(out?);
        }
        Ok(results)
    }

    /// One worker's level-synchronous deduplicated traversal over its
    /// contiguous slice of the batch.
    fn batch_inner(&self, queries: &[Rect], root_mbr: &Rect) -> io::Result<Vec<Vec<u64>>> {
        #[cfg(feature = "trace")]
        {
            let mut span = QuerySpan {
                qid: self.query_ids.fetch_add(1, Ordering::Relaxed) + 1,
                reads: 0,
                accesses: 0,
            };
            let start = rtree_obs::now_ns();
            let result = self.batch_levels(queries, root_mbr, &mut span);
            self.metrics
                .record_query(rtree_obs::now_ns() - start, span.reads, span.accesses);
            result
        }
        #[cfg(not(feature = "trace"))]
        self.batch_levels(queries, root_mbr)
    }

    fn batch_levels(
        &self,
        queries: &[Rect],
        root_mbr: &Rect,
        #[cfg(feature = "trace")] span: &mut QuerySpan,
    ) -> io::Result<Vec<Vec<u64>>> {
        let mut results = vec![Vec::new(); queries.len()];
        let active: Vec<u32> = (0..queries.len() as u32)
            .filter(|&q| root_mbr.intersects(&queries[q as usize]))
            .collect();
        if active.is_empty() {
            return Ok(results);
        }

        // Frontier: page -> ids of the sub-batch queries that need it. The
        // BTreeMap is both the dedup and the per-level PageId sort.
        let mut frontier: BTreeMap<u64, Vec<u32>> = BTreeMap::new();
        frontier.insert(self.meta.root, active);
        // Pages decode straight into SoA — on v3 images the coordinate
        // planes arrive contiguously, so the per-node gather loop the
        // batch path used to run is gone entirely.
        let mut node = NodeSoA::new();
        let mut matched: Vec<u32> = Vec::new();

        while !frontier.is_empty() {
            for (pid, qids) in std::mem::take(&mut frontier) {
                let (frame, missed) = self.fetch(PageId(pid))?;
                #[cfg(feature = "trace")]
                {
                    span.accesses += 1;
                    if missed {
                        span.reads += 1;
                    }
                    let kind = if missed {
                        EventKind::Miss
                    } else {
                        EventKind::Hit
                    };
                    self.emit(span.qid, PageId(pid), self.meta.onpage_level_of(pid), kind);
                }
                #[cfg(not(feature = "trace"))]
                let _ = missed;
                node.decode_into_trusted(&frame)?;
                for qid in qids {
                    matched.clear();
                    node.rects
                        .intersecting(&queries[qid as usize], &mut matched);
                    for &e in &matched {
                        let ptr = node.ptrs[e as usize];
                        if node.level == 0 {
                            results[qid as usize].push(ptr);
                        } else {
                            frontier.entry(ptr).or_default().push(qid);
                        }
                    }
                }
            }
        }
        Ok(results)
    }
}

/// Flattens a rectangle into the WAL's logical-record payload layout.
fn rect_key(r: &Rect) -> [f64; 4] {
    [r.lo.x, r.lo.y, r.hi.x, r.hi.y]
}

/// Outcome of one optimistic (latched fast-path) delete attempt.
enum FastDelete {
    /// Entry found and removed; carries the LSN awaiting group commit.
    Deleted(Lsn),
    /// The entry is provably absent (every candidate leaf was scanned
    /// while shared-latched, so nothing could slip past the traversal).
    Absent,
    /// Lost the latch-trade race or the leaf would underflow: retry, then
    /// escalate to the exclusive path.
    Contended,
}

impl<S: SharedPageStore> ConcurrentDiskRTree<S> {
    /// True when the tree was opened through a writable constructor.
    pub fn is_writable(&self) -> bool {
        self.writer.is_some()
    }

    /// The underlying page store (chaos and recovery tests snapshot it;
    /// remember that dirty writer pages live in the overlay, not here,
    /// until a checkpoint).
    pub fn store(&self) -> &S {
        &self.store
    }

    /// Live item count: the writer's metadata when writable (updated by
    /// every insert/delete), the open-time snapshot otherwise.
    pub fn live_items(&self) -> u64 {
        self.writer
            .as_ref()
            .map_or(self.meta.items, |w| w.meta.lock().items)
    }

    /// Group-commit counters of the attached WAL (writable trees only).
    pub fn group_commit_stats(&self) -> Option<GroupCommitStats> {
        self.writer.as_ref().map(|w| w.wal.stats())
    }

    /// Latch acquisitions that had to block (contention signal).
    pub fn latch_waits(&self) -> u64 {
        self.writer
            .as_ref()
            .map_or(0, |w| w.latch_waits.load(Ordering::Relaxed))
    }

    /// Applied logical operations: inserts plus deletes that found their
    /// entry.
    pub fn logical_writes(&self) -> u64 {
        self.writer
            .as_ref()
            .map_or(0, |w| w.logical_writes.load(Ordering::Relaxed))
    }

    /// Acquires a latch into `set`, counting (and tracing) blocked
    /// acquisitions.
    fn latch_acquire(&self, w: &WriterState, set: &mut LatchSet<'_>, id: u64, exclusive: bool) {
        if set.acquire(id, exclusive) {
            w.latch_waits.fetch_add(1, Ordering::Relaxed);
            #[cfg(feature = "trace")]
            self.emit(0, PageId(id), -1, EventKind::LatchWait);
        }
    }

    /// Loads a node in writer mode: the dirty overlay shadows both the
    /// shard pools and the store (no-steal — the store never holds a page
    /// newer than the overlay).
    fn load_w(&self, w: &WriterState, id: u64) -> io::Result<NodePage> {
        if let Some(frame) = w.overlay.read().get(&id) {
            return Ok(NodePage::decode(frame)?);
        }
        let (frame, missed) = self.fetch(PageId(id))?;
        // Buffer traffic from the write path shows up in the trace stream
        // like any query's, so the miss ledger stays reconcilable with the
        // physical-read counters even on a read-write server.
        #[cfg(feature = "trace")]
        {
            let kind = if missed {
                EventKind::Miss
            } else {
                EventKind::Hit
            };
            self.emit(0, PageId(id), -1, kind);
        }
        #[cfg(not(feature = "trace"))]
        let _ = missed;
        Ok(NodePage::decode(&frame)?)
    }

    /// Region query under the reader latch protocol: breadth-first
    /// shared-latch *coupling* — every relevant child of a level is
    /// latched before the level above is released — so a concurrent split
    /// can never move an entry past the traversal. Depth-first coupling
    /// would re-acquire upward while backtracking and deadlock; BFS keeps
    /// every wait edge pointing down the tree.
    fn query_writer(&self, w: &WriterState, query: &Rect) -> io::Result<Vec<u64>> {
        let _gate = w.op_gate.read();
        let mut set = LatchSet::new(&w.latches);
        self.latch_acquire(w, &mut set, META_LATCH, false);
        let root = w.meta.lock().root;
        self.latch_acquire(w, &mut set, root, false);
        set.release_all_but_last(1);
        let mut results = Vec::new();
        let mut frontier = vec![root];
        while !frontier.is_empty() {
            let mut next = Vec::new();
            for &pid in &frontier {
                let node = self.load_w(w, pid)?;
                for (r, ptr) in &node.entries {
                    if r.intersects(query) {
                        if node.level == 0 {
                            results.push(*ptr);
                        } else {
                            next.push(*ptr);
                        }
                    }
                }
            }
            for &pid in &next {
                self.latch_acquire(w, &mut set, pid, false);
            }
            set.release_all_but_last(next.len());
            frontier = next;
        }
        Ok(results)
    }
}

impl<S: ConcurrentPageStore> ConcurrentDiskRTree<S> {
    /// Creates an empty writable tree: a meta page, an empty root leaf,
    /// and an attached group-commit WAL. Writes go through per-page latch
    /// crabbing; dirty pages stay in a private overlay until
    /// [`ConcurrentDiskRTree::checkpoint`] (no-steal), so recovery is
    /// logical redo of committed WAL records over the last checkpoint
    /// image (see [`crate::replay_committed`]).
    ///
    /// # Panics
    /// Panics if the capacities are out of range (Guttman's
    /// `1 <= m <= M/2`).
    pub fn create_writable(
        store: S,
        max_entries: usize,
        min_entries: usize,
        buffer_capacity: usize,
        policy: impl ReplacementPolicy + 'static,
        wal: GroupWal,
    ) -> io::Result<Self> {
        assert!(
            (2..=MAX_ENTRIES_PER_PAGE).contains(&max_entries),
            "node capacity {max_entries} out of range 2..={MAX_ENTRIES_PER_PAGE}"
        );
        assert!(
            min_entries >= 1 && 2 * min_entries <= max_entries,
            "min fill {min_entries} must satisfy 1 <= m <= M/2"
        );
        let meta_page = store.allocate_shared()?;
        debug_assert_eq!(meta_page, PageId(0));
        let meta = PageMeta {
            root: 1,
            height: 1,
            max_entries: max_entries as u32,
            min_entries: min_entries as u32,
            items: 0,
            nodes: 1,
            free_head: 0,
            // In-place updates invalidate the bulk-load layout immediately.
            level_starts: Vec::new(),
            internal_max_entries: max_entries as u32,
            compressed: false,
        };
        let mut buf = vec![0u8; PAGE_SIZE];
        meta.encode(&mut buf);
        store.write_page_shared(meta_page, &buf)?;
        let root = store.allocate_shared()?;
        NodePage {
            level: 0,
            entries: Vec::new(),
        }
        .encode(&mut buf);
        store.write_page_shared(root, &buf)?;
        let mut policy = Some(Box::new(policy) as Box<dyn ReplacementPolicy>);
        let mut tree = Self::assemble(store, meta.clone(), buffer_capacity, 1, move || {
            policy.take().expect("single shard uses the policy once")
        });
        tree.writer = Some(WriterState::new(meta, wal));
        Ok(tree)
    }

    /// Opens a previously checkpointed tree for writing. The caller is
    /// responsible for replaying any committed WAL records that postdate
    /// the image (see [`crate::replay_committed`]).
    pub fn open_writable(
        mut store: S,
        buffer_capacity: usize,
        policy: impl ReplacementPolicy + 'static,
        wal: GroupWal,
    ) -> io::Result<Self> {
        let meta = Self::read_meta(&mut store)?;
        let mut live = meta.clone();
        live.level_starts.clear();
        let mut policy = Some(Box::new(policy) as Box<dyn ReplacementPolicy>);
        let mut tree = Self::assemble(store, meta, buffer_capacity, 1, move || {
            policy.take().expect("single shard uses the policy once")
        });
        tree.writer = Some(WriterState::new(live, wal));
        Ok(tree)
    }

    /// The writer state, or `PermissionDenied` on a read-only tree.
    fn writer_state(&self) -> io::Result<&WriterState> {
        self.writer.as_ref().ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::PermissionDenied,
                "tree was opened read-only; use a writable constructor",
            )
        })
    }

    /// Encodes a node into the dirty overlay (never straight to the
    /// store: no-steal).
    fn store_w(&self, w: &WriterState, id: u64, node: &NodePage) {
        let mut buf = vec![0u8; PAGE_SIZE];
        node.encode_with(&mut buf, w.layout(node.level));
        w.overlay
            .write()
            .insert(id, Arc::from(buf.into_boxed_slice()));
    }

    /// Allocates a page: the session free list first, then the store.
    fn alloc_w(&self, w: &WriterState) -> io::Result<u64> {
        if let Some(id) = w.free.lock().pop() {
            return Ok(id);
        }
        Ok(self.store.allocate_shared()?.0)
    }

    /// Returns a dissolved page to the session free list. Only the
    /// exclusive delete path frees pages, so latched operations never
    /// race a page recycling.
    fn free_w(&self, w: &WriterState, id: u64) {
        w.overlay.write().remove(&id);
        w.free.lock().push(id);
    }

    /// Makes `lsn` durable through the group-commit protocol; when this
    /// thread led the batch, a flush event carries the batch size.
    fn group_commit(&self, w: &WriterState, lsn: Lsn) -> io::Result<()> {
        #[cfg(feature = "trace")]
        {
            let before = w.wal.stats().committed_ops;
            if w.wal.commit(lsn)? {
                let batch = w.wal.stats().committed_ops.saturating_sub(before);
                self.emit(0, PageId(batch), -1, EventKind::GroupCommitFlush);
            }
            Ok(())
        }
        #[cfg(not(feature = "trace"))]
        {
            w.wal.commit(lsn)?;
            Ok(())
        }
    }

    /// Inserts an item. Thread-safe: the structure change runs under
    /// latch crabbing, durability under group commit (the WAL record is
    /// appended before the change and fsynced — possibly by another
    /// thread's batch leader — after it).
    pub fn insert(&self, rect: &Rect, item: u64) -> io::Result<()> {
        debug_assert!(rect.is_valid(), "inserting an invalid rectangle");
        let w = self.writer_state()?;
        let gate = w.op_gate.read();
        let lsn = w.wal.log_insert(rect_key(rect), item)?;
        self.insert_latched(w, rect, item)?;
        w.logical_writes.fetch_add(1, Ordering::Relaxed);
        drop(gate);
        self.group_commit(w, lsn)
    }

    /// Latch-crabbing insert descent. Exclusive latches crab down one
    /// root-to-leaf path: the moment a just-latched child proves
    /// *split-safe* (non-full — an insert below it cannot propagate a
    /// split into its ancestors), every ancestor latch is released.
    /// Parent slot rectangles are pre-grown on the way down, so no upward
    /// MBR pass is needed; if a split does occur it propagates only
    /// through pages whose latches the descent retained.
    fn insert_latched(&self, w: &WriterState, rect: &Rect, item: u64) -> io::Result<()> {
        let mut set = LatchSet::new(&w.latches);
        self.latch_acquire(w, &mut set, META_LATCH, true);
        let mut cur = w.meta.lock().root;
        self.latch_acquire(w, &mut set, cur, true);
        let mut node = self.load_w(w, cur)?;
        // Ancestors still latched because a split could reach them, as
        // `(page, child slot)` pairs. Empty at the leaf means the whole
        // retained prefix is the meta latch (root split pending).
        let mut path: Vec<(u64, usize)> = Vec::new();
        if node.entries.len() < w.cap(node.level) {
            // The root cannot split, so the root id cannot change: the
            // meta latch is not needed past this point.
            set.release_all_but_last(1);
        }
        while node.level > 0 {
            let slot = choose_subtree(&node.entries, rect);
            let grown = node.entries[slot].0.union(rect);
            if grown != node.entries[slot].0 {
                node.entries[slot].0 = grown;
                self.store_w(w, cur, &node);
            }
            let child = node.entries[slot].1;
            self.latch_acquire(w, &mut set, child, true);
            let child_node = self.load_w(w, child)?;
            if child_node.entries.len() < w.cap(child_node.level) {
                set.release_all_but_last(1);
                path.clear();
            } else {
                path.push((cur, slot));
            }
            cur = child;
            node = child_node;
        }
        node.entries.push((*rect, item));
        if node.entries.len() <= w.cap(node.level) {
            self.store_w(w, cur, &node);
        } else {
            self.split_latched(w, &mut path, cur, node)?;
        }
        w.meta.lock().items += 1;
        Ok(())
    }

    /// Splits an overfull node and propagates upward strictly through
    /// pages whose exclusive latches the descent retained (`path`). An
    /// exhausted path means the overfull node is the root: the meta latch
    /// is still held, and the tree grows one level.
    fn split_latched(
        &self,
        w: &WriterState,
        path: &mut Vec<(u64, usize)>,
        page: u64,
        node: NodePage,
    ) -> io::Result<()> {
        let mut child_id = page;
        let mut level = node.level;
        let mut entries = node.entries;
        loop {
            let (a, b) = quadratic_split(entries, w.min_entries);
            let a_mbr = mbr(&a);
            let b_mbr = mbr(&b);
            self.store_w(w, child_id, &NodePage { level, entries: a });
            let sib = self.alloc_w(w)?;
            self.store_w(w, sib, &NodePage { level, entries: b });
            w.meta.lock().nodes += 1;
            match path.pop() {
                Some((parent_id, slot)) => {
                    let mut parent = self.load_w(w, parent_id)?;
                    debug_assert_eq!(parent.entries[slot].1, child_id);
                    parent.entries[slot] = (a_mbr, child_id);
                    parent.entries.push((b_mbr, sib));
                    if parent.entries.len() <= w.cap(parent.level) {
                        self.store_w(w, parent_id, &parent);
                        return Ok(());
                    }
                    child_id = parent_id;
                    level = parent.level;
                    entries = parent.entries;
                }
                None => {
                    let new_root = self.alloc_w(w)?;
                    self.store_w(
                        w,
                        new_root,
                        &NodePage {
                            level: level + 1,
                            entries: vec![(a_mbr, child_id), (b_mbr, sib)],
                        },
                    );
                    let mut m = w.meta.lock();
                    m.root = new_root;
                    m.height += 1;
                    m.nodes += 1;
                    return Ok(());
                }
            }
        }
    }

    /// Deletes one `(rect, item)` entry; returns whether it was found.
    ///
    /// Fast path: a shared-latch BFS locates the leaf, then an exclusive
    /// leaf latch removes the entry in place — valid only while the leaf
    /// stays at or above minimum fill, because that path frees no page
    /// and tightens no ancestor rectangle (loose MBRs are correct, merely
    /// less selective). Underflow — or losing the shared→exclusive
    /// latch trade to a concurrent split — escalates to a full retry
    /// under the exclusive side of the operation gate, where Guttman's
    /// CondenseTree runs exactly as on the sequential tree.
    pub fn delete(&self, rect: &Rect, item: u64) -> io::Result<bool> {
        let w = self.writer_state()?;
        for _ in 0..3 {
            let gate = w.op_gate.read();
            let outcome = self.delete_fast(w, rect, item)?;
            drop(gate);
            match outcome {
                FastDelete::Deleted(lsn) => {
                    self.group_commit(w, lsn)?;
                    return Ok(true);
                }
                FastDelete::Absent => return Ok(false),
                FastDelete::Contended => {}
            }
        }
        self.delete_exclusive(w, rect, item)
    }

    /// One optimistic delete attempt (see [`ConcurrentDiskRTree::delete`]).
    fn delete_fast(&self, w: &WriterState, rect: &Rect, item: u64) -> io::Result<FastDelete> {
        let mut set = LatchSet::new(&w.latches);
        self.latch_acquire(w, &mut set, META_LATCH, false);
        let root = w.meta.lock().root;
        self.latch_acquire(w, &mut set, root, false);
        set.release_all_but_last(1);
        let mut frontier = vec![root];
        let leaf = loop {
            let mut next = Vec::new();
            let mut found = None;
            let mut at_leaves = false;
            for &pid in &frontier {
                let node = self.load_w(w, pid)?;
                if node.level == 0 {
                    at_leaves = true;
                    if node.entries.iter().any(|(r, p)| *p == item && r == rect) {
                        found = Some(pid);
                        break;
                    }
                } else {
                    for (r, ptr) in &node.entries {
                        if r.contains_rect(rect) {
                            next.push(*ptr);
                        }
                    }
                }
            }
            if at_leaves {
                match found {
                    Some(pid) => break pid,
                    None => return Ok(FastDelete::Absent),
                }
            }
            if next.is_empty() {
                return Ok(FastDelete::Absent);
            }
            for &pid in &next {
                self.latch_acquire(w, &mut set, pid, false);
            }
            set.release_all_but_last(next.len());
            frontier = next;
        };
        // No shared→exclusive upgrade exists (two upgraders would
        // deadlock): drop every shared latch, re-latch the leaf
        // exclusively, and re-verify. The page cannot have been freed in
        // the gap — frees need the exclusive gate, and we hold its read
        // side — but a concurrent split may have moved the entry.
        drop(set);
        let mut xset = LatchSet::new(&w.latches);
        self.latch_acquire(w, &mut xset, leaf, true);
        let mut node = self.load_w(w, leaf)?;
        let pos = if node.level == 0 {
            node.entries
                .iter()
                .position(|(r, p)| *p == item && r == rect)
        } else {
            None
        };
        let Some(pos) = pos else {
            return Ok(FastDelete::Contended);
        };
        // A root leaf may legally underflow; anything else escalates.
        let is_root = w.meta.lock().root == leaf;
        if node.entries.len() <= w.min_entries && !is_root {
            return Ok(FastDelete::Contended);
        }
        // Logged only now, with the entry verified present under the
        // exclusive latch: a delete record in the WAL always replays.
        let lsn = w.wal.log_delete(rect_key(rect), item)?;
        node.entries.remove(pos);
        self.store_w(w, leaf, &node);
        w.meta.lock().items -= 1;
        w.logical_writes.fetch_add(1, Ordering::Relaxed);
        Ok(FastDelete::Deleted(lsn))
    }

    /// Exclusive-path delete: quiesces every other operation through the
    /// write side of the operation gate, then runs FindLeaf/CondenseTree
    /// exactly as the sequential tree does — dissolving underfull nodes,
    /// reinserting orphans at their original level, shrinking the root.
    /// Holding the gate for the whole operation keeps orphaned entries
    /// invisible to nobody: no reader or writer can observe the window
    /// where they are detached from the tree.
    fn delete_exclusive(&self, w: &WriterState, rect: &Rect, item: u64) -> io::Result<bool> {
        let gate = w.op_gate.write();
        let root = w.meta.lock().root;
        let mut path = Vec::new();
        let Some(leaf_id) = self.find_leaf_x(w, root, rect, item, &mut path)? else {
            return Ok(false);
        };
        let mut cur = self.load_w(w, leaf_id)?;
        let pos = cur
            .entries
            .iter()
            .position(|(r, p)| *p == item && r == rect)
            .expect("find_leaf_x verified the entry");
        let lsn = w.wal.log_delete(rect_key(rect), item)?;
        cur.entries.remove(pos);

        let mut orphans: Vec<(u16, Vec<(Rect, u64)>)> = Vec::new();
        let mut cur_id = leaf_id;
        while let Some((parent_id, slot)) = path.pop() {
            let mut parent = self.load_w(w, parent_id)?;
            debug_assert_eq!(parent.entries[slot].1, cur_id);
            if cur.entries.len() < w.min_entries {
                orphans.push((cur.level, std::mem::take(&mut cur.entries)));
                self.free_w(w, cur_id);
                w.meta.lock().nodes -= 1;
                parent.entries.remove(slot);
            } else {
                self.store_w(w, cur_id, &cur);
                parent.entries[slot].0 = mbr(&cur.entries);
            }
            cur_id = parent_id;
            cur = parent;
        }
        // `cur` is the root; it may legally underflow (or empty out when
        // it is a leaf).
        self.store_w(w, cur_id, &cur);

        // Reinsert orphans highest level first, so subtrees land before
        // entries that would go under them.
        orphans.sort_by_key(|o| std::cmp::Reverse(o.0));
        for (level, entries) in orphans {
            for entry in entries {
                self.insert_entry_exclusive(w, entry, level)?;
            }
        }

        // ShrinkTree: while the root is internal with a single child, the
        // child becomes the root.
        loop {
            let root_id = w.meta.lock().root;
            let root = self.load_w(w, root_id)?;
            if root.level > 0 && root.entries.len() == 1 {
                {
                    let mut m = w.meta.lock();
                    m.root = root.entries[0].1;
                    m.height -= 1;
                    m.nodes -= 1;
                }
                self.free_w(w, root_id);
            } else {
                break;
            }
        }

        w.meta.lock().items -= 1;
        w.logical_writes.fetch_add(1, Ordering::Relaxed);
        drop(gate);
        self.group_commit(w, lsn)?;
        Ok(true)
    }

    /// Finds the leaf holding the exact `(rect, item)` entry, filling
    /// `path` with `(page, slot)` pairs from the root down. Exclusive
    /// gate held by the caller: no latches.
    fn find_leaf_x(
        &self,
        w: &WriterState,
        pid: u64,
        rect: &Rect,
        item: u64,
        path: &mut Vec<(u64, usize)>,
    ) -> io::Result<Option<u64>> {
        let node = self.load_w(w, pid)?;
        if node.level == 0 {
            if node.entries.iter().any(|(r, p)| *p == item && r == rect) {
                return Ok(Some(pid));
            }
            return Ok(None);
        }
        for (slot, (r, child)) in node.entries.iter().enumerate() {
            if r.contains_rect(rect) {
                path.push((pid, slot));
                if let Some(leaf) = self.find_leaf_x(w, *child, rect, item, path)? {
                    return Ok(Some(leaf));
                }
                path.pop();
            }
        }
        Ok(None)
    }

    /// Orphan reinsertion under the exclusive gate: AdjustTree at an
    /// arbitrary target level, latch-free (the gate already excludes
    /// every other operation — calling the public `insert` here would
    /// deadlock on the gate's read side).
    fn insert_entry_exclusive(
        &self,
        w: &WriterState,
        entry: (Rect, u64),
        target_level: u16,
    ) -> io::Result<()> {
        let mut path: Vec<(u64, usize)> = Vec::new();
        let mut cur_id = w.meta.lock().root;
        let mut node = self.load_w(w, cur_id)?;
        while node.level > target_level {
            let slot = choose_subtree(&node.entries, &entry.0);
            path.push((cur_id, slot));
            cur_id = node.entries[slot].1;
            node = self.load_w(w, cur_id)?;
        }
        debug_assert_eq!(node.level, target_level, "target level must exist");
        node.entries.push(entry);

        let mut level = node.level;
        let mut split: Option<(Rect, u64)> = None;
        let mut child_mbr;
        if node.entries.len() > w.cap(node.level) {
            let (a, b) = quadratic_split(std::mem::take(&mut node.entries), w.min_entries);
            child_mbr = mbr(&a);
            node.entries = a;
            self.store_w(w, cur_id, &node);
            split = Some(self.store_sibling_w(w, level, b)?);
        } else {
            child_mbr = mbr(&node.entries);
            self.store_w(w, cur_id, &node);
        }
        let mut child_id = cur_id;

        while let Some((pid, slot)) = path.pop() {
            let mut parent = self.load_w(w, pid)?;
            debug_assert_eq!(parent.entries[slot].1, child_id);
            parent.entries[slot].0 = child_mbr;
            if let Some(s) = split.take() {
                parent.entries.push(s);
            }
            level = parent.level;
            if parent.entries.len() > w.cap(parent.level) {
                let (a, b) = quadratic_split(std::mem::take(&mut parent.entries), w.min_entries);
                child_mbr = mbr(&a);
                parent.entries = a;
                self.store_w(w, pid, &parent);
                split = Some(self.store_sibling_w(w, level, b)?);
            } else {
                child_mbr = mbr(&parent.entries);
                self.store_w(w, pid, &parent);
            }
            child_id = pid;
        }

        if let Some(sibling) = split {
            let new_root_id = self.alloc_w(w)?;
            self.store_w(
                w,
                new_root_id,
                &NodePage {
                    level: level + 1,
                    entries: vec![(child_mbr, child_id), sibling],
                },
            );
            let mut m = w.meta.lock();
            m.root = new_root_id;
            m.height += 1;
            m.nodes += 1;
        }
        Ok(())
    }

    /// Writes a freshly split-off sibling node and returns its parent
    /// entry (exclusive-gate path only).
    fn store_sibling_w(
        &self,
        w: &WriterState,
        level: u16,
        entries: Vec<(Rect, u64)>,
    ) -> io::Result<(Rect, u64)> {
        let rect = mbr(&entries);
        let id = self.alloc_w(w)?;
        self.store_w(w, id, &NodePage { level, entries });
        w.meta.lock().nodes += 1;
        Ok((rect, id))
    }

    /// Flushes every dirty page and the metadata to the store, fsyncs,
    /// checkpoints (and truncates) the WAL, and clears the overlay —
    /// under the exclusive gate, so the image is an exact snapshot of all
    /// committed operations. Resident shard frames are refreshed in
    /// place so read caching stays coherent after the overlay empties.
    ///
    /// A crash *during* the page flush can tear the image; recovering
    /// from that needs the physical WAL ([`crate::recover`]) and is out
    /// of scope for the logical writer — the WAL is truncated only after
    /// a successful flush, so a crash before the truncate replays the
    /// full window over the previous image instead.
    pub fn checkpoint(&self) -> io::Result<()> {
        let w = self.writer_state()?;
        let _gate = w.op_gate.write();
        let overlay: Vec<(u64, Arc<[u8]>)> = w
            .overlay
            .read()
            .iter()
            .map(|(id, f)| (*id, Arc::clone(f)))
            .collect();
        for (id, frame) in &overlay {
            self.store.write_page_shared(PageId(*id), frame)?;
            w.page_writes.fetch_add(1, Ordering::Relaxed);
            let shard = self.shard(PageId(*id));
            let mut s = shard.state.lock();
            if s.pool.contains(PageId(*id)) {
                s.frames.insert(PageId(*id), Arc::clone(frame));
            }
        }
        let mut meta = w.meta.lock().clone();
        // The session free list is not persisted: pages freed since the
        // last checkpoint leak on reopen (documented trade — the on-disk
        // free list stays out of the latch protocol).
        meta.free_head = 0;
        meta.level_starts = Vec::new();
        let mut buf = vec![0u8; PAGE_SIZE];
        meta.encode(&mut buf);
        self.store.write_page_shared(PageId(0), &buf)?;
        w.page_writes.fetch_add(1, Ordering::Relaxed);
        self.store.flush_shared()?;
        w.wal.checkpoint()?;
        w.overlay.write().clear();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemStore;
    use rtree_buffer::LruPolicy;
    use rtree_geom::Point;
    use rtree_index::BulkLoader;

    fn sample_rects(n: usize) -> Vec<Rect> {
        (0..n)
            .map(|i| {
                let x = (i as f64 * 0.618_033) % 0.97;
                let y = (i as f64 * 0.414_213) % 0.97;
                Rect::new(x, y, x + 0.01, y + 0.01)
            })
            .collect()
    }

    #[test]
    fn single_thread_matches_in_memory() {
        let rects = sample_rects(800);
        let tree = BulkLoader::hilbert(16).load(&rects);
        let disk =
            ConcurrentDiskRTree::create(MemStore::new(), &tree, 64, LruPolicy::new()).unwrap();
        for q in [
            Rect::new(0.1, 0.1, 0.4, 0.3),
            Rect::point(Point::new(0.5, 0.5)),
            Rect::new(0.0, 0.0, 1.0, 1.0),
        ] {
            let mut a = disk.query(&q).unwrap();
            let mut b = tree.search(&q);
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn concurrent_queries_are_correct_and_counted() {
        let rects = sample_rects(2_000);
        let tree = BulkLoader::hilbert(20).load(&rects);
        let disk = Arc::new(
            ConcurrentDiskRTree::create(MemStore::new(), &tree, 50, LruPolicy::new()).unwrap(),
        );

        let queries: Vec<Rect> = (0..64)
            .map(|i| {
                let x = (i as f64 * 0.37) % 0.8;
                let y = (i as f64 * 0.59) % 0.8;
                Rect::new(x, y, x + 0.1, y + 0.1)
            })
            .collect();
        let expected: Vec<Vec<u64>> = queries
            .iter()
            .map(|q| {
                let mut v = tree.search(q);
                v.sort_unstable();
                v
            })
            .collect();

        std::thread::scope(|scope| {
            for t in 0..4 {
                let disk = Arc::clone(&disk);
                let queries = &queries;
                let expected = &expected;
                scope.spawn(move || {
                    for (q, want) in queries.iter().zip(expected).skip(t).step_by(4) {
                        let mut got = disk.query(q).unwrap();
                        got.sort_unstable();
                        assert_eq!(&got, want);
                    }
                });
            }
        });
        assert!(disk.physical_reads() > 0);
    }

    #[test]
    fn query_batch_matches_sequential_across_thread_counts() {
        let rects = sample_rects(2_000);
        let tree = BulkLoader::hilbert(16).load(&rects);
        let queries: Vec<Rect> = (0..48)
            .map(|i| {
                let x = (i as f64 * 0.37) % 0.8;
                let y = (i as f64 * 0.59) % 0.8;
                Rect::new(x, y, x + 0.1, y + 0.1)
            })
            .collect();
        let expected: Vec<Vec<u64>> = queries
            .iter()
            .map(|q| {
                let mut v = tree.search(q);
                v.sort_unstable();
                v
            })
            .collect();

        for threads in [1, 3, 4, 64, 0] {
            let disk =
                ConcurrentDiskRTree::create_sharded(MemStore::new(), &tree, 48, 4, LruPolicy::new)
                    .unwrap();
            let got = disk.query_batch(&queries, threads).unwrap();
            assert_eq!(got.len(), queries.len());
            for (i, mut g) in got.into_iter().enumerate() {
                g.sort_unstable();
                assert_eq!(g, expected[i], "threads {threads}, query {i}");
            }
            assert!(disk.physical_reads() > 0);
        }
    }

    #[test]
    fn query_batch_single_thread_dedups_shared_pages() {
        let rects = sample_rects(2_000);
        let tree = BulkLoader::hilbert(10).load(&rects);
        let queries: Vec<Rect> = (0..32)
            .map(|i| {
                let x = (i as f64 * 0.11) % 0.5;
                Rect::new(x, x, x + 0.2, x + 0.2)
            })
            .collect();

        // Cold batch with a tiny buffer: dedup, not cache capacity, must
        // bound the reads at the distinct-page count.
        let batch =
            ConcurrentDiskRTree::create(MemStore::new(), &tree, 4, LruPolicy::new()).unwrap();
        batch.query_batch(&queries, 1).unwrap();
        let batch_reads = batch.physical_reads();

        // Equally cold sequential run reads every distinct page at least
        // once, plus whatever the small buffer forces it to re-read.
        let seq = ConcurrentDiskRTree::create(MemStore::new(), &tree, 4, LruPolicy::new()).unwrap();
        for q in &queries {
            seq.query(q).unwrap();
        }
        assert!(
            batch_reads <= seq.physical_reads(),
            "batch {} vs sequential {}",
            batch_reads,
            seq.physical_reads()
        );

        let stats = batch.buffer_stats();
        assert_eq!(stats.hits + stats.misses, stats.accesses);
    }

    #[test]
    fn query_batch_empty_and_miss_batches() {
        let rects = sample_rects(300);
        let tree = BulkLoader::hilbert(10).load(&rects);
        let disk =
            ConcurrentDiskRTree::create(MemStore::new(), &tree, 16, LruPolicy::new()).unwrap();
        assert!(disk.query_batch(&[], 4).unwrap().is_empty());
        let far = vec![Rect::new(2.0, 2.0, 3.0, 3.0); 5];
        let out = disk.query_batch(&far, 2).unwrap();
        assert_eq!(out.len(), 5);
        assert!(out.iter().all(Vec::is_empty));
        // Root-MBR filtering: nothing was charged to the pool.
        assert_eq!(disk.physical_reads(), 0);
    }

    #[test]
    fn pinning_works_shared() {
        let rects = sample_rects(1_500);
        let tree = BulkLoader::hilbert(10).load(&rects);
        let disk =
            ConcurrentDiskRTree::create(MemStore::new(), &tree, 40, LruPolicy::new()).unwrap();
        disk.pin_top_levels(2).unwrap();
        disk.reset_counters();
        disk.query(&Rect::point(Point::new(0.3, 0.3))).unwrap();
        // Only unpinned levels can cost reads.
        assert!(disk.physical_reads() <= u64::from(disk.meta().height));
    }

    #[test]
    fn open_round_trip() {
        let rects = sample_rects(400);
        let tree = BulkLoader::nearest_x(10).load(&rects);
        let mut store = MemStore::new();
        {
            let d = ConcurrentDiskRTree::create(&mut store, &tree, 8, LruPolicy::new()).unwrap();
            assert_eq!(d.meta().items, 400);
        }
        let d = ConcurrentDiskRTree::open(&mut store, 8, LruPolicy::new()).unwrap();
        assert_eq!(d.query(&Rect::new(0.0, 0.0, 1.0, 1.0)).unwrap().len(), 400);
    }

    #[test]
    fn shared_counts_match_sequential_counts() {
        // With one thread, the concurrent wrapper must count exactly like
        // the plain DiskRTree (same LRU decisions).
        let rects = sample_rects(1_200);
        let tree = BulkLoader::hilbert(12).load(&rects);
        let concurrent =
            ConcurrentDiskRTree::create(MemStore::new(), &tree, 25, LruPolicy::new()).unwrap();
        let mut plain =
            crate::DiskRTree::create(MemStore::new(), &tree, 25, LruPolicy::new()).unwrap();
        for i in 0..300 {
            let x = (i as f64 * 0.217) % 0.9;
            let y = (i as f64 * 0.431) % 0.9;
            let q = Rect::new(x, y, x + 0.05, y + 0.05);
            concurrent.query(&q).unwrap();
            plain.query(&q).unwrap();
        }
        assert_eq!(concurrent.physical_reads(), plain.physical_reads());
    }

    #[test]
    fn shard_resolution_rules() {
        // Explicit counts round up to a power of two…
        assert_eq!(resolve_shards(3, 1024), 4);
        assert_eq!(resolve_shards(8, 1024), 8);
        // …but never exceed the capacity (every shard needs a frame).
        assert_eq!(resolve_shards(8, 5), 4);
        assert_eq!(resolve_shards(16, 1), 1);
        // 0 = auto: one per hardware thread, still a power of two.
        let auto = resolve_shards(0, 1 << 20);
        assert!(auto.is_power_of_two() && auto >= 1);
    }

    #[test]
    fn sharded_queries_match_in_memory() {
        let rects = sample_rects(2_000);
        let tree = BulkLoader::hilbert(16).load(&rects);
        let disk = Arc::new(
            ConcurrentDiskRTree::create_sharded(MemStore::new(), &tree, 48, 4, LruPolicy::new)
                .unwrap(),
        );
        assert_eq!(disk.shard_count(), 4);

        let queries: Vec<Rect> = (0..96)
            .map(|i| {
                let x = (i as f64 * 0.41) % 0.85;
                let y = (i as f64 * 0.23) % 0.85;
                Rect::new(x, y, x + 0.08, y + 0.08)
            })
            .collect();
        let expected: Vec<Vec<u64>> = queries
            .iter()
            .map(|q| {
                let mut v = tree.search(q);
                v.sort_unstable();
                v
            })
            .collect();

        std::thread::scope(|scope| {
            for t in 0..8 {
                let disk = Arc::clone(&disk);
                let queries = &queries;
                let expected = &expected;
                scope.spawn(move || {
                    for (q, want) in queries.iter().zip(expected).skip(t).step_by(8) {
                        let mut got = disk.query(q).unwrap();
                        got.sort_unstable();
                        assert_eq!(&got, want);
                    }
                });
            }
        });
        let stats = disk.buffer_stats();
        assert!(stats.accesses > 0);
        assert_eq!(stats.hits + stats.misses, stats.accesses);
        assert!(disk.physical_reads() > 0);
        assert_eq!(disk.io_stats().writes, 0);
    }

    #[test]
    fn sharded_capacity_is_split_proportionally() {
        let rects = sample_rects(1_000);
        let tree = BulkLoader::hilbert(10).load(&rects);
        let disk =
            ConcurrentDiskRTree::create_sharded(MemStore::new(), &tree, 10, 4, LruPolicy::new)
                .unwrap();
        let caps: Vec<usize> = disk
            .shards
            .iter()
            .map(|s| s.state.lock().pool.capacity())
            .collect();
        assert_eq!(caps, vec![3, 3, 2, 2]);
    }

    #[test]
    fn root_peek_is_cached_and_counted() {
        let rects = sample_rects(600);
        let tree = BulkLoader::hilbert(10).load(&rects);
        let disk =
            ConcurrentDiskRTree::create(MemStore::new(), &tree, 8, LruPolicy::new()).unwrap();
        // A query outside every MBR touches only the root peek.
        let far = Rect::new(0.995, 0.995, 1.0, 1.0);
        for _ in 0..5 {
            assert!(disk.query(&far).unwrap().is_empty());
        }
        let io = disk.io_stats();
        assert_eq!(io.reads, 0, "root miss must not charge the buffer");
        assert_eq!(io.peek_reads, 1, "peek is read once, then cached");
        assert_eq!(io.total(), 1, "the physical transfer is not dropped");
    }

    #[test]
    fn pin_out_of_range_is_an_error_not_a_panic() {
        let rects = sample_rects(300);
        let tree = BulkLoader::hilbert(10).load(&rects);
        let disk =
            ConcurrentDiskRTree::create(MemStore::new(), &tree, 16, LruPolicy::new()).unwrap();
        let levels = disk.meta().level_starts.len();
        let err = disk.pin_top_levels(levels + 1).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        // The valid range still works afterwards.
        disk.pin_top_levels(1).unwrap();
    }

    #[test]
    fn sharded_pinning_distributes_and_exempts() {
        let rects = sample_rects(2_500);
        let tree = BulkLoader::hilbert(10).load(&rects);
        let disk = Arc::new(
            ConcurrentDiskRTree::create_sharded(MemStore::new(), &tree, 64, 4, LruPolicy::new)
                .unwrap(),
        );
        disk.pin_top_levels(2).unwrap();
        let pinned: usize = disk
            .shards
            .iter()
            .map(|s| s.state.lock().pool.pinned_count())
            .sum();
        let expect = (disk.meta().level_starts[2] - 1) as usize;
        assert_eq!(pinned, expect, "every top-level page pinned exactly once");
        assert!(
            disk.shards
                .iter()
                .filter(|s| s.state.lock().pool.pinned_count() > 0)
                .count()
                > 1,
            "pinned pages should spread across shards"
        );
        disk.reset_counters();
        disk.query(&Rect::point(Point::new(0.4, 0.4))).unwrap();
        assert!(disk.physical_reads() <= u64::from(disk.meta().height));
    }

    /// Many threads query while another thread pins the top levels — the
    /// latch protocol must keep results correct and the pool consistent.
    #[test]
    fn pin_while_querying_stress() {
        let rects = sample_rects(3_000);
        let tree = BulkLoader::hilbert(10).load(&rects);
        let disk = Arc::new(
            ConcurrentDiskRTree::create_sharded(MemStore::new(), &tree, 128, 4, LruPolicy::new)
                .unwrap(),
        );
        let queries: Vec<Rect> = (0..48)
            .map(|i| {
                let x = (i as f64 * 0.173) % 0.85;
                let y = (i as f64 * 0.377) % 0.85;
                Rect::new(x, y, x + 0.06, y + 0.06)
            })
            .collect();
        let expected: Vec<Vec<u64>> = queries
            .iter()
            .map(|q| {
                let mut v = tree.search(q);
                v.sort_unstable();
                v
            })
            .collect();

        std::thread::scope(|scope| {
            for t in 0..8 {
                let disk = Arc::clone(&disk);
                let queries = &queries;
                let expected = &expected;
                scope.spawn(move || {
                    for round in 0..6 {
                        for (q, want) in queries
                            .iter()
                            .zip(expected)
                            .skip((t + round) % 8)
                            .step_by(8)
                        {
                            let mut got = disk.query(q).unwrap();
                            got.sort_unstable();
                            assert_eq!(&got, want);
                        }
                    }
                });
            }
            let pinner = Arc::clone(&disk);
            scope.spawn(move || {
                for p in [1usize, 2, 1, 2] {
                    pinner.pin_top_levels(p).unwrap();
                }
            });
        });
        let stats = disk.buffer_stats();
        assert_eq!(stats.hits + stats.misses, stats.accesses);
        // Pinned pages stayed pinned and within capacity.
        for shard in disk.shards.iter() {
            let s = shard.state.lock();
            assert!(s.pool.len() <= s.pool.capacity());
            assert_eq!(s.frames.len(), s.pool.len());
        }
    }

    #[test]
    fn reset_counters_clears_every_shard() {
        let rects = sample_rects(1_000);
        let tree = BulkLoader::hilbert(10).load(&rects);
        let disk =
            ConcurrentDiskRTree::create_sharded(MemStore::new(), &tree, 32, 4, LruPolicy::new)
                .unwrap();
        for i in 0..20 {
            let x = (i as f64 * 0.31) % 0.9;
            disk.query(&Rect::new(x, x, x + 0.05, x + 0.05)).unwrap();
        }
        assert!(disk.physical_reads() > 0);
        disk.reset_counters();
        assert_eq!(disk.io_stats(), IoStats::default());
        assert_eq!(disk.buffer_stats(), BufferStats::default());
    }

    fn writer_wal() -> GroupWal {
        GroupWal::open(rtree_wal::MemLog::new()).expect("open wal")
    }

    /// Deterministic small rectangle for writer tests, keyed by item id.
    fn item_rect(id: u64) -> Rect {
        let x = ((id.wrapping_mul(2_654_435_761) % 9_973) as f64) / 9_973.0;
        let y = ((id.wrapping_mul(1_327_217_885) % 9_931) as f64) / 9_931.0;
        Rect::new(x, y, x + 0.004, y + 0.004)
    }

    fn probe_queries() -> Vec<Rect> {
        (0..24)
            .map(|i| {
                let x = (i as f64 * 0.207) % 0.85;
                let y = (i as f64 * 0.313) % 0.85;
                Rect::new(x, y, x + 0.15, y + 0.15)
            })
            .collect()
    }

    #[test]
    fn writable_tree_inserts_deletes_and_queries() {
        let tree = ConcurrentDiskRTree::create_writable(
            crate::SharedMemStore::new(),
            8,
            3,
            16,
            LruPolicy::new(),
            writer_wal(),
        )
        .unwrap();
        let n = 300u64;
        for id in 0..n {
            tree.insert(&item_rect(id), id).unwrap();
        }
        assert_eq!(tree.live_items(), n);
        // Single-threaded: every op leads its own commit batch.
        let stats = tree.group_commit_stats().unwrap();
        assert_eq!(stats.committed_ops, n);
        assert_eq!(stats.fsyncs, n);

        // Delete every third item; the rest must stay queryable.
        for id in (0..n).step_by(3) {
            assert!(tree.delete(&item_rect(id), id).unwrap(), "item {id}");
        }
        assert!(!tree.delete(&item_rect(0), 0).unwrap(), "already gone");
        let expected: Vec<u64> = (0..n).filter(|id| id % 3 != 0).collect();
        assert_eq!(tree.live_items(), expected.len() as u64);
        let mut all = tree.query(&Rect::new(0.0, 0.0, 2.0, 2.0)).unwrap();
        all.sort_unstable();
        assert_eq!(all, expected);
        assert!(tree.logical_writes() > n, "deletes counted too");
        assert!(tree.is_writable());
    }

    #[test]
    fn deep_deletes_condense_and_shrink_the_tree() {
        // Tiny fanout forces a tall tree, underflows, orphan reinsertion
        // and root shrinking through the exclusive fallback path.
        let tree = ConcurrentDiskRTree::create_writable(
            crate::SharedMemStore::new(),
            4,
            2,
            8,
            LruPolicy::new(),
            writer_wal(),
        )
        .unwrap();
        for id in 0..120u64 {
            tree.insert(&item_rect(id), id).unwrap();
        }
        let grown_height = {
            let w = tree.writer.as_ref().unwrap();
            let m = w.meta.lock();
            assert!(m.height > 2, "tree should be tall (got {})", m.height);
            m.height
        };
        for id in 0..110u64 {
            assert!(tree.delete(&item_rect(id), id).unwrap(), "item {id}");
        }
        {
            let w = tree.writer.as_ref().unwrap();
            let m = w.meta.lock();
            assert!(
                m.height < grown_height,
                "condense should shrink the root ({} -> {})",
                grown_height,
                m.height
            );
        }
        let mut rest = tree.query(&Rect::new(0.0, 0.0, 2.0, 2.0)).unwrap();
        rest.sort_unstable();
        assert_eq!(rest, (110..120).collect::<Vec<u64>>());
        // Dissolved pages are recycled by later growth.
        let freed = tree.writer.as_ref().unwrap().free.lock().len();
        assert!(freed > 0, "condense should have freed pages");
        for id in 200..260u64 {
            tree.insert(&item_rect(id), id).unwrap();
        }
        assert!(
            tree.writer.as_ref().unwrap().free.lock().len() < freed,
            "growth reuses the session free list"
        );
    }

    #[test]
    fn read_only_tree_rejects_writes() {
        let rects = sample_rects(100);
        let bulk = BulkLoader::hilbert(16).load(&rects);
        let tree =
            ConcurrentDiskRTree::create(crate::SharedMemStore::new(), &bulk, 16, LruPolicy::new())
                .unwrap();
        let err = tree.insert(&item_rect(1), 1).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::PermissionDenied);
        let err = tree.delete(&item_rect(1), 1).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::PermissionDenied);
        let err = tree.checkpoint().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::PermissionDenied);
    }

    #[test]
    fn checkpoint_persists_an_openable_image() {
        let store = crate::SharedMemStore::new();
        let tree =
            ConcurrentDiskRTree::create_writable(store, 8, 3, 16, LruPolicy::new(), writer_wal())
                .unwrap();
        for id in 0..250u64 {
            tree.insert(&item_rect(id), id).unwrap();
        }
        for id in (0..250u64).step_by(5) {
            tree.delete(&item_rect(id), id).unwrap();
        }
        tree.checkpoint().unwrap();
        assert!(
            tree.group_commit_stats().unwrap().committed_ops > 0,
            "ops were committed before the checkpoint truncated the log"
        );
        let wal_len = tree.writer.as_ref().unwrap().wal.len();
        assert_eq!(wal_len, 0, "checkpoint truncates the WAL");
        let image = tree.store.snapshot();

        // The image opens both concurrently (read-only) and sequentially,
        // and agrees with the live writable tree on every probe.
        let reopened = ConcurrentDiskRTree::open(
            crate::SharedMemStore::from_bytes(image.clone()),
            16,
            LruPolicy::new(),
        )
        .unwrap();
        let mut seq = crate::DiskRTree::open(
            crate::SharedMemStore::from_bytes(image),
            16,
            LruPolicy::new(),
        )
        .unwrap();
        for q in probe_queries() {
            let mut live = tree.query(&q).unwrap();
            let mut ro = reopened.query(&q).unwrap();
            let mut sq = seq.query(&q).unwrap();
            live.sort_unstable();
            ro.sort_unstable();
            sq.sort_unstable();
            assert_eq!(live, ro);
            assert_eq!(live, sq);
        }
        assert_eq!(reopened.meta().items, tree.live_items());
    }

    /// Satellite: N concurrent writers + a reader match the sequential
    /// tree across all five replacement policies. Threads insert disjoint
    /// id ranges and delete only their own items, so the final contents
    /// are deterministic regardless of interleaving.
    #[test]
    fn concurrent_writers_match_sequential_across_policies() {
        let policies: Vec<(&str, Box<dyn Fn() -> Box<dyn ReplacementPolicy>>)> = vec![
            ("lru", Box::new(|| Box::new(rtree_buffer::LruPolicy::new()))),
            (
                "lru2",
                Box::new(|| Box::new(rtree_buffer::LruKPolicy::new(2))),
            ),
            (
                "fifo",
                Box::new(|| Box::new(rtree_buffer::FifoPolicy::new())),
            ),
            (
                "clock",
                Box::new(|| Box::new(rtree_buffer::ClockPolicy::new())),
            ),
            (
                "random",
                Box::new(|| Box::new(rtree_buffer::RandomPolicy::new(42))),
            ),
        ];
        const THREADS: u64 = 4;
        const PER_THREAD: u64 = 120;
        let id_of = |t: u64, i: u64| (t << 40) | i;

        // Sequential oracle: same ops, one thread, the paper's tree.
        let mut oracle =
            crate::DiskRTree::create_empty(crate::MemStore::new(), 6, 2, 16, LruPolicy::new())
                .unwrap();
        for t in 0..THREADS {
            for i in 0..PER_THREAD {
                let id = id_of(t, i);
                oracle.insert(item_rect(id), id).unwrap();
            }
        }
        for t in 0..THREADS {
            for i in (0..PER_THREAD).step_by(3) {
                let id = id_of(t, i);
                assert!(oracle.delete(&item_rect(id), id).unwrap());
            }
        }

        for (name, make_policy) in policies {
            let tree = ConcurrentDiskRTree::create_writable(
                crate::SharedMemStore::new(),
                6,
                2,
                16,
                BoxedPolicy(make_policy()),
                writer_wal(),
            )
            .unwrap();
            std::thread::scope(|scope| {
                for t in 0..THREADS {
                    let tree = &tree;
                    scope.spawn(move || {
                        for i in 0..PER_THREAD {
                            let id = id_of(t, i);
                            tree.insert(&item_rect(id), id).unwrap();
                            if i % 3 == 0 {
                                assert!(
                                    tree.delete(&item_rect(id), id).unwrap(),
                                    "own item {id} must be present"
                                );
                            }
                        }
                    });
                }
                // A reader hammering queries concurrently must never
                // deadlock or observe a torn page.
                let tree = &tree;
                scope.spawn(move || {
                    for q in probe_queries().iter().cycle().take(200) {
                        tree.query(q).unwrap();
                    }
                });
            });
            assert_eq!(
                tree.live_items(),
                THREADS * (PER_THREAD - PER_THREAD.div_ceil(3)),
                "policy {name}"
            );
            for q in probe_queries() {
                let mut got = tree.query(&q).unwrap();
                let mut want = oracle.query(&q).unwrap();
                got.sort_unstable();
                want.sort_unstable();
                assert_eq!(got, want, "policy {name}, query {q:?}");
            }
            let stats = tree.group_commit_stats().unwrap();
            assert!(
                stats.committed_ops >= THREADS * PER_THREAD,
                "policy {name}: every op commits"
            );
        }
    }

    #[test]
    fn resize_repartitions_shards_and_keeps_pins_and_answers() {
        let rects = sample_rects(2_000);
        let tree = BulkLoader::hilbert(16).load(&rects);
        let disk =
            ConcurrentDiskRTree::create_sharded(MemStore::new(), &tree, 64, 4, LruPolicy::new)
                .unwrap();
        assert_eq!(disk.buffer_capacity(), 64);
        disk.pin_top_levels(2).unwrap();
        let pinned = disk.pinned_pages();
        assert!(pinned > 0);
        let q = Rect::new(0.1, 0.1, 0.5, 0.5);
        let mut want = disk.query(&q).unwrap();
        want.sort_unstable();

        // Shrinking below the shard count or a shard's pinned share fails
        // with the pools untouched.
        assert_eq!(
            disk.resize_buffer(3, LruPolicy::new).unwrap_err().kind(),
            io::ErrorKind::InvalidInput
        );
        assert_eq!(
            disk.resize_buffer(pinned.max(4) - 1, LruPolicy::new)
                .unwrap_err()
                .kind(),
            io::ErrorKind::InvalidInput
        );
        assert_eq!(disk.buffer_capacity(), 64);
        assert_eq!(disk.pinned_pages(), pinned);

        // A legal resize keeps the pins and the answers; pinned frames
        // carry over so re-reading them costs no I/O.
        disk.resize_buffer(24, LruPolicy::new).unwrap();
        assert_eq!(disk.buffer_capacity(), 24);
        assert_eq!(disk.pinned_pages(), pinned);
        let before = disk.physical_reads();
        let mut got = disk.query(&q).unwrap();
        got.sort_unstable();
        assert_eq!(got, want);
        assert!(disk.physical_reads() >= before, "counters survive resize");
    }

    #[test]
    fn set_pinned_levels_retargets_without_io() {
        let rects = sample_rects(2_000);
        let tree = BulkLoader::hilbert(16).load(&rects);
        let disk =
            ConcurrentDiskRTree::create(MemStore::new(), &tree, 64, LruPolicy::new()).unwrap();
        disk.pin_top_levels(2).unwrap();
        let deep = disk.pinned_pages();
        let reads = disk.physical_reads();
        // Retargeting to fewer levels unpins without touching the store.
        disk.set_pinned_levels(1).unwrap();
        assert!(disk.pinned_pages() < deep);
        assert_eq!(disk.physical_reads(), reads, "unpin is I/O-free");
        // Re-pinning the already-resident second level is also free.
        disk.set_pinned_levels(2).unwrap();
        assert_eq!(disk.pinned_pages(), deep);
        assert_eq!(disk.physical_reads(), reads, "frames stayed resident");
        disk.set_pinned_levels(0).unwrap();
        assert_eq!(disk.pinned_pages(), 0);
    }

    #[test]
    fn point_query_matches_degenerate_region_query() {
        let rects = sample_rects(1_000);
        let tree = BulkLoader::hilbert(16).load(&rects);
        let disk =
            ConcurrentDiskRTree::create(MemStore::new(), &tree, 32, LruPolicy::new()).unwrap();
        for i in 0..40 {
            let p = Point::new((i as f64 * 0.171) % 1.0, (i as f64 * 0.257) % 1.0);
            let mut a = disk.query_point(&p).unwrap();
            let mut b = disk.query(&Rect { lo: p, hi: p }).unwrap();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "point {p:?}");
        }
        // Boundary inclusivity: a point on a rect edge matches it.
        let edge = Point::new(rects[7].lo.x, rects[7].lo.y);
        assert!(disk.query_point(&edge).unwrap().contains(&7));
    }

    #[test]
    fn concurrent_knn_matches_in_memory_knn() {
        let rects = sample_rects(1_500);
        let tree = BulkLoader::hilbert(16).load(&rects);
        let disk = Arc::new(
            ConcurrentDiskRTree::create(MemStore::new(), &tree, 48, LruPolicy::new()).unwrap(),
        );
        let probes = [
            (Point::new(0.5, 0.5), 10),
            (Point::new(0.0, 0.0), 1),
            (Point::new(-3.0, 7.0), 25),
            (Point::new(0.25, 0.75), 1_500),
            (Point::new(0.9, 0.1), 4_000),
        ];
        std::thread::scope(|scope| {
            for t in 0..3 {
                let disk = Arc::clone(&disk);
                let tree = &tree;
                scope.spawn(move || {
                    for (p, k) in probes.iter().skip(t).step_by(3) {
                        let got = disk.nearest_neighbors(p, *k).unwrap();
                        let want = tree.nearest_neighbors(p, *k);
                        let gd: Vec<f64> = got.iter().map(|n| n.distance).collect();
                        let wd: Vec<f64> = want.iter().map(|n| n.distance).collect();
                        assert_eq!(gd, wd, "distance sequence, p {p:?} k {k}");
                    }
                });
            }
        });
        assert!(disk
            .nearest_neighbors(&Point::new(0.5, 0.5), 0)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn writable_knn_sees_inserts_and_deletes() {
        fn d2(p: &Point, r: &Rect) -> f64 {
            let dx = (r.lo.x - p.x).max(0.0).max(p.x - r.hi.x);
            let dy = (r.lo.y - p.y).max(0.0).max(p.y - r.hi.y);
            dx * dx + dy * dy
        }
        let tree = ConcurrentDiskRTree::create_writable(
            crate::SharedMemStore::new(),
            8,
            3,
            16,
            LruPolicy::new(),
            writer_wal(),
        )
        .unwrap();
        assert!(
            tree.nearest_neighbors(&Point::new(0.5, 0.5), 3)
                .unwrap()
                .is_empty(),
            "empty writable tree"
        );
        let n = 400u64;
        for id in 0..n {
            tree.insert(&item_rect(id), id).unwrap();
        }
        for id in (0..n).step_by(4) {
            assert!(tree.delete(&item_rect(id), id).unwrap());
        }
        let live: Vec<u64> = (0..n).filter(|id| id % 4 != 0).collect();
        for (p, k) in [
            (Point::new(0.5, 0.5), 7),
            (Point::new(0.05, 0.95), 1),
            (Point::new(0.3, 0.3), live.len() + 10),
        ] {
            let got = tree.nearest_neighbors(&p, k).unwrap();
            let mut want: Vec<f64> = live
                .iter()
                .map(|&id| d2(&p, &item_rect(id)).sqrt())
                .collect();
            want.sort_by(f64::total_cmp);
            want.truncate(k);
            let gd: Vec<f64> = got.iter().map(|n| n.distance).collect();
            assert_eq!(gd, want, "p {p:?} k {k}");
            for nb in &got {
                assert!(live.contains(&nb.id), "deleted item {} resurfaced", nb.id);
            }
        }
    }

    /// Adapter: the writable constructor takes `impl ReplacementPolicy`,
    /// the policy table produces boxed ones.
    struct BoxedPolicy(Box<dyn ReplacementPolicy>);

    impl ReplacementPolicy for BoxedPolicy {
        fn name(&self) -> &'static str {
            self.0.name()
        }
        fn len(&self) -> usize {
            self.0.len()
        }
        fn on_hit(&mut self, page: PageId) {
            self.0.on_hit(page);
        }
        fn on_insert(&mut self, page: PageId) {
            self.0.on_insert(page);
        }
        fn evict(&mut self) -> PageId {
            self.0.evict()
        }
        fn remove(&mut self, page: PageId) {
            self.0.remove(page);
        }
        fn on_unpin(&mut self, page: PageId) {
            self.0.on_unpin(page);
        }
    }
}
