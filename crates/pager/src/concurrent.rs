//! Concurrent disk-backed query execution over a **sharded** buffer pool.
//!
//! A database serves many clients at once; this module provides a
//! shared-ownership [`ConcurrentDiskRTree`] that multiple threads can query
//! concurrently. Pool bookkeeping (residency, replacement, read counting)
//! is partitioned into N *shards*: each [`PageId`] hashes to exactly one
//! shard, and each shard owns its own short [`parking_lot::Mutex`] around a
//! [`BufferPool`] slice plus the frames of its resident pages. Threads
//! querying disjoint subtrees therefore touch disjoint latches and never
//! contend; frames are shared as `Arc<[u8]>` so decoding and geometry tests
//! — the CPU-heavy part of a query — run outside every lock, and the store
//! itself is read through [`SharedPageStore`] (`&self`), so even misses in
//! different shards proceed in parallel.
//!
//! Statistics are relaxed `AtomicU64`s aggregated across shards:
//! [`ConcurrentDiskRTree::io_stats`] and
//! [`ConcurrentDiskRTree::physical_reads`] never take a pool latch.
//!
//! # Accounting rules
//!
//! - A **physical read** (`IoStats::reads`) is any page transfer performed
//!   on behalf of a charged buffer-pool access: a miss fill, a bypass read
//!   against a fully pinned shard, or the one-time load of a pinned page.
//! - The **root peek** is *uncharged*, mirroring the model semantics where
//!   a node is accessed iff its MBR intersects the query. The peeked root
//!   frame is cached once per tree (the tree is immutable), and the
//!   transfer is surfaced in `IoStats::peek_reads` instead of being
//!   silently dropped.
//! - With `shards = 1` the access sequence seen by the pool is exactly the
//!   sequential [`crate::DiskRTree`] sequence, so single-threaded physical
//!   read counts reproduce the paper's numbers bit for bit.

use crate::disk_tree::materialize;
use crate::store::SharedPageStore;
use crate::{IoStats, NodePage, PageMeta, PAGE_SIZE};
use parking_lot::Mutex;
use rtree_buffer::{
    AccessOutcome, AtomicBufferStats, BufferPool, BufferStats, PageId, ReplacementPolicy,
};
use rtree_geom::{Rect, RectSoA};
use rtree_index::RTree;
#[cfg(feature = "trace")]
use rtree_obs::{EventKind, IoEvent, TraceSink};
use std::collections::{BTreeMap, HashMap};
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Per-query accounting carried through one traversal (trace builds only):
/// the span id plus local read/access counters, recorded into the tree's
/// [`rtree_obs::QueryMetrics`] when the query finishes.
#[cfg(feature = "trace")]
struct QuerySpan {
    qid: u64,
    reads: u64,
    accesses: u64,
}

/// Fibonacci multiplier for the page → shard hash.
const HASH: u64 = 0x9E37_79B9_7F4A_7C15;

struct ShardState {
    pool: BufferPool,
    frames: HashMap<PageId, Arc<[u8]>>,
}

/// One latch domain: a slice of the buffer capacity plus its counters.
struct Shard {
    state: Mutex<ShardState>,
    /// Physical page reads issued by this shard (relaxed; aggregated by
    /// [`ConcurrentDiskRTree::io_stats`] without taking the latch).
    reads: AtomicU64,
    stats: AtomicBufferStats,
}

impl Shard {
    fn new(capacity: usize, policy: Box<dyn ReplacementPolicy>) -> Self {
        Shard {
            state: Mutex::new(ShardState {
                pool: BufferPool::new(capacity, policy),
                frames: HashMap::with_capacity(capacity + 1),
            }),
            reads: AtomicU64::new(0),
            stats: AtomicBufferStats::new(),
        }
    }
}

/// Largest power of two ≤ `n` (`n` ≥ 1).
fn floor_pow2(n: usize) -> usize {
    debug_assert!(n >= 1);
    1 << (usize::BITS - 1 - n.leading_zeros())
}

/// Resolves a shard-count request against the buffer capacity: `0` means
/// "one per hardware thread", everything is rounded to a power of two, and
/// the count never exceeds the capacity (each shard needs ≥ 1 frame).
fn resolve_shards(requested: usize, capacity: usize) -> usize {
    assert!(capacity > 0, "buffer capacity must be positive");
    let requested = if requested == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        requested
    };
    requested.next_power_of_two().min(floor_pow2(capacity))
}

/// A disk-backed R-tree that can be queried from many threads at once
/// (`&self` queries; wrap in an `Arc` to share).
///
/// [`ConcurrentDiskRTree::create`] / [`ConcurrentDiskRTree::open`] build a
/// **single-shard** tree whose replacement decisions and physical read
/// counts are exactly those of the sequential [`crate::DiskRTree`] — the
/// configuration every paper experiment uses. The `_sharded` constructors
/// split the capacity across N latch-disjoint shards for multi-threaded
/// throughput.
pub struct ConcurrentDiskRTree<S> {
    store: S,
    shards: Box<[Shard]>,
    /// `64 - log2(shard count)`: shift for the Fibonacci hash.
    shard_shift: u32,
    /// Cached root frame for the uncharged MBR peek (the tree is
    /// immutable, so the root page never changes).
    root_frame: OnceLock<Arc<[u8]>>,
    peek_reads: AtomicU64,
    meta: PageMeta,
    /// Trace sink shared by every querying thread (trace builds only).
    #[cfg(feature = "trace")]
    sink: Option<Arc<dyn TraceSink>>,
    /// Query span id source (trace builds only; 0 = no span).
    #[cfg(feature = "trace")]
    query_ids: AtomicU64,
    /// Per-query latency / reads / pins distributions (trace builds only).
    #[cfg(feature = "trace")]
    metrics: rtree_obs::QueryMetrics,
}

impl<S: SharedPageStore> ConcurrentDiskRTree<S> {
    /// Serializes `tree` into `store` and returns a shareable single-shard
    /// handle with the paper's exact sequential accounting.
    ///
    /// # Panics
    /// Panics if the tree is empty or its node capacity exceeds
    /// [`crate::MAX_ENTRIES_PER_PAGE`].
    pub fn create(
        mut store: S,
        tree: &RTree,
        buffer_capacity: usize,
        policy: impl ReplacementPolicy + 'static,
    ) -> io::Result<Self> {
        let meta = materialize(&mut store, tree)?;
        let mut policy = Some(Box::new(policy) as Box<dyn ReplacementPolicy>);
        Ok(Self::assemble(store, meta, buffer_capacity, 1, move || {
            policy.take().expect("single shard uses the policy once")
        }))
    }

    /// Serializes `tree` into `store` and returns a sharded handle:
    /// `shards` is rounded to a power of two and capped by the capacity;
    /// `0` means one shard per hardware thread. `policy` is invoked once
    /// per shard.
    ///
    /// # Panics
    /// Panics if the tree is empty or its node capacity exceeds
    /// [`crate::MAX_ENTRIES_PER_PAGE`].
    pub fn create_sharded<P: ReplacementPolicy + 'static>(
        mut store: S,
        tree: &RTree,
        buffer_capacity: usize,
        shards: usize,
        mut policy: impl FnMut() -> P,
    ) -> io::Result<Self> {
        let meta = materialize(&mut store, tree)?;
        let n = resolve_shards(shards, buffer_capacity);
        Ok(Self::assemble(store, meta, buffer_capacity, n, move || {
            Box::new(policy())
        }))
    }

    /// Opens a previously materialized tree with a single shard.
    pub fn open(
        mut store: S,
        buffer_capacity: usize,
        policy: impl ReplacementPolicy + 'static,
    ) -> io::Result<Self> {
        let meta = Self::read_meta(&mut store)?;
        let mut policy = Some(Box::new(policy) as Box<dyn ReplacementPolicy>);
        Ok(Self::assemble(store, meta, buffer_capacity, 1, move || {
            policy.take().expect("single shard uses the policy once")
        }))
    }

    /// Opens a previously materialized tree with a sharded pool (see
    /// [`ConcurrentDiskRTree::create_sharded`] for the shard semantics).
    pub fn open_sharded<P: ReplacementPolicy + 'static>(
        mut store: S,
        buffer_capacity: usize,
        shards: usize,
        mut policy: impl FnMut() -> P,
    ) -> io::Result<Self> {
        let meta = Self::read_meta(&mut store)?;
        let n = resolve_shards(shards, buffer_capacity);
        Ok(Self::assemble(store, meta, buffer_capacity, n, move || {
            Box::new(policy())
        }))
    }

    fn read_meta(store: &mut S) -> io::Result<PageMeta> {
        let mut buf = vec![0u8; PAGE_SIZE];
        store.read_page(PageId(0), &mut buf)?;
        Ok(PageMeta::decode(&buf)?)
    }

    /// Builds the shard array: capacity is split proportionally, the first
    /// `capacity % n` shards taking one extra frame.
    fn assemble(
        store: S,
        meta: PageMeta,
        capacity: usize,
        n: usize,
        mut policy: impl FnMut() -> Box<dyn ReplacementPolicy>,
    ) -> Self {
        debug_assert!(n.is_power_of_two() && n <= capacity);
        let base = capacity / n;
        let rem = capacity % n;
        let shards: Box<[Shard]> = (0..n)
            .map(|i| Shard::new(base + usize::from(i < rem), policy()))
            .collect();
        ConcurrentDiskRTree {
            store,
            shards,
            shard_shift: u64::BITS - n.trailing_zeros(),
            root_frame: OnceLock::new(),
            peek_reads: AtomicU64::new(0),
            meta,
            #[cfg(feature = "trace")]
            sink: None,
            #[cfg(feature = "trace")]
            query_ids: AtomicU64::new(0),
            #[cfg(feature = "trace")]
            metrics: rtree_obs::QueryMetrics::new(),
        }
    }

    /// Routes every physical-I/O and pool-outcome event to `sink` (`None`
    /// stops tracing). Takes `&mut self`: install the sink before sharing
    /// the tree across threads. Only present with the `trace` feature.
    #[cfg(feature = "trace")]
    pub fn set_trace_sink(&mut self, sink: Option<Arc<dyn TraceSink>>) {
        self.sink = sink;
    }

    /// Snapshot of the per-query latency / reads / pins histograms
    /// (all threads). Only present with the `trace` feature.
    #[cfg(feature = "trace")]
    pub fn query_metrics(&self) -> rtree_obs::QueryMetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Emits one trace event (trace builds only; no-op without a sink).
    #[cfg(feature = "trace")]
    #[inline]
    fn emit(&self, query_id: u64, page: PageId, level: i16, kind: EventKind) {
        if let Some(sink) = &self.sink {
            sink.record(IoEvent {
                query_id,
                page_id: page.0,
                level,
                kind,
                ns: rtree_obs::now_ns(),
            });
        }
    }

    /// The shard owning `id`.
    fn shard(&self, id: PageId) -> &Shard {
        if self.shards.len() == 1 {
            &self.shards[0]
        } else {
            &self.shards[(id.0.wrapping_mul(HASH) >> self.shard_shift) as usize]
        }
    }

    /// The stored metadata.
    pub fn meta(&self) -> &PageMeta {
        &self.meta
    }

    /// Number of shards the buffer capacity is split across.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Physical I/O counters so far (all threads), aggregated from the
    /// shards' relaxed atomics — no pool latch is taken. The concurrent
    /// tree is read-only, so `writes` stays 0; the shape matches
    /// [`crate::BufferManager::io_stats`] so benches report one thing.
    pub fn io_stats(&self) -> IoStats {
        IoStats {
            reads: self.physical_reads(),
            writes: 0,
            peek_reads: self.peek_reads.load(Ordering::Relaxed),
            prefetch_reads: 0,
        }
    }

    /// Physical page reads so far (all threads, latch-free).
    pub fn physical_reads(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.reads.load(Ordering::Relaxed))
            .sum()
    }

    /// Root-peek reads so far (all threads, latch-free). At most one per
    /// tree lifetime between counter resets — the peeked frame is cached.
    pub fn peek_reads(&self) -> u64 {
        self.peek_reads.load(Ordering::Relaxed)
    }

    /// Pool access statistics aggregated across shards (latch-free).
    pub fn buffer_stats(&self) -> BufferStats {
        let mut total = BufferStats::default();
        for s in &self.shards {
            total += s.stats.snapshot();
        }
        total
    }

    /// Resets the I/O counters and pool statistics (takes each shard latch
    /// once; the cached root frame is state, not a counter, and survives).
    pub fn reset_counters(&self) {
        for shard in self.shards.iter() {
            shard.state.lock().pool.reset_stats();
            shard.reads.store(0, Ordering::Relaxed);
            shard.stats.reset();
        }
        self.peek_reads.store(0, Ordering::Relaxed);
    }

    /// Pins the top `p` levels (reads each page once, into its shard).
    /// Pinned pages are distributed across shards like any other page and
    /// are exempt from replacement in their shard.
    ///
    /// # Errors
    /// `InvalidInput` if `p` exceeds the tree height; `OutOfMemory` if a
    /// shard's capacity slice cannot hold its share of the pinned pages.
    pub fn pin_top_levels(&self, p: usize) -> io::Result<()> {
        if p > self.meta.level_starts.len() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "cannot pin {p} levels: the tree has {}",
                    self.meta.level_starts.len()
                ),
            ));
        }
        let end = if p == self.meta.level_starts.len() {
            self.meta.nodes + 1
        } else {
            self.meta.level_starts[p]
        };
        for page in 1..end {
            let id = PageId(page);
            let shard = self.shard(id);
            let mut s = shard.state.lock();
            let was_resident = s.pool.contains(id);
            let evicted = s
                .pool
                .pin(id)
                .map_err(|e| io::Error::new(io::ErrorKind::OutOfMemory, e.to_string()))?;
            if let Some(victim) = evicted {
                s.frames.remove(&victim);
            }
            if !was_resident {
                let mut buf = vec![0u8; PAGE_SIZE];
                self.store.read_page_shared(id, &mut buf)?;
                shard.reads.fetch_add(1, Ordering::Relaxed);
                shard.stats.record_miss();
                s.frames.insert(id, Arc::from(buf.into_boxed_slice()));
                #[cfg(feature = "trace")]
                self.emit(0, id, self.meta.onpage_level_of(page), EventKind::Miss);
            }
        }
        Ok(())
    }

    /// Fetches a page through its shard, charging the access to the pool.
    /// Also reports whether the access missed (i.e. cost a physical read),
    /// so the caller can attribute the event to its query span.
    fn fetch(&self, id: PageId) -> io::Result<(Arc<[u8]>, bool)> {
        let shard = self.shard(id);
        let mut s = shard.state.lock();
        let outcome = s.pool.access(id);
        shard.stats.record(&outcome);
        match outcome {
            AccessOutcome::Hit => Ok((
                Arc::clone(s.frames.get(&id).expect("resident page has a frame")),
                false,
            )),
            AccessOutcome::Miss { evicted } => {
                if let Some(victim) = evicted {
                    s.frames.remove(&victim);
                }
                let mut buf = vec![0u8; PAGE_SIZE];
                self.store.read_page_shared(id, &mut buf)?;
                shard.reads.fetch_add(1, Ordering::Relaxed);
                let frame: Arc<[u8]> = Arc::from(buf.into_boxed_slice());
                s.frames.insert(id, Arc::clone(&frame));
                Ok((frame, true))
            }
            AccessOutcome::MissBypass => {
                let mut buf = vec![0u8; PAGE_SIZE];
                self.store.read_page_shared(id, &mut buf)?;
                shard.reads.fetch_add(1, Ordering::Relaxed);
                Ok((Arc::from(buf.into_boxed_slice()), true))
            }
        }
    }

    /// The root frame for the uncharged MBR peek: read from the store at
    /// most once per tree (the tree is immutable) and cached outside the
    /// pool so the peek neither charges nor perturbs replacement state.
    /// Also reports whether *this* call performed the physical read, so the
    /// caller can emit the matching peek event.
    fn root_frame(&self) -> io::Result<(Arc<[u8]>, bool)> {
        if let Some(frame) = self.root_frame.get() {
            return Ok((Arc::clone(frame), false));
        }
        let mut buf = vec![0u8; PAGE_SIZE];
        self.store
            .read_page_shared(PageId(self.meta.root), &mut buf)?;
        // Two racing threads may both read; both transfers really happened,
        // so both count, but only one frame is kept.
        self.peek_reads.fetch_add(1, Ordering::Relaxed);
        let frame: Arc<[u8]> = Arc::from(buf.into_boxed_slice());
        Ok((Arc::clone(self.root_frame.get_or_init(|| frame)), true))
    }

    /// Executes a region query; safe to call from many threads.
    pub fn query(&self, query: &Rect) -> io::Result<Vec<u64>> {
        #[cfg(feature = "trace")]
        {
            let mut span = QuerySpan {
                qid: self.query_ids.fetch_add(1, Ordering::Relaxed) + 1,
                reads: 0,
                accesses: 0,
            };
            let start = rtree_obs::now_ns();
            let result = self.query_inner(query, &mut span);
            self.metrics
                .record_query(rtree_obs::now_ns() - start, span.reads, span.accesses);
            result
        }
        #[cfg(not(feature = "trace"))]
        self.query_inner(query)
    }

    fn query_inner(
        &self,
        query: &Rect,
        #[cfg(feature = "trace")] span: &mut QuerySpan,
    ) -> io::Result<Vec<u64>> {
        let mut results = Vec::new();
        let root = PageId(self.meta.root);
        let root_level = (self.meta.height - 1) as u16;

        // Uncharged root peek (model semantics: a node is accessed iff its
        // MBR intersects the query).
        let (root_frame, fresh_peek) = self.root_frame()?;
        #[cfg(feature = "trace")]
        if fresh_peek {
            self.emit(span.qid, root, root_level as i16, EventKind::PeekRead);
        }
        #[cfg(not(feature = "trace"))]
        let _ = fresh_peek;
        let root_node = NodePage::decode(&root_frame)?;
        if root_node.entries.is_empty() {
            return Ok(results);
        }
        let root_mbr = root_node
            .entries
            .iter()
            .skip(1)
            .fold(root_node.entries[0].0, |acc, (r, _)| acc.union(r));
        if !root_mbr.intersects(query) {
            return Ok(results);
        }

        // Each stack entry carries the node's level so every fetch can be
        // attributed to it (children of a level-L node sit at L - 1).
        let mut stack = vec![(root, root_level)];
        while let Some((pid, level)) = stack.pop() {
            let (frame, missed) = self.fetch(pid)?;
            #[cfg(feature = "trace")]
            {
                span.accesses += 1;
                if missed {
                    span.reads += 1;
                }
                let kind = if missed {
                    EventKind::Miss
                } else {
                    EventKind::Hit
                };
                self.emit(span.qid, pid, level as i16, kind);
            }
            #[cfg(not(feature = "trace"))]
            let _ = missed;
            let node = NodePage::decode(&frame)?;
            debug_assert_eq!(node.level, level, "stack level mirrors the page");
            for (r, ptr) in &node.entries {
                if r.intersects(query) {
                    if node.level == 0 {
                        results.push(*ptr);
                    } else {
                        stack.push((PageId(*ptr), level - 1));
                    }
                }
            }
        }
        Ok(results)
    }

    /// Runs a batch of region queries sharded across `threads` worker
    /// threads (contiguous sub-batches; `0` means one per hardware
    /// thread). `results[i]` holds the ids matching `queries[i]`.
    ///
    /// Each worker traverses its sub-batch **level-synchronously with page
    /// dedup**: a page needed by k of its queries is fetched and decoded
    /// once, each level is visited in ascending page order (sequential
    /// under the bulk-loaded layout), and per-node filtering runs the
    /// [`rtree_geom::RectSoA`] kernel. The root peek is shared and
    /// uncharged, exactly as in [`ConcurrentDiskRTree::query`]. With
    /// `threads = 1` the traversal runs inline on the caller's thread.
    pub fn query_batch(&self, queries: &[Rect], threads: usize) -> io::Result<Vec<Vec<u64>>>
    where
        S: Sync,
    {
        if queries.is_empty() {
            return Ok(Vec::new());
        }
        let threads = if threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            threads
        }
        .min(queries.len());

        // Shared uncharged root peek; workers reuse the decoded MBR.
        let (root_frame, fresh_peek) = self.root_frame()?;
        #[cfg(feature = "trace")]
        if fresh_peek {
            self.emit(
                0,
                PageId(self.meta.root),
                (self.meta.height - 1) as i16,
                EventKind::PeekRead,
            );
        }
        #[cfg(not(feature = "trace"))]
        let _ = fresh_peek;
        let root_node = NodePage::decode(&root_frame)?;
        if root_node.entries.is_empty() {
            return Ok(vec![Vec::new(); queries.len()]);
        }
        let root_mbr = root_node
            .entries
            .iter()
            .skip(1)
            .fold(root_node.entries[0].0, |acc, (r, _)| acc.union(r));

        if threads == 1 {
            return self.batch_inner(queries, &root_mbr);
        }
        let chunk = queries.len().div_ceil(threads);
        let outputs: Vec<io::Result<Vec<Vec<u64>>>> = std::thread::scope(|scope| {
            let workers: Vec<_> = queries
                .chunks(chunk)
                .map(|slice| scope.spawn(move || self.batch_inner(slice, &root_mbr)))
                .collect();
            workers
                .into_iter()
                .map(|w| w.join().expect("batch worker panicked"))
                .collect()
        });
        let mut results = Vec::with_capacity(queries.len());
        for out in outputs {
            results.extend(out?);
        }
        Ok(results)
    }

    /// One worker's level-synchronous deduplicated traversal over its
    /// contiguous slice of the batch.
    fn batch_inner(&self, queries: &[Rect], root_mbr: &Rect) -> io::Result<Vec<Vec<u64>>> {
        #[cfg(feature = "trace")]
        {
            let mut span = QuerySpan {
                qid: self.query_ids.fetch_add(1, Ordering::Relaxed) + 1,
                reads: 0,
                accesses: 0,
            };
            let start = rtree_obs::now_ns();
            let result = self.batch_levels(queries, root_mbr, &mut span);
            self.metrics
                .record_query(rtree_obs::now_ns() - start, span.reads, span.accesses);
            result
        }
        #[cfg(not(feature = "trace"))]
        self.batch_levels(queries, root_mbr)
    }

    fn batch_levels(
        &self,
        queries: &[Rect],
        root_mbr: &Rect,
        #[cfg(feature = "trace")] span: &mut QuerySpan,
    ) -> io::Result<Vec<Vec<u64>>> {
        let mut results = vec![Vec::new(); queries.len()];
        let active: Vec<u32> = (0..queries.len() as u32)
            .filter(|&q| root_mbr.intersects(&queries[q as usize]))
            .collect();
        if active.is_empty() {
            return Ok(results);
        }

        // Frontier: page -> ids of the sub-batch queries that need it. The
        // BTreeMap is both the dedup and the per-level PageId sort.
        let mut frontier: BTreeMap<u64, Vec<u32>> = BTreeMap::new();
        frontier.insert(self.meta.root, active);
        let mut soa = RectSoA::new();
        let mut matched: Vec<u32> = Vec::new();

        while !frontier.is_empty() {
            for (pid, qids) in std::mem::take(&mut frontier) {
                let (frame, missed) = self.fetch(PageId(pid))?;
                #[cfg(feature = "trace")]
                {
                    span.accesses += 1;
                    if missed {
                        span.reads += 1;
                    }
                    let kind = if missed {
                        EventKind::Miss
                    } else {
                        EventKind::Hit
                    };
                    self.emit(span.qid, PageId(pid), self.meta.onpage_level_of(pid), kind);
                }
                #[cfg(not(feature = "trace"))]
                let _ = missed;
                let node = NodePage::decode(&frame)?;
                soa.clear();
                for (r, _) in &node.entries {
                    soa.push(r);
                }
                for qid in qids {
                    matched.clear();
                    soa.intersecting(&queries[qid as usize], &mut matched);
                    for &e in &matched {
                        let ptr = node.entries[e as usize].1;
                        if node.level == 0 {
                            results[qid as usize].push(ptr);
                        } else {
                            frontier.entry(ptr).or_default().push(qid);
                        }
                    }
                }
            }
        }
        Ok(results)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemStore;
    use rtree_buffer::LruPolicy;
    use rtree_geom::Point;
    use rtree_index::BulkLoader;

    fn sample_rects(n: usize) -> Vec<Rect> {
        (0..n)
            .map(|i| {
                let x = (i as f64 * 0.618_033) % 0.97;
                let y = (i as f64 * 0.414_213) % 0.97;
                Rect::new(x, y, x + 0.01, y + 0.01)
            })
            .collect()
    }

    #[test]
    fn single_thread_matches_in_memory() {
        let rects = sample_rects(800);
        let tree = BulkLoader::hilbert(16).load(&rects);
        let disk =
            ConcurrentDiskRTree::create(MemStore::new(), &tree, 64, LruPolicy::new()).unwrap();
        for q in [
            Rect::new(0.1, 0.1, 0.4, 0.3),
            Rect::point(Point::new(0.5, 0.5)),
            Rect::new(0.0, 0.0, 1.0, 1.0),
        ] {
            let mut a = disk.query(&q).unwrap();
            let mut b = tree.search(&q);
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn concurrent_queries_are_correct_and_counted() {
        let rects = sample_rects(2_000);
        let tree = BulkLoader::hilbert(20).load(&rects);
        let disk = Arc::new(
            ConcurrentDiskRTree::create(MemStore::new(), &tree, 50, LruPolicy::new()).unwrap(),
        );

        let queries: Vec<Rect> = (0..64)
            .map(|i| {
                let x = (i as f64 * 0.37) % 0.8;
                let y = (i as f64 * 0.59) % 0.8;
                Rect::new(x, y, x + 0.1, y + 0.1)
            })
            .collect();
        let expected: Vec<Vec<u64>> = queries
            .iter()
            .map(|q| {
                let mut v = tree.search(q);
                v.sort_unstable();
                v
            })
            .collect();

        std::thread::scope(|scope| {
            for t in 0..4 {
                let disk = Arc::clone(&disk);
                let queries = &queries;
                let expected = &expected;
                scope.spawn(move || {
                    for (q, want) in queries.iter().zip(expected).skip(t).step_by(4) {
                        let mut got = disk.query(q).unwrap();
                        got.sort_unstable();
                        assert_eq!(&got, want);
                    }
                });
            }
        });
        assert!(disk.physical_reads() > 0);
    }

    #[test]
    fn query_batch_matches_sequential_across_thread_counts() {
        let rects = sample_rects(2_000);
        let tree = BulkLoader::hilbert(16).load(&rects);
        let queries: Vec<Rect> = (0..48)
            .map(|i| {
                let x = (i as f64 * 0.37) % 0.8;
                let y = (i as f64 * 0.59) % 0.8;
                Rect::new(x, y, x + 0.1, y + 0.1)
            })
            .collect();
        let expected: Vec<Vec<u64>> = queries
            .iter()
            .map(|q| {
                let mut v = tree.search(q);
                v.sort_unstable();
                v
            })
            .collect();

        for threads in [1, 3, 4, 64, 0] {
            let disk =
                ConcurrentDiskRTree::create_sharded(MemStore::new(), &tree, 48, 4, LruPolicy::new)
                    .unwrap();
            let got = disk.query_batch(&queries, threads).unwrap();
            assert_eq!(got.len(), queries.len());
            for (i, mut g) in got.into_iter().enumerate() {
                g.sort_unstable();
                assert_eq!(g, expected[i], "threads {threads}, query {i}");
            }
            assert!(disk.physical_reads() > 0);
        }
    }

    #[test]
    fn query_batch_single_thread_dedups_shared_pages() {
        let rects = sample_rects(2_000);
        let tree = BulkLoader::hilbert(10).load(&rects);
        let queries: Vec<Rect> = (0..32)
            .map(|i| {
                let x = (i as f64 * 0.11) % 0.5;
                Rect::new(x, x, x + 0.2, x + 0.2)
            })
            .collect();

        // Cold batch with a tiny buffer: dedup, not cache capacity, must
        // bound the reads at the distinct-page count.
        let batch =
            ConcurrentDiskRTree::create(MemStore::new(), &tree, 4, LruPolicy::new()).unwrap();
        batch.query_batch(&queries, 1).unwrap();
        let batch_reads = batch.physical_reads();

        // Equally cold sequential run reads every distinct page at least
        // once, plus whatever the small buffer forces it to re-read.
        let seq = ConcurrentDiskRTree::create(MemStore::new(), &tree, 4, LruPolicy::new()).unwrap();
        for q in &queries {
            seq.query(q).unwrap();
        }
        assert!(
            batch_reads <= seq.physical_reads(),
            "batch {} vs sequential {}",
            batch_reads,
            seq.physical_reads()
        );

        let stats = batch.buffer_stats();
        assert_eq!(stats.hits + stats.misses, stats.accesses);
    }

    #[test]
    fn query_batch_empty_and_miss_batches() {
        let rects = sample_rects(300);
        let tree = BulkLoader::hilbert(10).load(&rects);
        let disk =
            ConcurrentDiskRTree::create(MemStore::new(), &tree, 16, LruPolicy::new()).unwrap();
        assert!(disk.query_batch(&[], 4).unwrap().is_empty());
        let far = vec![Rect::new(2.0, 2.0, 3.0, 3.0); 5];
        let out = disk.query_batch(&far, 2).unwrap();
        assert_eq!(out.len(), 5);
        assert!(out.iter().all(Vec::is_empty));
        // Root-MBR filtering: nothing was charged to the pool.
        assert_eq!(disk.physical_reads(), 0);
    }

    #[test]
    fn pinning_works_shared() {
        let rects = sample_rects(1_500);
        let tree = BulkLoader::hilbert(10).load(&rects);
        let disk =
            ConcurrentDiskRTree::create(MemStore::new(), &tree, 40, LruPolicy::new()).unwrap();
        disk.pin_top_levels(2).unwrap();
        disk.reset_counters();
        disk.query(&Rect::point(Point::new(0.3, 0.3))).unwrap();
        // Only unpinned levels can cost reads.
        assert!(disk.physical_reads() <= u64::from(disk.meta().height));
    }

    #[test]
    fn open_round_trip() {
        let rects = sample_rects(400);
        let tree = BulkLoader::nearest_x(10).load(&rects);
        let mut store = MemStore::new();
        {
            let d = ConcurrentDiskRTree::create(&mut store, &tree, 8, LruPolicy::new()).unwrap();
            assert_eq!(d.meta().items, 400);
        }
        let d = ConcurrentDiskRTree::open(&mut store, 8, LruPolicy::new()).unwrap();
        assert_eq!(d.query(&Rect::new(0.0, 0.0, 1.0, 1.0)).unwrap().len(), 400);
    }

    #[test]
    fn shared_counts_match_sequential_counts() {
        // With one thread, the concurrent wrapper must count exactly like
        // the plain DiskRTree (same LRU decisions).
        let rects = sample_rects(1_200);
        let tree = BulkLoader::hilbert(12).load(&rects);
        let concurrent =
            ConcurrentDiskRTree::create(MemStore::new(), &tree, 25, LruPolicy::new()).unwrap();
        let mut plain =
            crate::DiskRTree::create(MemStore::new(), &tree, 25, LruPolicy::new()).unwrap();
        for i in 0..300 {
            let x = (i as f64 * 0.217) % 0.9;
            let y = (i as f64 * 0.431) % 0.9;
            let q = Rect::new(x, y, x + 0.05, y + 0.05);
            concurrent.query(&q).unwrap();
            plain.query(&q).unwrap();
        }
        assert_eq!(concurrent.physical_reads(), plain.physical_reads());
    }

    #[test]
    fn shard_resolution_rules() {
        // Explicit counts round up to a power of two…
        assert_eq!(resolve_shards(3, 1024), 4);
        assert_eq!(resolve_shards(8, 1024), 8);
        // …but never exceed the capacity (every shard needs a frame).
        assert_eq!(resolve_shards(8, 5), 4);
        assert_eq!(resolve_shards(16, 1), 1);
        // 0 = auto: one per hardware thread, still a power of two.
        let auto = resolve_shards(0, 1 << 20);
        assert!(auto.is_power_of_two() && auto >= 1);
    }

    #[test]
    fn sharded_queries_match_in_memory() {
        let rects = sample_rects(2_000);
        let tree = BulkLoader::hilbert(16).load(&rects);
        let disk = Arc::new(
            ConcurrentDiskRTree::create_sharded(MemStore::new(), &tree, 48, 4, LruPolicy::new)
                .unwrap(),
        );
        assert_eq!(disk.shard_count(), 4);

        let queries: Vec<Rect> = (0..96)
            .map(|i| {
                let x = (i as f64 * 0.41) % 0.85;
                let y = (i as f64 * 0.23) % 0.85;
                Rect::new(x, y, x + 0.08, y + 0.08)
            })
            .collect();
        let expected: Vec<Vec<u64>> = queries
            .iter()
            .map(|q| {
                let mut v = tree.search(q);
                v.sort_unstable();
                v
            })
            .collect();

        std::thread::scope(|scope| {
            for t in 0..8 {
                let disk = Arc::clone(&disk);
                let queries = &queries;
                let expected = &expected;
                scope.spawn(move || {
                    for (q, want) in queries.iter().zip(expected).skip(t).step_by(8) {
                        let mut got = disk.query(q).unwrap();
                        got.sort_unstable();
                        assert_eq!(&got, want);
                    }
                });
            }
        });
        let stats = disk.buffer_stats();
        assert!(stats.accesses > 0);
        assert_eq!(stats.hits + stats.misses, stats.accesses);
        assert!(disk.physical_reads() > 0);
        assert_eq!(disk.io_stats().writes, 0);
    }

    #[test]
    fn sharded_capacity_is_split_proportionally() {
        let rects = sample_rects(1_000);
        let tree = BulkLoader::hilbert(10).load(&rects);
        let disk =
            ConcurrentDiskRTree::create_sharded(MemStore::new(), &tree, 10, 4, LruPolicy::new)
                .unwrap();
        let caps: Vec<usize> = disk
            .shards
            .iter()
            .map(|s| s.state.lock().pool.capacity())
            .collect();
        assert_eq!(caps, vec![3, 3, 2, 2]);
    }

    #[test]
    fn root_peek_is_cached_and_counted() {
        let rects = sample_rects(600);
        let tree = BulkLoader::hilbert(10).load(&rects);
        let disk =
            ConcurrentDiskRTree::create(MemStore::new(), &tree, 8, LruPolicy::new()).unwrap();
        // A query outside every MBR touches only the root peek.
        let far = Rect::new(0.995, 0.995, 1.0, 1.0);
        for _ in 0..5 {
            assert!(disk.query(&far).unwrap().is_empty());
        }
        let io = disk.io_stats();
        assert_eq!(io.reads, 0, "root miss must not charge the buffer");
        assert_eq!(io.peek_reads, 1, "peek is read once, then cached");
        assert_eq!(io.total(), 1, "the physical transfer is not dropped");
    }

    #[test]
    fn pin_out_of_range_is_an_error_not_a_panic() {
        let rects = sample_rects(300);
        let tree = BulkLoader::hilbert(10).load(&rects);
        let disk =
            ConcurrentDiskRTree::create(MemStore::new(), &tree, 16, LruPolicy::new()).unwrap();
        let levels = disk.meta().level_starts.len();
        let err = disk.pin_top_levels(levels + 1).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        // The valid range still works afterwards.
        disk.pin_top_levels(1).unwrap();
    }

    #[test]
    fn sharded_pinning_distributes_and_exempts() {
        let rects = sample_rects(2_500);
        let tree = BulkLoader::hilbert(10).load(&rects);
        let disk = Arc::new(
            ConcurrentDiskRTree::create_sharded(MemStore::new(), &tree, 64, 4, LruPolicy::new)
                .unwrap(),
        );
        disk.pin_top_levels(2).unwrap();
        let pinned: usize = disk
            .shards
            .iter()
            .map(|s| s.state.lock().pool.pinned_count())
            .sum();
        let expect = (disk.meta().level_starts[2] - 1) as usize;
        assert_eq!(pinned, expect, "every top-level page pinned exactly once");
        assert!(
            disk.shards
                .iter()
                .filter(|s| s.state.lock().pool.pinned_count() > 0)
                .count()
                > 1,
            "pinned pages should spread across shards"
        );
        disk.reset_counters();
        disk.query(&Rect::point(Point::new(0.4, 0.4))).unwrap();
        assert!(disk.physical_reads() <= u64::from(disk.meta().height));
    }

    /// Many threads query while another thread pins the top levels — the
    /// latch protocol must keep results correct and the pool consistent.
    #[test]
    fn pin_while_querying_stress() {
        let rects = sample_rects(3_000);
        let tree = BulkLoader::hilbert(10).load(&rects);
        let disk = Arc::new(
            ConcurrentDiskRTree::create_sharded(MemStore::new(), &tree, 128, 4, LruPolicy::new)
                .unwrap(),
        );
        let queries: Vec<Rect> = (0..48)
            .map(|i| {
                let x = (i as f64 * 0.173) % 0.85;
                let y = (i as f64 * 0.377) % 0.85;
                Rect::new(x, y, x + 0.06, y + 0.06)
            })
            .collect();
        let expected: Vec<Vec<u64>> = queries
            .iter()
            .map(|q| {
                let mut v = tree.search(q);
                v.sort_unstable();
                v
            })
            .collect();

        std::thread::scope(|scope| {
            for t in 0..8 {
                let disk = Arc::clone(&disk);
                let queries = &queries;
                let expected = &expected;
                scope.spawn(move || {
                    for round in 0..6 {
                        for (q, want) in queries
                            .iter()
                            .zip(expected)
                            .skip((t + round) % 8)
                            .step_by(8)
                        {
                            let mut got = disk.query(q).unwrap();
                            got.sort_unstable();
                            assert_eq!(&got, want);
                        }
                    }
                });
            }
            let pinner = Arc::clone(&disk);
            scope.spawn(move || {
                for p in [1usize, 2, 1, 2] {
                    pinner.pin_top_levels(p).unwrap();
                }
            });
        });
        let stats = disk.buffer_stats();
        assert_eq!(stats.hits + stats.misses, stats.accesses);
        // Pinned pages stayed pinned and within capacity.
        for shard in disk.shards.iter() {
            let s = shard.state.lock();
            assert!(s.pool.len() <= s.pool.capacity());
            assert_eq!(s.frames.len(), s.pool.len());
        }
    }

    #[test]
    fn reset_counters_clears_every_shard() {
        let rects = sample_rects(1_000);
        let tree = BulkLoader::hilbert(10).load(&rects);
        let disk =
            ConcurrentDiskRTree::create_sharded(MemStore::new(), &tree, 32, 4, LruPolicy::new)
                .unwrap();
        for i in 0..20 {
            let x = (i as f64 * 0.31) % 0.9;
            disk.query(&Rect::new(x, x, x + 0.05, x + 0.05)).unwrap();
        }
        assert!(disk.physical_reads() > 0);
        disk.reset_counters();
        assert_eq!(disk.io_stats(), IoStats::default());
        assert_eq!(disk.buffer_stats(), BufferStats::default());
    }
}
