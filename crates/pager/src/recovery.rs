//! Crash recovery: replays a write-ahead log against a page store.
//!
//! The protocol is the classical physical redo/undo over full page images
//! (see `rtree_wal::plan_recovery`): scan the surviving log bytes
//! tail-tolerantly, redo every committed after-image past the last
//! checkpoint in LSN order, then undo uncommitted before-images in reverse
//! order. Because every buffered write logs its images *before* the store
//! can be touched (the WAL rule enforced by [`crate::BufferManager`]), the
//! store after a crash is always a mix of old and logged states — so
//! rewriting full images lands it exactly on the last committed state, even
//! when the crash tore a page write in half.

use crate::{PageStore, PAGE_SIZE};
use rtree_buffer::PageId;
use rtree_geom::Rect;
use rtree_wal::{Lsn, WalRecord};
use std::io;

/// What [`recover`] did, for logging and assertions in tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Committed after-images rewritten.
    pub pages_redone: usize,
    /// Uncommitted before-images rolled back.
    pub pages_undone: usize,
    /// LSN of the last commit found in the log, if any.
    pub last_commit: Option<Lsn>,
    /// False when the log ended in a torn or corrupt record (expected after
    /// a crash mid-append; the torn tail is ignored).
    pub clean_log: bool,
}

/// Replays `log_bytes` (the surviving contents of a [`rtree_wal`] log)
/// against `store`, restoring the last committed state.
///
/// Pages referenced by the log but missing from the store (the crash hit
/// before an allocation reached disk) are allocated first. The store is
/// flushed before returning, so a recovered tree is durable immediately.
pub fn recover<S: PageStore>(store: &mut S, log_bytes: &[u8]) -> io::Result<RecoveryReport> {
    let scan = rtree_wal::scan(log_bytes);
    let plan = rtree_wal::plan_recovery(&scan.records);
    for (page_id, image) in &plan.writes {
        debug_assert_eq!(image.len(), PAGE_SIZE);
        while store.page_count() <= *page_id {
            store.allocate()?;
        }
        store.write_page(PageId(*page_id), image)?;
    }
    store.flush()?;
    Ok(RecoveryReport {
        pages_redone: plan.redone,
        pages_undone: plan.undone,
        last_commit: plan.last_commit,
        clean_log: scan.clean,
    })
}

/// What [`replay_committed`] applied.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ReplaySummary {
    /// Committed logical inserts applied to the tree.
    pub applied_inserts: u64,
    /// Committed logical deletes applied to the tree.
    pub applied_deletes: u64,
    /// Highest LSN covered by a durable `Commit`/`Checkpoint` record
    /// (`None` when the log held neither).
    pub last_commit: Option<Lsn>,
    /// `false` when the scan stopped at a torn frame (everything before it
    /// was still replayed).
    pub clean_log: bool,
}

/// Logical redo for the concurrent writer: replays the *committed* suffix
/// of a group-commit WAL onto a freshly opened writable tree.
///
/// The writer is no-steal, so the page store always holds exactly the last
/// checkpoint image; everything after it lives only as `OpInsert`/`OpDelete`
/// records. Replay applies, in log order, every op record that (a) follows
/// the last `Checkpoint` (earlier ops are already inside the image) and
/// (b) is covered by a `Commit` — a batch whose leader never fsynced loses
/// all of its ops together, never a prefix (the none-or-all guarantee the
/// WAL crash tests pin down).
///
/// The target tree logs the replayed ops into its own WAL as a side effect,
/// which keeps them durable going forward; checkpoint afterwards to start
/// from a clean log.
pub fn replay_committed<S: crate::ConcurrentPageStore>(
    log_bytes: &[u8],
    tree: &crate::ConcurrentDiskRTree<S>,
) -> io::Result<ReplaySummary> {
    let scan = rtree_wal::scan(log_bytes);
    let mut last_commit = None;
    let mut checkpoint_at = None;
    for (i, record) in scan.records.iter().enumerate() {
        match record {
            WalRecord::Commit { lsn } => last_commit = Some(*lsn),
            WalRecord::Checkpoint { lsn } => {
                last_commit = Some(*lsn);
                checkpoint_at = Some(i);
            }
            _ => {}
        }
    }
    let mut summary = ReplaySummary {
        last_commit,
        clean_log: scan.clean,
        ..ReplaySummary::default()
    };
    let Some(horizon) = last_commit else {
        return Ok(summary);
    };
    let start = checkpoint_at.map_or(0, |i| i + 1);
    for record in &scan.records[start..] {
        match record {
            WalRecord::OpInsert { lsn, rect, item } if *lsn <= horizon => {
                tree.insert(&Rect::new(rect[0], rect[1], rect[2], rect[3]), *item)?;
                summary.applied_inserts += 1;
            }
            WalRecord::OpDelete { lsn, rect, item } if *lsn <= horizon => {
                tree.delete(&Rect::new(rect[0], rect[1], rect[2], rect[3]), *item)?;
                summary.applied_deletes += 1;
            }
            _ => {}
        }
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BufferManager, MemStore};
    use rtree_buffer::LruPolicy;
    use rtree_wal::{LogBackend, MemLog, Wal};

    fn page(fill: u8) -> Vec<u8> {
        let mut buf = vec![0u8; PAGE_SIZE];
        buf[0] = fill;
        buf
    }

    fn store_with_pages(n: usize) -> MemStore {
        let mut store = MemStore::new();
        for i in 0..n {
            let id = store.allocate().unwrap();
            store.write_page(id, &page(i as u8)).unwrap();
        }
        store
    }

    #[test]
    fn committed_writes_are_redone() {
        let log = MemLog::new();
        let mut m = BufferManager::new(store_with_pages(3), 8, LruPolicy::new());
        m.attach_wal(Wal::open(log.clone()).unwrap());
        m.write_buffered(PageId(1), &page(0xAA)).unwrap();
        m.commit().unwrap();
        // Crash before any write-back: the store still has the old image.
        let mut store = store_with_pages(3);
        let report = recover(&mut store, &log.read_all().unwrap()).unwrap();
        assert_eq!(report.pages_redone, 1);
        assert_eq!(report.pages_undone, 0);
        let mut buf = vec![0u8; PAGE_SIZE];
        store.read_page(PageId(1), &mut buf).unwrap();
        assert_eq!(buf[0], 0xAA);
    }

    #[test]
    fn uncommitted_writes_are_undone() {
        let log = MemLog::new();
        let mut m = BufferManager::new(store_with_pages(3), 2, LruPolicy::new());
        m.attach_wal(Wal::open(log.clone()).unwrap());
        m.write_buffered(PageId(1), &page(0xAA)).unwrap();
        m.commit().unwrap();
        // Second op: logged, partially written back (eviction), never
        // committed.
        m.write_buffered(PageId(2), &page(0xBB)).unwrap();
        m.flush_all().unwrap();
        let mut store = std::mem::replace(m.store_mut(), MemStore::new());
        let report = recover(&mut store, &log.read_all().unwrap()).unwrap();
        assert_eq!(report.pages_redone, 1);
        assert_eq!(report.pages_undone, 1);
        let mut buf = vec![0u8; PAGE_SIZE];
        store.read_page(PageId(2), &mut buf).unwrap();
        assert_eq!(buf[0], 2, "uncommitted write rolled back");
        store.read_page(PageId(1), &mut buf).unwrap();
        assert_eq!(buf[0], 0xAA, "committed write preserved");
    }

    #[test]
    fn missing_pages_are_allocated() {
        let log = MemLog::new();
        let mut wal = Wal::open(log.clone()).unwrap();
        wal.log_page_image(5, &page(0), &page(0x5A)).unwrap();
        wal.log_commit().unwrap();
        let mut store = store_with_pages(2);
        recover(&mut store, &log.read_all().unwrap()).unwrap();
        assert_eq!(store.page_count(), 6);
        let mut buf = vec![0u8; PAGE_SIZE];
        store.read_page(PageId(5), &mut buf).unwrap();
        assert_eq!(buf[0], 0x5A);
    }

    #[test]
    fn torn_log_tail_is_tolerated() {
        let log = MemLog::new();
        let mut wal = Wal::open(log.clone()).unwrap();
        wal.log_page_image(1, &page(1), &page(0xAA)).unwrap();
        wal.log_commit().unwrap();
        wal.log_page_image(2, &page(2), &page(0xBB)).unwrap();
        wal.sync().unwrap();
        let mut bytes = log.read_all().unwrap();
        bytes.truncate(bytes.len() - 7); // tear the last record
        let mut store = store_with_pages(3);
        let report = recover(&mut store, &bytes).unwrap();
        assert!(!report.clean_log);
        assert_eq!(report.pages_redone, 1);
        let mut buf = vec![0u8; PAGE_SIZE];
        store.read_page(PageId(2), &mut buf).unwrap();
        assert_eq!(buf[0], 2, "torn record ignored");
    }

    /// End-to-end crash durability for the concurrent writer: a crash
    /// that loses the OS write cache keeps every group-committed batch
    /// (fsynced) and loses unsynced appends none-or-all; replaying the
    /// surviving log over the last checkpoint image reproduces exactly
    /// the committed operations.
    #[test]
    fn group_committed_batches_survive_crash_and_replay() {
        use crate::{ConcurrentDiskRTree, SharedMemStore};
        use rtree_buffer::LruPolicy;
        use rtree_wal::{GroupWal, MemLog, StagedLog};

        let rect_of = |id: u64| {
            let x = (id as f64 * 0.137) % 0.9;
            Rect::new(x, x, x + 0.005, x + 0.005)
        };

        // The durable medium: bytes reach `durable` only on sync, so its
        // contents after a crash are exactly what an fsynced disk keeps.
        let durable = MemLog::new();
        let store = SharedMemStore::new();
        let tree = ConcurrentDiskRTree::create_writable(
            store,
            8,
            3,
            16,
            LruPolicy::new(),
            GroupWal::open(StagedLog::new(durable.clone())).unwrap(),
        )
        .unwrap();
        for id in 0..60u64 {
            tree.insert(&rect_of(id), id).unwrap();
        }
        for id in (0..60u64).step_by(4) {
            assert!(tree.delete(&rect_of(id), id).unwrap());
        }
        tree.checkpoint().unwrap();
        let image_at_checkpoint = tree.store().snapshot();

        // Post-checkpoint window: committed ops live only in the WAL (the
        // overlay never reaches the store before the next checkpoint).
        for id in 100..130u64 {
            tree.insert(&rect_of(id), id).unwrap();
        }
        assert!(tree.delete(&rect_of(100), 100).unwrap());

        // Crash: drop the tree; the durable log image is what survives.
        drop(tree);
        let survived = durable.read_all().unwrap();

        let recovered = ConcurrentDiskRTree::open_writable(
            SharedMemStore::from_bytes(image_at_checkpoint),
            16,
            LruPolicy::new(),
            GroupWal::open(MemLog::new()).unwrap(),
        )
        .unwrap();
        let summary = replay_committed(&survived, &recovered).unwrap();
        assert_eq!(summary.applied_inserts, 30);
        assert_eq!(summary.applied_deletes, 1);
        assert!(summary.clean_log);
        assert!(summary.last_commit.is_some());

        let mut got = recovered.query(&Rect::new(0.0, 0.0, 1.0, 1.0)).unwrap();
        got.sort_unstable();
        let mut want: Vec<u64> = (0..60).filter(|id| id % 4 != 0).collect();
        want.extend(101..130);
        assert_eq!(got, want, "checkpoint image + committed redo = exact state");
        assert_eq!(recovered.live_items(), want.len() as u64);
    }

    /// An empty or checkpoint-only log replays nothing.
    #[test]
    fn replay_with_no_committed_ops_is_a_no_op() {
        use crate::{ConcurrentDiskRTree, SharedMemStore};
        use rtree_buffer::LruPolicy;
        use rtree_wal::{GroupWal, MemLog};

        let tree = ConcurrentDiskRTree::create_writable(
            SharedMemStore::new(),
            8,
            3,
            8,
            LruPolicy::new(),
            GroupWal::open(MemLog::new()).unwrap(),
        )
        .unwrap();
        let summary = replay_committed(&[], &tree).unwrap();
        assert_eq!(
            summary,
            ReplaySummary {
                clean_log: true,
                ..Default::default()
            }
        );
        assert_eq!(tree.live_items(), 0);
    }
}
