//! Crash recovery: replays a write-ahead log against a page store.
//!
//! The protocol is the classical physical redo/undo over full page images
//! (see `rtree_wal::plan_recovery`): scan the surviving log bytes
//! tail-tolerantly, redo every committed after-image past the last
//! checkpoint in LSN order, then undo uncommitted before-images in reverse
//! order. Because every buffered write logs its images *before* the store
//! can be touched (the WAL rule enforced by [`crate::BufferManager`]), the
//! store after a crash is always a mix of old and logged states — so
//! rewriting full images lands it exactly on the last committed state, even
//! when the crash tore a page write in half.

use crate::{PageStore, PAGE_SIZE};
use rtree_buffer::PageId;
use rtree_wal::Lsn;
use std::io;

/// What [`recover`] did, for logging and assertions in tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Committed after-images rewritten.
    pub pages_redone: usize,
    /// Uncommitted before-images rolled back.
    pub pages_undone: usize,
    /// LSN of the last commit found in the log, if any.
    pub last_commit: Option<Lsn>,
    /// False when the log ended in a torn or corrupt record (expected after
    /// a crash mid-append; the torn tail is ignored).
    pub clean_log: bool,
}

/// Replays `log_bytes` (the surviving contents of a [`rtree_wal`] log)
/// against `store`, restoring the last committed state.
///
/// Pages referenced by the log but missing from the store (the crash hit
/// before an allocation reached disk) are allocated first. The store is
/// flushed before returning, so a recovered tree is durable immediately.
pub fn recover<S: PageStore>(store: &mut S, log_bytes: &[u8]) -> io::Result<RecoveryReport> {
    let scan = rtree_wal::scan(log_bytes);
    let plan = rtree_wal::plan_recovery(&scan.records);
    for (page_id, image) in &plan.writes {
        debug_assert_eq!(image.len(), PAGE_SIZE);
        while store.page_count() <= *page_id {
            store.allocate()?;
        }
        store.write_page(PageId(*page_id), image)?;
    }
    store.flush()?;
    Ok(RecoveryReport {
        pages_redone: plan.redone,
        pages_undone: plan.undone,
        last_commit: plan.last_commit,
        clean_log: scan.clean,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BufferManager, MemStore};
    use rtree_buffer::LruPolicy;
    use rtree_wal::{LogBackend, MemLog, Wal};

    fn page(fill: u8) -> Vec<u8> {
        let mut buf = vec![0u8; PAGE_SIZE];
        buf[0] = fill;
        buf
    }

    fn store_with_pages(n: usize) -> MemStore {
        let mut store = MemStore::new();
        for i in 0..n {
            let id = store.allocate().unwrap();
            store.write_page(id, &page(i as u8)).unwrap();
        }
        store
    }

    #[test]
    fn committed_writes_are_redone() {
        let log = MemLog::new();
        let mut m = BufferManager::new(store_with_pages(3), 8, LruPolicy::new());
        m.attach_wal(Wal::open(log.clone()).unwrap());
        m.write_buffered(PageId(1), &page(0xAA)).unwrap();
        m.commit().unwrap();
        // Crash before any write-back: the store still has the old image.
        let mut store = store_with_pages(3);
        let report = recover(&mut store, &log.read_all().unwrap()).unwrap();
        assert_eq!(report.pages_redone, 1);
        assert_eq!(report.pages_undone, 0);
        let mut buf = vec![0u8; PAGE_SIZE];
        store.read_page(PageId(1), &mut buf).unwrap();
        assert_eq!(buf[0], 0xAA);
    }

    #[test]
    fn uncommitted_writes_are_undone() {
        let log = MemLog::new();
        let mut m = BufferManager::new(store_with_pages(3), 2, LruPolicy::new());
        m.attach_wal(Wal::open(log.clone()).unwrap());
        m.write_buffered(PageId(1), &page(0xAA)).unwrap();
        m.commit().unwrap();
        // Second op: logged, partially written back (eviction), never
        // committed.
        m.write_buffered(PageId(2), &page(0xBB)).unwrap();
        m.flush_all().unwrap();
        let mut store = std::mem::replace(m.store_mut(), MemStore::new());
        let report = recover(&mut store, &log.read_all().unwrap()).unwrap();
        assert_eq!(report.pages_redone, 1);
        assert_eq!(report.pages_undone, 1);
        let mut buf = vec![0u8; PAGE_SIZE];
        store.read_page(PageId(2), &mut buf).unwrap();
        assert_eq!(buf[0], 2, "uncommitted write rolled back");
        store.read_page(PageId(1), &mut buf).unwrap();
        assert_eq!(buf[0], 0xAA, "committed write preserved");
    }

    #[test]
    fn missing_pages_are_allocated() {
        let log = MemLog::new();
        let mut wal = Wal::open(log.clone()).unwrap();
        wal.log_page_image(5, &page(0), &page(0x5A)).unwrap();
        wal.log_commit().unwrap();
        let mut store = store_with_pages(2);
        recover(&mut store, &log.read_all().unwrap()).unwrap();
        assert_eq!(store.page_count(), 6);
        let mut buf = vec![0u8; PAGE_SIZE];
        store.read_page(PageId(5), &mut buf).unwrap();
        assert_eq!(buf[0], 0x5A);
    }

    #[test]
    fn torn_log_tail_is_tolerated() {
        let log = MemLog::new();
        let mut wal = Wal::open(log.clone()).unwrap();
        wal.log_page_image(1, &page(1), &page(0xAA)).unwrap();
        wal.log_commit().unwrap();
        wal.log_page_image(2, &page(2), &page(0xBB)).unwrap();
        wal.sync().unwrap();
        let mut bytes = log.read_all().unwrap();
        bytes.truncate(bytes.len() - 7); // tear the last record
        let mut store = store_with_pages(3);
        let report = recover(&mut store, &bytes).unwrap();
        assert!(!report.clean_log);
        assert_eq!(report.pages_redone, 1);
        let mut buf = vec![0u8; PAGE_SIZE];
        store.read_page(PageId(2), &mut buf).unwrap();
        assert_eq!(buf[0], 2, "torn record ignored");
    }
}
