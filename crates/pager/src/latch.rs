//! Per-page reader/writer latches for the concurrent tree's writer mode.
//!
//! A latch protects the *physical* page image for the duration of one
//! structure-modifying step; it is held for the span of a crabbing descent,
//! not a transaction (locks for isolation are out of scope — operations are
//! single-op transactions). The table is address-based: pages hold no latch
//! state on disk, the table materializes an entry only while a page is
//! latched, so the memory footprint tracks the number of *in-flight*
//! operations, not the tree size.
//!
//! # Lock order (deadlock freedom)
//!
//! Every owner acquires latches strictly **top-down**: the meta latch
//! ([`META_LATCH`]), then the root page, then one tree level at a time
//! toward the leaves. Writers crab a single root-to-leaf path; readers
//! couple breadth-first, latching all of a level's children before
//! releasing the level above. No acquisition ever targets a level at or
//! above one the owner already released from-below — so every wait edge in
//! the wait-for graph points down the tree, edges between readers never
//! block (shared-shared), and a cycle would need an upward edge that the
//! protocol cannot produce. Split propagation and condense walk **upward
//! only through latches already held**, acquiring nothing.

use std::collections::HashMap;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// Locks the slot map, recovering from poisoning (a panicking holder must
/// not wedge every other operation).
fn lock(m: &Mutex<HashMap<u64, LatchSlot>>) -> MutexGuard<'_, HashMap<u64, LatchSlot>> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Latch key guarding the tree metadata (root id, height): acquired before
/// any page latch. Page 0 *is* the meta page, so the key doubles as its
/// page latch.
pub(crate) const META_LATCH: u64 = 0;

#[derive(Default)]
struct LatchSlot {
    readers: u32,
    writer: bool,
    /// Owners blocked on this slot (kept so release only wakes when needed).
    waiters: u32,
}

/// The latch table: one logical reader/writer latch per page id, allocated
/// on demand and freed when the last holder releases.
#[derive(Default)]
pub(crate) struct LatchTable {
    slots: Mutex<HashMap<u64, LatchSlot>>,
    wake: Condvar,
}

impl LatchTable {
    pub(crate) fn new() -> Self {
        LatchTable::default()
    }

    /// Acquires the latch for `id` in shared mode. Returns `true` if the
    /// caller had to wait (latch-contention accounting).
    pub(crate) fn lock_shared(&self, id: u64) -> bool {
        let mut slots = lock(&self.slots);
        let mut waited = false;
        loop {
            let slot = slots.entry(id).or_default();
            if !slot.writer {
                slot.readers += 1;
                return waited;
            }
            waited = true;
            slot.waiters += 1;
            slots = self
                .wake
                .wait(slots)
                .unwrap_or_else(PoisonError::into_inner);
            if let Some(slot) = slots.get_mut(&id) {
                slot.waiters -= 1;
            }
        }
    }

    /// Acquires the latch for `id` in exclusive mode. Returns `true` if the
    /// caller had to wait.
    pub(crate) fn lock_exclusive(&self, id: u64) -> bool {
        let mut slots = lock(&self.slots);
        let mut waited = false;
        loop {
            let slot = slots.entry(id).or_default();
            if !slot.writer && slot.readers == 0 {
                slot.writer = true;
                return waited;
            }
            waited = true;
            slot.waiters += 1;
            slots = self
                .wake
                .wait(slots)
                .unwrap_or_else(PoisonError::into_inner);
            if let Some(slot) = slots.get_mut(&id) {
                slot.waiters -= 1;
            }
        }
    }

    /// Releases a latch previously acquired on `id` in the given mode.
    pub(crate) fn unlock(&self, id: u64, exclusive: bool) {
        let mut slots = lock(&self.slots);
        let slot = slots.get_mut(&id).expect("unlocking an unheld latch");
        if exclusive {
            debug_assert!(slot.writer && slot.readers == 0);
            slot.writer = false;
        } else {
            debug_assert!(!slot.writer && slot.readers > 0);
            slot.readers -= 1;
        }
        let idle = !slot.writer && slot.readers == 0;
        let has_waiters = slot.waiters > 0;
        if idle && !has_waiters {
            slots.remove(&id);
        }
        drop(slots);
        if has_waiters {
            // One condvar for the whole table: waiters re-check their own
            // slot, so waking all is correct (if thundering) and keeps the
            // table allocation-free on the release path.
            self.wake.notify_all();
        }
    }

    /// Number of currently materialized latch slots (tests only).
    #[cfg(test)]
    pub(crate) fn live_slots(&self) -> usize {
        lock(&self.slots).len()
    }
}

/// A held set of latches released in LIFO order on drop — crash-safe
/// against panics inside an operation.
pub(crate) struct LatchSet<'t> {
    table: &'t LatchTable,
    held: Vec<(u64, bool)>,
}

impl<'t> LatchSet<'t> {
    pub(crate) fn new(table: &'t LatchTable) -> Self {
        LatchSet {
            table,
            held: Vec::new(),
        }
    }

    /// Acquires `id` in the requested mode and records it. Returns whether
    /// the acquisition had to wait.
    pub(crate) fn acquire(&mut self, id: u64, exclusive: bool) -> bool {
        let waited = if exclusive {
            self.table.lock_exclusive(id)
        } else {
            self.table.lock_shared(id)
        };
        self.held.push((id, exclusive));
        waited
    }

    /// Releases every held latch except the most recent `keep` (crabbing:
    /// the child just proved split-safe, so the ancestors can go).
    pub(crate) fn release_all_but_last(&mut self, keep: usize) {
        let cut = self.held.len().saturating_sub(keep);
        for (id, exclusive) in self.held.drain(..cut) {
            self.table.unlock(id, exclusive);
        }
    }

    /// Number of latches currently held (tests only).
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.held.len()
    }
}

impl Drop for LatchSet<'_> {
    fn drop(&mut self) {
        while let Some((id, exclusive)) = self.held.pop() {
            self.table.unlock(id, exclusive);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn shared_latches_coexist_exclusive_excludes() {
        let t = LatchTable::new();
        assert!(!t.lock_shared(5));
        assert!(!t.lock_shared(5));
        t.unlock(5, false);
        t.unlock(5, false);
        assert!(!t.lock_exclusive(5));
        t.unlock(5, true);
        assert_eq!(t.live_slots(), 0, "idle slots are reclaimed");
    }

    #[test]
    fn exclusive_blocks_until_readers_drain() {
        let t = Arc::new(LatchTable::new());
        let entered = Arc::new(AtomicU64::new(0));
        t.lock_shared(1);
        let writer = {
            let t = Arc::clone(&t);
            let entered = Arc::clone(&entered);
            std::thread::spawn(move || {
                let waited = t.lock_exclusive(1);
                entered.store(1, Ordering::SeqCst);
                t.unlock(1, true);
                waited
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(entered.load(Ordering::SeqCst), 0, "writer must wait");
        t.unlock(1, false);
        assert!(writer.join().unwrap(), "the wait was observed");
        assert_eq!(entered.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn latch_set_releases_on_drop_and_crabs() {
        let t = LatchTable::new();
        {
            let mut set = LatchSet::new(&t);
            set.acquire(META_LATCH, true);
            set.acquire(10, true);
            set.acquire(11, true);
            assert_eq!(set.len(), 3);
            set.release_all_but_last(1);
            assert_eq!(set.len(), 1);
            assert_eq!(t.live_slots(), 1, "ancestors released");
        }
        assert_eq!(t.live_slots(), 0, "drop released the rest");
    }

    #[test]
    fn contended_counter_is_exact_under_exclusive_latching() {
        let t = Arc::new(LatchTable::new());
        let counter = Arc::new(AtomicU64::new(0));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let t = Arc::clone(&t);
                let counter = Arc::clone(&counter);
                std::thread::spawn(move || {
                    for _ in 0..200 {
                        t.lock_exclusive(3);
                        let v = counter.load(Ordering::Relaxed);
                        counter.store(v + 1, Ordering::Relaxed);
                        t.unlock(3, true);
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 1600);
        assert_eq!(t.live_slots(), 0);
    }
}
