//! Disk-backed R-tree execution.
//!
//! Query traversal decodes pages into [`NodeSoA`] (reusing one scratch node
//! across the whole walk) and filters entries with the dispatched
//! [`rtree_geom::RectSoA`] SIMD kernel — on v3 (SoA) pages the coordinate
//! planes are copied contiguously with no per-entry gather. The original
//! entry-at-a-time path survives verbatim as [`DiskRTree::query_scalar`],
//! the differential reference the `simd_traversal` bench and the
//! `simd_vs_seed` suite compare against.

use crate::page::PageLayout;
use crate::{BufferManager, NodePage, NodeSoA, PageMeta, PageStore, PAGE_SIZE};
use rtree_buffer::{PageId, ReplacementPolicy};
use rtree_geom::{Point, Rect};
use rtree_index::{Neighbor, RTree};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::io;

/// An R-tree materialized onto pages, queried through a buffer manager that
/// counts physical reads — the end-to-end ground truth for the paper's
/// disk-access metric.
///
/// Pages are laid out in level order (meta page 0, root page 1, then the
/// rest of each level contiguously), matching the page numbering used by
/// the analytic model and the trace simulator, so "pin the top `p` levels"
/// means the same page set everywhere.
/// # Examples
///
/// ```
/// use rtree_buffer::LruPolicy;
/// use rtree_geom::Rect;
/// use rtree_index::BulkLoader;
/// use rtree_pager::{DiskRTree, MemStore};
///
/// let rects: Vec<Rect> = (0..300)
///     .map(|i| {
///         let x = (i as f64 * 0.618) % 0.99;
///         let y = (i as f64 * 0.414) % 0.99;
///         Rect::new(x, y, x + 0.005, y + 0.005)
///     })
///     .collect();
/// let tree = BulkLoader::hilbert(20).load(&rects);
/// let mut disk = DiskRTree::create(MemStore::new(), &tree, 64, LruPolicy::new()).unwrap();
///
/// // Cold query: every touched node costs a physical read...
/// let (hits, reads) = disk.query_counting(&Rect::new(0.2, 0.2, 0.4, 0.4)).unwrap();
/// assert!(reads > 0);
/// // ...re-running it is free, the pages are buffered.
/// let (hits2, reads2) = disk.query_counting(&Rect::new(0.2, 0.2, 0.4, 0.4)).unwrap();
/// assert_eq!(reads2, 0);
/// assert_eq!(hits.len(), hits2.len());
/// ```
pub struct DiskRTree<S: PageStore> {
    pub(crate) mgr: BufferManager<S>,
    pub(crate) meta: PageMeta,
    /// Monotonic query/operation span id source (0 = no span).
    #[cfg(feature = "trace")]
    next_query: u64,
    /// Per-query latency / reads / pins distributions.
    #[cfg(feature = "trace")]
    metrics: rtree_obs::QueryMetrics,
}

impl<S: PageStore> DiskRTree<S> {
    /// Assembles a handle from an already-initialized manager and metadata
    /// (single construction point so trace state stays in one place).
    pub(crate) fn from_parts(mut mgr: BufferManager<S>, meta: PageMeta) -> Self {
        // Checksums are verified once, when a page enters the pool; the
        // traversal loops then use the trusted decode on resident frames.
        mgr.set_verify_reads(true);
        DiskRTree {
            mgr,
            meta,
            #[cfg(feature = "trace")]
            next_query: 0,
            #[cfg(feature = "trace")]
            metrics: rtree_obs::QueryMetrics::new(),
        }
    }
    /// Serializes `tree` into `store` and returns a handle with the given
    /// buffer capacity and policy.
    ///
    /// # Panics
    /// Panics if the tree is empty or its node capacity exceeds
    /// [`crate::MAX_ENTRIES_PER_PAGE`].
    pub fn create(
        store: S,
        tree: &RTree,
        buffer_capacity: usize,
        policy: impl ReplacementPolicy + 'static,
    ) -> io::Result<Self> {
        Self::create_with_layout(store, tree, buffer_capacity, policy, PageLayout::Soa)
    }

    /// Like [`DiskRTree::create`], but materializing node pages in an
    /// explicit body layout — [`PageLayout::Aos`] reproduces the format-v2
    /// images the seed wrote, for compatibility and differential tests.
    pub fn create_with_layout(
        mut store: S,
        tree: &RTree,
        buffer_capacity: usize,
        policy: impl ReplacementPolicy + 'static,
        layout: PageLayout,
    ) -> io::Result<Self> {
        let meta = materialize_with(&mut store, tree, layout)?;
        Ok(Self::from_parts(
            BufferManager::new(store, buffer_capacity, policy),
            meta,
        ))
    }

    /// Like [`DiskRTree::create`], but materializing a *compressed*
    /// (format v4) image: leaf pages stay exact-`f64` SoA, internal levels
    /// are repacked bottom-up into Packed pages of up to
    /// [`crate::MAX_ENTRIES_PACKED`] quantized entries. The higher internal
    /// fan-out shrinks the tree's internal footprint ~2.5×, so at an equal
    /// frame budget more of the buffer is left for leaves — the mechanism
    /// behind the buffering paper's fewer-disk-accesses prediction, which
    /// the macrobench measures. Decoded routing rects conservatively
    /// contain the true ones, so query results are exactly the
    /// uncompressed tree's.
    ///
    /// # Panics
    /// Panics if the tree is empty or its node capacity exceeds
    /// [`crate::MAX_ENTRIES_PER_PAGE`].
    pub fn create_compressed(
        mut store: S,
        tree: &RTree,
        buffer_capacity: usize,
        policy: impl ReplacementPolicy + 'static,
    ) -> io::Result<Self> {
        let meta = materialize_packed(&mut store, tree, crate::MAX_ENTRIES_PACKED)?;
        Ok(Self::from_parts(
            BufferManager::new(store, buffer_capacity, policy),
            meta,
        ))
    }

    /// Opens a previously materialized tree.
    pub fn open(
        mut store: S,
        buffer_capacity: usize,
        policy: impl ReplacementPolicy + 'static,
    ) -> io::Result<Self> {
        let mut buf = vec![0u8; PAGE_SIZE];
        store.read_page(PageId(0), &mut buf)?;
        let meta = PageMeta::decode(&buf)?;
        Ok(Self::from_parts(
            BufferManager::new(store, buffer_capacity, policy),
            meta,
        ))
    }

    /// The stored metadata.
    pub fn meta(&self) -> &PageMeta {
        &self.meta
    }

    /// Attaches a write-ahead log to the underlying buffer manager; from
    /// here on [`DiskRTree::insert`] and [`DiskRTree::delete`] are logged
    /// and recoverable via [`crate::recover`].
    pub fn attach_wal(&mut self, wal: rtree_wal::Wal) {
        self.mgr.attach_wal(wal);
    }

    /// Writes all dirty pages back and issues the store's durability
    /// barrier.
    pub fn flush(&mut self) -> io::Result<()> {
        self.mgr.flush_all()
    }

    /// Flushes everything and truncates the attached log (if any). Call
    /// only between operations.
    pub fn checkpoint(&mut self) -> io::Result<()> {
        self.mgr.checkpoint()
    }

    /// Physical I/O counters so far.
    pub fn io_stats(&self) -> crate::IoStats {
        self.mgr.io_stats()
    }

    /// Tears the tree down and returns the bare store, discarding buffered
    /// (dirty) state — the crash path for recovery tests. Call
    /// [`DiskRTree::flush`] first for an orderly shutdown.
    pub fn into_store(self) -> S {
        self.mgr.into_store()
    }

    /// Number of node pages per level, root level first.
    ///
    /// # Panics
    /// Panics after a mutation: inserts and deletes abandon the bulk-load
    /// level-order layout, so the level table is cleared.
    pub fn pages_per_level(&self) -> Vec<u64> {
        assert!(
            !self.meta.level_starts.is_empty(),
            "level table is stale: the tree has been mutated since bulk load"
        );
        let mut out = Vec::with_capacity(self.meta.level_starts.len());
        for (i, &start) in self.meta.level_starts.iter().enumerate() {
            let end = self
                .meta
                .level_starts
                .get(i + 1)
                .copied()
                .unwrap_or(self.meta.nodes + 1);
            out.push(end - start);
        }
        out
    }

    /// Pins the top `p` levels into the buffer (reads them once).
    ///
    /// # Panics
    /// Panics if `p` exceeds the height, or after a mutation (the
    /// level-order layout no longer holds).
    pub fn pin_top_levels(&mut self, p: usize) -> io::Result<()> {
        assert!(
            !self.meta.level_starts.is_empty(),
            "level table is stale: the tree has been mutated since bulk load"
        );
        assert!(p <= self.meta.level_starts.len(), "not that many levels");
        let end = if p == self.meta.level_starts.len() {
            self.meta.nodes + 1
        } else {
            self.meta.level_starts[p]
        };
        for page in 1..end {
            #[cfg(feature = "trace")]
            {
                self.mgr.tracer.level = self.meta.onpage_level_of(page);
            }
            self.mgr.pin(PageId(page))?;
        }
        #[cfg(feature = "trace")]
        {
            self.mgr.tracer.level = -1;
        }
        Ok(())
    }

    /// Re-targets pinning at the top `p` levels: everything currently
    /// pinned is unpinned (frames stay resident, no I/O), then the top `p`
    /// levels are pinned. `p = 0` just unpins. The idempotent actuator the
    /// tuning controller calls — re-applying the current pinning is free.
    ///
    /// # Panics
    /// Panics like [`DiskRTree::pin_top_levels`] if `p` exceeds the height
    /// or the tree has been mutated since bulk load.
    pub fn set_pinned_levels(&mut self, p: usize) -> io::Result<()> {
        self.mgr.unpin_all();
        if p > 0 {
            self.pin_top_levels(p)?;
        }
        Ok(())
    }

    /// Number of currently pinned pages.
    pub fn pinned_pages(&self) -> usize {
        self.mgr.pinned_count()
    }

    /// Buffer pool capacity in frames.
    pub fn buffer_capacity(&self) -> usize {
        self.mgr.pool().capacity()
    }

    /// Replaces the buffer pool with `capacity` frames under `policy`,
    /// flushing all dirty pages first so no buffered state is lost. The
    /// cache starts cold except for pinned pages, which stay pinned with
    /// their frames; the pool statistics restart, while the cumulative
    /// [`crate::IoStats`] and any attached WAL survive. Call only between
    /// operations. Refuses (`InvalidInput`) a capacity smaller than the
    /// pinned page count rather than evicting a pinned page.
    pub fn resize_buffer(
        &mut self,
        capacity: usize,
        policy: impl ReplacementPolicy + 'static,
    ) -> io::Result<()> {
        self.mgr.resize(capacity, policy)
    }

    /// Physical page reads so far.
    pub fn physical_reads(&self) -> u64 {
        self.mgr.physical_reads()
    }

    /// Physical page writes so far.
    pub fn physical_writes(&self) -> u64 {
        self.mgr.physical_writes()
    }

    /// Resets read counters (e.g. after warm-up).
    pub fn reset_counters(&mut self) {
        self.mgr.reset_counters();
    }

    /// Buffer hit ratio so far.
    pub fn hit_ratio(&self) -> f64 {
        self.mgr.pool().stats().hit_ratio()
    }

    /// Buffer pool access statistics so far.
    pub fn buffer_stats(&self) -> rtree_buffer::BufferStats {
        self.mgr.pool().stats()
    }

    /// Routes every physical-I/O and pool-outcome event to `sink` (`None`
    /// stops tracing). Only present with the `trace` feature.
    #[cfg(feature = "trace")]
    pub fn set_trace_sink(&mut self, sink: Option<std::sync::Arc<dyn rtree_obs::TraceSink>>) {
        self.mgr.set_trace_sink(sink);
    }

    /// Snapshot of the per-query latency / reads / pins histograms. Only
    /// present with the `trace` feature.
    #[cfg(feature = "trace")]
    pub fn query_metrics(&self) -> rtree_obs::QueryMetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Opens a traced mutation span: subsequent events carry a fresh
    /// operation id (levels are unknown during mutation, so -1).
    #[cfg(feature = "trace")]
    pub(crate) fn begin_op(&mut self) {
        self.next_query += 1;
        self.mgr.tracer.query_id = self.next_query;
        self.mgr.tracer.level = -1;
    }

    /// Closes the current traced span.
    #[cfg(feature = "trace")]
    pub(crate) fn end_op(&mut self) {
        self.mgr.tracer.query_id = 0;
        self.mgr.tracer.level = -1;
    }

    /// Mutable access to the underlying buffer manager — the hook external
    /// execution engines (the batch executor in `rtree-exec`) use to drive
    /// fetch/prefetch/pin against the same pool and counters as
    /// [`DiskRTree::query`].
    pub fn manager_mut(&mut self) -> &mut BufferManager<S> {
        &mut self.mgr
    }

    /// Allocates a fresh operation-span id from the same sequence
    /// [`DiskRTree::query`] uses, for external engines that attribute their
    /// trace events to a span of their own. Only present with the `trace`
    /// feature.
    #[cfg(feature = "trace")]
    pub fn allocate_op_id(&mut self) -> u64 {
        self.next_query += 1;
        self.next_query
    }

    /// Executes a region query, returning matching item ids. Every page
    /// whose MBR intersects the query is fetched through the buffer
    /// manager; physical reads accumulate in [`DiskRTree::physical_reads`].
    pub fn query(&mut self, query: &Rect) -> io::Result<Vec<u64>> {
        #[cfg(feature = "trace")]
        {
            self.begin_op();
            let start = rtree_obs::now_ns();
            let reads_before = self.mgr.physical_reads();
            let accesses_before = self.mgr.pool().stats().accesses;
            let result = self.query_inner(query);
            self.metrics.record_query(
                rtree_obs::now_ns() - start,
                self.mgr.physical_reads() - reads_before,
                self.mgr.pool().stats().accesses - accesses_before,
            );
            self.end_op();
            result
        }
        #[cfg(not(feature = "trace"))]
        self.query_inner(query)
    }

    fn query_inner(&mut self, query: &Rect) -> io::Result<Vec<u64>> {
        let mut results = Vec::new();
        let root = PageId(self.meta.root);
        let root_level = (self.meta.height - 1) as u16;
        // One scratch node + match list reused across the whole walk:
        // steady-state traversal does not allocate.
        let mut node = NodeSoA::new();
        let mut matches: Vec<u32> = Vec::new();

        // Root handling mirrors the model: access it only if its MBR
        // intersects the query. Decode it from a cheap peek first.
        #[cfg(feature = "trace")]
        {
            self.mgr.tracer.level = root_level as i16;
        }
        node.decode_into_trusted(self.mgr.fetch_uncharged(root)?)?;
        let Some(root_mbr) = node.rects.mbr() else {
            return Ok(results);
        };
        if !root_mbr.intersects(query) {
            return Ok(results);
        }

        // Each stack entry carries the node's level so every fetch can be
        // attributed to it (children of a level-L node sit at L - 1).
        let mut stack = vec![(root, root_level)];
        while let Some((pid, level)) = stack.pop() {
            #[cfg(feature = "trace")]
            {
                self.mgr.tracer.level = level as i16;
            }
            node.decode_into_trusted(self.mgr.fetch(pid)?)?;
            debug_assert_eq!(node.level, level, "stack level mirrors the page");
            matches.clear();
            node.rects.intersecting(query, &mut matches);
            if level == 0 {
                results.extend(matches.iter().map(|&i| node.ptrs[i as usize]));
            } else {
                stack.extend(
                    matches
                        .iter()
                        .map(|&i| (PageId(node.ptrs[i as usize]), level - 1)),
                );
            }
        }
        Ok(results)
    }

    /// The seed's entry-at-a-time region query, kept verbatim as the
    /// differential reference: decodes pages into [`NodePage`] (the AoS
    /// gather path) and tests each entry with [`Rect::intersects`]. Visits
    /// pages in exactly the same order as [`DiskRTree::query`], so results
    /// *and* I/O counts must match — the `simd_vs_seed` suite and the
    /// `simd_traversal` bench rely on this. Never deleted.
    pub fn query_scalar(&mut self, query: &Rect) -> io::Result<Vec<u64>> {
        let mut results = Vec::new();
        let root = PageId(self.meta.root);
        let root_level = (self.meta.height - 1) as u16;

        #[cfg(feature = "trace")]
        {
            self.mgr.tracer.level = root_level as i16;
        }
        let root_node = NodePage::decode(self.mgr.fetch_uncharged(root)?)?;
        if root_node.entries.is_empty() {
            return Ok(results);
        }
        let root_mbr = root_node
            .entries
            .iter()
            .skip(1)
            .fold(root_node.entries[0].0, |acc, (r, _)| acc.union(r));
        if !root_mbr.intersects(query) {
            return Ok(results);
        }

        let mut stack = vec![(root, root_level)];
        while let Some((pid, level)) = stack.pop() {
            #[cfg(feature = "trace")]
            {
                self.mgr.tracer.level = level as i16;
            }
            let node = NodePage::decode(self.mgr.fetch(pid)?)?;
            debug_assert_eq!(node.level, level, "stack level mirrors the page");
            for (r, ptr) in &node.entries {
                if r.intersects(query) {
                    if node.level == 0 {
                        results.push(*ptr);
                    } else {
                        stack.push((PageId(*ptr), level - 1));
                    }
                }
            }
        }
        Ok(results)
    }

    /// Point query: item ids whose rectangle contains `p` (boundary
    /// inclusive). Runs the dispatched SIMD containment kernel over the
    /// same traversal as [`DiskRTree::query`] — identical to
    /// `query(&Rect::point(p))` in both results and page accesses.
    pub fn query_point(&mut self, p: &Point) -> io::Result<Vec<u64>> {
        self.query(&Rect { lo: *p, hi: *p })
    }

    /// The `k` items nearest to `p` (by rectangle distance, closest first;
    /// ties broken arbitrarily), via best-first search over pages with the
    /// dispatched SIMD distance kernel pruning every node's entries against
    /// the current k-th-best bound before they are enqueued.
    pub fn nearest_neighbors(&mut self, p: &Point, k: usize) -> io::Result<Vec<Neighbor>> {
        #[cfg(feature = "trace")]
        {
            self.begin_op();
        }
        let result = knn_inner(&mut self.mgr, &self.meta, p, k);
        #[cfg(feature = "trace")]
        {
            self.end_op();
        }
        result
    }

    /// Executes a query and also reports how many physical reads it caused.
    pub fn query_counting(&mut self, query: &Rect) -> io::Result<(Vec<u64>, u64)> {
        let before = self.mgr.physical_reads();
        let results = self.query(query)?;
        Ok((results, self.mgr.physical_reads() - before))
    }
}

/// A kNN search-queue entry ordered by ascending distance (the heap is a
/// max-heap, so the ordering is inverted). Shared with the concurrent
/// tree's kNN.
pub(crate) struct KnnEntry {
    pub(crate) dist2: f64,
    pub(crate) kind: KnnKind,
}

pub(crate) enum KnnKind {
    /// An unexpanded node page (level 0 = leaf).
    Node(u64, u16),
    /// A leaf entry.
    Item { rect: Rect, id: u64 },
}

impl PartialEq for KnnEntry {
    fn eq(&self, other: &Self) -> bool {
        self.dist2 == other.dist2
    }
}
impl Eq for KnnEntry {}
impl PartialOrd for KnnEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for KnnEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .dist2
            .partial_cmp(&self.dist2)
            .expect("kernel distances are never NaN")
    }
}

/// Best-first kNN over disk pages (Hjaltason & Samet), shared by the
/// sequential and concurrent trees via the buffer manager. The SIMD
/// distance kernel both computes every enqueued distance and discards
/// entries beyond the current k-th-best bound in one pass.
pub(crate) fn knn_inner<S: PageStore>(
    mgr: &mut BufferManager<S>,
    meta: &PageMeta,
    p: &Point,
    k: usize,
) -> io::Result<Vec<Neighbor>> {
    let mut result = Vec::with_capacity(k.min(meta.items as usize));
    if k == 0 || meta.items == 0 {
        return Ok(result);
    }
    let mut node = NodeSoA::new();
    let mut within: Vec<(u32, f64)> = Vec::new();
    let mut queue = BinaryHeap::new();
    // Max-heap of the k smallest *item* distances seen so far: once full,
    // its top is a sound upper bound — no entry farther than it can be
    // among the k nearest, so the kernel discards such entries in-pass.
    let mut best_k: BinaryHeap<OrdF64> = BinaryHeap::with_capacity(k + 1);
    queue.push(KnnEntry {
        dist2: 0.0,
        kind: KnnKind::Node(meta.root, (meta.height - 1) as u16),
    });
    while let Some(entry) = queue.pop() {
        match entry.kind {
            KnnKind::Item { rect, id } => {
                result.push(Neighbor {
                    id,
                    rect,
                    distance: entry.dist2.sqrt(),
                });
                if result.len() == k {
                    break;
                }
            }
            KnnKind::Node(pid, level) => {
                let bound = if best_k.len() == k {
                    best_k.peek().expect("k > 0").0
                } else {
                    f64::INFINITY
                };
                #[cfg(feature = "trace")]
                {
                    mgr.tracer.level = level as i16;
                }
                node.decode_into_trusted(mgr.fetch(PageId(pid))?)?;
                within.clear();
                node.rects.min_dist2_within(p, bound, &mut within);
                for &(i, d2) in &within {
                    if level == 0 {
                        queue.push(KnnEntry {
                            dist2: d2,
                            kind: KnnKind::Item {
                                rect: node.rects.get(i as usize),
                                id: node.ptrs[i as usize],
                            },
                        });
                        best_k.push(OrdF64(d2));
                        if best_k.len() > k {
                            best_k.pop();
                        }
                    } else {
                        queue.push(KnnEntry {
                            dist2: d2,
                            kind: KnnKind::Node(node.ptrs[i as usize], level - 1),
                        });
                    }
                }
            }
        }
    }
    Ok(result)
}

/// Total order for kernel distances (never NaN — see the geom NaN policy).
#[derive(Clone, Copy, PartialEq)]
pub(crate) struct OrdF64(pub(crate) f64);
impl Eq for OrdF64 {}
impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.partial_cmp(&other.0).expect("distance is never NaN")
    }
}

/// Serializes `tree` into `store` (meta page 0, node pages in level order)
/// in the current (SoA) layout and returns the metadata. Shared by
/// [`DiskRTree::create`] and [`crate::ConcurrentDiskRTree::create`].
pub(crate) fn materialize<S: PageStore>(store: &mut S, tree: &RTree) -> io::Result<PageMeta> {
    materialize_with(store, tree, PageLayout::Soa)
}

/// [`materialize`] with an explicit node-page body layout.
pub(crate) fn materialize_with<S: PageStore>(
    store: &mut S,
    tree: &RTree,
    layout: PageLayout,
) -> io::Result<PageMeta> {
    assert!(!tree.is_empty(), "cannot materialize an empty tree");
    assert!(
        tree.max_entries() <= crate::MAX_ENTRIES_PER_PAGE,
        "node capacity {} exceeds page capacity {}",
        tree.max_entries(),
        crate::MAX_ENTRIES_PER_PAGE
    );

    // Level-order ids; assign page numbers 1.. in that order.
    let ids = tree.node_ids();
    let mut page_of_node = vec![0u64; ids.iter().map(|i| i.index() + 1).max().expect("non-empty")];
    for (i, id) in ids.iter().enumerate() {
        page_of_node[id.index()] = (i + 1) as u64;
    }

    // Level start table (paper levels: root first).
    let height = tree.height();
    let mut level_counts = vec![0u64; height as usize];
    for id in &ids {
        let paper_level = (height - 1 - tree.node(*id).level()) as usize;
        level_counts[paper_level] += 1;
    }
    let mut level_starts = Vec::with_capacity(height as usize);
    let mut next = 1u64;
    for c in &level_counts {
        level_starts.push(next);
        next += c;
    }

    let meta = PageMeta {
        root: 1,
        height,
        max_entries: tree.max_entries() as u32,
        min_entries: tree.min_entries() as u32,
        items: tree.len() as u64,
        nodes: ids.len() as u64,
        free_head: 0,
        level_starts,
        internal_max_entries: tree.max_entries() as u32,
        compressed: false,
    };

    // Write meta + node pages.
    let mut buf = vec![0u8; PAGE_SIZE];
    let meta_page = store.allocate()?;
    debug_assert_eq!(meta_page, PageId(0));
    meta.encode(&mut buf);
    store.write_page(meta_page, &buf)?;

    for id in &ids {
        let n = tree.node(*id);
        let entries: Vec<(Rect, u64)> = if n.is_leaf() {
            n.entries().collect()
        } else {
            (0..n.len())
                .map(|i| (n.rect(i), page_of_node[n.child(i).index()]))
                .collect()
        };
        let node_page = NodePage {
            level: n.level() as u16,
            entries,
        };
        let pid = store.allocate()?;
        node_page.encode_with(&mut buf, layout);
        store.write_page(pid, &buf)?;
    }
    Ok(meta)
}

/// Serializes `tree` into `store` as a compressed (format v4) image.
///
/// Leaf pages are written 1:1 from the tree's leaves, in the same order
/// [`materialize_with`] writes them, as exact-`f64` SoA pages. Internal
/// levels are *not* copied from the tree: they are rebuilt bottom-up by
/// chunking consecutive children into Packed pages of up to `internal_cap`
/// quantized entries, so the repacked tree is usually shallower and its
/// internal footprint far smaller. Page ids are level order, root first,
/// like every other materialization.
pub(crate) fn materialize_packed<S: PageStore>(
    store: &mut S,
    tree: &RTree,
    internal_cap: usize,
) -> io::Result<PageMeta> {
    use crate::mutate::mbr;

    assert!(!tree.is_empty(), "cannot materialize an empty tree");
    assert!(
        tree.max_entries() <= crate::MAX_ENTRIES_PER_PAGE,
        "node capacity {} exceeds page capacity {}",
        tree.max_entries(),
        crate::MAX_ENTRIES_PER_PAGE
    );
    assert!(
        (2..=crate::MAX_ENTRIES_PACKED).contains(&internal_cap),
        "internal capacity {internal_cap} out of range 2..={}",
        crate::MAX_ENTRIES_PACKED
    );

    // Level 0: the tree's leaves, left to right (node_ids is level order,
    // so filtering preserves exactly the leaf order materialize_with uses).
    let leaf_entries: Vec<Vec<(Rect, u64)>> = tree
        .node_ids()
        .into_iter()
        .filter(|id| tree.node(*id).is_leaf())
        .map(|id| tree.node(id).entries().collect())
        .collect();

    // Upper levels: chunk consecutive child MBRs into groups of
    // `internal_cap`. Pointers are indices into the level below for now;
    // they become page ids once the level-order numbering is known.
    let mut levels: Vec<Vec<Vec<(Rect, u64)>>> = vec![leaf_entries];
    while levels.last().expect("non-empty").len() > 1 {
        let below: Vec<Rect> = levels
            .last()
            .expect("non-empty")
            .iter()
            .map(|entries| mbr(entries))
            .collect();
        let next: Vec<Vec<(Rect, u64)>> = (0..below.len())
            .collect::<Vec<usize>>()
            .chunks(internal_cap)
            .map(|chunk| chunk.iter().map(|&i| (below[i], i as u64)).collect())
            .collect();
        levels.push(next);
    }

    // Page numbering: root level first, then each level down, contiguous.
    let height = levels.len() as u32;
    let mut start_of_level = vec![0u64; levels.len()];
    let mut level_starts = Vec::with_capacity(levels.len());
    let mut next_page = 1u64;
    for k in (0..levels.len()).rev() {
        start_of_level[k] = next_page;
        level_starts.push(next_page);
        next_page += levels[k].len() as u64;
    }

    let meta = PageMeta {
        root: 1,
        height,
        max_entries: tree.max_entries() as u32,
        min_entries: tree.min_entries() as u32,
        items: tree.len() as u64,
        nodes: next_page - 1,
        free_head: 0,
        level_starts,
        internal_max_entries: internal_cap as u32,
        compressed: true,
    };

    let mut buf = vec![0u8; PAGE_SIZE];
    let meta_page = store.allocate()?;
    debug_assert_eq!(meta_page, PageId(0));
    meta.encode(&mut buf);
    store.write_page(meta_page, &buf)?;

    for k in (0..levels.len()).rev() {
        for node in &levels[k] {
            let entries: Vec<(Rect, u64)> = if k == 0 {
                node.clone()
            } else {
                node.iter()
                    .map(|&(r, child)| (r, start_of_level[k - 1] + child))
                    .collect()
            };
            let page = NodePage {
                level: k as u16,
                entries,
            };
            let pid = store.allocate()?;
            page.encode_with(&mut buf, meta.layout_at(k as u16));
            store.write_page(pid, &buf)?;
        }
    }
    Ok(meta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemStore;
    use rtree_buffer::LruPolicy;
    use rtree_geom::Point;
    use rtree_index::BulkLoader;

    fn sample_rects(n: usize) -> Vec<Rect> {
        (0..n)
            .map(|i| {
                let x = (i as f64 * 0.618_033) % 0.97;
                let y = (i as f64 * 0.414_213) % 0.97;
                Rect::new(x, y, x + 0.012, y + 0.012)
            })
            .collect()
    }

    fn disk_tree(n: usize, cap: usize, buffer: usize) -> (DiskRTree<MemStore>, RTree, Vec<Rect>) {
        let rects = sample_rects(n);
        let tree = BulkLoader::hilbert(cap).load(&rects);
        let disk = DiskRTree::create(MemStore::new(), &tree, buffer, LruPolicy::new()).unwrap();
        (disk, tree, rects)
    }

    #[test]
    fn disk_query_matches_in_memory_query() {
        let (mut disk, tree, _) = disk_tree(600, 10, 50);
        for q in [
            Rect::new(0.1, 0.1, 0.4, 0.3),
            Rect::point(Point::new(0.5, 0.5)),
            Rect::new(0.0, 0.0, 1.0, 1.0),
            Rect::new(0.9, 0.9, 0.95, 0.95),
        ] {
            let mut a = disk.query(&q).unwrap();
            let mut b = tree.search(&q);
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "query {q}");
        }
    }

    #[test]
    fn physical_reads_equal_nodes_accessed_cold() {
        let (mut disk, tree, _) = disk_tree(600, 10, 1000);
        let q = Rect::new(0.2, 0.2, 0.5, 0.5);
        let (_, reads) = disk.query_counting(&q).unwrap();
        assert_eq!(
            reads,
            tree.count_accesses(&q) as u64,
            "cold reads = nodes touched"
        );
        // Re-running the same query is free: everything is cached.
        let (_, reads2) = disk.query_counting(&q).unwrap();
        assert_eq!(reads2, 0);
    }

    #[test]
    fn meta_survives_reopen() {
        let rects = sample_rects(300);
        let tree = BulkLoader::nearest_x(10).load(&rects);
        let mut store = MemStore::new();
        {
            let disk = DiskRTree::create(&mut store, &tree, 10, LruPolicy::new()).unwrap();
            assert_eq!(disk.meta().items, 300);
        }
        let mut disk = DiskRTree::open(&mut store, 10, LruPolicy::new()).unwrap();
        assert_eq!(disk.meta().items, 300);
        assert_eq!(disk.meta().nodes, tree.node_count() as u64);
        let mut a = disk.query(&Rect::new(0.0, 0.0, 1.0, 1.0)).unwrap();
        a.sort_unstable();
        assert_eq!(a.len(), 300);
    }

    #[test]
    fn pages_per_level_matches_tree() {
        let (disk, tree, _) = disk_tree(500, 10, 10);
        let stats = tree.stats();
        let expect: Vec<u64> = stats.nodes_per_level().iter().map(|&n| n as u64).collect();
        assert_eq!(disk.pages_per_level(), expect);
    }

    #[test]
    fn pinning_top_levels_avoids_rereads() {
        let (mut disk, _, _) = disk_tree(2_000, 10, 30);
        disk.pin_top_levels(2).unwrap();
        disk.reset_counters();
        // A point query through pinned levels only pays for the leaves (and
        // unpinned internal levels).
        let (_, reads) = disk
            .query_counting(&Rect::point(Point::new(0.4, 0.4)))
            .unwrap();
        let height = disk.meta().height as u64;
        assert!(
            reads <= height,
            "at most one unpinned page per level expected, got {reads}"
        );
    }

    #[test]
    fn simd_and_scalar_queries_agree_with_equal_io() {
        // Same data, two trees: v3 (SoA) queried through the SIMD path and
        // v2 (AoS) queried through the verbatim seed path — results and
        // physical reads must be identical.
        let rects = sample_rects(800);
        let tree = BulkLoader::hilbert(12).load(&rects);
        let mut v3 = DiskRTree::create(MemStore::new(), &tree, 40, LruPolicy::new()).unwrap();
        let mut v2 = DiskRTree::create_with_layout(
            MemStore::new(),
            &tree,
            40,
            LruPolicy::new(),
            PageLayout::Aos,
        )
        .unwrap();
        for q in [
            Rect::new(0.1, 0.1, 0.4, 0.3),
            Rect::new(0.0, 0.0, 1.0, 1.0),
            Rect::point(Point::new(0.5, 0.5)),
            Rect::new(0.99, 0.99, 1.0, 1.0),
        ] {
            assert_eq!(v3.query(&q).unwrap(), v2.query_scalar(&q).unwrap(), "{q}");
            assert_eq!(v3.physical_reads(), v2.physical_reads(), "{q}");
        }
        // Both paths decode both layouts: cross them.
        assert_eq!(
            v3.query_scalar(&Rect::new(0.2, 0.2, 0.6, 0.6)).unwrap(),
            v2.query(&Rect::new(0.2, 0.2, 0.6, 0.6)).unwrap()
        );
    }

    #[test]
    fn point_query_matches_degenerate_rect_query() {
        let (mut disk, tree, _) = disk_tree(600, 10, 50);
        for p in [Point::new(0.3, 0.3), Point::new(0.77, 0.12)] {
            let mut by_point = disk.query_point(&p).unwrap();
            let mut by_rect = tree.search(&Rect::point(p));
            by_point.sort_unstable();
            by_rect.sort_unstable();
            assert_eq!(by_point, by_rect);
        }
    }

    #[test]
    fn disk_knn_matches_in_memory_knn() {
        let (mut disk, tree, _) = disk_tree(700, 10, 60);
        for (p, k) in [
            (Point::new(0.5, 0.5), 10),
            (Point::new(0.0, 0.0), 1),
            (Point::new(0.9, 0.1), 25),
            (Point::new(0.4, 0.6), 700),  // whole tree
            (Point::new(0.4, 0.6), 2000), // more than the tree holds
        ] {
            let got = disk.nearest_neighbors(&p, k).unwrap();
            let want = tree.nearest_neighbors(&p, k);
            assert_eq!(got.len(), want.len(), "k={k}");
            // Distances must agree exactly; ids may differ within a
            // distance tie, so compare (distance, id) multisets.
            let mut g: Vec<(u64, u64)> = got.iter().map(|n| (n.distance.to_bits(), n.id)).collect();
            let mut w: Vec<(u64, u64)> =
                want.iter().map(|n| (n.distance.to_bits(), n.id)).collect();
            g.sort_unstable();
            w.sort_unstable();
            // Tied tails may legitimately pick different members; compare
            // the distance sequence always, and ids where distances are
            // unique.
            assert_eq!(
                g.iter().map(|e| e.0).collect::<Vec<_>>(),
                w.iter().map(|e| e.0).collect::<Vec<_>>(),
                "distance sequence, k={k}"
            );
        }
        assert!(disk
            .nearest_neighbors(&Point::new(0.5, 0.5), 0)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn query_missing_root_region_costs_nothing() {
        let (mut disk, _, _) = disk_tree(200, 10, 10);
        disk.reset_counters();
        let (hits, reads) = disk
            .query_counting(&Rect::new(0.995, 0.995, 1.0, 1.0))
            .unwrap();
        // This corner is outside every MBR for our generator.
        assert!(hits.is_empty());
        assert_eq!(reads, 0, "root miss must not charge the buffer");
    }
}
