//! Conservative per-page MBR quantization — the codec behind the Packed
//! (format v4) node-page layout.
//!
//! A Packed page stores one full-precision *frame* rectangle (the bounding
//! rectangle of everything on the page) and each entry rectangle as four
//! 16-bit codes relative to that frame. The decode mapping lives in
//! [`rtree_geom::quant`]; this module owns the encode side and its
//! **conservative-rounding guarantee**:
//!
//! > For every rectangle `r` inside the frame, `decode(encode(r)) ⊇ r`,
//! > and each edge moves outward by at most one quantum.
//!
//! Low edges round *down* (largest code decoding at-or-below the true
//! coordinate), high edges round *up* (smallest code decoding at-or-above).
//! Because the float estimate `(v − base) / quantum` can land a step off
//! the true grid cell, the encoder verifies candidate codes against the
//! actual decode mapping in a small window around the estimate instead of
//! trusting the division — soundness comes from the check, not the
//! arithmetic. Code 0 (= `base`) and code [`QMAX`] (= `top`) are always
//! sound fallbacks, so containment holds unconditionally.
//!
//! Only *internal* pages are quantized: a decoded routing rectangle that
//! contains the true child MBR can cause an extra descent (a false
//! positive) but never a missed one, and leaf pages keep exact `f64`
//! coordinates, so query result sets and kNN distances are exactly those
//! of the uncompressed tree — the "leaf refine step" is the ordinary exact
//! leaf-level test.

use rtree_geom::quant::{dequant, quantum, QMAX};
use rtree_geom::{Point, Rect};

/// A rectangle quantized against a page frame: four 16-bit edge codes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QRect {
    /// Low-x code (rounds down).
    pub lo_x: u16,
    /// Low-y code (rounds down).
    pub lo_y: u16,
    /// High-x code (rounds up).
    pub hi_x: u16,
    /// High-y code (rounds up).
    pub hi_y: u16,
}

/// Encoder/decoder for one page's frame rectangle.
#[derive(Clone, Copy, Debug)]
pub struct Quantizer {
    frame: Rect,
    qx: f64,
    qy: f64,
}

impl Quantizer {
    /// Builds a quantizer over `frame`.
    ///
    /// # Panics
    /// Panics if the frame is not a valid rectangle (finite, `lo <= hi`) —
    /// the encoder computes frames as unions of valid entry rectangles, so
    /// an invalid frame is a programming error, not a data error.
    pub fn new(frame: Rect) -> Self {
        assert!(frame.is_valid(), "quantizer frame must be a valid rect");
        Quantizer {
            frame,
            qx: quantum(frame.lo.x, frame.hi.x),
            qy: quantum(frame.lo.y, frame.hi.y),
        }
    }

    /// The frame rectangle.
    pub fn frame(&self) -> Rect {
        self.frame
    }

    /// Grid step along x (0 for a degenerate axis).
    pub fn quantum_x(&self) -> f64 {
        self.qx
    }

    /// Grid step along y (0 for a degenerate axis).
    pub fn quantum_y(&self) -> f64 {
        self.qy
    }

    /// Encodes `r` conservatively. Coordinates are clamped into the frame
    /// first, so even a rectangle poking outside it encodes to something
    /// sound for the clamped portion.
    pub fn encode(&self, r: &Rect) -> QRect {
        let f = &self.frame;
        QRect {
            lo_x: code_lo(r.lo.x.clamp(f.lo.x, f.hi.x), f.lo.x, self.qx, f.hi.x),
            lo_y: code_lo(r.lo.y.clamp(f.lo.y, f.hi.y), f.lo.y, self.qy, f.hi.y),
            hi_x: code_hi(r.hi.x.clamp(f.lo.x, f.hi.x), f.lo.x, self.qx, f.hi.x),
            hi_y: code_hi(r.hi.y.clamp(f.lo.y, f.hi.y), f.lo.y, self.qy, f.hi.y),
        }
    }

    /// Decodes a quantized rectangle. Inverse of [`Quantizer::encode`] up
    /// to the conservative expansion; always a valid rectangle when
    /// `lo_* <= hi_*` (the decode-time invariant Packed pages enforce).
    pub fn decode(&self, q: &QRect) -> Rect {
        let f = &self.frame;
        Rect {
            lo: Point::new(
                dequant(q.lo_x, f.lo.x, self.qx, f.hi.x),
                dequant(q.lo_y, f.lo.y, self.qy, f.hi.y),
            ),
            hi: Point::new(
                dequant(q.hi_x, f.lo.x, self.qx, f.hi.x),
                dequant(q.hi_y, f.lo.y, self.qy, f.hi.y),
            ),
        }
    }
}

/// Largest code whose decoded value sits at or below `v` (a low edge).
/// Candidates within ±2 of the float estimate are checked against the real
/// decode mapping; code 0 decodes to exactly `base <= v` and is the
/// unconditional fallback.
fn code_lo(v: f64, base: f64, q: f64, top: f64) -> u16 {
    if q == 0.0 {
        return 0;
    }
    let est = ((v - base) / q).floor().clamp(0.0, QMAX as f64);
    let c0 = est as u16;
    let high = c0.saturating_add(2);
    let low = c0.saturating_sub(2);
    let mut c = high;
    loop {
        if dequant(c, base, q, top) <= v {
            return c;
        }
        if c == low {
            return 0;
        }
        c -= 1;
    }
}

/// Smallest code whose decoded value sits at or above `v` (a high edge).
/// Mirror image of [`code_lo`]; code [`QMAX`] decodes to exactly
/// `top >= v` and is the unconditional fallback.
fn code_hi(v: f64, base: f64, q: f64, top: f64) -> u16 {
    if q == 0.0 {
        return 0;
    }
    let est = ((v - base) / q).ceil().clamp(0.0, QMAX as f64);
    let c0 = est as u16;
    let high = c0.saturating_add(2);
    let low = c0.saturating_sub(2);
    let mut c = low;
    loop {
        if dequant(c, base, q, top) >= v {
            return c;
        }
        if c == high {
            return QMAX;
        }
        c += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn contains(outer: &Rect, inner: &Rect) -> bool {
        outer.lo.x <= inner.lo.x
            && outer.lo.y <= inner.lo.y
            && outer.hi.x >= inner.hi.x
            && outer.hi.y >= inner.hi.y
    }

    #[test]
    fn round_trip_contains_original() {
        let frame = Rect::new(0.0, 0.0, 1.0, 1.0);
        let qz = Quantizer::new(frame);
        for i in 0..500u64 {
            let x = (i as f64 * 0.618_033) % 0.9;
            let y = (i as f64 * 0.414_213) % 0.9;
            let r = Rect::new(x, y, x + 0.05, y + 0.07);
            let back = qz.decode(&qz.encode(&r));
            assert!(contains(&back, &r), "i={i}: {back:?} must contain {r:?}");
            assert!(back.is_valid());
        }
    }

    #[test]
    fn expansion_is_at_most_one_quantum_per_edge() {
        let frame = Rect::new(-2.0, 3.0, 5.0, 4.5);
        let qz = Quantizer::new(frame);
        let slack_x = qz.quantum_x() * (1.0 + 1e-9);
        let slack_y = qz.quantum_y() * (1.0 + 1e-9);
        for i in 0..300u64 {
            let x = -2.0 + (i as f64 * 0.037) % 6.5;
            let y = 3.0 + (i as f64 * 0.0041) % 1.3;
            let r = Rect::new(x, y, (x + 0.2).min(5.0), (y + 0.1).min(4.5));
            let back = qz.decode(&qz.encode(&r));
            assert!(r.lo.x - back.lo.x <= slack_x, "lo.x i={i}");
            assert!(r.lo.y - back.lo.y <= slack_y, "lo.y i={i}");
            assert!(back.hi.x - r.hi.x <= slack_x, "hi.x i={i}");
            assert!(back.hi.y - r.hi.y <= slack_y, "hi.y i={i}");
        }
    }

    #[test]
    fn frame_corners_encode_exactly() {
        let frame = Rect::new(0.25, 0.5, 0.75, 0.875);
        let qz = Quantizer::new(frame);
        let back = qz.decode(&qz.encode(&frame));
        assert_eq!(back, frame, "the frame itself round-trips bit-exactly");
    }

    #[test]
    fn degenerate_frame_axis_is_lossless() {
        // Zero-extent y axis: quantum 0, every code decodes to the base.
        let frame = Rect::new(0.1, 0.4, 0.9, 0.4);
        let qz = Quantizer::new(frame);
        assert_eq!(qz.quantum_y(), 0.0);
        let r = Rect::new(0.2, 0.4, 0.3, 0.4);
        let back = qz.decode(&qz.encode(&r));
        assert!(contains(&back, &r));
        assert_eq!(back.lo.y, 0.4);
        assert_eq!(back.hi.y, 0.4);
    }

    #[test]
    #[should_panic(expected = "valid rect")]
    fn invalid_frame_is_rejected() {
        Quantizer::new(Rect {
            lo: Point::new(1.0, 0.0),
            hi: Point::new(0.0, 1.0),
        });
    }
}
