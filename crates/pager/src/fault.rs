//! Fault injection for the page store: torn writes, short appends, read
//! errors, and whole-process crash simulation coordinated with the WAL
//! through a shared [`CrashSwitch`].

use crate::store::SharedPageStore;
use crate::{PageStore, PAGE_SIZE};
use rtree_buffer::PageId;
use rtree_wal::CrashSwitch;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};

/// A [`PageStore`] wrapper that injects storage faults.
///
/// Fault triggers are counted per operation kind (1-based). When a trigger
/// fires, the shared [`CrashSwitch`] trips, and from then on *every* mutating
/// operation on this store — and on any [`rtree_wal::FaultLog`] sharing the
/// switch — fails, modelling a process crash rather than one flaky sector.
/// Reads stay allowed after the crash so recovery can inspect the surviving
/// bytes.
pub struct FaultStore<S: PageStore> {
    inner: S,
    switch: CrashSwitch,
    /// Crash on the n-th `write_page` (1-based).
    crash_at_write: Option<u64>,
    /// On the crashing write, persist only the first half of the page.
    torn_write: bool,
    /// Crash on the n-th `allocate` (1-based) — the "short append".
    crash_at_allocate: Option<u64>,
    /// Fail the n-th `read_page` (1-based) with an I/O error, *without*
    /// tripping the switch (a transient read fault, not a crash).
    fail_read_at: Option<u64>,
    writes: u64,
    allocates: u64,
    /// Atomic so shared (`&self`) reads count too — the concurrent tree
    /// reads through [`SharedPageStore`], and a read-fault trigger must
    /// fire at the same global read ordinal either way.
    reads: AtomicU64,
}

impl<S: PageStore> FaultStore<S> {
    /// Wraps `inner`; no faults are scheduled until a `*_at` builder is used.
    pub fn new(inner: S, switch: CrashSwitch) -> Self {
        FaultStore {
            inner,
            switch,
            crash_at_write: None,
            torn_write: false,
            crash_at_allocate: None,
            fail_read_at: None,
            writes: 0,
            allocates: 0,
            reads: AtomicU64::new(0),
        }
    }

    /// Crashes on the `n`-th page write; `torn` persists half the page first.
    pub fn crash_at_write(mut self, n: u64, torn: bool) -> Self {
        self.crash_at_write = Some(n);
        self.torn_write = torn;
        self
    }

    /// Crashes on the `n`-th allocation (a short append: the store ends up
    /// without the page the caller thinks it created).
    pub fn crash_at_allocate(mut self, n: u64) -> Self {
        self.crash_at_allocate = Some(n);
        self
    }

    /// Fails the `n`-th read with an I/O error (transient; not a crash).
    pub fn fail_read_at(mut self, n: u64) -> Self {
        self.fail_read_at = Some(n);
        self
    }

    /// The shared crash switch.
    pub fn switch(&self) -> &CrashSwitch {
        &self.switch
    }

    /// Unwraps the inner store (e.g. to recover its surviving contents).
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// The inner store, for post-crash inspection.
    pub fn inner_mut(&mut self) -> &mut S {
        &mut self.inner
    }
}

impl<S: PageStore> FaultStore<S> {
    /// Counts one read and reports whether the read-fault trigger fires on
    /// it (shared with the `SharedPageStore` path).
    fn read_faults(&self) -> bool {
        let n = self.reads.fetch_add(1, Ordering::Relaxed) + 1;
        self.fail_read_at == Some(n)
    }
}

impl<S: PageStore> PageStore for FaultStore<S> {
    fn read_page(&mut self, id: PageId, buf: &mut [u8]) -> io::Result<()> {
        if self.read_faults() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "injected read fault",
            ));
        }
        self.inner.read_page(id, buf)
    }

    fn write_page(&mut self, id: PageId, buf: &[u8]) -> io::Result<()> {
        if self.switch.is_tripped() {
            return Err(CrashSwitch::error());
        }
        self.writes += 1;
        if self.crash_at_write == Some(self.writes) {
            if self.torn_write {
                // Persist the first half of the new image over the old page:
                // exactly what a power cut mid-sector-run leaves behind.
                let mut torn = vec![0u8; PAGE_SIZE];
                self.inner.read_page(id, &mut torn)?;
                torn[..PAGE_SIZE / 2].copy_from_slice(&buf[..PAGE_SIZE / 2]);
                self.inner.write_page(id, &torn)?;
            }
            self.switch.trip();
            return Err(CrashSwitch::error());
        }
        self.inner.write_page(id, buf)
    }

    fn allocate(&mut self) -> io::Result<PageId> {
        if self.switch.is_tripped() {
            return Err(CrashSwitch::error());
        }
        self.allocates += 1;
        if self.crash_at_allocate == Some(self.allocates) {
            self.switch.trip();
            return Err(CrashSwitch::error());
        }
        self.inner.allocate()
    }

    fn page_count(&self) -> u64 {
        self.inner.page_count()
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.switch.is_tripped() {
            return Err(CrashSwitch::error());
        }
        self.inner.flush()
    }
}

impl<S: SharedPageStore> SharedPageStore for FaultStore<S> {
    /// Shared reads go through the same fault counter as exclusive reads,
    /// so the chaos harness can aim a transient read fault at the
    /// concurrent tree too. Like exclusive reads, they stay allowed after
    /// a crash (recovery must be able to inspect the surviving bytes).
    fn read_page_shared(&self, id: PageId, buf: &mut [u8]) -> io::Result<()> {
        if self.read_faults() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "injected read fault",
            ));
        }
        self.inner.read_page_shared(id, buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemStore;

    fn page(fill: u8) -> Vec<u8> {
        vec![fill; PAGE_SIZE]
    }

    #[test]
    fn torn_write_leaves_half_old_half_new() {
        let mut store = MemStore::new();
        let id = store.allocate().unwrap();
        store.write_page(id, &page(0xAA)).unwrap();

        let switch = CrashSwitch::new();
        let mut faulty = FaultStore::new(store, switch.clone()).crash_at_write(1, true);
        assert!(faulty.write_page(id, &page(0xBB)).is_err());
        assert!(switch.is_tripped());

        let mut out = page(0);
        let mut inner = faulty.into_inner();
        inner.read_page(id, &mut out).unwrap();
        assert!(out[..PAGE_SIZE / 2].iter().all(|&b| b == 0xBB));
        assert!(out[PAGE_SIZE / 2..].iter().all(|&b| b == 0xAA));
    }

    #[test]
    fn crash_blocks_all_later_mutations_but_not_reads() {
        let mut store = MemStore::new();
        let id = store.allocate().unwrap();
        store.write_page(id, &page(1)).unwrap();

        let switch = CrashSwitch::new();
        let mut faulty = FaultStore::new(store, switch.clone()).crash_at_write(1, false);
        assert!(faulty.write_page(id, &page(2)).is_err());
        assert!(faulty.write_page(id, &page(3)).is_err());
        assert!(faulty.allocate().is_err());
        assert!(faulty.flush().is_err());
        // Reads survive: recovery must be able to look at the store.
        let mut out = page(0);
        faulty.read_page(id, &mut out).unwrap();
        assert_eq!(out[0], 1, "untorn crash leaves the old image");
    }

    #[test]
    fn short_append_crashes_on_allocate() {
        let switch = CrashSwitch::new();
        let mut faulty = FaultStore::new(MemStore::new(), switch.clone()).crash_at_allocate(2);
        faulty.allocate().unwrap();
        assert!(faulty.allocate().is_err());
        assert_eq!(faulty.page_count(), 1, "second page never materialized");
        assert!(switch.is_tripped());
    }

    #[test]
    fn read_fault_is_transient() {
        let mut store = MemStore::new();
        let id = store.allocate().unwrap();
        store.write_page(id, &page(9)).unwrap();

        let switch = CrashSwitch::new();
        let mut faulty = FaultStore::new(store, switch.clone()).fail_read_at(1);
        let mut out = page(0);
        assert!(faulty.read_page(id, &mut out).is_err());
        assert!(!switch.is_tripped(), "a read fault is not a crash");
        faulty.read_page(id, &mut out).unwrap();
        assert_eq!(out[0], 9);
        faulty.write_page(id, &page(7)).unwrap();
    }

    #[test]
    fn external_trip_fails_this_store_too() {
        let switch = CrashSwitch::new();
        let mut faulty = FaultStore::new(MemStore::new(), switch.clone());
        faulty.allocate().unwrap();
        switch.trip();
        assert!(faulty.allocate().is_err());
    }
}
