//! Page stores: where pages physically live.

use crate::PAGE_SIZE;
use rtree_buffer::PageId;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{PoisonError, RwLock};

/// Backing storage addressed in whole pages.
pub trait PageStore {
    /// Reads page `id` into `buf` (`buf.len() == PAGE_SIZE`).
    fn read_page(&mut self, id: PageId, buf: &mut [u8]) -> io::Result<()>;
    /// Writes page `id` from `buf`.
    fn write_page(&mut self, id: PageId, buf: &[u8]) -> io::Result<()>;
    /// Appends a zeroed page and returns its id.
    fn allocate(&mut self) -> io::Result<PageId>;
    /// Number of allocated pages.
    fn page_count(&self) -> u64;
    /// Durability barrier: all writes so far survive a crash. In-memory
    /// stores are trivially durable and may no-op.
    fn flush(&mut self) -> io::Result<()>;
}

/// Page stores whose reads are safe from many threads at once (`&self`).
///
/// The sharded [`crate::ConcurrentDiskRTree`] keeps its shard latches
/// disjoint; this trait keeps the *store* off the critical path too, so a
/// miss in one shard never serializes against a miss in another. A shared
/// read must return the page as of some completed write — trivial here
/// because the concurrent tree never writes after materialization.
pub trait SharedPageStore: PageStore {
    /// Reads page `id` into `buf` (`buf.len() == PAGE_SIZE`) without
    /// exclusive access to the store.
    fn read_page_shared(&self, id: PageId, buf: &mut [u8]) -> io::Result<()>;
}

impl<S: SharedPageStore + ?Sized> SharedPageStore for &mut S {
    fn read_page_shared(&self, id: PageId, buf: &mut [u8]) -> io::Result<()> {
        (**self).read_page_shared(id, buf)
    }
}

/// Page stores that additionally accept *writes and allocations* from many
/// threads at once (`&self`) — the substrate the concurrent tree's writer
/// mode needs. Callers serialize conflicting writes to the *same* page
/// themselves (the tree does so with per-page latches); the store only has
/// to keep distinct pages independent and each page write atomic with
/// respect to shared reads of that page.
pub trait ConcurrentPageStore: SharedPageStore + Sync {
    /// Writes page `id` from `buf` without exclusive access to the store.
    fn write_page_shared(&self, id: PageId, buf: &[u8]) -> io::Result<()>;
    /// Appends a zeroed page and returns its id, without exclusive access.
    fn allocate_shared(&self) -> io::Result<PageId>;
    /// Durability barrier without exclusive access.
    fn flush_shared(&self) -> io::Result<()>;
}

impl<S: PageStore + ?Sized> PageStore for &mut S {
    fn read_page(&mut self, id: PageId, buf: &mut [u8]) -> io::Result<()> {
        (**self).read_page(id, buf)
    }
    fn write_page(&mut self, id: PageId, buf: &[u8]) -> io::Result<()> {
        (**self).write_page(id, buf)
    }
    fn allocate(&mut self) -> io::Result<PageId> {
        (**self).allocate()
    }
    fn page_count(&self) -> u64 {
        (**self).page_count()
    }
    fn flush(&mut self) -> io::Result<()> {
        (**self).flush()
    }
}

/// In-memory page store (the default substrate for simulations: the point
/// of the study is *counting* accesses, not waiting for a spindle).
#[derive(Default)]
pub struct MemStore {
    data: Vec<u8>,
}

impl MemStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        MemStore::default()
    }

    fn check(&self, id: PageId) -> io::Result<usize> {
        let off = (id.0 as usize) * PAGE_SIZE;
        if off + PAGE_SIZE > self.data.len() {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!("page {} out of bounds", id.0),
            ));
        }
        Ok(off)
    }
}

impl PageStore for MemStore {
    fn read_page(&mut self, id: PageId, buf: &mut [u8]) -> io::Result<()> {
        assert_eq!(buf.len(), PAGE_SIZE);
        let off = self.check(id)?;
        buf.copy_from_slice(&self.data[off..off + PAGE_SIZE]);
        Ok(())
    }

    fn write_page(&mut self, id: PageId, buf: &[u8]) -> io::Result<()> {
        assert_eq!(buf.len(), PAGE_SIZE);
        let off = self.check(id)?;
        self.data[off..off + PAGE_SIZE].copy_from_slice(buf);
        Ok(())
    }

    fn allocate(&mut self) -> io::Result<PageId> {
        let id = PageId(self.page_count());
        self.data.resize(self.data.len() + PAGE_SIZE, 0);
        Ok(id)
    }

    fn page_count(&self) -> u64 {
        (self.data.len() / PAGE_SIZE) as u64
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl SharedPageStore for MemStore {
    fn read_page_shared(&self, id: PageId, buf: &mut [u8]) -> io::Result<()> {
        assert_eq!(buf.len(), PAGE_SIZE);
        let off = self.check(id)?;
        buf.copy_from_slice(&self.data[off..off + PAGE_SIZE]);
        Ok(())
    }
}

/// In-memory page store behind a reader-writer lock: the same byte image as
/// [`MemStore`], but with the shared read *and write* paths the concurrent
/// tree's writer mode needs. Distinct pages proceed in parallel up to the
/// lock's reader-side concurrency; a page write takes the write lock, so a
/// shared read always sees a whole page image.
#[derive(Default)]
pub struct SharedMemStore {
    data: RwLock<Vec<u8>>,
}

impl SharedMemStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        SharedMemStore::default()
    }

    /// Rebuilds a store from a byte image previously taken with
    /// [`SharedMemStore::snapshot`] (chaos durability oracles replay
    /// recovery against such base images).
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        SharedMemStore {
            data: RwLock::new(bytes),
        }
    }

    /// A byte-for-byte copy of the current image.
    pub fn snapshot(&self) -> Vec<u8> {
        self.read().clone()
    }

    fn read(&self) -> std::sync::RwLockReadGuard<'_, Vec<u8>> {
        self.data.read().unwrap_or_else(PoisonError::into_inner)
    }

    fn write(&self) -> std::sync::RwLockWriteGuard<'_, Vec<u8>> {
        self.data.write().unwrap_or_else(PoisonError::into_inner)
    }

    fn offset(data: &[u8], id: PageId) -> io::Result<usize> {
        let off = (id.0 as usize) * PAGE_SIZE;
        if off + PAGE_SIZE > data.len() {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!("page {} out of bounds", id.0),
            ));
        }
        Ok(off)
    }
}

impl PageStore for SharedMemStore {
    fn read_page(&mut self, id: PageId, buf: &mut [u8]) -> io::Result<()> {
        self.read_page_shared(id, buf)
    }

    fn write_page(&mut self, id: PageId, buf: &[u8]) -> io::Result<()> {
        self.write_page_shared(id, buf)
    }

    fn allocate(&mut self) -> io::Result<PageId> {
        self.allocate_shared()
    }

    fn page_count(&self) -> u64 {
        (self.read().len() / PAGE_SIZE) as u64
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl SharedPageStore for SharedMemStore {
    fn read_page_shared(&self, id: PageId, buf: &mut [u8]) -> io::Result<()> {
        assert_eq!(buf.len(), PAGE_SIZE);
        let data = self.read();
        let off = Self::offset(&data, id)?;
        buf.copy_from_slice(&data[off..off + PAGE_SIZE]);
        Ok(())
    }
}

impl ConcurrentPageStore for SharedMemStore {
    fn write_page_shared(&self, id: PageId, buf: &[u8]) -> io::Result<()> {
        assert_eq!(buf.len(), PAGE_SIZE);
        let mut data = self.write();
        let off = Self::offset(&data, id)?;
        data[off..off + PAGE_SIZE].copy_from_slice(buf);
        Ok(())
    }

    fn allocate_shared(&self) -> io::Result<PageId> {
        let mut data = self.write();
        let id = PageId((data.len() / PAGE_SIZE) as u64);
        let new_len = data.len() + PAGE_SIZE;
        data.resize(new_len, 0);
        Ok(id)
    }

    fn flush_shared(&self) -> io::Result<()> {
        Ok(())
    }
}

/// File-backed page store. The page count is atomic so allocation and
/// bounds checks work from the shared (`&self`) paths too.
pub struct FileStore {
    file: File,
    pages: AtomicU64,
}

impl FileStore {
    /// Creates (truncating) a page file.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(FileStore {
            file,
            pages: AtomicU64::new(0),
        })
    }

    /// Opens an existing page file.
    pub fn open(path: impl AsRef<Path>) -> io::Result<Self> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len();
        if len % PAGE_SIZE as u64 != 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "file length is not a multiple of the page size",
            ));
        }
        Ok(FileStore {
            file,
            pages: AtomicU64::new(len / PAGE_SIZE as u64),
        })
    }

    fn check(&self, id: PageId) -> io::Result<u64> {
        if id.0 >= self.pages.load(Ordering::Acquire) {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!("page {} out of bounds", id.0),
            ));
        }
        Ok(id.0 * PAGE_SIZE as u64)
    }

    fn seek_to(&mut self, id: PageId) -> io::Result<()> {
        let off = self.check(id)?;
        self.file.seek(SeekFrom::Start(off)).map(|_| ())
    }

    /// Positional write (`pwrite`/`seek_write`): shares the file without
    /// touching the descriptor's seek cursor.
    fn write_at(&self, buf: &[u8], off: u64) -> io::Result<()> {
        #[cfg(unix)]
        {
            use std::os::unix::fs::FileExt;
            self.file.write_all_at(buf, off)
        }
        #[cfg(windows)]
        {
            use std::os::windows::fs::FileExt;
            let mut done = 0usize;
            while done < buf.len() {
                let n = self.file.seek_write(&buf[done..], off + done as u64)?;
                if n == 0 {
                    return Err(io::ErrorKind::WriteZero.into());
                }
                done += n;
            }
            Ok(())
        }
        #[cfg(not(any(unix, windows)))]
        {
            let _ = (buf, off);
            Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "no positional write primitive on this platform",
            ))
        }
    }
}

impl PageStore for FileStore {
    fn read_page(&mut self, id: PageId, buf: &mut [u8]) -> io::Result<()> {
        assert_eq!(buf.len(), PAGE_SIZE);
        self.seek_to(id)?;
        self.file.read_exact(buf)
    }

    fn write_page(&mut self, id: PageId, buf: &[u8]) -> io::Result<()> {
        assert_eq!(buf.len(), PAGE_SIZE);
        self.seek_to(id)?;
        self.file.write_all(buf)
    }

    fn allocate(&mut self) -> io::Result<PageId> {
        self.allocate_shared()
    }

    fn page_count(&self) -> u64 {
        self.pages.load(Ordering::Acquire)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }
}

impl ConcurrentPageStore for FileStore {
    fn write_page_shared(&self, id: PageId, buf: &[u8]) -> io::Result<()> {
        assert_eq!(buf.len(), PAGE_SIZE);
        let off = self.check(id)?;
        self.write_at(buf, off)
    }

    fn allocate_shared(&self) -> io::Result<PageId> {
        // Reserve the slot first so concurrent allocations never collide,
        // then extend the file by writing the zero page at its offset.
        let id = self.pages.fetch_add(1, Ordering::AcqRel);
        self.write_at(&[0u8; PAGE_SIZE], id * PAGE_SIZE as u64)?;
        Ok(PageId(id))
    }

    fn flush_shared(&self) -> io::Result<()> {
        self.file.sync_data()
    }
}

impl SharedPageStore for FileStore {
    /// Positional reads (`pread`/`seek_read`) share the file without
    /// touching the descriptor's seek cursor, so concurrent shard misses
    /// read in parallel.
    fn read_page_shared(&self, id: PageId, buf: &mut [u8]) -> io::Result<()> {
        assert_eq!(buf.len(), PAGE_SIZE);
        let off = self.check(id)?;
        #[cfg(unix)]
        {
            use std::os::unix::fs::FileExt;
            self.file.read_exact_at(buf, off)
        }
        #[cfg(windows)]
        {
            use std::os::windows::fs::FileExt;
            let mut done = 0usize;
            while done < buf.len() {
                let n = self.file.seek_read(&mut buf[done..], off + done as u64)?;
                if n == 0 {
                    return Err(io::ErrorKind::UnexpectedEof.into());
                }
                done += n;
            }
            Ok(())
        }
        #[cfg(not(any(unix, windows)))]
        {
            let _ = off;
            Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "no positional read primitive on this platform",
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(store: &mut dyn PageStore) {
        let a = store.allocate().unwrap();
        let b = store.allocate().unwrap();
        assert_eq!(store.page_count(), 2);
        let mut page = vec![0u8; PAGE_SIZE];
        page[0] = 0xAA;
        page[PAGE_SIZE - 1] = 0xBB;
        store.write_page(b, &page).unwrap();
        let mut out = vec![0u8; PAGE_SIZE];
        store.read_page(b, &mut out).unwrap();
        assert_eq!(out, page);
        // Page `a` stays zeroed.
        store.read_page(a, &mut out).unwrap();
        assert!(out.iter().all(|&x| x == 0));
        // Out-of-bounds access errors.
        assert!(store.read_page(PageId(99), &mut out).is_err());
        assert!(store.write_page(PageId(99), &page).is_err());
        // The durability barrier is callable on every store.
        store.flush().unwrap();
    }

    #[test]
    fn mem_store_round_trip() {
        exercise(&mut MemStore::new());
    }

    #[test]
    fn file_store_round_trip_and_reopen() {
        let dir = std::env::temp_dir().join(format!("rtree-pager-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.pages");
        {
            let mut fs = FileStore::create(&path).unwrap();
            exercise(&mut fs);
        }
        {
            let mut fs = FileStore::open(&path).unwrap();
            assert_eq!(fs.page_count(), 2);
            let mut out = vec![0u8; PAGE_SIZE];
            fs.read_page(PageId(1), &mut out).unwrap();
            assert_eq!(out[0], 0xAA);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn shared_reads_match_exclusive_reads() {
        let dir = std::env::temp_dir().join(format!("rtree-pager-shared-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.pages");

        let mut mem = MemStore::new();
        let mut file = FileStore::create(&path).unwrap();
        for store in [&mut mem as &mut dyn PageStore, &mut file] {
            for i in 0..3u8 {
                let id = store.allocate().unwrap();
                let mut page = vec![0u8; PAGE_SIZE];
                page[0] = i;
                store.write_page(id, &page).unwrap();
            }
        }
        let mut buf = vec![0u8; PAGE_SIZE];
        for store in [&mem as &dyn SharedPageStore, &file] {
            for i in 0..3u64 {
                store.read_page_shared(PageId(i), &mut buf).unwrap();
                assert_eq!(buf[0], i as u8);
            }
            assert!(store.read_page_shared(PageId(9), &mut buf).is_err());
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_rejects_ragged_file() {
        let dir = std::env::temp_dir().join(format!("rtree-pager-rag-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ragged.pages");
        std::fs::write(&path, [0u8; 100]).unwrap();
        assert!(FileStore::open(&path).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn shared_mem_store_round_trip_and_snapshot() {
        let mut store = SharedMemStore::new();
        exercise(&mut store);
        assert_eq!(store.page_count(), 2);

        // Shared writes are visible to shared reads.
        let mut page = vec![0u8; PAGE_SIZE];
        page[7] = 0x5A;
        store.write_page_shared(PageId(0), &page).unwrap();
        let mut out = vec![0u8; PAGE_SIZE];
        store.read_page_shared(PageId(0), &mut out).unwrap();
        assert_eq!(out[7], 0x5A);
        assert!(store.write_page_shared(PageId(9), &page).is_err());

        // A snapshot rebuilds an identical store.
        let copy = SharedMemStore::from_bytes(store.snapshot());
        copy.read_page_shared(PageId(0), &mut out).unwrap();
        assert_eq!(out[7], 0x5A);
        assert_eq!(copy.page_count(), 2);
    }

    #[test]
    fn concurrent_shared_allocations_get_unique_pages() {
        let dir = std::env::temp_dir().join(format!("rtree-pager-calloc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.pages");
        let file = FileStore::create(&path).unwrap();
        let mem = SharedMemStore::new();

        for store in [&file as &(dyn ConcurrentPageStore + Send + Sync), &mem] {
            let ids: Vec<u64> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..4)
                    .map(|t| {
                        s.spawn(move || {
                            let mut mine = Vec::new();
                            for _ in 0..8 {
                                let id = store.allocate_shared().unwrap();
                                let mut page = vec![0u8; PAGE_SIZE];
                                page[0] = t as u8 + 1;
                                store.write_page_shared(id, &page).unwrap();
                                mine.push(id.0);
                            }
                            mine
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().unwrap())
                    .collect()
            });
            let mut sorted = ids.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 32, "allocations must not collide");
            assert_eq!(store.page_count(), 32);
            // Every page carries exactly the byte its writer put there.
            let mut buf = vec![0u8; PAGE_SIZE];
            for id in ids {
                store.read_page_shared(PageId(id), &mut buf).unwrap();
                assert!((1..=4).contains(&buf[0]));
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
