//! Physical page storage for R-trees: page format, page stores, a buffer
//! manager, and disk-backed query execution.
//!
//! The paper's whole argument is that *disk accesses*, not nodes visited,
//! determine query cost. This crate closes the loop physically: tree nodes
//! are serialized one-per-page (the paper assumes "exactly one node fits
//! per page"), queries run against a [`DiskRTree`] through a
//! [`BufferManager`], and the manager counts real page reads — giving an
//! end-to-end measurement the analytic model and the trace simulation can
//! be checked against (`validate_disk` experiment).
//!
//! Pages are 4 KiB with an explicit little-endian layout (40-byte entries:
//! a rectangle and a pointer, exactly Guttman's node entry). A 4 KiB page
//! holds up to 102 entries, comfortably above the paper's largest node
//! capacity of 100. Every page carries a CRC-32; decoding validates it and
//! returns a typed [`PageError`] on corruption.
//!
//! The substrate is also *writable*: [`DiskRTree::insert`] and
//! [`DiskRTree::delete`] run Guttman's insert and condense-tree through the
//! buffer manager's write-back path, with an attached [`rtree_wal::Wal`]
//! logging full page images so [`recover`] can replay a crashed tree back to
//! its last committed state. [`FaultStore`] injects torn writes, short
//! appends and read faults to exercise exactly that path.

mod bufmgr;
mod compress;
mod concurrent;
mod disk_tree;
mod fault;
mod latch;
mod mutate;
mod page;
mod recovery;
mod sched;
mod store;

pub use bufmgr::{BufferManager, IoStats, PrefetchOutcome};
pub use compress::{QRect, Quantizer};
pub use concurrent::ConcurrentDiskRTree;
pub use disk_tree::DiskRTree;
pub use fault::FaultStore;
pub use page::{
    NodePage, NodeSoA, PageError, PageLayout, PageMeta, MAX_ENTRIES_PACKED, MAX_ENTRIES_PER_PAGE,
    PAGE_SIZE,
};
pub use recovery::{recover, replay_committed, RecoveryReport, ReplaySummary};
pub use sched::{StepSchedule, StepStore};
pub use store::{
    ConcurrentPageStore, FileStore, MemStore, PageStore, SharedMemStore, SharedPageStore,
};
