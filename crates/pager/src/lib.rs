//! Physical page storage for R-trees: page format, page stores, a buffer
//! manager, and disk-backed query execution.
//!
//! The paper's whole argument is that *disk accesses*, not nodes visited,
//! determine query cost. This crate closes the loop physically: tree nodes
//! are serialized one-per-page (the paper assumes "exactly one node fits
//! per page"), queries run against a [`DiskRTree`] through a
//! [`BufferManager`], and the manager counts real page reads — giving an
//! end-to-end measurement the analytic model and the trace simulation can
//! be checked against (`validate_disk` experiment).
//!
//! Pages are 4 KiB with an explicit little-endian layout (40-byte entries:
//! a rectangle and a pointer, exactly Guttman's node entry). A 4 KiB page
//! holds up to 102 entries, comfortably above the paper's largest node
//! capacity of 100.

mod bufmgr;
mod concurrent;
mod disk_tree;
mod page;
mod store;

pub use bufmgr::BufferManager;
pub use concurrent::ConcurrentDiskRTree;
pub use disk_tree::DiskRTree;
pub use page::{NodePage, PageMeta, MAX_ENTRIES_PER_PAGE, PAGE_SIZE};
pub use store::{FileStore, MemStore, PageStore};
