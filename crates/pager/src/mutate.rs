//! Mutable disk-backed R-tree operations: Guttman's insert and
//! condense-tree delete executed page-by-page through the buffer manager.
//!
//! Every page touched by an operation goes through
//! [`crate::BufferManager::write_buffered`], so with a WAL attached
//! ([`crate::DiskRTree::attach_wal`]) the full before/after images are
//! logged and the operation is recoverable: each public call ends with a
//! commit marker, making it a single-op transaction.
//!
//! Mutations abandon the bulk-load level-order page layout; the metadata's
//! level table is cleared on the first insert or delete and the layout-
//! dependent helpers ([`crate::DiskRTree::pages_per_level`],
//! [`crate::DiskRTree::pin_top_levels`]) panic afterwards. Freed pages go on
//! an intrusive free list (head in the meta page, `FREE`-tagged pages
//! chaining to the next) and are reused before the store grows.

use crate::disk_tree::DiskRTree;
use crate::{BufferManager, NodePage, PageMeta, PageStore, MAX_ENTRIES_PER_PAGE, PAGE_SIZE};
use rtree_buffer::{PageId, ReplacementPolicy};
use rtree_geom::Rect;
use std::io;

/// Magic tag at offset 0 of a page on the free list.
const FREE_MAGIC: &[u8; 4] = b"FREE";
/// Byte offset of the next-free-page pointer inside a free page. Offsets
/// 8..12 hold the page CRC (the buffer manager verifies every page at
/// page-in, free pages included), so the pointer sits past it.
const FREE_NEXT_OFFSET: usize = 16;

pub(crate) fn mbr(entries: &[(Rect, u64)]) -> Rect {
    entries
        .iter()
        .skip(1)
        .fold(entries[0].0, |acc, (r, _)| acc.union(r))
}

/// Guttman's ChooseLeaf criterion: least enlargement, ties broken by
/// smaller area, then lower slot.
pub(crate) fn choose_subtree(entries: &[(Rect, u64)], rect: &Rect) -> usize {
    let mut best = 0;
    let mut best_enlargement = f64::INFINITY;
    let mut best_area = f64::INFINITY;
    for (i, (r, _)) in entries.iter().enumerate() {
        let enlargement = r.enlargement(rect);
        let area = r.area();
        if enlargement < best_enlargement || (enlargement == best_enlargement && area < best_area) {
            best = i;
            best_enlargement = enlargement;
            best_area = area;
        }
    }
    best
}

/// A raw page entry: rectangle plus child page id (internal) or item id (leaf).
pub(crate) type PageEntry = (Rect, u64);

/// Guttman's quadratic split over raw page entries.
pub(crate) fn quadratic_split(
    mut entries: Vec<PageEntry>,
    min: usize,
) -> (Vec<PageEntry>, Vec<PageEntry>) {
    debug_assert!(entries.len() >= 2 && entries.len() >= 2 * min);

    // PickSeeds: the pair wasting the most area if grouped together.
    let (mut seed_a, mut seed_b, mut worst) = (0, 1, f64::NEG_INFINITY);
    for i in 0..entries.len() {
        for j in (i + 1)..entries.len() {
            let waste = entries[i].0.union(&entries[j].0).area()
                - entries[i].0.area()
                - entries[j].0.area();
            if waste > worst {
                worst = waste;
                seed_a = i;
                seed_b = j;
            }
        }
    }
    // Remove the higher index first so the lower stays valid.
    let b_seed = entries.swap_remove(seed_b);
    let a_seed = entries.swap_remove(seed_a);
    let mut group_a = vec![a_seed];
    let mut group_b = vec![b_seed];
    let mut rect_a = group_a[0].0;
    let mut rect_b = group_b[0].0;

    while !entries.is_empty() {
        // If one group must absorb everything left to reach the minimum
        // fill, hand the remainder over wholesale.
        let remaining = entries.len();
        if group_a.len() + remaining == min {
            group_a.append(&mut entries);
            break;
        }
        if group_b.len() + remaining == min {
            group_b.append(&mut entries);
            break;
        }

        // PickNext: the entry with the strongest preference.
        let (mut pick, mut pick_diff) = (0, f64::NEG_INFINITY);
        for (i, (r, _)) in entries.iter().enumerate() {
            let d_a = rect_a.enlargement(r);
            let d_b = rect_b.enlargement(r);
            let diff = (d_a - d_b).abs();
            if diff > pick_diff {
                pick_diff = diff;
                pick = i;
            }
        }
        let entry = entries.swap_remove(pick);
        let d_a = rect_a.enlargement(&entry.0);
        let d_b = rect_b.enlargement(&entry.0);
        // Resolve ties by smaller area, then smaller group.
        let to_a = if d_a != d_b {
            d_a < d_b
        } else if rect_a.area() != rect_b.area() {
            rect_a.area() < rect_b.area()
        } else {
            group_a.len() <= group_b.len()
        };
        if to_a {
            rect_a = rect_a.union(&entry.0);
            group_a.push(entry);
        } else {
            rect_b = rect_b.union(&entry.0);
            group_b.push(entry);
        }
    }
    (group_a, group_b)
}

impl<S: PageStore> DiskRTree<S> {
    /// Creates an empty, mutable tree: a meta page and an empty root leaf.
    ///
    /// `min_entries` is Guttman's `m`; it must satisfy
    /// `1 <= m <= max_entries / 2` so a split can always produce two legal
    /// nodes.
    ///
    /// # Panics
    /// Panics if the capacities are out of range.
    pub fn create_empty(
        mut store: S,
        max_entries: usize,
        min_entries: usize,
        buffer_capacity: usize,
        policy: impl ReplacementPolicy + 'static,
    ) -> io::Result<Self> {
        assert!(
            (2..=MAX_ENTRIES_PER_PAGE).contains(&max_entries),
            "node capacity {max_entries} out of range 2..={MAX_ENTRIES_PER_PAGE}"
        );
        assert!(
            min_entries >= 1 && 2 * min_entries <= max_entries,
            "min fill {min_entries} must satisfy 1 <= m <= M/2"
        );
        let meta = PageMeta {
            root: 1,
            height: 1,
            max_entries: max_entries as u32,
            min_entries: min_entries as u32,
            items: 0,
            nodes: 1,
            free_head: 0,
            level_starts: vec![1],
            internal_max_entries: max_entries as u32,
            compressed: false,
        };
        let mut buf = vec![0u8; PAGE_SIZE];
        let meta_page = store.allocate()?;
        debug_assert_eq!(meta_page, PageId(0));
        meta.encode(&mut buf);
        store.write_page(meta_page, &buf)?;
        let root = store.allocate()?;
        NodePage {
            level: 0,
            entries: Vec::new(),
        }
        .encode(&mut buf);
        store.write_page(root, &buf)?;
        Ok(DiskRTree::from_parts(
            BufferManager::new(store, buffer_capacity, policy),
            meta,
        ))
    }

    /// Inserts an item, logging every touched page and committing at the
    /// end. Runs Guttman's ChooseLeaf / QuadraticSplit / AdjustTree over
    /// pages.
    pub fn insert(&mut self, rect: Rect, item: u64) -> io::Result<()> {
        debug_assert!(rect.is_valid(), "inserting an invalid rectangle");
        #[cfg(feature = "trace")]
        {
            self.begin_op();
            let result = self.insert_inner(rect, item);
            self.end_op();
            result
        }
        #[cfg(not(feature = "trace"))]
        self.insert_inner(rect, item)
    }

    fn insert_inner(&mut self, rect: Rect, item: u64) -> io::Result<()> {
        self.insert_entry((rect, item), 0)?;
        self.meta.items += 1;
        self.finish_op()
    }

    /// Deletes the exact `(rect, item)` entry if present, condensing
    /// underfull nodes and reinserting their orphaned entries. Returns
    /// whether the entry was found.
    pub fn delete(&mut self, rect: &Rect, item: u64) -> io::Result<bool> {
        #[cfg(feature = "trace")]
        {
            self.begin_op();
            let result = self.delete_inner(rect, item);
            self.end_op();
            result
        }
        #[cfg(not(feature = "trace"))]
        self.delete_inner(rect, item)
    }

    fn delete_inner(&mut self, rect: &Rect, item: u64) -> io::Result<bool> {
        let mut path = Vec::new();
        let Some(leaf_id) = self.find_leaf(self.meta.root, rect, item, &mut path)? else {
            return Ok(false);
        };

        let mut cur = self.load(leaf_id)?;
        let pos = cur
            .entries
            .iter()
            .position(|(r, p)| *p == item && r == rect)
            .expect("find_leaf verified the entry");
        cur.entries.remove(pos);

        // CondenseTree: walk back to the root, dissolving underfull nodes
        // and tightening ancestor rectangles.
        let min = self.meta.min_entries as usize;
        let mut orphans: Vec<(u16, Vec<(Rect, u64)>)> = Vec::new();
        let mut cur_id = leaf_id;
        while let Some((parent_id, slot)) = path.pop() {
            let mut parent = self.load(parent_id)?;
            debug_assert_eq!(parent.entries[slot].1, cur_id);
            if cur.entries.len() < min {
                orphans.push((cur.level, std::mem::take(&mut cur.entries)));
                self.free_page(cur_id)?;
                self.meta.nodes -= 1;
                parent.entries.remove(slot);
            } else {
                self.store_node(cur_id, &cur)?;
                parent.entries[slot].0 = mbr(&cur.entries);
            }
            cur_id = parent_id;
            cur = parent;
        }
        // `cur` is now the root; it may legally underflow (or empty out
        // entirely when it is a leaf).
        self.store_node(cur_id, &cur)?;

        // Reinsert orphaned entries at their original level, highest first,
        // so subtrees land before the entries that would go under them.
        orphans.sort_by_key(|o| std::cmp::Reverse(o.0));
        for (level, entries) in orphans {
            for entry in entries {
                self.insert_entry(entry, level)?;
            }
        }

        // ShrinkTree: while the root is internal with a single child, the
        // child becomes the root.
        loop {
            let root_id = self.meta.root;
            let root = self.load(root_id)?;
            if root.level > 0 && root.entries.len() == 1 {
                self.meta.root = root.entries[0].1;
                self.meta.height -= 1;
                self.free_page(root_id)?;
                self.meta.nodes -= 1;
            } else {
                break;
            }
        }

        self.meta.items -= 1;
        self.finish_op()?;
        Ok(true)
    }

    /// Writes the updated metadata and commits the operation.
    fn finish_op(&mut self) -> io::Result<()> {
        // The level-order layout is gone after any mutation.
        self.meta.level_starts.clear();
        self.write_meta()?;
        self.mgr.commit()
    }

    /// Inserts `entry` into a node at `target_level`, splitting upward as
    /// needed (AdjustTree). `target_level` is 0 for items; orphan
    /// reinsertion passes the level the entry originally lived at.
    fn insert_entry(&mut self, entry: (Rect, u64), target_level: u16) -> io::Result<()> {
        // Capacity is per level: compressed trees pack internal pages
        // denser than leaves (see PageMeta::capacity_at).
        let min = self.meta.min_entries as usize;

        // Descend to the insertion node, remembering the path.
        let mut path: Vec<(u64, usize)> = Vec::new();
        let mut cur_id = self.meta.root;
        let mut node = self.load(cur_id)?;
        while node.level > target_level {
            let slot = choose_subtree(&node.entries, &entry.0);
            path.push((cur_id, slot));
            cur_id = node.entries[slot].1;
            node = self.load(cur_id)?;
        }
        debug_assert_eq!(node.level, target_level, "target level must exist");
        node.entries.push(entry);

        // Store (splitting if overfull), then walk the path up adjusting
        // rectangles and installing split siblings.
        let mut level = node.level;
        let mut split: Option<(Rect, u64)> = None;
        let mut child_mbr;
        if node.entries.len() > self.meta.capacity_at(node.level) {
            let (a, b) = quadratic_split(std::mem::take(&mut node.entries), min);
            child_mbr = mbr(&a);
            node.entries = a;
            self.store_node(cur_id, &node)?;
            split = Some(self.store_sibling(level, b)?);
        } else {
            child_mbr = mbr(&node.entries);
            self.store_node(cur_id, &node)?;
        }
        let mut child_id = cur_id;

        while let Some((pid, slot)) = path.pop() {
            let mut parent = self.load(pid)?;
            debug_assert_eq!(parent.entries[slot].1, child_id);
            parent.entries[slot].0 = child_mbr;
            if let Some(s) = split.take() {
                parent.entries.push(s);
            }
            level = parent.level;
            if parent.entries.len() > self.meta.capacity_at(parent.level) {
                let (a, b) = quadratic_split(std::mem::take(&mut parent.entries), min);
                child_mbr = mbr(&a);
                parent.entries = a;
                self.store_node(pid, &parent)?;
                split = Some(self.store_sibling(level, b)?);
            } else {
                child_mbr = mbr(&parent.entries);
                self.store_node(pid, &parent)?;
            }
            child_id = pid;
        }

        if let Some(sibling) = split {
            // The root itself split: grow the tree by one level.
            let new_root_id = self.alloc_page()?;
            let new_root = NodePage {
                level: level + 1,
                entries: vec![(child_mbr, child_id), sibling],
            };
            self.store_node(new_root_id, &new_root)?;
            self.meta.root = new_root_id;
            self.meta.height += 1;
            self.meta.nodes += 1;
        }
        Ok(())
    }

    /// Writes a freshly split-off sibling node and returns its parent entry.
    fn store_sibling(&mut self, level: u16, entries: Vec<(Rect, u64)>) -> io::Result<(Rect, u64)> {
        let rect = mbr(&entries);
        let id = self.alloc_page()?;
        self.store_node(id, &NodePage { level, entries })?;
        self.meta.nodes += 1;
        Ok((rect, id))
    }

    /// Finds the leaf holding the exact `(rect, item)` entry, filling
    /// `path` with `(page, slot)` pairs from the root down.
    fn find_leaf(
        &mut self,
        pid: u64,
        rect: &Rect,
        item: u64,
        path: &mut Vec<(u64, usize)>,
    ) -> io::Result<Option<u64>> {
        let node = self.load(pid)?;
        if node.level == 0 {
            if node.entries.iter().any(|(r, p)| *p == item && r == rect) {
                return Ok(Some(pid));
            }
            return Ok(None);
        }
        for (slot, (r, child)) in node.entries.iter().enumerate() {
            if r.contains_rect(rect) {
                path.push((pid, slot));
                if let Some(leaf) = self.find_leaf(*child, rect, item, path)? {
                    return Ok(Some(leaf));
                }
                path.pop();
            }
        }
        Ok(None)
    }

    fn load(&mut self, id: u64) -> io::Result<NodePage> {
        NodePage::decode(self.mgr.fetch(PageId(id))?).map_err(io::Error::from)
    }

    fn store_node(&mut self, id: u64, node: &NodePage) -> io::Result<()> {
        let mut buf = vec![0u8; PAGE_SIZE];
        // Layout-preserving: internal pages of a compressed tree are
        // re-quantized on every rewrite. Expansion is monotone (the new
        // frame contains the rewritten entries), so the containment
        // invariant queries rely on survives arbitrary mutation.
        node.encode_with(&mut buf, self.meta.layout_at(node.level));
        self.mgr.write_buffered(PageId(id), &buf)
    }

    fn write_meta(&mut self) -> io::Result<()> {
        let mut buf = vec![0u8; PAGE_SIZE];
        self.meta.encode(&mut buf);
        self.mgr.write_buffered(PageId(0), &buf)
    }

    /// Allocates a page, reusing the free list before growing the store.
    fn alloc_page(&mut self) -> io::Result<u64> {
        if self.meta.free_head == 0 {
            return Ok(self.mgr.allocate()?.0);
        }
        let id = self.meta.free_head;
        let frame = self.mgr.fetch(PageId(id))?;
        if &frame[0..4] != FREE_MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("free-list page {id} lacks the FREE tag"),
            ));
        }
        let next = u64::from_le_bytes(
            frame[FREE_NEXT_OFFSET..FREE_NEXT_OFFSET + 8]
                .try_into()
                .expect("8 bytes"),
        );
        self.meta.free_head = next;
        Ok(id)
    }

    /// Pushes a page onto the free list (logged like any other write).
    fn free_page(&mut self, id: u64) -> io::Result<()> {
        let mut buf = vec![0u8; PAGE_SIZE];
        buf[0..4].copy_from_slice(FREE_MAGIC);
        buf[FREE_NEXT_OFFSET..FREE_NEXT_OFFSET + 8]
            .copy_from_slice(&self.meta.free_head.to_le_bytes());
        crate::page::seal(&mut buf);
        self.mgr.write_buffered(PageId(id), &buf)?;
        self.meta.free_head = id;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemStore;
    use rtree_buffer::LruPolicy;
    use rtree_index::RTreeBuilder;

    fn rects(n: usize) -> Vec<Rect> {
        (0..n)
            .map(|i| {
                let x = (i as f64 * 0.618_033) % 0.95;
                let y = (i as f64 * 0.414_213) % 0.95;
                Rect::new(x, y, x + 0.02, y + 0.02)
            })
            .collect()
    }

    fn sorted(mut v: Vec<u64>) -> Vec<u64> {
        v.sort_unstable();
        v
    }

    #[test]
    fn empty_tree_queries_empty() {
        let mut t = DiskRTree::create_empty(MemStore::new(), 8, 3, 16, LruPolicy::new()).unwrap();
        assert_eq!(t.query(&Rect::new(0.0, 0.0, 1.0, 1.0)).unwrap(), vec![]);
        assert_eq!(t.meta().items, 0);
    }

    #[test]
    fn inserts_match_in_memory_reference() {
        let mut disk =
            DiskRTree::create_empty(MemStore::new(), 8, 3, 32, LruPolicy::new()).unwrap();
        let mut reference = RTreeBuilder::new(8).min_entries(3).build();
        for (i, r) in rects(500).iter().enumerate() {
            disk.insert(*r, i as u64).unwrap();
            reference.insert(*r, i as u64);
        }
        assert_eq!(disk.meta().items, 500);
        assert!(disk.meta().height > 1, "tree must have grown");
        for q in [
            Rect::new(0.1, 0.1, 0.4, 0.3),
            Rect::new(0.0, 0.0, 1.0, 1.0),
            Rect::new(0.8, 0.05, 0.9, 0.6),
        ] {
            assert_eq!(
                sorted(disk.query(&q).unwrap()),
                sorted(reference.search(&q)),
                "query {q}"
            );
        }
    }

    #[test]
    fn deletes_match_in_memory_reference() {
        let mut disk =
            DiskRTree::create_empty(MemStore::new(), 8, 3, 32, LruPolicy::new()).unwrap();
        let mut reference = RTreeBuilder::new(8).min_entries(3).build();
        let rs = rects(400);
        for (i, r) in rs.iter().enumerate() {
            disk.insert(*r, i as u64).unwrap();
            reference.insert(*r, i as u64);
        }
        // Delete every other item, forcing plenty of condensing.
        for (i, r) in rs.iter().enumerate().step_by(2) {
            assert!(disk.delete(r, i as u64).unwrap(), "item {i} present");
            assert!(reference.delete(r, i as u64));
        }
        assert_eq!(disk.meta().items, 200);
        let everything = Rect::new(0.0, 0.0, 1.0, 1.0);
        assert_eq!(
            sorted(disk.query(&everything).unwrap()),
            sorted(reference.search(&everything))
        );
        // Deleting a missing entry reports false and changes nothing.
        assert!(!disk.delete(&rs[0], 0).unwrap());
        assert_eq!(disk.meta().items, 200);
    }

    #[test]
    fn delete_everything_then_reinsert() {
        let mut disk =
            DiskRTree::create_empty(MemStore::new(), 8, 3, 32, LruPolicy::new()).unwrap();
        let rs = rects(150);
        for (i, r) in rs.iter().enumerate() {
            disk.insert(*r, i as u64).unwrap();
        }
        for (i, r) in rs.iter().enumerate() {
            assert!(disk.delete(r, i as u64).unwrap());
        }
        assert_eq!(disk.meta().items, 0);
        assert_eq!(disk.meta().height, 1, "tree collapsed to a root leaf");
        assert_eq!(disk.query(&Rect::new(0.0, 0.0, 1.0, 1.0)).unwrap(), vec![]);
        // Everything freed is reusable: page count must not grow much on
        // reinsertion.
        let pages_before = disk.mgr.store_mut().page_count();
        for (i, r) in rs.iter().enumerate() {
            disk.insert(*r, i as u64).unwrap();
        }
        assert_eq!(
            sorted(disk.query(&Rect::new(0.0, 0.0, 1.0, 1.0)).unwrap()).len(),
            150
        );
        assert_eq!(
            disk.mgr.store_mut().page_count(),
            pages_before,
            "free list reuses every dissolved page"
        );
    }

    #[test]
    fn mutated_tree_survives_flush_and_reopen() {
        let mut store = MemStore::new();
        let rs = rects(300);
        {
            let mut disk =
                DiskRTree::create_empty(&mut store, 10, 4, 16, LruPolicy::new()).unwrap();
            for (i, r) in rs.iter().enumerate() {
                disk.insert(*r, i as u64).unwrap();
            }
            for (i, r) in rs.iter().enumerate().take(100) {
                disk.delete(r, i as u64).unwrap();
            }
            disk.flush().unwrap();
        }
        let mut disk = DiskRTree::open(&mut store, 16, LruPolicy::new()).unwrap();
        assert_eq!(disk.meta().items, 200);
        let got = sorted(disk.query(&Rect::new(0.0, 0.0, 1.0, 1.0)).unwrap());
        assert_eq!(got, (100..300).collect::<Vec<u64>>());
    }

    #[test]
    #[should_panic(expected = "level table is stale")]
    fn mutation_invalidates_level_table() {
        let mut disk =
            DiskRTree::create_empty(MemStore::new(), 8, 3, 16, LruPolicy::new()).unwrap();
        disk.insert(Rect::new(0.1, 0.1, 0.2, 0.2), 7).unwrap();
        disk.pages_per_level();
    }

    #[test]
    fn quadratic_split_respects_min_fill() {
        let entries: Vec<(Rect, u64)> = rects(11)
            .into_iter()
            .enumerate()
            .map(|(i, r)| (r, i as u64))
            .collect();
        let (a, b) = quadratic_split(entries, 4);
        assert_eq!(a.len() + b.len(), 11);
        assert!(a.len() >= 4, "group A below min fill: {}", a.len());
        assert!(b.len() >= 4, "group B below min fill: {}", b.len());
    }

    #[test]
    fn writes_are_buffered_until_flush() {
        let mut disk =
            DiskRTree::create_empty(MemStore::new(), 8, 3, 64, LruPolicy::new()).unwrap();
        for (i, r) in rects(50).iter().enumerate() {
            disk.insert(*r, i as u64).unwrap();
        }
        // A 64-frame buffer easily holds this tree: nothing was evicted, so
        // no physical write has happened since creation.
        assert_eq!(disk.physical_writes(), 0);
        disk.flush().unwrap();
        assert!(disk.physical_writes() > 0);
    }
}
