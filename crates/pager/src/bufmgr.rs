//! The buffer manager: a [`BufferPool`] plus page frames over a
//! [`PageStore`], counting physical reads and writes.
//!
//! The manager supports two write disciplines:
//!
//! - **Write-through** ([`BufferManager::write`]): the page goes straight to
//!   the store (and any resident frame is updated). No durability protocol.
//! - **Write-back** ([`BufferManager::write_buffered`]): the page is updated
//!   in its frame and marked dirty; it reaches the store only on eviction,
//!   [`BufferManager::flush_all`] or [`BufferManager::checkpoint`]. When a
//!   [`Wal`] is attached, every buffered write logs a full before/after page
//!   image first, and a dirty page is never written back before the log is
//!   synced — the write-ahead rule that makes crash recovery possible.

use crate::{PageStore, PAGE_SIZE};
use rtree_buffer::{AccessOutcome, BufferPool, PageId, PinError, ReplacementPolicy};
#[cfg(feature = "trace")]
use rtree_obs::{EventKind, IoEvent, TraceSink};
use rtree_wal::Wal;
use std::collections::HashMap;
use std::io;
#[cfg(feature = "trace")]
use std::sync::Arc;

/// Per-manager trace state: the sink plus the current span (query id and
/// tree level), set by the tree layer before it drives the manager. Only
/// compiled with the `trace` feature; without it the manager carries no
/// tracing state at all.
#[cfg(feature = "trace")]
pub(crate) struct Tracer {
    pub(crate) sink: Option<Arc<dyn TraceSink>>,
    /// Query/operation span currently executing (0 = none).
    pub(crate) query_id: u64,
    /// Tree level of the page about to be touched (-1 = unknown).
    pub(crate) level: i16,
}

#[cfg(feature = "trace")]
impl Default for Tracer {
    fn default() -> Self {
        Tracer {
            sink: None,
            query_id: 0,
            level: -1,
        }
    }
}

#[cfg(feature = "trace")]
impl Tracer {
    /// Emits one event at the current span's level.
    #[inline]
    pub(crate) fn emit(&self, page: PageId, kind: EventKind) {
        self.emit_at(page, self.level, kind);
    }

    /// Emits one event at an explicit level (used where the current span's
    /// level does not describe the page, e.g. an evicted victim).
    #[inline]
    pub(crate) fn emit_at(&self, page: PageId, level: i16, kind: EventKind) {
        if let Some(sink) = &self.sink {
            sink.record(IoEvent {
                query_id: self.query_id,
                page_id: page.0,
                level,
                kind,
                ns: rtree_obs::now_ns(),
            });
        }
    }
}

/// Physical I/O counters, shared by every disk-access measurement in the
/// workspace: one shape for reads and writes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Physical page reads from the store.
    pub reads: u64,
    /// Physical page writes to the store.
    pub writes: u64,
    /// Physical reads performed by the *uncharged* root-MBR peek. The
    /// paper's model semantics exclude the peek from `reads` (a node is
    /// accessed iff its MBR intersects the query), but the transfer still
    /// happens — it is surfaced here so no physical I/O is silently
    /// dropped from the accounting.
    pub peek_reads: u64,
    /// The share of `reads` issued by [`BufferManager::prefetch`] rather
    /// than a demand miss (so `prefetch_reads <= reads`, and demand misses
    /// are `reads - prefetch_reads`). Prefetch fills are real physical
    /// transfers — they stay inside `reads` so "physical reads" keeps
    /// meaning every charged page-in — but no query's miss count is
    /// inflated by them: the consuming access later lands as a hit.
    pub prefetch_reads: u64,
}

impl IoStats {
    /// Total physical page transfers, peeks included (`reads` already
    /// includes prefetch fills).
    pub fn total(&self) -> u64 {
        self.reads + self.writes + self.peek_reads
    }

    /// Physical reads charged to demand misses (excludes prefetch fills).
    pub fn demand_reads(&self) -> u64 {
        self.reads - self.prefetch_reads
    }
}

/// What [`BufferManager::prefetch`] did for a page.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PrefetchOutcome {
    /// The page was read from the store into a frame and **pinned**; the
    /// caller must [`BufferManager::unpin`] it after the consuming access.
    Fetched,
    /// The page was already resident: nothing was read or pinned.
    Resident,
    /// No frame could be reserved (every frame pinned); nothing was read.
    /// The caller should stop issuing readahead for now.
    NoCapacity,
}

/// A buffer manager: caches page contents according to the pool's
/// replacement decisions and counts every physical page transfer. One page
/// frame per resident page; fetches return a borrowed frame.
pub struct BufferManager<S: PageStore> {
    store: S,
    pool: BufferPool,
    frames: HashMap<PageId, Box<[u8]>>,
    /// Scratch frame for reads that bypass a fully pinned pool.
    scratch: Box<[u8]>,
    stats: IoStats,
    wal: Option<Wal>,
    /// Verify page checksums at read-in (see
    /// [`BufferManager::set_verify_reads`]).
    verify_reads: bool,
    #[cfg(feature = "trace")]
    pub(crate) tracer: Tracer,
}

impl<S: PageStore> BufferManager<S> {
    /// Creates a manager with `capacity` frames and the given policy.
    pub fn new(store: S, capacity: usize, policy: impl ReplacementPolicy + 'static) -> Self {
        BufferManager {
            store,
            pool: BufferPool::new(capacity, policy),
            frames: HashMap::with_capacity(capacity + 1),
            scratch: vec![0u8; PAGE_SIZE].into_boxed_slice(),
            stats: IoStats::default(),
            wal: None,
            verify_reads: false,
            #[cfg(feature = "trace")]
            tracer: Tracer::default(),
        }
    }

    /// Enables (or disables) checksum verification of every page the
    /// manager reads from the store on the *read* paths — demand misses,
    /// pins, prefetch fills and scratch reads alike (before-image reads on
    /// the buffered-write path are exempt: an overwrite must be able to
    /// repair a corrupt page). With this on, a frame served from the pool
    /// is known-good, so decoders may skip their own checksum pass
    /// ([`crate::NodeSoA::decode_into_trusted`]): corruption is caught
    /// exactly once, at page-in, instead of on every traversal of a
    /// resident frame. The tree layers enable this; the default is off so
    /// the manager stays format-agnostic for raw-page users.
    pub fn set_verify_reads(&mut self, on: bool) {
        self.verify_reads = on;
    }

    /// Checksum gate applied to freshly read bytes when
    /// [`BufferManager::set_verify_reads`] is on.
    fn verify_read(&self, id: PageId, frame: &[u8]) -> io::Result<()> {
        if self.verify_reads {
            crate::page::verify_checksum(frame).map_err(|e| {
                io::Error::new(io::ErrorKind::InvalidData, format!("page {}: {e}", id.0))
            })?;
        }
        Ok(())
    }

    /// Routes every subsequent physical-I/O and pool-outcome event to
    /// `sink` (`None` stops tracing). Only present with the `trace`
    /// feature.
    #[cfg(feature = "trace")]
    pub fn set_trace_sink(&mut self, sink: Option<Arc<dyn TraceSink>>) {
        self.tracer.sink = sink;
    }

    /// Attaches a write-ahead log; from here on every buffered write is
    /// logged with before/after images and eviction enforces the WAL rule.
    pub fn attach_wal(&mut self, wal: Wal) {
        self.wal = Some(wal);
    }

    /// The attached WAL, if any.
    pub fn wal(&self) -> Option<&Wal> {
        self.wal.as_ref()
    }

    /// Physical I/O counters.
    pub fn io_stats(&self) -> IoStats {
        self.stats
    }

    /// Number of physical page reads so far.
    pub fn physical_reads(&self) -> u64 {
        self.stats.reads
    }

    /// Number of physical page writes so far.
    pub fn physical_writes(&self) -> u64 {
        self.stats.writes
    }

    /// Resets the I/O counters (e.g. after warm-up).
    pub fn reset_counters(&mut self) {
        self.stats = IoStats::default();
        self.pool.reset_stats();
    }

    /// The underlying pool (for hit-ratio statistics).
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }

    /// The underlying store.
    pub fn store_mut(&mut self) -> &mut S {
        &mut self.store
    }

    /// Tears the manager down, discarding frames (dirty pages are *not*
    /// written back — this simulates a crash; use
    /// [`BufferManager::flush_all`] first for an orderly shutdown).
    pub fn into_store(self) -> S {
        self.store
    }

    /// Writes the evicted page back if dirty (log first), then drops its
    /// frame.
    fn retire_victim(&mut self, victim: PageId) -> io::Result<()> {
        if self.pool.is_dirty(victim) {
            // WAL rule: the log records covering this page must be durable
            // before the page image may overwrite the store.
            if let Some(wal) = &mut self.wal {
                wal.sync()?;
            }
            let frame = self.frames.get(&victim).expect("dirty page has a frame");
            self.store.write_page(victim, frame)?;
            self.stats.writes += 1;
            self.pool.clear_dirty(victim);
            #[cfg(feature = "trace")]
            self.tracer.emit_at(victim, -1, EventKind::WriteBack);
        }
        self.frames.remove(&victim);
        Ok(())
    }

    /// Fetches a page, going to the store only on a miss.
    pub fn fetch(&mut self, id: PageId) -> io::Result<&[u8]> {
        match self.pool.access(id) {
            AccessOutcome::Hit => {
                #[cfg(feature = "trace")]
                self.tracer.emit(id, EventKind::Hit);
            }
            AccessOutcome::Miss { evicted } => {
                if let Some(victim) = evicted {
                    self.retire_victim(victim)?;
                }
                let mut frame = vec![0u8; PAGE_SIZE].into_boxed_slice();
                self.store.read_page(id, &mut frame)?;
                if let Err(e) = self.verify_read(id, &frame) {
                    // Back the admission out: the next access must miss and
                    // re-read rather than hit a frameless resident entry.
                    self.pool.discard(id);
                    return Err(e);
                }
                self.stats.reads += 1;
                self.frames.insert(id, frame);
                #[cfg(feature = "trace")]
                self.tracer.emit(id, EventKind::Miss);
            }
            AccessOutcome::MissBypass => {
                self.store.read_page(id, &mut self.scratch)?;
                self.verify_read(id, &self.scratch)?;
                self.stats.reads += 1;
                #[cfg(feature = "trace")]
                self.tracer.emit(id, EventKind::Miss);
                return Ok(&self.scratch);
            }
        }
        Ok(self.frames.get(&id).expect("resident page has a frame"))
    }

    /// Pins a page: loads it (counting the read) and keeps it resident.
    pub fn pin(&mut self, id: PageId) -> io::Result<()> {
        let was_resident = self.pool.contains(id);
        let evicted = self
            .pool
            .pin(id)
            .map_err(|e: PinError| io::Error::new(io::ErrorKind::OutOfMemory, e.to_string()))?;
        if let Some(victim) = evicted {
            self.retire_victim(victim)?;
        }
        if !was_resident {
            let mut frame = vec![0u8; PAGE_SIZE].into_boxed_slice();
            self.store.read_page(id, &mut frame)?;
            if let Err(e) = self.verify_read(id, &frame) {
                self.pool.unpin(id);
                self.pool.discard(id);
                return Err(e);
            }
            self.stats.reads += 1;
            self.frames.insert(id, frame);
            #[cfg(feature = "trace")]
            self.tracer.emit(id, EventKind::Miss);
        }
        Ok(())
    }

    /// Reads a page ahead of its demand access. On [`PrefetchOutcome::Fetched`]
    /// the frame is filled and **pinned** so it cannot be evicted before the
    /// access that consumes it — the caller unpins after that access. The
    /// transfer counts as a physical read (`IoStats::reads`, with the
    /// prefetch share mirrored in `IoStats::prefetch_reads`) but **not** as
    /// a pool access: no miss is charged to any query, and the later
    /// consuming access lands as a hit. Emits [`EventKind::Prefetch`]
    /// instead of a miss in trace builds.
    pub fn prefetch(&mut self, id: PageId) -> io::Result<PrefetchOutcome> {
        if self.pool.contains(id) {
            return Ok(PrefetchOutcome::Resident);
        }
        if self.pool.pinned_count() >= self.pool.capacity() {
            return Ok(PrefetchOutcome::NoCapacity);
        }
        // Read before touching pool state: a failed I/O then needs no
        // rollback of a half-made reservation.
        let mut frame = vec![0u8; PAGE_SIZE].into_boxed_slice();
        self.store.read_page(id, &mut frame)?;
        self.verify_read(id, &frame)?;
        let evicted = self
            .pool
            .admit_pinned(id)
            .expect("a frame is free: pinned_count < capacity was checked");
        if let Some(victim) = evicted {
            self.retire_victim(victim)?;
        }
        self.stats.reads += 1;
        self.stats.prefetch_reads += 1;
        self.frames.insert(id, frame);
        #[cfg(feature = "trace")]
        self.tracer.emit(id, EventKind::Prefetch);
        Ok(PrefetchOutcome::Fetched)
    }

    /// Unpins a page pinned by [`BufferManager::pin`] or
    /// [`BufferManager::prefetch`]; it stays resident and re-enters the
    /// replacement order as most recently used.
    pub fn unpin(&mut self, id: PageId) {
        self.pool.unpin(id);
    }

    /// Borrows the frame of a resident page without touching policy state.
    pub(crate) fn peek_frame(&self, id: PageId) -> Option<&[u8]> {
        self.frames.get(&id).map(|b| &b[..])
    }

    /// Reads a page *without* charging the buffer: a resident frame is
    /// peeked (no policy touch), a non-resident page goes through the
    /// scratch frame and counts only as a peek read. Used for the
    /// model-semantics root-MBR test (a node is accessed iff its MBR
    /// intersects the query), by both the tree's own query path and the
    /// batch executor.
    pub fn fetch_uncharged(&mut self, id: PageId) -> io::Result<&[u8]> {
        if self.pool.contains(id) {
            return Ok(self.peek_frame(id).expect("resident page has a frame"));
        }
        self.read_scratch(id)
    }

    /// Sets the trace span subsequent events are attributed to: the
    /// query/operation id (0 = none) and the on-page level of the pages
    /// about to be touched (-1 = unknown). Only present with the `trace`
    /// feature; external drivers like the batch executor use this the same
    /// way the tree's own query path does internally.
    #[cfg(feature = "trace")]
    pub fn set_trace_span(&mut self, query_id: u64, level: i16) {
        self.tracer.query_id = query_id;
        self.tracer.level = level;
    }

    /// The operation id of the current trace span (0 = none).
    #[cfg(feature = "trace")]
    pub fn trace_span_id(&self) -> u64 {
        self.tracer.query_id
    }

    /// Reads a page into the scratch frame, bypassing the pool and the
    /// model's `reads` counter (used for the uncharged root-MBR peek). The
    /// transfer is still physical I/O, so it lands in
    /// [`IoStats::peek_reads`].
    pub(crate) fn read_scratch(&mut self, id: PageId) -> io::Result<&[u8]> {
        self.store.read_page(id, &mut self.scratch)?;
        self.verify_read(id, &self.scratch)?;
        self.stats.peek_reads += 1;
        #[cfg(feature = "trace")]
        self.tracer.emit(id, EventKind::PeekRead);
        Ok(&self.scratch)
    }

    /// Writes a page through the cache to the store (no WAL, no dirty
    /// tracking — bulk materialization and other non-transactional paths).
    pub fn write(&mut self, id: PageId, data: &[u8]) -> io::Result<()> {
        assert_eq!(data.len(), PAGE_SIZE);
        if let Some(frame) = self.frames.get_mut(&id) {
            frame.copy_from_slice(data);
        }
        self.store.write_page(id, data)?;
        self.stats.writes += 1;
        #[cfg(feature = "trace")]
        self.tracer.emit(id, EventKind::WriteBack);
        Ok(())
    }

    /// Buffered (write-back) page write: updates the frame, marks it dirty,
    /// and — with a WAL attached — logs the full before/after images first.
    /// The store is *not* touched unless the pool is fully pinned (then the
    /// write degrades to logged write-through via the scratch frame).
    pub fn write_buffered(&mut self, id: PageId, data: &[u8]) -> io::Result<()> {
        assert_eq!(data.len(), PAGE_SIZE);
        match self.pool.access(id) {
            AccessOutcome::Hit => {
                #[cfg(feature = "trace")]
                self.tracer.emit(id, EventKind::Hit);
            }
            AccessOutcome::Miss { evicted } => {
                if let Some(victim) = evicted {
                    self.retire_victim(victim)?;
                }
                // The before-image requires the current page contents.
                let mut frame = vec![0u8; PAGE_SIZE].into_boxed_slice();
                self.store.read_page(id, &mut frame)?;
                self.stats.reads += 1;
                self.frames.insert(id, frame);
                #[cfg(feature = "trace")]
                self.tracer.emit(id, EventKind::Miss);
            }
            AccessOutcome::MissBypass => {
                self.store.read_page(id, &mut self.scratch)?;
                self.stats.reads += 1;
                #[cfg(feature = "trace")]
                self.tracer.emit(id, EventKind::Miss);
                if let Some(wal) = &mut self.wal {
                    wal.log_page_image(id.0, &self.scratch, data)?;
                    wal.sync()?;
                    #[cfg(feature = "trace")]
                    self.tracer.emit(id, EventKind::WalAppend);
                }
                self.store.write_page(id, data)?;
                self.stats.writes += 1;
                #[cfg(feature = "trace")]
                self.tracer.emit(id, EventKind::WriteBack);
                return Ok(());
            }
        }
        let frame = self.frames.get_mut(&id).expect("resident page has a frame");
        if let Some(wal) = &mut self.wal {
            wal.log_page_image(id.0, frame, data)?;
            #[cfg(feature = "trace")]
            self.tracer.emit(id, EventKind::WalAppend);
        }
        frame.copy_from_slice(data);
        self.pool.mark_dirty(id);
        Ok(())
    }

    /// Allocates a fresh zeroed page in the store.
    pub fn allocate(&mut self) -> io::Result<PageId> {
        self.store.allocate()
    }

    /// Commits the current operation: appends a commit marker and syncs the
    /// log. No-op without a WAL.
    pub fn commit(&mut self) -> io::Result<()> {
        if let Some(wal) = &mut self.wal {
            wal.log_commit()?;
        }
        Ok(())
    }

    /// Writes every dirty page back to the store (log first) and issues the
    /// store's durability barrier.
    pub fn flush_all(&mut self) -> io::Result<()> {
        if let Some(wal) = &mut self.wal {
            wal.sync()?;
        }
        for id in self.pool.dirty_pages() {
            let frame = self.frames.get(&id).expect("dirty page has a frame");
            self.store.write_page(id, frame)?;
            self.stats.writes += 1;
            self.pool.clear_dirty(id);
            #[cfg(feature = "trace")]
            self.tracer.emit_at(id, -1, EventKind::WriteBack);
        }
        self.store.flush()
    }

    /// Checkpoint: flush all dirty pages, then mark the log as redundant
    /// (checkpoint record + truncation). Call only between operations.
    pub fn checkpoint(&mut self) -> io::Result<()> {
        self.flush_all()?;
        if let Some(wal) = &mut self.wal {
            wal.log_checkpoint()?;
            wal.truncate()?;
        }
        Ok(())
    }

    /// Replaces the buffer pool with a fresh one of `capacity` frames under
    /// `policy`. Every dirty page is flushed first (log-first, as always),
    /// so no buffered state is lost; pinned pages *stay pinned* (their
    /// frames carry over) and the pool's hit/miss statistics restart from
    /// zero, while the cumulative [`IoStats`] and the attached WAL are
    /// preserved. Call only between operations.
    ///
    /// # Errors
    /// `InvalidInput` if `capacity` is smaller than the number of currently
    /// pinned pages — shrinking must never evict a pinned page, so the
    /// request is refused with the pool untouched.
    pub fn resize(
        &mut self,
        capacity: usize,
        policy: impl ReplacementPolicy + 'static,
    ) -> io::Result<()> {
        let pinned: Vec<PageId> = self
            .frames
            .keys()
            .copied()
            .filter(|&id| self.pool.is_pinned(id))
            .collect();
        if capacity < pinned.len() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "cannot resize to {capacity} frames: {} pages are pinned",
                    pinned.len()
                ),
            ));
        }
        self.flush_all()?;
        let mut pool = BufferPool::new(capacity, policy);
        for &id in &pinned {
            pool.admit_pinned(id)
                .expect("capacity was checked against the pinned count");
        }
        self.pool = pool;
        self.frames.retain(|id, _| pinned.contains(id));
        Ok(())
    }

    /// Unpins every pinned page. The frames stay resident and re-enter
    /// replacement, so this costs no I/O — it only makes the pages
    /// evictable again (the controller's first step when it re-targets
    /// pinning at a different level set).
    pub fn unpin_all(&mut self) {
        let pinned: Vec<PageId> = self
            .frames
            .keys()
            .copied()
            .filter(|&id| self.pool.is_pinned(id))
            .collect();
        for id in pinned {
            self.pool.unpin(id);
        }
    }

    /// Number of currently pinned pages.
    pub fn pinned_count(&self) -> usize {
        self.pool.pinned_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemStore;
    use rtree_buffer::LruPolicy;
    use rtree_wal::{LogBackend, MemLog, Wal, WalRecord};

    fn make(pages: usize, capacity: usize) -> BufferManager<MemStore> {
        let mut store = MemStore::new();
        for i in 0..pages {
            let id = store.allocate().unwrap();
            let mut buf = vec![0u8; PAGE_SIZE];
            buf[0] = i as u8;
            store.write_page(id, &buf).unwrap();
        }
        BufferManager::new(store, capacity, LruPolicy::new())
    }

    fn page(fill: u8) -> Vec<u8> {
        let mut buf = vec![0u8; PAGE_SIZE];
        buf[0] = fill;
        buf
    }

    #[test]
    fn fetch_caches_and_counts() {
        let mut m = make(4, 2);
        assert_eq!(m.fetch(PageId(1)).unwrap()[0], 1);
        assert_eq!(m.fetch(PageId(1)).unwrap()[0], 1);
        assert_eq!(m.physical_reads(), 1, "second fetch must hit");
        assert_eq!(m.fetch(PageId(2)).unwrap()[0], 2);
        assert_eq!(m.physical_reads(), 2);
        // Capacity 2: fetching a third page evicts the LRU (page 1).
        assert_eq!(m.fetch(PageId(3)).unwrap()[0], 3);
        assert_eq!(m.physical_reads(), 3);
        assert_eq!(m.fetch(PageId(1)).unwrap()[0], 1);
        assert_eq!(m.physical_reads(), 4, "page 1 was evicted");
        assert_eq!(m.frames.len(), 2, "frames track residency");
    }

    #[test]
    fn unpin_all_reenters_replacement_and_allows_shrink() {
        let mut m = make(6, 4);
        m.pin(PageId(1)).unwrap();
        m.pin(PageId(2)).unwrap();
        m.pin(PageId(3)).unwrap();
        assert_eq!(m.pinned_count(), 3);
        // Shrinking below the pinned count is refused...
        assert!(m.resize(2, LruPolicy::new()).is_err());
        // ...but after unpin_all the same shrink succeeds, and unpinning
        // itself costs no I/O.
        let reads = m.physical_reads();
        m.unpin_all();
        assert_eq!(m.pinned_count(), 0);
        assert_eq!(m.physical_reads(), reads);
        m.resize(2, LruPolicy::new()).unwrap();
        assert_eq!(m.pool().capacity(), 2);
    }

    #[test]
    fn pinned_page_never_reread() {
        let mut m = make(8, 2);
        m.pin(PageId(0)).unwrap();
        for i in 1..8 {
            m.fetch(PageId(i)).unwrap();
        }
        let before = m.physical_reads();
        assert_eq!(m.fetch(PageId(0)).unwrap()[0], 0);
        assert_eq!(m.physical_reads(), before);
    }

    #[test]
    fn bypass_when_fully_pinned() {
        let mut m = make(4, 2);
        m.pin(PageId(0)).unwrap();
        m.pin(PageId(1)).unwrap();
        assert_eq!(m.fetch(PageId(2)).unwrap()[0], 2);
        assert_eq!(m.fetch(PageId(2)).unwrap()[0], 2);
        // Bypass reads are never cached.
        assert_eq!(m.physical_reads(), 4);
    }

    #[test]
    fn write_through_updates_frame_and_counts() {
        let mut m = make(2, 2);
        m.fetch(PageId(0)).unwrap();
        m.write(PageId(0), &page(0xEE)).unwrap();
        assert_eq!(m.fetch(PageId(0)).unwrap()[0], 0xEE);
        assert_eq!(
            m.io_stats(),
            IoStats {
                reads: 1,
                writes: 1,
                ..IoStats::default()
            }
        );
    }

    #[test]
    fn reset_counters() {
        let mut m = make(2, 2);
        m.fetch(PageId(0)).unwrap();
        m.write(PageId(1), &page(1)).unwrap();
        m.reset_counters();
        assert_eq!(m.io_stats(), IoStats::default());
        assert_eq!(m.pool().stats().accesses, 0);
    }

    #[test]
    fn missing_page_errors() {
        let mut m = make(2, 2);
        assert!(m.fetch(PageId(77)).is_err());
    }

    #[test]
    fn buffered_write_defers_store_write_until_eviction() {
        let mut m = make(4, 2);
        m.write_buffered(PageId(0), &page(0xAA)).unwrap();
        assert_eq!(m.physical_writes(), 0, "write-back: store untouched");
        assert_eq!(m.fetch(PageId(0)).unwrap()[0], 0xAA, "frame holds new data");
        // Store still has the old image.
        let mut raw = vec![0u8; PAGE_SIZE];
        m.store_mut().read_page(PageId(0), &mut raw).unwrap();
        assert_eq!(raw[0], 0);
        // Evict page 0 by touching two other pages.
        m.fetch(PageId(1)).unwrap();
        m.fetch(PageId(2)).unwrap();
        assert_eq!(m.physical_writes(), 1, "eviction wrote the dirty page");
        m.store_mut().read_page(PageId(0), &mut raw).unwrap();
        assert_eq!(raw[0], 0xAA);
    }

    #[test]
    fn flush_all_writes_every_dirty_page_once() {
        let mut m = make(4, 4);
        m.write_buffered(PageId(0), &page(10)).unwrap();
        m.write_buffered(PageId(2), &page(12)).unwrap();
        m.write_buffered(PageId(2), &page(13)).unwrap();
        m.flush_all().unwrap();
        assert_eq!(m.physical_writes(), 2, "one write per dirty page");
        assert_eq!(m.pool().dirty_count(), 0);
        let mut raw = vec![0u8; PAGE_SIZE];
        m.store_mut().read_page(PageId(2), &mut raw).unwrap();
        assert_eq!(raw[0], 13, "last buffered content wins");
        // A second flush is a no-op.
        m.flush_all().unwrap();
        assert_eq!(m.physical_writes(), 2);
    }

    #[test]
    fn prefetch_reads_once_and_the_access_hits() {
        let mut m = make(4, 2);
        assert_eq!(m.prefetch(PageId(1)).unwrap(), PrefetchOutcome::Fetched);
        let io = m.io_stats();
        assert_eq!((io.reads, io.prefetch_reads), (1, 1));
        assert_eq!(io.demand_reads(), 0, "no miss charged to anyone");
        assert_eq!(m.pool().stats().accesses, 0, "prefetch is not an access");
        // The consuming access: a hit, no further read.
        assert_eq!(m.fetch(PageId(1)).unwrap()[0], 1);
        m.unpin(PageId(1));
        let io = m.io_stats();
        assert_eq!((io.reads, io.prefetch_reads), (1, 1));
        let s = m.pool().stats();
        assert_eq!((s.accesses, s.hits, s.misses), (1, 1, 0));
    }

    #[test]
    fn prefetched_page_survives_pressure_until_unpinned() {
        let mut m = make(8, 2);
        m.prefetch(PageId(1)).unwrap();
        // Demand traffic fills and churns the other frame; page 1 is pinned
        // by the readahead reservation, so it cannot be the victim.
        for i in 2..6 {
            m.fetch(PageId(i)).unwrap();
        }
        let before = m.physical_reads();
        assert_eq!(m.fetch(PageId(1)).unwrap()[0], 1);
        assert_eq!(m.physical_reads(), before, "reservation held the frame");
        m.unpin(PageId(1));
    }

    #[test]
    fn prefetch_resident_and_full_pools_are_no_ops() {
        let mut m = make(4, 2);
        m.fetch(PageId(1)).unwrap();
        assert_eq!(m.prefetch(PageId(1)).unwrap(), PrefetchOutcome::Resident);
        assert_eq!(m.io_stats().prefetch_reads, 0);
        m.pin(PageId(0)).unwrap();
        m.pin(PageId(2)).unwrap();
        // Every frame pinned: readahead declines instead of erroring.
        assert_eq!(m.prefetch(PageId(3)).unwrap(), PrefetchOutcome::NoCapacity);
        assert_eq!(m.io_stats().prefetch_reads, 0);
    }

    #[test]
    fn prefetch_missing_page_errors_without_reserving() {
        let mut m = make(2, 2);
        assert!(m.prefetch(PageId(77)).is_err());
        assert!(!m.pool().contains(PageId(77)), "failed read left state");
        assert_eq!(m.pool().pinned_count(), 0);
        assert_eq!(m.io_stats().prefetch_reads, 0);
    }

    #[test]
    fn wal_logs_before_and_after_images() {
        let log = MemLog::new();
        let mut m = make(2, 2);
        m.attach_wal(Wal::open(log.clone()).unwrap());
        m.write_buffered(PageId(1), &page(0x55)).unwrap();
        m.commit().unwrap();
        let records = rtree_wal::scan(&log.read_all().unwrap()).records;
        assert_eq!(records.len(), 2);
        match &records[0] {
            WalRecord::PageImage {
                page_id,
                before,
                after,
                ..
            } => {
                assert_eq!(*page_id, 1);
                assert_eq!(before[0], 1, "before-image is the store content");
                assert_eq!(after[0], 0x55);
            }
            other => panic!("expected page image, got {other:?}"),
        }
        assert!(matches!(records[1], WalRecord::Commit { .. }));
    }

    #[test]
    fn checkpoint_flushes_and_truncates_log() {
        let log = MemLog::new();
        let mut m = make(2, 2);
        m.attach_wal(Wal::open(log.clone()).unwrap());
        m.write_buffered(PageId(0), &page(0x42)).unwrap();
        m.commit().unwrap();
        m.checkpoint().unwrap();
        assert_eq!(log.read_all().unwrap().len(), 0, "log truncated");
        let mut raw = vec![0u8; PAGE_SIZE];
        m.store_mut().read_page(PageId(0), &mut raw).unwrap();
        assert_eq!(raw[0], 0x42);
        assert_eq!(m.pool().dirty_count(), 0);
    }

    #[test]
    fn buffered_write_on_fully_pinned_pool_degrades_to_write_through() {
        let mut m = make(4, 2);
        m.pin(PageId(0)).unwrap();
        m.pin(PageId(1)).unwrap();
        m.write_buffered(PageId(2), &page(0x77)).unwrap();
        assert_eq!(m.physical_writes(), 1, "bypass writes through");
        let mut raw = vec![0u8; PAGE_SIZE];
        m.store_mut().read_page(PageId(2), &mut raw).unwrap();
        assert_eq!(raw[0], 0x77);
    }

    #[test]
    fn resize_preserves_pins_and_refuses_to_shrink_below_them() {
        let mut m = make(8, 4);
        m.pin(PageId(0)).unwrap();
        m.pin(PageId(1)).unwrap();
        m.write_buffered(PageId(1), &page(0xC3)).unwrap();

        // Shrinking below the pinned count is refused, pool untouched.
        let err = m.resize(1, LruPolicy::new()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        assert_eq!(m.pool.pinned_count(), 2, "failed resize changed nothing");
        assert!(m.pool.is_pinned(PageId(0)));

        // A legal resize keeps the pinned pages resident and pinned, with
        // their (flushed) frames intact — no re-read needed.
        m.resize(2, LruPolicy::new()).unwrap();
        assert_eq!(m.pool.pinned_count(), 2);
        assert_eq!(m.frames.len(), 2);
        let before = m.physical_reads();
        assert_eq!(m.fetch(PageId(1)).unwrap()[0], 0xC3);
        assert_eq!(m.physical_reads(), before, "pinned frame carried over");
        // The dirty pin was flushed (log-first) before the swap.
        let mut raw = vec![0u8; PAGE_SIZE];
        m.store_mut().read_page(PageId(1), &mut raw).unwrap();
        assert_eq!(raw[0], 0xC3);
    }
}
